#!/usr/bin/env python3
"""Diff two BENCH_<name>.json reports (or directories of them).

The repo's benches (bench/) write machine-readable run reports named
BENCH_<name>.json: "values" holds headline numbers (micro benches record
"time_ns/<benchmark>" entries), "phases" holds per-phase wall seconds.
This tool prints per-metric deltas between a baseline and a current run and
exits non-zero when a *timing* metric (time_ns/*, gate/*, or any phase)
regresses by more than the threshold, so CI can gate on it.  Non-timing
values (rewards, curve finals, counters) are reported but never gate: they
are expected to be bit-identical and belong to correctness tests, not perf
thresholds.  gate/* metrics are machine-robust ratios (e.g. micro_delta's
delta-over-full re-score time), so they can be gated with a real threshold
even on noisy shared runners; --gate PCT sets that threshold and forces a
non-zero exit on regression (it overrides --report-only).

Usage:
  bench_compare.py BASELINE CURRENT [--threshold PCT] [--report-only]
                   [--gate PCT]

BASELINE and CURRENT are either two BENCH_*.json files or two directories;
directories are matched by file name (only common names are compared).

Typical invocations:
  # Compare a fresh build's micro run against the committed baseline.
  python3 scripts/bench_compare.py bench/baselines/BENCH_micro_nn.json \
      build/bench/BENCH_micro_nn.json
  # Report-only sweep over every committed baseline (CI bench-smoke job).
  python3 scripts/bench_compare.py bench/baselines build/bench --report-only
"""

import argparse
import json
import os
import shutil
import sys

REGRESSION_PREFIXES = ("time_ns/", "phase/", "gate/")


RECORDED = [0]


def record_baseline(label, cur_path, base_path):
    """First run of a new bench: adopt the current report as the baseline."""
    print(f"# {label}: no baseline, recording {cur_path} -> {base_path}")
    os.makedirs(os.path.dirname(base_path) or ".", exist_ok=True)
    shutil.copyfile(cur_path, base_path)
    RECORDED[0] += 1


def load_report(path):
    """Flattens one report; exits with a clear message on malformed input.

    A truncated or hand-mangled baseline would otherwise surface as a bare
    JSONDecodeError traceback, which CI logs bury; name the file instead so
    the fix (re-record or revert the baseline) is obvious.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        sys.exit(f"error: {path} is not valid JSON ({err}); re-record the "
                 f"baseline or revert the file")
    if not isinstance(report, dict):
        sys.exit(f"error: {path} must hold a JSON object "
                 f"(got {type(report).__name__}); re-record the baseline")
    for section in ("values", "phases"):
        if not isinstance(report.get(section, {}), dict):
            sys.exit(f"error: {path}: \"{section}\" must be an object; "
                     f"re-record the baseline")
    flat = {}
    for key, value in report.get("values", {}).items():
        if isinstance(value, (int, float)):
            flat[key] = float(value)
    for key, value in report.get("phases", {}).items():
        if isinstance(value, (int, float)):
            flat["phase/" + key] = float(value)
    return flat


def pair_files(baseline, current):
    """Yields (label, baseline_path, current_path) pairs."""
    if os.path.isfile(current) and not os.path.exists(baseline):
        record_baseline(os.path.basename(current), current, baseline)
        return
    if os.path.isdir(baseline) != os.path.isdir(current):
        sys.exit("error: BASELINE and CURRENT must both be files or both "
                 "be directories")
    if not os.path.isdir(baseline):
        yield os.path.basename(current), baseline, current
        return
    base_files = {f for f in os.listdir(baseline)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    cur_files = {f for f in os.listdir(current)
                 if f.startswith("BENCH_") and f.endswith(".json")}
    for name in sorted(base_files & cur_files):
        yield name, os.path.join(baseline, name), os.path.join(current, name)
    for name in sorted(base_files - cur_files):
        print(f"# {name}: present in baseline only, skipped")
    for name in sorted(cur_files - base_files):
        record_baseline(name, os.path.join(current, name),
                        os.path.join(baseline, name))


def is_timing(key):
    return key.startswith(REGRESSION_PREFIXES)


def compare(label, base, cur, threshold_pct):
    """Prints the diff table; returns the list of regressed timing metrics."""
    regressions = []
    keys = sorted(set(base) | set(cur))
    print(f"== {label}")
    print(f"{'metric':<58} {'baseline':>14} {'current':>14} {'delta':>9}")
    for key in keys:
        if key not in base or key not in cur:
            where = "baseline" if key in base else "current"
            print(f"{key:<58} {'(only in ' + where + ')':>38}")
            continue
        b, c = base[key], cur[key]
        if b == 0.0:
            delta = "n/a" if c != 0.0 else "+0.0%"
        else:
            delta = f"{100.0 * (c - b) / b:+.1f}%"
        flag = ""
        if is_timing(key) and b > 0.0 and (c - b) / b * 100.0 > threshold_pct:
            flag = "  REGRESSED"
            regressions.append((label, key, b, c))
        print(f"{key:<58} {b:>14.6g} {c:>14.6g} {delta:>9}{flag}")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="BENCH_*.json file or directory")
    parser.add_argument("current", help="BENCH_*.json file or directory")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="timing regression threshold in percent "
                             "(default: 25)")
    parser.add_argument("--report-only", action="store_true",
                        help="always exit 0 (CI artifact mode)")
    parser.add_argument("--gate", type=float, default=None, metavar="PCT",
                        help="gating mode: sets the threshold to PCT and "
                             "exits non-zero on regression even if "
                             "--report-only was also given")
    args = parser.parse_args()
    if args.gate is not None:
        args.threshold = args.gate
        args.report_only = False

    all_regressions = []
    compared = 0
    for label, base_path, cur_path in pair_files(args.baseline, args.current):
        all_regressions += compare(label, load_report(base_path),
                                   load_report(cur_path), args.threshold)
        compared += 1
    if compared == 0 and RECORDED[0] == 0:
        sys.exit("error: no comparable BENCH_*.json pairs found")
    if compared == 0:
        return  # Everything was freshly recorded; nothing to diff yet.

    if all_regressions:
        print(f"\n{len(all_regressions)} timing metric(s) regressed more "
              f"than {args.threshold:.1f}%:")
        for label, key, b, c in all_regressions:
            print(f"  {label}: {key}  {b:.6g} -> {c:.6g}")
        if not args.report_only:
            sys.exit(1)
        print("(report-only mode: exiting 0)")
    else:
        print(f"\nno timing regressions beyond {args.threshold:.1f}%")


if __name__ == "__main__":
    main()
