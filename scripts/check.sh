#!/usr/bin/env bash
# Local pre-merge gate, in the order the stages usually fail: mcmlint (the
# determinism/concurrency contract), the Release build + test suite, then the
# sanitizer rebuilds — ThreadSanitizer for data races in the runtime/ worker
# pool, ASan+UBSan for memory and undefined-behavior bugs.
#
# Usage: scripts/check.sh [--lint-only] [--release-only] [--tsan-only] [--asan-only]
#                         [--incremental] [--sarif PATH]
# With no flags every stage runs; flags are combinable and select exactly the
# named stages (e.g. "--lint-only --asan-only" runs lint then ASan).
# Lint-stage modifiers: --incremental reuses build/mcmlint.cache so only
# edited files are re-parsed; --sarif PATH additionally writes the findings
# as SARIF 2.1.0 for code-scanning upload.
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint=0
run_release=0
run_tsan=0
run_asan=0
lint_flags=()
expect_sarif_path=0
if [ "$#" = 0 ]; then
  run_lint=1
  run_release=1
  run_tsan=1
  run_asan=1
fi
for arg in "$@"; do
  if [ "${expect_sarif_path}" = 1 ]; then
    lint_flags+=(--sarif "${arg}")
    expect_sarif_path=0
    continue
  fi
  case "${arg}" in
    --lint-only) run_lint=1 ;;
    --release-only) run_release=1 ;;
    --tsan-only) run_tsan=1 ;;
    --asan-only) run_asan=1 ;;
    --incremental) lint_flags+=(--incremental) ;;
    --sarif) expect_sarif_path=1 ;;
    *)
      echo "usage: scripts/check.sh [--lint-only] [--release-only]" \
           "[--tsan-only] [--asan-only] [--incremental] [--sarif PATH]" >&2
      exit 2
      ;;
  esac
done
if [ "${expect_sarif_path}" = 1 ]; then
  echo "error: --sarif requires a PATH argument" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "${run_lint}" = 1 ]; then
  echo "== mcmlint: determinism/concurrency contract =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"${jobs}" --target mcmlint
  ./build/tools/mcmlint/mcmlint --root . --config tools/mcmlint/mcmlint.conf \
    --stats "${lint_flags[@]+"${lint_flags[@]}"}"
  ./build/tools/mcmlint/mcmlint --expect-dir tools/mcmlint/testdata
fi

if [ "${run_release}" = 1 ]; then
  echo "== Release build + ctest =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"${jobs}"
  ctest --test-dir build --output-on-failure -j"${jobs}"
fi

if [ "${run_tsan}" = 1 ]; then
  echo "== ThreadSanitizer build + ctest =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCMPART_TSAN=ON
  cmake --build build-tsan -j"${jobs}"
  # TSan slows execution ~5-15x; run the suite with multiple worker threads
  # so the parallel code paths are actually exercised under the sanitizer.
  MCMPART_THREADS="${MCMPART_THREADS:-4}" \
    ctest --test-dir build-tsan --output-on-failure -j2
fi

if [ "${run_asan}" = 1 ]; then
  echo "== AddressSanitizer+UBSan build + ctest =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCMPART_ASAN=ON
  cmake --build build-asan -j"${jobs}"
  # UBSan findings are fatal (-fno-sanitize-recover=undefined in
  # CMakeLists.txt), so a pass here means zero UB reports, not just zero
  # crashes.  Worker threads on so the pool's paths run sanitized too.
  MCMPART_THREADS="${MCMPART_THREADS:-4}" \
    ctest --test-dir build-asan --output-on-failure -j2
fi

echo "== check.sh: all green =="
