#!/usr/bin/env bash
# Local pre-merge gate: build + test the Release tree, then rebuild with
# ThreadSanitizer and re-run the test suite so data races in the runtime/
# worker pool (and anything scheduled on it) are caught before review.
#
# Usage: scripts/check.sh [--release-only|--tsan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

run_release=1
run_tsan=1
case "${1:-}" in
  --release-only) run_tsan=0 ;;
  --tsan-only) run_release=0 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--release-only|--tsan-only]" >&2; exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "${run_release}" = 1 ]; then
  echo "== Release build + ctest =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"${jobs}"
  ctest --test-dir build --output-on-failure -j"${jobs}"
fi

if [ "${run_tsan}" = 1 ]; then
  echo "== ThreadSanitizer build + ctest =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCMPART_TSAN=ON
  cmake --build build-tsan -j"${jobs}"
  # TSan slows execution ~5-15x; run the suite with multiple worker threads
  # so the parallel code paths are actually exercised under the sanitizer.
  MCMPART_THREADS="${MCMPART_THREADS:-4}" \
    ctest --test-dir build-tsan --output-on-failure -j2
fi

echo "== check.sh: all green =="
