// mcmpart command-line tool: generate model graphs, inspect them, partition
// them onto an MCM package from the shell, and serve partition requests as
// a daemon.
//
// Usage:
//   mcmpart --version                         print the version and exit
//   mcmpart generate <family> <out.graph>     families: mlp cnn resnet
//                                             inception rnn lstm seq2seq bert
//   mcmpart info <in.graph>                   node/edge/resource summary
//   mcmpart dot <in.graph> <out.dot>          Graphviz export
//   mcmpart partition <in.graph> [options]    search for a partition
//     --chips N        chiplets in the package            (default 36)
//     --budget B       evaluation budget                  (default 200)
//     --method M       random | sa | hillclimb | rl | zeroshot | solver
//                      (default random)
//     --model M        analytical | hwsim                 (default analytical)
//     --objective O    throughput | latency               (default throughput)
//     --seed S         RNG seed                           (default 1)
//     --deadline-ms D  soft deadline: caps the evaluation retry budget and
//                      derives a deterministic CP-solver work budget
//                      (default 0 = none)
//     --checkpoint F   warm-start rl/zeroshot from a pretrained checkpoint
//     --checkpoint-shape quick|pretrain       network shape F was written
//                      with (default quick; `mcmpart pretrain` writes
//                      pretrain-shaped checkpoints)
//     --threads N      worker threads (default: MCMPART_THREADS env,
//                      else hardware concurrency); results are identical
//                      for any N
//     --nn-threads N   intra-op parallelism of the NN kernels (default:
//                      MCMPART_NN_THREADS env, else inherit --threads);
//                      results are identical for any N
//     --eval-cache N   partition-evaluation memo-cache entries (default:
//                      MCMPART_EVAL_CACHE env, else 1024; 0 disables);
//                      results are identical with the cache on or off
//     --delta-eval 0|1 incremental (delta) partition re-scoring for the
//                      analytical model (default: MCMPART_DELTA_EVAL env,
//                      else 1); results are bit-identical on or off
//     --out FILE       write "node chip" lines of the best partition
//     --trace-out FILE    write Chrome trace-event JSON (spans)
//     --metrics-out FILE  write a metrics/run-report JSON
//   mcmpart serve [options]                   partition-service daemon
//     --socket PATH    Unix domain socket to listen on    (required)
//     --queue-depth N  admission queue depth (default:
//                      MCMPART_SERVICE_QUEUE_DEPTH env, else 128)
//     --cache N        placement-cache entries (default:
//                      MCMPART_SERVICE_CACHE env, else 256; 0 disables)
//     --executors N    concurrent batch executors         (default 2)
//     --max-batch N    micro-batch size cap               (default 8)
//     --checkpoint F / --checkpoint-shape S / --chips N
//                      pre-trained policy served to zeroshot/finetune
//                      requests (--chips must match the checkpoint)
//     --threads N / --nn-threads N    runtime pools, as for partition
//     --delta-eval 0|1 as for partition
//     --metrics-out FILE  write a RunReport after the graceful drain
//                      (includes delta_eval/fast_fraction)
//     SIGTERM/SIGINT drain gracefully: finish in-flight work, flush, exit 0.
//   mcmpart request <in.graph> [options]      one request against a daemon
//     --socket PATH    daemon socket                      (required)
//     --id ID          correlation id                     (default "cli")
//     --method/--model/--objective/--chips/--budget/--seed/--deadline-ms
//                      as for partition
//     --out FILE       write "node chip" lines of the returned placement
//   mcmpart pretrain [options]                small-scale pretraining run
//     --graphs N       training graphs from the corpus   (default 6)
//     --val-graphs N   validation graphs                 (default 2)
//     --samples N      total pretraining samples         (default 240)
//     --checkpoints N  evenly spaced weight snapshots    (default 4)
//     --chips N        chiplets in the package           (default 8)
//     --model M        analytical | hwsim (hwsim degrades to the
//                      analytical model on permanent evaluation failure)
//     --seed S / --threads N / --nn-threads N / --delta-eval 0|1
//                      as for partition
//     --checkpoint-dir DIR  save resumable state into DIR
//     --checkpoint-every K  save state every K iterations (default 1
//                      when a checkpoint dir is set)
//     --resume         restore DIR's state file before training
//     --stop-after N   stop after N iterations (deterministic
//                      interruption; used by the resume walkthrough)
//     --save-best F    after --validate, save the best checkpoint to F
//     --validate       score checkpoints on the validation graphs
//     --metrics-out FILE  write a metrics/run-report JSON
//   All options accept both "--flag value" and "--flag=value".
//   MCMPART_TRACE=<file> enables tracing for any command.
//
// Exit codes: 0 success, 1 runtime error, 2 usage error (usage goes to
// stderr in both usage cases).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "costmodel/delta_eval.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "pipeline/pretrain.h"
#include "rl/env.h"
#include "runtime/thread_pool.h"
#include "search/search.h"
#include "service/handler.h"
#include "service/server.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace {

using namespace mcm;

constexpr const char* kVersion = "0.7.0";

// Bad invocations (unknown command/option, missing value, wrong arity)
// throw UsageError: main prints the message plus the usage text to stderr
// and exits 2.  Runtime failures stay std::runtime_error and exit 1.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int Usage() {
  std::fprintf(stderr,
               "usage: mcmpart --version\n"
               "       mcmpart generate <family> <out.graph>\n"
               "       mcmpart info <in.graph>\n"
               "       mcmpart dot <in.graph> <out.dot>\n"
               "       mcmpart partition <in.graph> [--chips N] [--budget B]"
               " [--method random|sa|hillclimb|rl|zeroshot|solver]"
               " [--model analytical|hwsim]"
               " [--objective throughput|latency] [--seed S] [--deadline-ms D]"
               " [--checkpoint F] [--checkpoint-shape quick|pretrain]"
               " [--threads N] [--nn-threads N] [--eval-cache N]"
               " [--delta-eval 0|1]"
               " [--out FILE]\n"
               "       mcmpart serve --socket PATH [--queue-depth N]"
               " [--cache N] [--executors N] [--max-batch N] [--checkpoint F]"
               " [--checkpoint-shape quick|pretrain] [--chips N] [--threads N]"
               " [--nn-threads N]"
               " [--delta-eval 0|1] [--metrics-out FILE]\n"
               "       mcmpart request <in.graph> --socket PATH [--id ID]"
               " [--method M] [--model M] [--objective O] [--chips N]"
               " [--budget B] [--seed S] [--deadline-ms D] [--out FILE]\n"
               "       mcmpart pretrain [--graphs N] [--val-graphs N]"
               " [--samples N] [--checkpoints N] [--chips N]"
               " [--model analytical|hwsim] [--seed S] [--threads N]"
               " [--nn-threads N]"
               " [--delta-eval 0|1]"
               " [--checkpoint-dir DIR] [--checkpoint-every K] [--resume]"
               " [--stop-after N] [--validate] [--save-best F]"
               " [--metrics-out FILE]\n");
  return 2;
}

Graph GenerateFamily(const std::string& family) {
  if (family == "mlp") return MakeMlp("mlp", 256, {512, 512, 256}, 100);
  if (family == "cnn") return MakeCnn("cnn", CnnConfig{});
  if (family == "resnet") return MakeResNet("resnet", ResNetConfig{});
  if (family == "inception") return MakeInception("inception", InceptionConfig{});
  if (family == "rnn") return MakeRnn("rnn", 24, 128, 256, 100);
  if (family == "lstm") return MakeLstm("lstm", 12, 128, 256, 100);
  if (family == "seq2seq") return MakeSeq2Seq("seq2seq", 8, 8, 128, 256, 1000);
  if (family == "bert") return MakeBert();
  throw std::runtime_error("unknown family: " + family);
}

Graph LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return Graph::Deserialize(in);
}

// Flattens argv, splitting "--flag=value" into "--flag", "value" so both
// spellings parse identically.
std::vector<std::string> SplitFlagArgs(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  return args;
}

// CLI --method spelling -> service request mode.  "rl" is fine-tuning from
// scratch (or from --checkpoint), matching the historical CLI behavior.
service::RequestMode ModeForMethod(const std::string& method) {
  if (method == "random" || method == "sa" || method == "hillclimb") {
    return service::RequestMode::kSearch;
  }
  if (method == "rl") return service::RequestMode::kFinetune;
  if (method == "zeroshot") return service::RequestMode::kZeroShot;
  if (method == "solver") return service::RequestMode::kSolver;
  throw UsageError("unknown method: " + method);
}

std::string SerializeGraph(const Graph& graph) {
  std::ostringstream os;
  graph.Serialize(os);
  return os.str();
}

void PrintResponse(const service::PartitionResponse& response,
                   const Graph& graph, const std::string& out_path) {
  if (!response.ok) {
    throw std::runtime_error("request failed: " + response.error);
  }
  std::printf("baseline: %.4f ms\n", response.baseline_runtime_s * 1e3);
  std::printf("best improvement %.4fx (runtime %.4f ms, latency %.4f ms)\n",
              response.improvement, response.runtime_s * 1e3,
              response.latency_s * 1e3);
  if (response.cached) std::printf("served from placement cache\n");
  Partition best;
  best.assignment = response.assignment;
  best.num_chips = response.num_chips;
  std::printf("%s", DescribePartition(graph, best).c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot open " + out_path);
    SavePartition(best, out);
    std::printf("wrote best partition to %s\n", out_path.c_str());
  }
}

// Loads the warm-start policy for --checkpoint, or returns null when no
// checkpoint was requested.
std::unique_ptr<service::ServingPolicy> LoadServingPolicy(
    const std::string& path, const std::string& shape, int chips) {
  if (path.empty()) return nullptr;
  const RlConfig config = service::CheckpointShapeConfig(shape, chips);
  return std::make_unique<service::ServingPolicy>(
      service::ServingPolicy::FromFile(config, path));
}

int RunPartition(const Graph& graph, int argc, char** argv) {
  service::PartitionRequest request;
  request.id = "cli";
  request.chips = 36;
  request.budget = 200;
  std::string method = "random";
  std::string checkpoint_path;
  std::string checkpoint_shape = "quick";
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  const std::vector<std::string> args = SplitFlagArgs(argc, argv);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw UsageError("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--chips") request.chips = std::stoi(next());
    else if (arg == "--budget") request.budget = std::stoi(next());
    else if (arg == "--method") method = next();
    else if (arg == "--model") request.model = next();
    else if (arg == "--objective") request.objective = next();
    else if (arg == "--seed") request.seed = std::stoull(next());
    else if (arg == "--deadline-ms") request.deadline_ms = std::stoll(next());
    else if (arg == "--checkpoint") checkpoint_path = next();
    else if (arg == "--checkpoint-shape") checkpoint_shape = next();
    else if (arg == "--threads") SetDefaultThreadCount(std::stoi(next()));
    else if (arg == "--nn-threads") SetNnThreadCount(std::stoi(next()));
    else if (arg == "--eval-cache") SetDefaultEvalCacheCapacity(std::stoi(next()));
    else if (arg == "--delta-eval") SetDefaultDeltaEvalEnabled(std::stoi(next()));
    else if (arg == "--out") out_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--metrics-out") metrics_path = next();
    else throw UsageError("unknown option: " + arg);
  }
  request.mode = ModeForMethod(method);
  request.method =
      (method == "sa" || method == "hillclimb") ? method : "random";
  request.graph_text = SerializeGraph(graph);
  if (!trace_path.empty()) telemetry::SetTracePath(trace_path);
  telemetry::RunReport report("mcmpart_partition");
  report.SetString("method", method);
  report.SetString("model", request.model);
  report.SetString("objective", request.objective);
  report.SetValue("budget", request.budget);
  report.SetValue("chips", request.chips);

  const std::unique_ptr<service::ServingPolicy> warm =
      LoadServingPolicy(checkpoint_path, checkpoint_shape, request.chips);

  // The exact same function the daemon executes: a served placement for
  // this request is bit-identical to this offline run (handler.h).
  std::unique_ptr<telemetry::PhaseTimer> timer =
      std::make_unique<telemetry::PhaseTimer>(report, "execute");
  const service::PartitionResponse response =
      service::ExecutePartitionRequest(request, warm.get());
  timer.reset();

  PrintResponse(response, graph, out_path);
  report.SetValue("best_improvement", response.improvement);
  if (!metrics_path.empty() && report.Write(metrics_path)) {
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  // The trace itself is flushed by main() via WriteTraceIfConfigured().
  if (!trace_path.empty()) {
    std::printf("writing trace to %s\n", trace_path.c_str());
  }
  return 0;
}

int RunServe(int argc, char** argv) {
  service::ServerConfig config;
  int chips = 8;
  std::string checkpoint_path;
  std::string checkpoint_shape = "pretrain";
  const std::vector<std::string> args = SplitFlagArgs(argc, argv);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw UsageError("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--socket") config.socket_path = next();
    else if (arg == "--queue-depth") config.queue_depth = std::stoi(next());
    else if (arg == "--cache") config.cache_capacity = std::stoi(next());
    else if (arg == "--executors") config.executors = std::stoi(next());
    else if (arg == "--max-batch") config.max_batch = std::stoi(next());
    else if (arg == "--chips") chips = std::stoi(next());
    else if (arg == "--checkpoint") checkpoint_path = next();
    else if (arg == "--checkpoint-shape") checkpoint_shape = next();
    else if (arg == "--threads") SetDefaultThreadCount(std::stoi(next()));
    else if (arg == "--nn-threads") SetNnThreadCount(std::stoi(next()));
    else if (arg == "--delta-eval") SetDefaultDeltaEvalEnabled(std::stoi(next()));
    else if (arg == "--metrics-out") config.report_path = next();
    else throw UsageError("unknown option: " + arg);
  }
  if (config.socket_path.empty()) {
    throw UsageError("serve requires --socket PATH");
  }
  const std::unique_ptr<service::ServingPolicy> warm =
      LoadServingPolicy(checkpoint_path, checkpoint_shape, chips);

  service::Server server(config, warm.get());
  server.Start();
  server.InstallSignalHandlers();
  server.Run();
  return 0;
}

int RunRequest(const Graph& graph, int argc, char** argv) {
  service::PartitionRequest request;
  request.id = "cli";
  request.chips = 36;
  request.budget = 200;
  std::string method = "random";
  std::string socket_path;
  std::string out_path;
  const std::vector<std::string> args = SplitFlagArgs(argc, argv);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw UsageError("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--id") request.id = next();
    else if (arg == "--chips") request.chips = std::stoi(next());
    else if (arg == "--budget") request.budget = std::stoi(next());
    else if (arg == "--method") method = next();
    else if (arg == "--model") request.model = next();
    else if (arg == "--objective") request.objective = next();
    else if (arg == "--seed") request.seed = std::stoull(next());
    else if (arg == "--deadline-ms") request.deadline_ms = std::stoll(next());
    else if (arg == "--out") out_path = next();
    else throw UsageError("unknown option: " + arg);
  }
  if (socket_path.empty()) {
    throw UsageError("request requires --socket PATH");
  }
  request.mode = ModeForMethod(method);
  request.method =
      (method == "sa" || method == "hillclimb") ? method : "random";
  request.graph_text = SerializeGraph(graph);

  service::ServiceClient client(socket_path);
  const service::PartitionResponse response = client.Call(request);
  if (!response.ok && response.retry_after_ms > 0) {
    throw std::runtime_error("rejected (retry after " +
                             std::to_string(response.retry_after_ms) +
                             " ms): " + response.error);
  }
  PrintResponse(response, graph, out_path);
  return 0;
}

int RunPretrain(int argc, char** argv) {
  int train_graphs = 6;
  int val_graphs = 2;
  int samples = 240;
  int checkpoints = 4;
  int chips = 8;
  std::string model_name = "analytical";
  std::uint64_t seed = 1;
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  bool resume = false;
  int stop_after = 0;
  bool validate = false;
  std::string save_best_path;
  std::string trace_path;
  std::string metrics_path;
  const std::vector<std::string> args = SplitFlagArgs(argc, argv);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw UsageError("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--graphs") train_graphs = std::stoi(next());
    else if (arg == "--val-graphs") val_graphs = std::stoi(next());
    else if (arg == "--samples") samples = std::stoi(next());
    else if (arg == "--checkpoints") checkpoints = std::stoi(next());
    else if (arg == "--chips") chips = std::stoi(next());
    else if (arg == "--model") model_name = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--threads") SetDefaultThreadCount(std::stoi(next()));
    else if (arg == "--nn-threads") SetNnThreadCount(std::stoi(next()));
    else if (arg == "--delta-eval") SetDefaultDeltaEvalEnabled(std::stoi(next()));
    else if (arg == "--checkpoint-dir") checkpoint_dir = next();
    else if (arg == "--checkpoint-every") checkpoint_every = std::stoi(next());
    else if (arg == "--resume") resume = true;
    else if (arg == "--stop-after") stop_after = std::stoi(next());
    else if (arg == "--validate") validate = true;
    else if (arg == "--save-best") save_best_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--metrics-out") metrics_path = next();
    else throw UsageError("unknown option: " + arg);
  }
  if (!trace_path.empty()) telemetry::SetTracePath(trace_path);
  telemetry::RunReport report("mcmpart_pretrain");
  report.SetString("model", model_name);
  report.SetValue("samples", samples);
  report.SetValue("chips", chips);

  // A small-but-real configuration: the paper's shapes scaled down so smoke
  // runs (CI's fault-smoke job, the resume walkthrough) finish in seconds.
  // This is the "pretrain" shape of service::CheckpointShapeConfig; keep
  // the two in sync so serve/partition can reload saved checkpoints.
  PretrainConfig config;
  config.rl = service::CheckpointShapeConfig("pretrain", chips);
  config.rl.seed = seed + 1;
  config.total_samples = samples;
  config.num_checkpoints = checkpoints;
  config.seed = seed;
  config.checkpoint_dir = checkpoint_dir;
  config.checkpoint_every =
      checkpoint_every > 0 ? checkpoint_every
                           : (checkpoint_dir.empty() ? 0 : 1);
  config.resume = resume;
  config.stop_after_iterations = stop_after;

  // Small corpus graphs keep context construction and rollouts cheap.
  std::vector<Graph> corpus = MakeCorpus();
  std::vector<Graph> train, val;
  for (Graph& graph : corpus) {
    if (graph.NumNodes() >= 80) continue;
    if (static_cast<int>(train.size()) < train_graphs) {
      train.push_back(std::move(graph));
    } else if (static_cast<int>(val.size()) < val_graphs) {
      val.push_back(std::move(graph));
    } else {
      break;
    }
  }
  if (static_cast<int>(train.size()) < train_graphs || train.empty()) {
    throw std::runtime_error("not enough small corpus graphs for --graphs");
  }

  AnalyticalCostModel analytical{McmConfig{}};
  std::unique_ptr<HardwareSim> hwsim;
  CostModel* primary = &analytical;
  CostModel* fallback = nullptr;
  if (model_name == "hwsim") {
    hwsim = std::make_unique<HardwareSim>();
    primary = hwsim.get();
    fallback = &analytical;  // Graceful degradation target.
  } else if (model_name != "analytical") {
    throw std::runtime_error("unknown model: " + model_name);
  }

  PretrainPipeline pipeline(config, *primary, fallback);
  std::unique_ptr<telemetry::PhaseTimer> train_timer =
      std::make_unique<telemetry::PhaseTimer>(report, "train");
  std::vector<Checkpoint> emitted = pipeline.Train(train);
  train_timer.reset();
  const int seen = emitted.empty() ? 0 : emitted.back().samples_seen;
  std::printf("pretrain (%s): %zu checkpoints, %d samples\n",
              model_name.c_str(), emitted.size(), seen);
  report.SetValue("checkpoints_emitted",
                  static_cast<double>(emitted.size()));
  report.SetValue("samples_seen", seen);
  // Fast-path hit rate of the incremental evaluator; the underlying
  // costmodel/delta_* counters land in the metrics snapshot automatically.
  report.SetValue("delta_eval/fast_fraction", DeltaEvalFastFraction());

  if (validate && !emitted.empty() && !val.empty()) {
    std::unique_ptr<telemetry::PhaseTimer> validate_timer =
        std::make_unique<telemetry::PhaseTimer>(report, "validate");
    const int best = pipeline.Validate(emitted, val);
    validate_timer.reset();
    const Checkpoint& chosen = emitted[static_cast<std::size_t>(best)];
    std::printf(
        "best checkpoint: id %d (zero-shot %.4fx, fine-tune %.4fx)\n",
        chosen.id, chosen.zeroshot_score, chosen.finetune_score);
    report.SetValue("best_checkpoint", chosen.id);
    report.SetValue("best_finetune_score", chosen.finetune_score);
    if (!save_best_path.empty()) {
      PretrainPipeline::SaveCheckpointFile(chosen, config.rl, save_best_path);
      std::printf("wrote best checkpoint to %s\n", save_best_path.c_str());
    }
  } else if (!save_best_path.empty()) {
    throw UsageError("--save-best requires --validate (and a non-empty run)");
  }
  if (!metrics_path.empty() && report.Write(metrics_path)) {
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::printf("writing trace to %s\n", trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("mcmpart %s\n", kVersion);
    return 0;
  }
  mcm::telemetry::InitTelemetryFromEnv();
  mcm::telemetry::RegisterStandardMetrics();
  try {
    if (command == "generate" && argc == 4) {
      const Graph graph = GenerateFamily(argv[2]);
      std::ofstream out(argv[3]);
      if (!out) throw std::runtime_error(std::string("cannot open ") + argv[3]);
      graph.Serialize(out);
      std::printf("wrote %s: %d nodes, %d edges\n", argv[3], graph.NumNodes(),
                  graph.NumEdges());
      return 0;
    }
    if (command == "info" && argc == 3) {
      const Graph graph = LoadGraph(argv[2]);
      std::printf("name:        %s\n", graph.name().c_str());
      std::printf("nodes/edges: %d / %d\n", graph.NumNodes(), graph.NumEdges());
      std::printf("compute:     %.3f GFLOPs\n", graph.TotalFlops() / 1e9);
      std::printf("weights:     %.1f MB\n", graph.TotalParamBytes() / 1e6);
      std::printf("activations: %.1f MB total\n",
                  graph.TotalOutputBytes() / 1e6);
      std::printf("depth:       %d\n", graph.CriticalPathLength());
      return 0;
    }
    if (command == "dot" && argc == 4) {
      const Graph graph = LoadGraph(argv[2]);
      std::ofstream out(argv[3]);
      if (!out) throw std::runtime_error(std::string("cannot open ") + argv[3]);
      graph.WriteDot(out);
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    if (command == "partition" && argc >= 3) {
      const Graph graph = LoadGraph(argv[2]);
      const int result = RunPartition(graph, argc - 3, argv + 3);
      // Flushes the MCMPART_TRACE-configured path (no-op when unset; the
      // --trace-out path was already written inside RunPartition).
      mcm::telemetry::WriteTraceIfConfigured();
      return result;
    }
    if (command == "serve") {
      const int result = RunServe(argc - 2, argv + 2);
      mcm::telemetry::WriteTraceIfConfigured();
      return result;
    }
    if (command == "request" && argc >= 3) {
      const Graph graph = LoadGraph(argv[2]);
      return RunRequest(graph, argc - 3, argv + 3);
    }
    if (command == "pretrain") {
      const int result = RunPretrain(argc - 2, argv + 2);
      mcm::telemetry::WriteTraceIfConfigured();
      return result;
    }
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return Usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "error: unknown command: %s\n", command.c_str());
  return Usage();
}
