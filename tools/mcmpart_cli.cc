// mcmpart command-line tool: generate model graphs, inspect them, and
// partition them onto an MCM package from the shell.
//
// Usage:
//   mcmpart generate <family> <out.graph>     families: mlp cnn resnet
//                                             inception rnn lstm seq2seq bert
//   mcmpart info <in.graph>                   node/edge/resource summary
//   mcmpart dot <in.graph> <out.dot>          Graphviz export
//   mcmpart partition <in.graph> [options]    search for a partition
//     --chips N        chiplets in the package            (default 36)
//     --budget B       evaluation budget                  (default 200)
//     --method M       random | sa | rl                   (default random)
//     --model M        analytical | hwsim                 (default analytical)
//     --objective O    throughput | latency               (default throughput)
//     --seed S         RNG seed                           (default 1)
//     --threads N      worker threads (default: MCMPART_THREADS env,
//                      else hardware concurrency); results are identical
//                      for any N
//     --eval-cache N   partition-evaluation memo-cache entries (default:
//                      MCMPART_EVAL_CACHE env, else 1024; 0 disables);
//                      results are identical with the cache on or off
//     --out FILE       write "node chip" lines of the best partition
//     --trace-out FILE    write Chrome trace-event JSON (spans)
//     --metrics-out FILE  write a metrics/run-report JSON
//   mcmpart pretrain [options]                small-scale pretraining run
//     --graphs N       training graphs from the corpus   (default 6)
//     --val-graphs N   validation graphs                 (default 2)
//     --samples N      total pretraining samples         (default 240)
//     --checkpoints N  evenly spaced weight snapshots    (default 4)
//     --chips N        chiplets in the package           (default 8)
//     --model M        analytical | hwsim (hwsim degrades to the
//                      analytical model on permanent evaluation failure)
//     --seed S / --threads N    as for partition
//     --checkpoint-dir DIR  save resumable state into DIR
//     --checkpoint-every K  save state every K iterations (default 1
//                      when a checkpoint dir is set)
//     --resume         restore DIR's state file before training
//     --stop-after N   stop after N iterations (deterministic
//                      interruption; used by the resume walkthrough)
//     --validate       score checkpoints on the validation graphs
//     --metrics-out FILE  write a metrics/run-report JSON
//   All options accept both "--flag value" and "--flag=value".
//   MCMPART_TRACE=<file> enables tracing for any command.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "pipeline/pretrain.h"
#include "rl/env.h"
#include "runtime/thread_pool.h"
#include "search/search.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace {

using namespace mcm;

int Usage() {
  std::fprintf(stderr,
               "usage: mcmpart generate <family> <out.graph>\n"
               "       mcmpart info <in.graph>\n"
               "       mcmpart dot <in.graph> <out.dot>\n"
               "       mcmpart partition <in.graph> [--chips N] [--budget B]"
               " [--method random|sa|rl] [--model analytical|hwsim]"
               " [--objective throughput|latency] [--seed S] [--threads N]"
               " [--eval-cache N] [--out FILE]\n"
               "       mcmpart pretrain [--graphs N] [--val-graphs N]"
               " [--samples N] [--checkpoints N] [--chips N]"
               " [--model analytical|hwsim] [--seed S] [--threads N]"
               " [--checkpoint-dir DIR] [--checkpoint-every K] [--resume]"
               " [--stop-after N] [--validate] [--metrics-out FILE]\n");
  return 2;
}

Graph GenerateFamily(const std::string& family) {
  if (family == "mlp") return MakeMlp("mlp", 256, {512, 512, 256}, 100);
  if (family == "cnn") return MakeCnn("cnn", CnnConfig{});
  if (family == "resnet") return MakeResNet("resnet", ResNetConfig{});
  if (family == "inception") return MakeInception("inception", InceptionConfig{});
  if (family == "rnn") return MakeRnn("rnn", 24, 128, 256, 100);
  if (family == "lstm") return MakeLstm("lstm", 12, 128, 256, 100);
  if (family == "seq2seq") return MakeSeq2Seq("seq2seq", 8, 8, 128, 256, 1000);
  if (family == "bert") return MakeBert();
  throw std::runtime_error("unknown family: " + family);
}

Graph LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return Graph::Deserialize(in);
}

// Flattens argv, splitting "--flag=value" into "--flag", "value" so both
// spellings parse identically.
std::vector<std::string> SplitFlagArgs(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  return args;
}

int RunPartition(const Graph& graph, int argc, char** argv) {
  int chips = 36;
  int budget = 200;
  std::string method = "random";
  std::string model_name = "analytical";
  std::string objective_name = "throughput";
  std::uint64_t seed = 1;
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  const std::vector<std::string> args = SplitFlagArgs(argc, argv);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--chips") chips = std::stoi(next());
    else if (arg == "--budget") budget = std::stoi(next());
    else if (arg == "--method") method = next();
    else if (arg == "--model") model_name = next();
    else if (arg == "--objective") objective_name = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--threads") SetDefaultThreadCount(std::stoi(next()));
    else if (arg == "--eval-cache") SetDefaultEvalCacheCapacity(std::stoi(next()));
    else if (arg == "--out") out_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--metrics-out") metrics_path = next();
    else throw std::runtime_error("unknown option: " + arg);
  }
  if (!trace_path.empty()) telemetry::SetTracePath(trace_path);
  telemetry::RunReport report("mcmpart_partition");
  report.SetString("method", method);
  report.SetString("model", model_name);
  report.SetString("objective", objective_name);
  report.SetValue("budget", budget);
  report.SetValue("chips", chips);

  std::unique_ptr<CostModel> model;
  if (model_name == "analytical") {
    model = std::make_unique<AnalyticalCostModel>(McmConfig{});
  } else if (model_name == "hwsim") {
    model = std::make_unique<HardwareSim>();
  } else {
    throw std::runtime_error("unknown model: " + model_name);
  }
  const PartitionEnv::Objective objective =
      objective_name == "latency" ? PartitionEnv::Objective::kLatency
                                  : PartitionEnv::Objective::kThroughput;

  GraphContext context(graph, chips);
  Rng rng(seed);
  std::unique_ptr<telemetry::PhaseTimer> baseline_timer =
      std::make_unique<telemetry::PhaseTimer>(report, "baseline");
  const BaselineResult baseline =
      ComputeHeuristicBaseline(graph, *model, context.solver(), rng);
  baseline_timer.reset();
  if (!baseline.eval.valid) {
    throw std::runtime_error("heuristic baseline invalid on this model");
  }
  const double anchor = objective == PartitionEnv::Objective::kLatency
                            ? baseline.eval.latency_s
                            : baseline.eval.runtime_s;
  PartitionEnv env(graph, *model, anchor, objective);
  std::printf("baseline (%s, %s): %.4f ms\n", model_name.c_str(),
              objective_name.c_str(), anchor * 1e3);

  std::unique_ptr<SearchStrategy> search;
  std::unique_ptr<PolicyNetwork> policy;  // Owns RL policy when used.
  if (method == "random") {
    search = std::make_unique<RandomSearch>(Rng(seed + 1));
  } else if (method == "sa") {
    search = std::make_unique<SimulatedAnnealing>(Rng(seed + 1));
  } else if (method == "rl") {
    RlConfig config = RlConfig::Quick();
    config.num_chips = chips;
    config.seed = seed + 2;
    policy = std::make_unique<PolicyNetwork>(config);
    search = std::make_unique<RlSearch>(*policy, Rng(seed + 1));
  } else {
    throw std::runtime_error("unknown method: " + method);
  }

  std::unique_ptr<telemetry::PhaseTimer> search_timer =
      std::make_unique<telemetry::PhaseTimer>(report, "search");
  const SearchTrace trace = search->Run(context, env, budget);
  search_timer.reset();
  const double best_improvement =
      trace.BestWithin(static_cast<std::size_t>(budget));
  std::printf("%s: best improvement %.4fx after %d evaluations\n",
              search->name().c_str(), best_improvement, budget);
  report.SetValue("best_improvement", best_improvement);

  const Partition& best =
      env.has_best() ? env.best_partition() : baseline.partition;
  std::printf("%s", DescribePartition(graph, best).c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot open " + out_path);
    SavePartition(best, out);
    std::printf("wrote best partition to %s\n", out_path.c_str());
  }
  if (!metrics_path.empty() && report.Write(metrics_path)) {
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  // The trace itself is flushed by main() via WriteTraceIfConfigured().
  if (!trace_path.empty()) {
    std::printf("writing trace to %s\n", trace_path.c_str());
  }
  return 0;
}

int RunPretrain(int argc, char** argv) {
  int train_graphs = 6;
  int val_graphs = 2;
  int samples = 240;
  int checkpoints = 4;
  int chips = 8;
  std::string model_name = "analytical";
  std::uint64_t seed = 1;
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  bool resume = false;
  int stop_after = 0;
  bool validate = false;
  std::string trace_path;
  std::string metrics_path;
  const std::vector<std::string> args = SplitFlagArgs(argc, argv);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--graphs") train_graphs = std::stoi(next());
    else if (arg == "--val-graphs") val_graphs = std::stoi(next());
    else if (arg == "--samples") samples = std::stoi(next());
    else if (arg == "--checkpoints") checkpoints = std::stoi(next());
    else if (arg == "--chips") chips = std::stoi(next());
    else if (arg == "--model") model_name = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--threads") SetDefaultThreadCount(std::stoi(next()));
    else if (arg == "--checkpoint-dir") checkpoint_dir = next();
    else if (arg == "--checkpoint-every") checkpoint_every = std::stoi(next());
    else if (arg == "--resume") resume = true;
    else if (arg == "--stop-after") stop_after = std::stoi(next());
    else if (arg == "--validate") validate = true;
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--metrics-out") metrics_path = next();
    else throw std::runtime_error("unknown option: " + arg);
  }
  if (!trace_path.empty()) telemetry::SetTracePath(trace_path);
  telemetry::RunReport report("mcmpart_pretrain");
  report.SetString("model", model_name);
  report.SetValue("samples", samples);
  report.SetValue("chips", chips);

  // A small-but-real configuration: the paper's shapes scaled down so smoke
  // runs (CI's fault-smoke job, the resume walkthrough) finish in seconds.
  PretrainConfig config;
  config.rl.num_chips = chips;
  config.rl.gnn_layers = 2;
  config.rl.hidden_dim = 16;
  config.rl.rollouts_per_update = 6;
  config.rl.epochs = 2;
  config.rl.minibatches = 2;
  config.rl.seed = seed + 1;
  config.total_samples = samples;
  config.num_checkpoints = checkpoints;
  config.seed = seed;
  config.checkpoint_dir = checkpoint_dir;
  config.checkpoint_every =
      checkpoint_every > 0 ? checkpoint_every
                           : (checkpoint_dir.empty() ? 0 : 1);
  config.resume = resume;
  config.stop_after_iterations = stop_after;

  // Small corpus graphs keep context construction and rollouts cheap.
  std::vector<Graph> corpus = MakeCorpus();
  std::vector<Graph> train, val;
  for (Graph& graph : corpus) {
    if (graph.NumNodes() >= 80) continue;
    if (static_cast<int>(train.size()) < train_graphs) {
      train.push_back(std::move(graph));
    } else if (static_cast<int>(val.size()) < val_graphs) {
      val.push_back(std::move(graph));
    } else {
      break;
    }
  }
  if (static_cast<int>(train.size()) < train_graphs || train.empty()) {
    throw std::runtime_error("not enough small corpus graphs for --graphs");
  }

  AnalyticalCostModel analytical{McmConfig{}};
  std::unique_ptr<HardwareSim> hwsim;
  CostModel* primary = &analytical;
  CostModel* fallback = nullptr;
  if (model_name == "hwsim") {
    hwsim = std::make_unique<HardwareSim>();
    primary = hwsim.get();
    fallback = &analytical;  // Graceful degradation target.
  } else if (model_name != "analytical") {
    throw std::runtime_error("unknown model: " + model_name);
  }

  PretrainPipeline pipeline(config, *primary, fallback);
  std::unique_ptr<telemetry::PhaseTimer> train_timer =
      std::make_unique<telemetry::PhaseTimer>(report, "train");
  std::vector<Checkpoint> emitted = pipeline.Train(train);
  train_timer.reset();
  const int seen = emitted.empty() ? 0 : emitted.back().samples_seen;
  std::printf("pretrain (%s): %zu checkpoints, %d samples\n",
              model_name.c_str(), emitted.size(), seen);
  report.SetValue("checkpoints_emitted",
                  static_cast<double>(emitted.size()));
  report.SetValue("samples_seen", seen);

  if (validate && !emitted.empty() && !val.empty()) {
    std::unique_ptr<telemetry::PhaseTimer> validate_timer =
        std::make_unique<telemetry::PhaseTimer>(report, "validate");
    const int best = pipeline.Validate(emitted, val);
    validate_timer.reset();
    const Checkpoint& chosen = emitted[static_cast<std::size_t>(best)];
    std::printf(
        "best checkpoint: id %d (zero-shot %.4fx, fine-tune %.4fx)\n",
        chosen.id, chosen.zeroshot_score, chosen.finetune_score);
    report.SetValue("best_checkpoint", chosen.id);
    report.SetValue("best_finetune_score", chosen.finetune_score);
  }
  if (!metrics_path.empty() && report.Write(metrics_path)) {
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::printf("writing trace to %s\n", trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  mcm::telemetry::InitTelemetryFromEnv();
  mcm::telemetry::RegisterStandardMetrics();
  const std::string command = argv[1];
  try {
    if (command == "generate" && argc == 4) {
      const Graph graph = GenerateFamily(argv[2]);
      std::ofstream out(argv[3]);
      if (!out) throw std::runtime_error(std::string("cannot open ") + argv[3]);
      graph.Serialize(out);
      std::printf("wrote %s: %d nodes, %d edges\n", argv[3], graph.NumNodes(),
                  graph.NumEdges());
      return 0;
    }
    if (command == "info" && argc == 3) {
      const Graph graph = LoadGraph(argv[2]);
      std::printf("name:        %s\n", graph.name().c_str());
      std::printf("nodes/edges: %d / %d\n", graph.NumNodes(), graph.NumEdges());
      std::printf("compute:     %.3f GFLOPs\n", graph.TotalFlops() / 1e9);
      std::printf("weights:     %.1f MB\n", graph.TotalParamBytes() / 1e6);
      std::printf("activations: %.1f MB total\n",
                  graph.TotalOutputBytes() / 1e6);
      std::printf("depth:       %d\n", graph.CriticalPathLength());
      return 0;
    }
    if (command == "dot" && argc == 4) {
      const Graph graph = LoadGraph(argv[2]);
      std::ofstream out(argv[3]);
      if (!out) throw std::runtime_error(std::string("cannot open ") + argv[3]);
      graph.WriteDot(out);
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    if (command == "partition" && argc >= 3) {
      const Graph graph = LoadGraph(argv[2]);
      const int result = RunPartition(graph, argc - 3, argv + 3);
      // Flushes the MCMPART_TRACE-configured path (no-op when unset; the
      // --trace-out path was already written inside RunPartition).
      mcm::telemetry::WriteTraceIfConfigured();
      return result;
    }
    if (command == "pretrain") {
      const int result = RunPretrain(argc - 2, argv + 2);
      mcm::telemetry::WriteTraceIfConfigured();
      return result;
    }
    mcm::telemetry::WriteTraceIfConfigured();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
