// mcmlint v2's flow-aware rules.  They run on the cross-TU index from
// index.h (one FileIndex per scanned file, cached or freshly parsed):
//
//   mcm-nondet-reach     Every function carrying "// MCM_CONTRACT(
//                        deterministic)" must not reach a nondeterminism
//                        source (rand, random_device, raw clock reads,
//                        unordered-container iteration, pointer-keyed
//                        ordering, thread ids) through any chain of call
//                        edges.  A NOLINT(mcm-nondet-reach) on a call line
//                        sanitizes that edge; "// mcmlint: order-insensitive"
//                        sanitizes an unordered-iteration source.
//   mcm-guard-check      A variable annotated "// mcmlint: guarded-by(<mu>)"
//                        may only be touched by functions that acquire <mu>
//                        themselves, or whose every caller (transitively)
//                        does.  Call-graph aware so lock-then-delegate
//                        helpers ("DrainLocked()") do not need annotations.
//                        Annotations in headers bind their name tree-wide
//                        (class members are touched from other TUs); ones
//                        in a .cc bind only refs in that file, so an
//                        unrelated same-named local elsewhere stays clean.
//   mcm-handler-safety   Functions carrying "// MCM_CONTRACT(signal-safe)"
//                        (signal handlers, the SIGTERM drain trigger) must
//                        not reach allocation, locking, or blocking calls
//                        (sleeps, waits, stdio) through any call chain.
//
// Resolution model: overload sets are merged per name; qualified calls
// ("Server::Run", "telemetry::MonotonicSeconds") resolve to definitions
// whose scope-qualified name ends with the written chain; member and
// unqualified calls resolve by last component alone.  Two pruning passes
// keep the merge honest: edges into bench/ or tools/ are dropped unless the
// caller lives in the same tree (the build has no such dependency), and
// when any candidate definition accepts the call's argument count, the
// arity-incompatible ones are dropped (so a 3-argument "search->Run" never
// lands on a zero-parameter event loop).  Both passes only ever *narrow* an
// over-approximation -- if no candidate is arity-compatible, all are kept.
// The result still over-approximates the real call graph, which is the
// right bias for a contract checker; per-edge NOLINT is the escape hatch
// when a merged name drags in an unrelated callee.
//
// All three rules self-filter suppression from the index (signature-line
// NOLINT disables a contract or a guard finding for that function; call- and
// op-line NOLINTs sanitize edges and ops) because cached files have no
// SourceFile to consult at diagnosis time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "index.h"

namespace mcmlint {

// Runs mcm-nondet-reach, mcm-guard-check, and mcm-handler-safety over the
// whole-tree index.  `files` maps relative path -> FileIndex; iteration
// order (sorted paths) makes the output deterministic.
void RunFlowRules(const std::map<std::string, FileIndex>& files,
                  std::vector<Diagnostic>* diags);

}  // namespace mcmlint
