// SARIF 2.1.0 output for CI annotation.
//
// Emits the minimal schema-valid document GitHub code scanning consumes:
// one run, a tool.driver with the full rule catalog (so every result's
// ruleId resolves), and one result per diagnostic with a physicalLocation
// (artifactLocation.uri is the root-relative path mcmlint already reports,
// region.startLine the 1-based line).  Everything is hand-serialized --
// the only JSON feature needed is string escaping.
#pragma once

#include <string>
#include <vector>

#include "rules.h"

namespace mcmlint {

// Writes `diags` as SARIF 2.1.0 to `path`.  Returns false (with a message
// on stderr) when the file cannot be written.
bool WriteSarif(const std::string& path,
                const std::vector<Diagnostic>& diags);

}  // namespace mcmlint
