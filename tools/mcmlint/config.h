// mcmlint's configuration: which trees to scan and how each rule is scoped.
//
// The config is a flat "key = value" file (see mcmlint.conf) so later PRs can
// retune file sets, extend the banned list, or gate new rules without
// touching the linter's code.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mcmlint {

struct RuleConfig {
  bool enabled = true;
  // Paths (relative to the scan root, prefix-matched) where the rule is
  // switched off.  Directories should end with '/'.
  std::vector<std::string> allow;
  // When non-empty, the rule only runs under these prefixes.
  std::vector<std::string> only;
  // Rule-specific settings, e.g. "readme", "list", "functions".
  std::map<std::string, std::string> extra;
};

struct Config {
  std::vector<std::string> scan_dirs = {"src", "tools", "bench"};
  std::vector<std::string> extensions = {".cc", ".h"};
  std::vector<std::string> excludes;  // prefix-matched relative paths
  std::map<std::string, RuleConfig> rules;

  const RuleConfig& Rule(const std::string& name) const;
  // True when `rule` should run on the file at `rel_path`.
  bool InScope(const std::string& rule, const std::string& rel_path) const;
};

// Parses the config file.  Returns false (with a message on stderr) when the
// file cannot be read or contains a malformed line.
bool LoadConfig(const std::string& path, Config* config);

// Splits a whitespace-separated list value.
std::vector<std::string> SplitList(const std::string& value);

}  // namespace mcmlint
