#include "config.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mcmlint {

namespace {

std::string Trim(const std::string& s) {
  std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::vector<std::string> SplitList(const std::string& value) {
  std::vector<std::string> out;
  std::istringstream stream(value);
  std::string item;
  while (stream >> item) out.push_back(item);
  return out;
}

const RuleConfig& Config::Rule(const std::string& name) const {
  static const RuleConfig kDefault;
  const auto it = rules.find(name);
  return it == rules.end() ? kDefault : it->second;
}

bool Config::InScope(const std::string& rule,
                     const std::string& rel_path) const {
  const RuleConfig& rc = Rule(rule);
  if (!rc.enabled) return false;
  if (!rc.only.empty()) {
    bool inside = false;
    for (const std::string& prefix : rc.only) {
      if (StartsWith(rel_path, prefix)) inside = true;
    }
    if (!inside) return false;
  }
  for (const std::string& prefix : rc.allow) {
    if (StartsWith(rel_path, prefix)) return false;
  }
  return true;
}

bool LoadConfig(const std::string& path, Config* config) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mcmlint: cannot open config %s\n", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "mcmlint: %s:%d: expected 'key = value'\n",
                   path.c_str(), line_no);
      return false;
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key == "scan.dirs") {
      config->scan_dirs = SplitList(value);
    } else if (key == "scan.extensions") {
      config->extensions = SplitList(value);
    } else if (key == "scan.exclude") {
      config->excludes = SplitList(value);
    } else if (StartsWith(key, "rule.")) {
      // rule.<name>.<setting>
      const std::size_t dot = key.find('.', 5);
      if (dot == std::string::npos) {
        std::fprintf(stderr, "mcmlint: %s:%d: bad rule key '%s'\n",
                     path.c_str(), line_no, key.c_str());
        return false;
      }
      RuleConfig& rc = config->rules[key.substr(5, dot - 5)];
      const std::string setting = key.substr(dot + 1);
      if (setting == "enabled") {
        rc.enabled = value != "false" && value != "0";
      } else if (setting == "allow") {
        rc.allow = SplitList(value);
      } else if (setting == "only") {
        rc.only = SplitList(value);
      } else {
        rc.extra[setting] = value;
      }
    } else {
      std::fprintf(stderr, "mcmlint: %s:%d: unknown key '%s'\n", path.c_str(),
                   line_no, key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace mcmlint
