// mcmlint's rule set.  Every rule enforces a piece of the repo's
// determinism/concurrency contract (docs/ARCHITECTURE.md, "Static analysis &
// determinism contract"):
//
//   mcm-nondeterminism     no rand()/srand/random_device, no wall or
//                          monotonic clock reads, no argless time() outside
//                          the telemetry allowlist.  Reward and search code
//                          must draw randomness from mcm::Rng and time from
//                          telemetry::MonotonicSeconds().
//   mcm-unordered-iteration  no range-for / begin() iteration over
//                          std::unordered_{map,set} in reward/search-critical
//                          dirs unless annotated "// mcmlint:
//                          order-insensitive" — hash-order is not part of the
//                          determinism contract.
//   mcm-raw-thread         no std::thread/std::jthread/std::async outside
//                          src/runtime/; parallelism goes through the worker
//                          pool so the ordered-commit discipline holds.
//   mcm-mutable-static     function/namespace statics (and g_* namespace
//                          globals) must be const, constexpr, atomic, a
//                          reference, thread_local, or carry "// mcmlint:
//                          guarded-by(<mutex>)".
//   mcm-env-registry       every GetEnv*/getenv/ScaledInt name must appear in
//                          the README env-var table, and vice versa.
//   mcm-banned             functions listed in banned.txt (strtok, gets,
//                          sprintf, ...) may not be called.
//   mcm-float-unordered    no floating-point accumulation (+=, -=, x = x + ...)
//                          inside a loop over an unordered container: FP
//                          addition is not associative, so even an
//                          order-insensitive annotation does not make the
//                          result hash-order independent.
//
// The flow-aware rules (mcm-nondet-reach, mcm-guard-check,
// mcm-handler-safety) live in flow_rules.h; they run on the cross-TU index
// from index.h rather than on a single token stream.
//
// Rules run over the token stream from lexer.h; they are heuristic by
// design.  Known limits: mcm-mutable-static only sees declarations introduced
// by the `static` keyword or named g_*, and alias tracking in
// mcm-unordered-iteration is file-local and one level deep.  "// NOLINT(mcm-
// <rule>)" on the diagnostic line is the universal escape hatch.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace mcmlint {

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (path != other.path) return path < other.path;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

// One env-var read site, feeding the cross-file mcm-env-registry diff.
struct EnvRead {
  std::string path;
  int line = 0;
  std::string name;
};

// One documented env var: a first-cell entry of the README's table.
struct EnvDoc {
  int line = 0;
  std::string name;
};

// One for-loop that iterates an unordered container.  Shared between
// mcm-unordered-iteration (which respects `annotated`), mcm-float-unordered
// (which does not -- FP accumulation is unsafe even when iteration effects
// commute), and the index's nondeterminism facts.
struct UnorderedIterHit {
  int first_line = 0;      // the `for` keyword's line
  int last_line = 0;       // last line of the loop header
  std::size_t header_end_tok = 0;  // token index just past the header's ')'
  bool annotated = false;  // "// mcmlint: order-insensitive" in the header
};

std::vector<UnorderedIterHit> FindUnorderedIterations(const SourceFile& file);

void CheckNondeterminism(const SourceFile& file,
                         std::vector<Diagnostic>* diags);
void CheckUnorderedIteration(const SourceFile& file,
                             std::vector<Diagnostic>* diags);
void CheckFloatUnordered(const SourceFile& file,
                         std::vector<Diagnostic>* diags);
void CheckRawThread(const SourceFile& file, std::vector<Diagnostic>* diags);
void CheckMutableStatic(const SourceFile& file,
                        std::vector<Diagnostic>* diags);
void CheckBanned(const SourceFile& file,
                 const std::vector<std::string>& banned,
                 std::vector<Diagnostic>* diags);

// Collects string-literal reads through the configured accessor functions
// whose names start with one of `prefixes`.  Dynamic (non-literal) names are
// skipped.
void CollectEnvReads(const SourceFile& file,
                     const std::vector<std::string>& functions,
                     const std::vector<std::string>& prefixes,
                     std::vector<EnvRead>* reads);

// Extracts documented names from the README section `section` (first table
// cell, backtick-quoted, matching `prefixes`).
std::vector<EnvDoc> ParseReadmeEnvTable(const std::string& content,
                                        const std::string& section,
                                        const std::vector<std::string>& prefixes);

// The two-way registry diff: reads without a doc row diagnose at the first
// read site per name; doc rows never read diagnose at the README line.
void DiffEnvRegistry(const std::vector<EnvRead>& reads,
                     const std::vector<EnvDoc>& docs,
                     const std::string& readme_path,
                     std::vector<Diagnostic>* diags);

}  // namespace mcmlint
