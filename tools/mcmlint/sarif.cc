#include "sarif.h"

#include <cstdio>
#include <fstream>
#include <set>

namespace mcmlint {

namespace {

struct RuleDesc {
  const char* id;
  const char* summary;
};

// The full catalog; results reference rules by array index via ruleIndex.
constexpr RuleDesc kRules[] = {
    {"mcm-nondeterminism",
     "Direct nondeterminism source (rand, random_device, raw clock reads, "
     "argless time()) outside the telemetry allowlist."},
    {"mcm-unordered-iteration",
     "Iteration over std::unordered_ containers in reward/search-critical "
     "code follows hash order, which the determinism contract does not "
     "cover."},
    {"mcm-raw-thread",
     "std::thread/std::jthread/std::async bypass the runtime worker pool "
     "and its ordered-commit discipline."},
    {"mcm-mutable-static",
     "Mutable static or g_* global without const/atomic/thread_local or a "
     "guarded-by annotation."},
    {"mcm-env-registry",
     "Environment variable read without a README registry row, or "
     "documented but never read."},
    {"mcm-banned",
     "Call to a function on the banned-function list "
     "(tools/mcmlint/banned.txt)."},
    {"mcm-nondet-reach",
     "A MCM_CONTRACT(deterministic) entry point reaches a nondeterminism "
     "source through the call graph."},
    {"mcm-guard-check",
     "A guarded-by annotated variable is touched by a function that does "
     "not hold the named mutex (directly or via every caller)."},
    {"mcm-handler-safety",
     "A MCM_CONTRACT(signal-safe) function reaches allocation, locking, or "
     "a blocking call through the call graph."},
    {"mcm-float-unordered",
     "Floating-point accumulation inside an unordered-container loop "
     "depends on hash order (FP addition is not associative)."},
};

void AppendEscaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string Quoted(const std::string& text) {
  std::string out = "\"";
  AppendEscaped(out, text);
  out += '"';
  return out;
}

int RuleIndex(const std::string& rule) {
  for (std::size_t i = 0; i < sizeof(kRules) / sizeof(kRules[0]); ++i) {
    if (rule == kRules[i].id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

bool WriteSarif(const std::string& path,
                const std::vector<Diagnostic>& diags) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"mcmlint\",\n"
      "          \"version\": \"2.0.0\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/tools/mcmlint\",\n"
      "          \"rules\": [\n";
  const std::size_t n_rules = sizeof(kRules) / sizeof(kRules[0]);
  for (std::size_t i = 0; i < n_rules; ++i) {
    out += "            {\"id\": ";
    out += Quoted(kRules[i].id);
    out += ", \"shortDescription\": {\"text\": ";
    out += Quoted(kRules[i].summary);
    out += "}}";
    out += i + 1 < n_rules ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += "        {\"ruleId\": ";
    out += Quoted(d.rule);
    const int rule_index = RuleIndex(d.rule);
    if (rule_index >= 0) {
      out += ", \"ruleIndex\": " + std::to_string(rule_index);
    }
    out += ", \"level\": \"error\", \"message\": {\"text\": ";
    out += Quoted(d.message);
    out +=
        "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": ";
    out += Quoted(d.path);
    out += ", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": ";
    out += std::to_string(d.line > 0 ? d.line : 1);
    out += "}}}]}";
    out += i + 1 < diags.size() ? ",\n" : "\n";
  }
  out +=
      "      ],\n"
      "      \"columnKind\": \"utf16CodeUnits\",\n"
      "      \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": "
      "\"file:///\"}}\n"
      "    }\n"
      "  ]\n"
      "}\n";

  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream || !(stream << out)) {
    std::fprintf(stderr, "mcmlint: cannot write SARIF to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace mcmlint
