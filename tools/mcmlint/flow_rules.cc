#include "flow_rules.h"

#include <deque>
#include <set>

namespace mcmlint {

namespace {

constexpr const char* kNondetReach = "mcm-nondet-reach";
constexpr const char* kGuardCheck = "mcm-guard-check";
constexpr const char* kHandlerSafety = "mcm-handler-safety";

std::string LastComponent(const std::string& name) {
  const std::size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

std::string TopDir(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// The build has no src -> bench or src -> tools dependency, so a call site
// outside those trees can never actually invoke a function defined inside
// them; dropping such edges removes the worst merged-overload false paths
// (e.g. a search algorithm's Run() dragging in a bench harness's Run()).
bool EdgePlausible(const std::string& caller_path,
                   const std::string& callee_path) {
  const std::string callee_top = TopDir(callee_path);
  if (callee_top != "bench" && callee_top != "tools") return true;
  return TopDir(caller_path) == callee_top;
}

bool Suppresses(const std::set<std::string>& suppress, const char* rule) {
  return suppress.count("*") > 0 || suppress.count(rule) > 0;
}

// The whole-tree call graph: one node per function definition, edges
// resolved by qualified-name suffix (see flow_rules.h).
class Graph {
 public:
  struct Node {
    const FileIndex* file;
    const FunctionInfo* fn;
  };
  struct Edge {
    std::size_t target;
    int line;
    const std::set<std::string>* suppress;
  };

  explicit Graph(const std::map<std::string, FileIndex>& files) {
    for (const auto& [path, fi] : files) {
      for (const FunctionInfo& fn : fi.functions) {
        by_last_[LastComponent(fn.name)].push_back(nodes_.size());
        nodes_.push_back(Node{&fi, &fn});
      }
    }
    out_.resize(nodes_.size());
    in_.resize(nodes_.size());
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      for (const CallSite& call : nodes_[id].fn->calls) {
        const auto it = by_last_.find(LastComponent(call.name));
        if (it == by_last_.end()) continue;
        const bool qualified =
            !call.member && call.name.find("::") != std::string::npos;
        std::vector<std::size_t> candidates;
        for (const std::size_t target : it->second) {
          if (target == id) continue;
          if (!EdgePlausible(nodes_[id].file->path,
                             nodes_[target].file->path)) {
            continue;
          }
          if (qualified) {
            const std::string& defined = nodes_[target].fn->name;
            const bool suffix =
                defined == call.name ||
                (defined.size() > call.name.size() + 2 &&
                 defined.compare(defined.size() - call.name.size() - 2,
                                 std::string::npos,
                                 "::" + call.name) == 0);
            if (!suffix) continue;
          }
          candidates.push_back(target);
        }
        // Split merged overload sets by arity: a 3-argument "search->Run"
        // cannot land on a zero-parameter "Server::Run".  When *no*
        // candidate is compatible (a definition may omit defaults its
        // declaration carries), keep every candidate -- losing a true edge
        // is worse than a spurious one for a contract checker.
        std::vector<std::size_t> compatible;
        for (const std::size_t target : candidates) {
          const FunctionInfo* callee = nodes_[target].fn;
          if (call.args >= callee->min_args && call.args <= callee->max_args) {
            compatible.push_back(target);
          }
        }
        for (const std::size_t target :
             compatible.empty() ? candidates : compatible) {
          out_[id].push_back(Edge{target, call.line, &call.suppress});
          in_[target].push_back(id);
        }
      }
    }
  }

  std::size_t size() const { return nodes_.size(); }
  const Node& node(std::size_t id) const { return nodes_[id]; }
  const std::vector<Edge>& out(std::size_t id) const { return out_[id]; }
  const std::vector<std::size_t>& in(std::size_t id) const { return in_[id]; }

 private:
  std::vector<Node> nodes_;
  std::map<std::string, std::vector<std::size_t>> by_last_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<std::size_t>> in_;
};

const char* OpVerb(int kind) {
  switch (kind) {
    case Op::kNondet:
      return "nondeterminism source";
    case Op::kAlloc:
      return "allocation";
    case Op::kLock:
      return "lock acquisition";
    default:
      return "blocking call";
  }
}

// BFS from every function carrying `contract`; any reachable op whose kind
// is in `kinds` (and not NOLINTed for `rule` at its line) is diagnosed at
// the contract function's signature, with the offending call path spelled
// out.  Suppressed call edges are simply not traversed.
void CheckReachability(const Graph& graph, const char* contract,
                       const char* rule, const std::set<int>& kinds,
                       std::vector<Diagnostic>* diags) {
  for (std::size_t root = 0; root < graph.size(); ++root) {
    const Graph::Node& entry = graph.node(root);
    if (entry.fn->contracts.count(contract) == 0) continue;
    if (Suppresses(entry.fn->suppress, rule)) continue;

    std::vector<std::size_t> parent(graph.size(),
                                    static_cast<std::size_t>(-1));
    std::vector<bool> seen(graph.size(), false);
    std::deque<std::size_t> queue = {root};
    seen[root] = true;
    std::set<std::string> reported;
    while (!queue.empty()) {
      const std::size_t id = queue.front();
      queue.pop_front();
      const Graph::Node& node = graph.node(id);
      for (const Op& op : node.fn->ops) {
        if (kinds.count(op.kind) == 0) continue;
        if (Suppresses(op.suppress, rule)) continue;
        const std::string site =
            node.file->path + ":" + std::to_string(op.line);
        if (!reported.insert(site).second) continue;
        std::string via;
        if (id != root) {
          std::vector<std::size_t> path;
          for (std::size_t p = id; p != root; p = parent[p]) {
            path.push_back(p);
          }
          via = " via";
          int hops = 0;
          for (auto it = path.rbegin(); it != path.rend(); ++it, ++hops) {
            if (hops == 4) {
              via += " -> ...";
              break;
            }
            via += (hops == 0 ? " " : " -> ") + graph.node(*it).fn->name;
          }
        }
        diags->push_back(Diagnostic{
            entry.file->path, entry.fn->line, rule,
            "'" + entry.fn->name + "' is MCM_CONTRACT(" + contract +
                ") but reaches " + OpVerb(op.kind) + " " + op.detail + " (" +
                site + ")" + via +
                "; fix the source or sanitize the edge with NOLINT(" + rule +
                ")"});
      }
      for (const Graph::Edge& edge : graph.out(id)) {
        if (Suppresses(*edge.suppress, rule)) continue;
        if (seen[edge.target]) continue;
        seen[edge.target] = true;
        parent[edge.target] = id;
        queue.push_back(edge.target);
      }
    }
  }
}

// mcm-guard-check: a function touching a guarded variable is safe when it
// acquires the mutex itself, or when every (transitive) caller does.  A
// cycle or a caller-less function without the lock is unsafe -- the
// conservative answer for a contract checker.
class GuardChecker {
 public:
  explicit GuardChecker(const Graph& graph) : graph_(graph) {}

  bool Safe(std::size_t id, const std::string& mutex) {
    const auto key = std::make_pair(id, mutex);
    const auto it = state_.find(key);
    if (it != state_.end()) return it->second == kSafe;
    if (graph_.node(id).fn->locks.count(mutex) > 0) {
      state_[key] = kSafe;
      return true;
    }
    if (graph_.in(id).empty()) {
      state_[key] = kUnsafe;
      return false;
    }
    state_[key] = kComputing;  // cycles resolve to unsafe
    bool all = true;
    for (const std::size_t caller : graph_.in(id)) {
      if (!Safe(caller, mutex)) {
        all = false;
        break;
      }
    }
    state_[key] = all ? kSafe : kUnsafe;
    return all;
  }

 private:
  enum State { kComputing = 0, kSafe = 1, kUnsafe = 2 };
  const Graph& graph_;
  std::map<std::pair<std::size_t, std::string>, int> state_;
};

bool IsHeader(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".h" || ext == ".hpp" || ext == ".hh";
}

void CheckGuards(const Graph& graph,
                 const std::map<std::string, FileIndex>& files,
                 std::vector<Diagnostic>* diags) {
  // An annotation in a header binds its name everywhere (class members are
  // touched from other TUs); one in a .cc binds only refs in that same file
  // (a function-local or TU-local variable is invisible elsewhere, so a
  // same-named local in another file is a different variable).
  std::map<std::string, std::string> global_guards;  // var name -> mutex
  std::map<std::string, std::map<std::string, std::string>> local_guards;
  bool any = false;
  for (const auto& [path, fi] : files) {
    for (const GuardedVar& var : fi.guarded) {
      any = true;
      if (IsHeader(path)) {
        global_guards.emplace(var.name, var.mutex);
      } else {
        local_guards[path].emplace(var.name, var.mutex);
      }
    }
  }
  if (!any) return;

  GuardChecker checker(graph);
  for (std::size_t id = 0; id < graph.size(); ++id) {
    const Graph::Node& node = graph.node(id);
    if (Suppresses(node.fn->suppress, kGuardCheck)) continue;
    const auto local_it = local_guards.find(node.file->path);
    for (const auto& [name, line] : node.fn->refs) {
      const std::string* mutex = nullptr;
      if (local_it != local_guards.end()) {
        const auto l = local_it->second.find(name);
        if (l != local_it->second.end()) mutex = &l->second;
      }
      if (mutex == nullptr) {
        const auto g = global_guards.find(name);
        if (g != global_guards.end()) mutex = &g->second;
      }
      if (mutex == nullptr) continue;
      if (checker.Safe(id, *mutex)) continue;
      diags->push_back(Diagnostic{
          node.file->path, line, kGuardCheck,
          "'" + name + "' is annotated guarded-by(" + *mutex + ") but '" +
              node.fn->name + "' touches it without acquiring " + *mutex +
              " (neither here nor in every caller); lock the mutex or "
              "NOLINT(mcm-guard-check) the access"});
    }
  }
}

}  // namespace

void RunFlowRules(const std::map<std::string, FileIndex>& files,
                  std::vector<Diagnostic>* diags) {
  const Graph graph(files);
  CheckReachability(graph, "deterministic", kNondetReach, {Op::kNondet},
                    diags);
  CheckReachability(graph, "signal-safe", kHandlerSafety,
                    {Op::kAlloc, Op::kLock, Op::kBlocking}, diags);
  CheckGuards(graph, files, diags);
}

}  // namespace mcmlint
