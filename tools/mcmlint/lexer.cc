#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace mcmlint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses one comment chunk for NOLINT and "mcmlint:" markers and merges them
// into `markers`.
void ParseMarkers(const std::string& text, LineMarkers& markers) {
  // NOLINT / NOLINT(rule, rule)
  for (std::size_t pos = text.find("NOLINT"); pos != std::string::npos;
       pos = text.find("NOLINT", pos + 1)) {
    std::size_t after = pos + 6;
    while (after < text.size() && text[after] == ' ') ++after;
    if (after < text.size() && text[after] == '(') {
      const std::size_t close = text.find(')', after);
      if (close == std::string::npos) continue;
      std::string rule;
      for (std::size_t i = after + 1; i <= close; ++i) {
        const char c = text[i];
        if (IsIdentChar(c) || c == '-') {
          rule.push_back(c);
        } else {
          if (!rule.empty()) markers.nolint_rules.insert(rule);
          rule.clear();
        }
      }
    } else {
      markers.nolint_all = true;
    }
  }
  // mcmlint: order-insensitive  /  mcmlint: guarded-by(<mutex>)
  for (std::size_t pos = text.find("mcmlint:"); pos != std::string::npos;
       pos = text.find("mcmlint:", pos + 8)) {
    std::size_t after = pos + 8;
    while (after < text.size() && text[after] == ' ') ++after;
    if (text.compare(after, 17, "order-insensitive") == 0) {
      markers.order_insensitive = true;
    } else if (text.compare(after, 11, "guarded-by(") == 0) {
      const std::size_t close = text.find(')', after + 11);
      if (close != std::string::npos && close > after + 11) {
        markers.guarded_by = true;
        markers.guard_names.insert(
            text.substr(after + 11, close - after - 11));
      }
    }
  }
  // MCM_CONTRACT(deterministic) / MCM_CONTRACT(signal-safe): the flow rules'
  // entry-point annotation (attached to the function defined on or just
  // below the marker line; see index.cc).
  for (std::size_t pos = text.find("MCM_CONTRACT("); pos != std::string::npos;
       pos = text.find("MCM_CONTRACT(", pos + 13)) {
    const std::size_t open = pos + 13;
    const std::size_t close = text.find(')', open);
    if (close != std::string::npos && close > open) {
      markers.contracts.insert(text.substr(open, close - open));
    }
  }
}

class Lexer {
 public:
  Lexer(std::string path, const std::string& content)
      : content_(content) {
    out_.path = std::move(path);
  }

  SourceFile Run() {
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (at_line_start_ && c == '#') {
        HandlePreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      if (c == '"') {
        StringLiteral(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        CharLiteral();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        Number();
        continue;
      }
      if (IsIdentStart(c)) {
        Identifier();
        continue;
      }
      Punct();
    }
    return std::move(out_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < content_.size() ? content_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  // #include lines are skipped wholesale (<ctime> etc. must not look like
  // code); other directives are tokenized so macro bodies are still checked.
  void HandlePreprocessor() {
    std::size_t probe = pos_ + 1;
    while (probe < content_.size() && content_[probe] == ' ') ++probe;
    if (content_.compare(probe, 7, "include") == 0) {
      while (pos_ < content_.size() && content_[pos_] != '\n') ++pos_;
      return;
    }
    at_line_start_ = false;
    ++pos_;  // consume '#'; the directive body tokenizes normally
  }

  void LineComment() {
    const std::size_t start = pos_;
    while (pos_ < content_.size() && content_[pos_] != '\n') ++pos_;
    ParseMarkers(content_.substr(start, pos_ - start), out_.markers[line_]);
  }

  void BlockComment() {
    const int start_line = line_;
    const std::size_t start = pos_;
    pos_ += 2;
    while (pos_ + 1 < content_.size() &&
           !(content_[pos_] == '*' && content_[pos_ + 1] == '/')) {
      if (content_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ + 2 <= content_.size() ? pos_ + 2 : content_.size();
    ParseMarkers(content_.substr(start, pos_ - start),
                 out_.markers[start_line]);
  }

  void StringLiteral(bool raw) {
    const int start_line = line_;
    std::string text;
    if (raw) {
      // R"delim( ... )delim"
      ++pos_;  // opening quote
      std::string delim;
      while (pos_ < content_.size() && content_[pos_] != '(') {
        delim.push_back(content_[pos_++]);
      }
      ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = content_.find(closer, pos_);
      const std::size_t stop = end == std::string::npos ? content_.size() : end;
      for (std::size_t i = pos_; i < stop; ++i) {
        if (content_[i] == '\n') ++line_;
      }
      text = content_.substr(pos_, stop - pos_);
      pos_ = end == std::string::npos ? content_.size()
                                      : end + closer.size();
    } else {
      ++pos_;  // opening quote
      while (pos_ < content_.size() && content_[pos_] != '"') {
        if (content_[pos_] == '\\' && pos_ + 1 < content_.size()) {
          text.push_back(content_[pos_ + 1]);
          pos_ += 2;
          continue;
        }
        if (content_[pos_] == '\n') ++line_;  // unterminated; stay sane
        text.push_back(content_[pos_++]);
      }
      if (pos_ < content_.size()) ++pos_;  // closing quote
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void CharLiteral() {
    const int start_line = line_;
    std::string text;
    ++pos_;
    while (pos_ < content_.size() && content_[pos_] != '\'') {
      if (content_[pos_] == '\\' && pos_ + 1 < content_.size()) {
        text.push_back(content_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      text.push_back(content_[pos_++]);
    }
    if (pos_ < content_.size()) ++pos_;
    Emit(TokenKind::kChar, std::move(text), start_line);
  }

  void Number() {
    const std::size_t start = pos_;
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '\'' || c == '_') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e-3, 0x1p+4
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = content_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokenKind::kNumber, content_.substr(start, pos_ - start), line_);
  }

  void Identifier() {
    const std::size_t start = pos_;
    while (pos_ < content_.size() && IsIdentChar(content_[pos_])) ++pos_;
    std::string text = content_.substr(start, pos_ - start);
    // String-literal prefixes: R"...", u8R"...", L"...", etc.
    if (pos_ < content_.size() && content_[pos_] == '"') {
      const bool raw = !text.empty() && text.back() == 'R' &&
                       (text == "R" || text == "uR" || text == "UR" ||
                        text == "LR" || text == "u8R");
      const bool plain_prefix =
          text == "u" || text == "U" || text == "L" || text == "u8";
      if (raw || plain_prefix) {
        StringLiteral(raw);
        return;
      }
    }
    Emit(TokenKind::kIdentifier, std::move(text), line_);
  }

  void Punct() {
    const char c = content_[pos_];
    if (c == ':' && Peek(1) == ':') {
      Emit(TokenKind::kPunct, "::", line_);
      pos_ += 2;
      return;
    }
    if (c == '-' && Peek(1) == '>') {
      Emit(TokenKind::kPunct, "->", line_);
      pos_ += 2;
      return;
    }
    Emit(TokenKind::kPunct, std::string(1, c), line_);
    ++pos_;
  }

  const std::string& content_;
  SourceFile out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

const LineMarkers* SourceFile::MarkersFor(int line) const {
  const auto it = markers.find(line);
  return it == markers.end() ? nullptr : &it->second;
}

bool SourceFile::Suppressed(int line, const std::string& rule) const {
  const LineMarkers* m = MarkersFor(line);
  if (m == nullptr) return false;
  return m->nolint_all || m->nolint_rules.count(rule) > 0;
}

bool SourceFile::OrderInsensitiveIn(int first, int last) const {
  for (int line = first; line <= last; ++line) {
    const LineMarkers* m = MarkersFor(line);
    if (m != nullptr && m->order_insensitive) return true;
  }
  return false;
}

bool SourceFile::GuardedByIn(int first, int last) const {
  for (int line = first; line <= last; ++line) {
    const LineMarkers* m = MarkersFor(line);
    if (m != nullptr && m->guarded_by) return true;
  }
  return false;
}

SourceFile Tokenize(std::string path, const std::string& content) {
  return Lexer(std::move(path), content).Run();
}

}  // namespace mcmlint
