// mcmlint v2's cross-translation-unit index.
//
// IndexFile() extends the token scanner into a declaration/definition/call
// parser: it walks a file's token stream with a namespace/class scope stack,
// recognizes function *definitions* (name chain + balanced parameter list +
// body, including constructor initializer lists and trailing return types),
// and records, per function,
//
//   * the operations the flow rules care about (nondeterminism sources,
//     allocation, locking, blocking calls) with their per-line NOLINT state,
//   * every call site (with qualifier chain and member-call flag), and
//   * every referenced identifier plus every mutex the function acquires,
//     feeding mcm-guard-check.
//
// It also collects "// mcmlint: guarded-by(<mutex>)" variable declarations
// and "// MCM_CONTRACT(<name>)" entry-point annotations (the marker applies
// to the function whose signature starts on the marker line or within the
// next five lines, so it can lead a short doc comment).
//
// Like the lexer, this is deliberately not a compiler: overload sets are
// merged per name, call edges resolve by qualified-name suffix, and
// operator definitions are not indexed.  The flow rules in flow_rules.h
// document how they stay useful despite that.
//
// A FileIndex also carries the *outputs* of the per-file token rules
// (file_diags, env_reads) so the whole record can be cached keyed by the
// file's content hash: an incremental re-lint re-parses only changed files
// and re-runs just the cheap cross-file passes.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace mcmlint {

// One operation of interest observed inside a function body.
struct Op {
  enum Kind {
    kNondet = 0,    // direct nondeterminism source (mcm-nondet-reach)
    kAlloc = 1,     // heap allocation / container growth / throw
    kLock = 2,      // mutex acquisition
    kBlocking = 3,  // sleeps, waits, non-async-signal-safe stdio
  };
  int kind = kNondet;
  int line = 0;
  std::string detail;  // human-readable, e.g. "std::rand()" or "push_back"
  // NOLINTed rules on the op's line ("*" for a bare NOLINT); the op is
  // sanitized for rule R when suppress contains R or "*".
  std::set<std::string> suppress;
};

struct CallSite {
  std::string name;  // as written: "Foo" or "Server::Run"
  int line = 0;
  bool member = false;  // obj.f() / obj->f(): resolved by last component
  int args = 0;         // top-level argument count at the call site
  std::set<std::string> suppress;  // NOLINTed rules on the call line
};

struct FunctionInfo {
  std::string name;  // scope-qualified, e.g. "mcm::service::Server::Run"
  int line = 0;      // signature start line
  // Accepted call arity [min_args, max_args] (defaults widen the range,
  // variadics push max_args to 99).  Used to split merged overload sets:
  // see flow_rules.h for the fallback when no candidate is compatible.
  int min_args = 0;
  int max_args = 0;
  std::set<std::string> contracts;  // MCM_CONTRACT(...) names
  std::set<std::string> suppress;   // NOLINTed rules on the signature line
  std::vector<Op> ops;
  std::vector<CallSite> calls;
  std::set<std::string> locks;   // mutex names this function acquires
  std::map<std::string, int> refs;  // identifier -> first unsuppressed line
};

// A variable declaration annotated "// mcmlint: guarded-by(<mutex>)".
struct GuardedVar {
  std::string name;
  std::string mutex;
  int line = 0;
};

// Everything mcmlint knows about one file: flow-rule inputs plus the cached
// outputs of the per-file token rules.
struct FileIndex {
  std::string path;  // as reported in diagnostics (relative to the root)
  std::uint64_t content_hash = 0;
  std::vector<FunctionInfo> functions;
  std::vector<GuardedVar> guarded;
  std::vector<Diagnostic> file_diags;  // per-file rules, post-suppression
  std::vector<EnvRead> env_reads;      // post-suppression
};

// Fills functions/guarded from the token stream (file_diags/env_reads are
// the caller's job -- rule scoping lives there).
void IndexFile(const SourceFile& file, FileIndex* out);

// FNV-1a over the raw bytes; the cache key.
std::uint64_t HashContent(const std::string& content);

// ---- Index cache ------------------------------------------------------------
//
// A single versioned file holding one FileIndex per scanned path.  Load
// returns false (empty cache) on a missing file, version mismatch, or any
// malformed record; `config_hash` guards against reusing per-file
// diagnostics computed under different rule scoping.

bool LoadIndexCache(const std::string& path, std::uint64_t config_hash,
                    std::map<std::string, FileIndex>* cache);
bool SaveIndexCache(const std::string& path, std::uint64_t config_hash,
                    const std::map<std::string, FileIndex>& cache);

}  // namespace mcmlint
