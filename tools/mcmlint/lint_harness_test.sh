#!/usr/bin/env bash
# mcmlint v2 harness test: index-cache invalidation and SARIF output.
#
#   1. Cold lint of a synthetic two-file tree parses both files.
#   2. A second run with the same cache parses nothing (all hits) and
#      reproduces the identical diagnostics -- flow rules must work from
#      cached indexes alone.
#   3. Editing one file re-parses only that file.
#   4. A config change invalidates the whole cache.
#   5. The SARIF output is structurally valid 2.1.0 (schema/rules/results).
#
# Usage: lint_harness_test.sh <path-to-mcmlint>
set -u

MCMLINT=${1:?usage: lint_harness_test.sh <mcmlint>}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

mkdir -p "$TMP/src"
cat > "$TMP/src/a.cc" <<'EOF'
namespace demo {
int Helper(int x);
// MCM_CONTRACT(deterministic)
int Entry(int x) { return Helper(x) + 1; }
}  // namespace demo
EOF
cat > "$TMP/src/b.cc" <<'EOF'
#include <cstdlib>
namespace demo {
int Helper(int x) { return std::rand() + x; }
}  // namespace demo
EOF
cat > "$TMP/lint.conf" <<'EOF'
scan.dirs = src
scan.extensions = .cc .h
rule.mcm-env-registry.enabled = false
EOF

run_lint() {
  "$MCMLINT" --root "$TMP" --config lint.conf --cache "$TMP/index.cache" \
    --stats "$@" > "$TMP/out.txt" 2> "$TMP/err.txt"
  echo $?
}

expect_stats() {  # expect_stats <label> <substring>
  grep -q "$2" "$TMP/err.txt" || {
    cat "$TMP/err.txt" >&2
    fail "$1: expected '$2' in --stats output"
  }
}

# 1. Cold run: both files parse; the cross-file taint (Entry -> Helper ->
#    rand) plus the direct mcm-nondeterminism finding must fire.
status=$(run_lint --sarif "$TMP/out.sarif")
[ "$status" = 1 ] || fail "cold run: expected exit 1 (violations), got $status"
expect_stats "cold run" "parsed=2 cache_hits=0"
grep -q "mcm-nondet-reach" "$TMP/out.txt" || fail "cold run: no cross-file taint finding"
grep -q "mcm-nondeterminism" "$TMP/out.txt" || fail "cold run: no direct rand() finding"
cp "$TMP/out.txt" "$TMP/cold.txt"

# 2. Warm run: nothing re-parses, identical diagnostics from the cache.
status=$(run_lint)
[ "$status" = 1 ] || fail "warm run: expected exit 1, got $status"
expect_stats "warm run" "parsed=0 cache_hits=2"
cmp -s "$TMP/cold.txt" "$TMP/out.txt" || {
  diff "$TMP/cold.txt" "$TMP/out.txt" >&2
  fail "warm run: diagnostics differ from cold run"
}

# 3. Edit b.cc (comment only -- findings unchanged): exactly one re-parse.
echo "// touched" >> "$TMP/src/b.cc"
status=$(run_lint)
[ "$status" = 1 ] || fail "edit run: expected exit 1, got $status"
expect_stats "edit run" "parsed=1 cache_hits=1"
cmp -s "$TMP/cold.txt" "$TMP/out.txt" || fail "edit run: diagnostics changed"

# 4. Config change: the whole cache is invalid.
echo "rule.mcm-banned.enabled = false" >> "$TMP/lint.conf"
status=$(run_lint)
[ "$status" = 1 ] || fail "config run: expected exit 1, got $status"
expect_stats "config change" "parsed=2 cache_hits=0"

# 5. SARIF structure.
python3 - "$TMP/out.sarif" <<'EOF' || fail "SARIF structure check"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", doc.get("version")
assert doc["$schema"].endswith("sarif-2.1.0.json"), doc["$schema"]
run = doc["runs"][0]
driver = run["tool"]["driver"]
assert driver["name"] == "mcmlint"
rule_ids = {r["id"] for r in driver["rules"]}
assert "mcm-nondet-reach" in rule_ids, sorted(rule_ids)
results = run["results"]
assert results, "no results for a failing tree"
for r in results:
    assert r["ruleId"] in rule_ids, r["ruleId"]
    assert r["level"] == "error"
    assert r["message"]["text"]
    loc = r["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].startswith("src/")
    assert loc["region"]["startLine"] >= 1
EOF

echo "PASS"
