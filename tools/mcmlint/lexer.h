// mcmlint's lexer: a comment- and string-aware C++ token scanner.
//
// This is deliberately not a parser.  Every rule mcmlint enforces is
// expressible over a token stream plus per-line comment markers, which keeps
// the linter dependency-free (no libclang) and fast enough to run on every
// ctest invocation.  The trade-offs this implies are documented per rule in
// rules.h.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mcmlint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kString,      // string literal (contents not scanned by rules)
  kChar,        // character literal
  kPunct,       // one punctuator per token; "::" and "->" are single tokens
};

struct Token {
  TokenKind kind;
  std::string text;  // for kString: the literal's contents, unescaped-ish
  int line = 0;      // 1-based
};

// Comment-derived markers attached to a source line.
struct LineMarkers {
  bool nolint_all = false;             // bare "// NOLINT"
  std::set<std::string> nolint_rules;  // "// NOLINT(mcm-a, mcm-b)"
  bool order_insensitive = false;      // "// mcmlint: order-insensitive"
  bool guarded_by = false;             // "// mcmlint: guarded-by(<mutex>)"
  std::set<std::string> guard_names;   // the <mutex> names, for mcm-guard-check
  std::set<std::string> contracts;     // "// MCM_CONTRACT(deterministic)" etc.
};

struct SourceFile {
  std::string path;  // as reported in diagnostics
  std::vector<Token> tokens;
  std::map<int, LineMarkers> markers;  // only lines that carry markers

  // True when a diagnostic for `rule` on `line` is NOLINT-suppressed.
  bool Suppressed(int line, const std::string& rule) const;
  // Marker lookup; returns nullptr when the line carries none.
  const LineMarkers* MarkersFor(int line) const;
  // True when any line in [first, last] carries the given annotation.
  bool OrderInsensitiveIn(int first, int last) const;
  bool GuardedByIn(int first, int last) const;
};

// Tokenizes `content`.  Handles //, /*...*/, string/char literals (including
// raw strings), and skips #include lines so header names never look like
// code.  Comment text is parsed for NOLINT and "mcmlint:" markers.
SourceFile Tokenize(std::string path, const std::string& content);

}  // namespace mcmlint
