#include "index.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mcmlint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool IsPunctTok(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdentTok(const Token& t) { return t.kind == TokenKind::kIdentifier; }

// Keywords and type names that are never function names, call targets, or
// interesting identifier references.
bool IsKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "auto",      "bool",       "break",
      "case",      "catch",    "char",      "class",      "co_await",
      "co_return", "co_yield", "const",     "constexpr",  "consteval",
      "constinit", "continue", "decltype",  "default",    "delete",
      "do",        "double",   "else",      "enum",       "explicit",
      "extern",    "false",    "final",     "float",      "for",
      "friend",    "goto",     "if",        "inline",     "int",
      "long",      "mutable",  "namespace", "new",        "noexcept",
      "nullptr",   "operator", "override",  "private",    "protected",
      "public",    "register", "return",    "short",      "signed",
      "sizeof",    "static",   "static_assert", "struct", "switch",
      "template",  "this",     "thread_local", "throw",   "true",
      "try",       "typedef",  "typeid",    "typename",   "union",
      "unsigned",  "using",    "virtual",   "void",       "volatile",
      "while"};
  return kKeywords.count(text) > 0;
}

bool IsGrowthCall(const std::string& text) {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "emplace", "emplace_front", "push",
      "push_front", "insert",      "append",  "resize",        "reserve",
      "assign"};
  return kGrowth.count(text) > 0;
}

// Calls that may block or are not async-signal-safe (stdio takes locks and
// allocates).  write()/read() are signal-safe and deliberately absent.
bool IsBlockingCall(const std::string& text) {
  static const std::set<std::string> kBlocking = {
      "sleep_for", "sleep_until", "usleep",  "nanosleep", "sleep",
      "poll",      "select",      "pselect", "epoll_wait", "wait",
      "wait_for",  "wait_until",  "fopen",   "fclose",    "fread",
      "fwrite",    "fprintf",     "printf",  "fflush",    "fputs",
      "puts",      "system",      "popen",   "getline"};
  return kBlocking.count(text) > 0;
}

// The parser.  Walks the token stream once with a namespace/class scope
// stack; recognized function definitions get their bodies scanned for ops,
// calls, refs, and lock acquisitions.
class Indexer {
 public:
  Indexer(const SourceFile& file, FileIndex* out)
      : file_(file), t_(file.tokens), out_(out) {}

  void Run() {
    CollectGuardedVars();
    std::size_t i = 0;
    while (i < t_.size()) {
      const Token& tok = t_[i];
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "{") {
          ++depth_;
          ++i;
          continue;
        }
        if (tok.text == "}") {
          --depth_;
          while (!scopes_.empty() && depth_ <= scopes_.back().open_depth) {
            scopes_.pop_back();
          }
          ++i;
          continue;
        }
        if (tok.text == "~" && i + 2 < t_.size() && IsIdentTok(t_[i + 1]) &&
            IsPunctTok(t_[i + 2], "(")) {
          const std::size_t next = TryFunction(i);
          if (next != i) {
            i = next;
            continue;
          }
        }
        ++i;
        continue;
      }
      if (!IsIdentTok(tok)) {
        ++i;
        continue;
      }
      const std::string& text = tok.text;
      if (text == "namespace") {
        i = HandleNamespace(i);
        continue;
      }
      if (text == "class" || text == "struct") {
        i = HandleClass(i);
        continue;
      }
      if (text == "enum") {
        i = SkipEnum(i);
        continue;
      }
      if (text == "using" || text == "typedef") {
        i = SkipToSemi(i);
        continue;
      }
      const std::size_t next = TryFunction(i);
      if (next != i) {
        i = next;
        continue;
      }
      ++i;
    }
    AssignUnorderedIterations();
  }

 private:
  struct Scope {
    std::string name;
    int open_depth;  // brace depth *before* the scope's '{'.
  };
  struct BodyRange {
    int first_line;
    int last_line;
    std::size_t function_index;
  };

  std::set<std::string> SuppressSetFor(int line) const {
    std::set<std::string> out;
    const LineMarkers* m = file_.MarkersFor(line);
    if (m == nullptr) return out;
    if (m->nolint_all) out.insert("*");
    out.insert(m->nolint_rules.begin(), m->nolint_rules.end());
    return out;
  }

  // "// mcmlint: guarded-by(<mutex>)" on a declaration line: the declared
  // name is the last identifier before the first of ';', '=', '{' on that
  // line (so both "int g_x = 0;" and "std::deque<T> q_;" resolve).  The
  // mutex must be a plain identifier -- placeholders like "<mutex>" in
  // documentation that quotes the annotation grammar are not registrations.
  void CollectGuardedVars() {
    for (const auto& [line, markers] : file_.markers) {
      if (markers.guard_names.empty()) continue;
      const std::string& mutex = *markers.guard_names.begin();
      if (mutex.find_first_not_of(
              "abcdefghijklmnopqrstuvwxyz"
              "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") != std::string::npos) {
        continue;
      }
      std::string declared;
      for (const Token& tok : t_) {
        if (tok.line != line) continue;
        if (tok.kind == TokenKind::kPunct &&
            (tok.text == ";" || tok.text == "=" || tok.text == "{")) {
          break;
        }
        if (IsIdentTok(tok) && !IsKeyword(tok.text)) declared = tok.text;
      }
      if (declared.empty()) continue;
      out_->guarded.push_back(GuardedVar{declared, mutex, line});
    }
  }

  std::size_t SkipToSemi(std::size_t i) const {
    while (i < t_.size() && !IsPunctTok(t_[i], ";")) ++i;
    return i < t_.size() ? i + 1 : i;
  }

  // Returns the index just past the matching close for the open punct at
  // `i`, or kNpos when unbalanced.
  std::size_t SkipBalanced(std::size_t i, const char* open,
                           const char* close) const {
    int depth = 1;
    std::size_t k = i + 1;
    while (k < t_.size() && depth > 0) {
      if (IsPunctTok(t_[k], open)) ++depth;
      if (IsPunctTok(t_[k], close)) --depth;
      ++k;
    }
    return depth == 0 ? k : kNpos;
  }

  std::size_t HandleNamespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < t_.size() && IsIdentTok(t_[j])) {
      if (!name.empty()) name += "::";
      name += t_[j].text;
      ++j;
      if (j < t_.size() && IsPunctTok(t_[j], "::")) {
        ++j;
        continue;
      }
      break;
    }
    if (j < t_.size() && IsPunctTok(t_[j], "{")) {
      scopes_.push_back(Scope{name, depth_});
      ++depth_;
      return j + 1;
    }
    return SkipToSemi(i);  // Alias or declaration.
  }

  std::size_t HandleClass(std::size_t i) {
    std::size_t j = i + 1;
    if (j >= t_.size() || !IsIdentTok(t_[j])) return i + 1;
    const std::string name = t_[j].text;
    ++j;
    // "struct sigaction action {}" is a variable declaration, not a class
    // definition: a bare identifier right after the name means no body.
    if (j < t_.size() && IsIdentTok(t_[j]) && t_[j].text != "final") {
      return SkipToSemi(i);
    }
    int angle = 0;
    while (j < t_.size()) {
      if (IsPunctTok(t_[j], "<")) ++angle;
      if (IsPunctTok(t_[j], ">") && angle > 0) --angle;
      if (angle == 0) {
        if (IsPunctTok(t_[j], ";") || IsPunctTok(t_[j], "=")) return j + 1;
        if (IsPunctTok(t_[j], "{")) {
          scopes_.push_back(Scope{name, depth_});
          ++depth_;
          return j + 1;
        }
      }
      ++j;
    }
    return j;
  }

  std::size_t SkipEnum(std::size_t i) const {
    std::size_t j = i + 1;
    while (j < t_.size() && !IsPunctTok(t_[j], ";") &&
           !IsPunctTok(t_[j], "{")) {
      ++j;
    }
    if (j < t_.size() && IsPunctTok(t_[j], "{")) {
      const std::size_t past = SkipBalanced(j, "{", "}");
      if (past == kNpos) return t_.size();
      j = past;
    }
    while (j < t_.size() && !IsPunctTok(t_[j], ";")) ++j;
    return j < t_.size() ? j + 1 : j;
  }

  struct Arity {
    int min_args = 0;
    int max_args = 0;
  };

  // Parameter-count range for the list between `open` ('(') and
  // `close_past` (just past the matching ')'): defaulted parameters make
  // the tail optional, "..." accepts anything beyond.  Commas are counted
  // only at top level -- nested parens (function types, lambdas), braces,
  // brackets (lambda captures), and template angles do not split.
  Arity ParamArity(std::size_t open, std::size_t close_past) const {
    Arity a;
    if (close_past <= open + 2) return a;  // "()"
    if (close_past == open + 3 && IsIdentTok(t_[open + 1]) &&
        t_[open + 1].text == "void") {
      return a;  // "(void)"
    }
    int commas = 0, defaults = 0, paren = 0, angle = 0, nest = 0;
    bool variadic = false;
    for (std::size_t k = open + 1; k + 1 < close_past; ++k) {
      const Token& tok = t_[k];
      if (tok.kind != TokenKind::kPunct) continue;
      const std::string& p = tok.text;
      if (p == "(") ++paren;
      else if (p == ")") --paren;
      else if (p == "{" || p == "[") ++nest;
      else if (p == "}" || p == "]") --nest;
      else if (p == "<") ++angle;
      else if (p == ">" && angle > 0) --angle;
      else if (paren == 0 && angle == 0 && nest == 0) {
        if (p == ",") ++commas;
        else if (p == "=") ++defaults;
        else if (p == "." && k + 2 < close_past && IsPunctTok(t_[k + 1], ".") &&
                 IsPunctTok(t_[k + 2], ".")) {
          variadic = true;
        }
      }
    }
    a.max_args = commas + 1;
    a.min_args = a.max_args - defaults;
    if (a.min_args < 0) a.min_args = 0;
    if (variadic) a.max_args = 99;
    return a;
  }

  // Top-level argument count for the call whose '(' is at `open`.
  int CallArgCount(std::size_t open) const {
    if (open + 1 < t_.size() && IsPunctTok(t_[open + 1], ")")) return 0;
    int commas = 0, paren = 1, angle = 0, nest = 0;
    for (std::size_t k = open + 1; k < t_.size() && paren > 0; ++k) {
      const Token& tok = t_[k];
      if (tok.kind != TokenKind::kPunct) continue;
      const std::string& p = tok.text;
      if (p == "(") ++paren;
      else if (p == ")") --paren;
      else if (p == "{" || p == "[") ++nest;
      else if (p == "}" || p == "]") --nest;
      else if (p == "<") ++angle;
      else if (p == ">" && angle > 0) --angle;
      else if (p == "," && paren == 1 && angle == 0 && nest == 0) ++commas;
    }
    return commas + 1;
  }

  // Constructor initializer list: ": member_(expr), member_{expr} ... {".
  // Returns the index of the body '{', or kNpos.
  std::size_t ParseInitList(std::size_t k) const {
    while (true) {
      bool any = false;
      int angle = 0;
      while (k < t_.size() &&
             (IsIdentTok(t_[k]) || IsPunctTok(t_[k], "::") ||
              IsPunctTok(t_[k], "<") || IsPunctTok(t_[k], ">") ||
              IsPunctTok(t_[k], ",") ? (angle > 0 || !IsPunctTok(t_[k], ","))
                                     : false)) {
        if (IsPunctTok(t_[k], "<")) ++angle;
        if (IsPunctTok(t_[k], ">") && angle > 0) --angle;
        any = true;
        ++k;
      }
      if (!any || k >= t_.size()) return kNpos;
      if (IsPunctTok(t_[k], "(")) {
        k = SkipBalanced(k, "(", ")");
      } else if (IsPunctTok(t_[k], "{")) {
        k = SkipBalanced(k, "{", "}");
      } else {
        return kNpos;
      }
      if (k == kNpos || k >= t_.size()) return kNpos;
      if (IsPunctTok(t_[k], ",")) {
        ++k;
        continue;
      }
      if (IsPunctTok(t_[k], "{")) return k;
      return kNpos;
    }
  }

  // Attempts to recognize a function definition whose name chain starts at
  // `i`.  On success scans the body and returns the index past it;
  // otherwise returns `i` unchanged.
  std::size_t TryFunction(std::size_t i) {
    std::size_t j = i;
    std::string name;
    std::string last;
    if (IsPunctTok(t_[j], "~")) {
      if (j + 1 >= t_.size() || !IsIdentTok(t_[j + 1])) return i;
      last = "~" + t_[j + 1].text;
      name = last;
      j += 2;
    } else {
      if (!IsIdentTok(t_[j]) || IsKeyword(t_[j].text)) return i;
      last = t_[j].text;
      name = last;
      j += 1;
    }
    while (j + 1 < t_.size() && IsPunctTok(t_[j], "::")) {
      if (IsIdentTok(t_[j + 1]) && !IsKeyword(t_[j + 1].text)) {
        last = t_[j + 1].text;
        name += "::" + last;
        j += 2;
      } else if (IsPunctTok(t_[j + 1], "~") && j + 2 < t_.size() &&
                 IsIdentTok(t_[j + 2])) {
        last = "~" + t_[j + 2].text;
        name += "::" + last;
        j += 3;
      } else {
        return i;
      }
    }
    if (j >= t_.size() || !IsPunctTok(t_[j], "(")) return i;
    const std::size_t params_end = SkipBalanced(j, "(", ")");
    if (params_end == kNpos) return i;
    const Arity arity = ParamArity(j, params_end);

    // Trailer: cv/ref/noexcept/override/final, a trailing return type, a
    // constructor initializer list, then the body.  Anything else means
    // this was an expression or a plain declaration.
    std::size_t k = params_end;
    while (k < t_.size()) {
      const Token& tok = t_[k];
      if (IsIdentTok(tok) &&
          (tok.text == "const" || tok.text == "noexcept" ||
           tok.text == "override" || tok.text == "final" ||
           tok.text == "mutable" || tok.text == "try")) {
        if (tok.text == "noexcept" && k + 1 < t_.size() &&
            IsPunctTok(t_[k + 1], "(")) {
          k = SkipBalanced(k + 1, "(", ")");
          if (k == kNpos) return i;
        } else {
          ++k;
        }
        continue;
      }
      if (IsPunctTok(tok, "&") || IsPunctTok(tok, "&&")) {
        ++k;
        continue;
      }
      if (IsPunctTok(tok, "->")) {  // Trailing return type.
        ++k;
        int angle = 0;
        while (k < t_.size() &&
               (IsIdentTok(t_[k]) || IsPunctTok(t_[k], "::") ||
                IsPunctTok(t_[k], "<") || IsPunctTok(t_[k], ">") ||
                IsPunctTok(t_[k], "*") || IsPunctTok(t_[k], "&") ||
                (angle > 0 && IsPunctTok(t_[k], ",")))) {
          if (IsPunctTok(t_[k], "<")) ++angle;
          if (IsPunctTok(t_[k], ">") && angle > 0) --angle;
          ++k;
        }
        continue;
      }
      if (IsPunctTok(tok, ":")) {
        const std::size_t body = ParseInitList(k + 1);
        if (body == kNpos) return i;
        k = body;
        continue;  // Lands on '{' below.
      }
      if (IsPunctTok(tok, "{")) {
        return ScanBody(name, t_[i].line, k, arity);
      }
      return i;  // ';', '=', or expression context: not a definition.
    }
    return i;
  }

  std::string Qualify(const std::string& name) const {
    std::string full;
    for (const Scope& scope : scopes_) {
      if (scope.name.empty()) continue;
      full += scope.name;
      full += "::";
    }
    return full + name;
  }

  std::size_t ScanBody(const std::string& name, int sig_line,
                       std::size_t body_open, const Arity& arity) {
    FunctionInfo fn;
    fn.name = Qualify(name);
    fn.line = sig_line;
    fn.min_args = arity.min_args;
    fn.max_args = arity.max_args;
    fn.suppress = SuppressSetFor(sig_line);
    // Contract markers may sit atop a short doc comment; line comments
    // attach markers to their own line, so scan a few lines up.
    for (int line = sig_line - 5; line <= sig_line; ++line) {
      const LineMarkers* m = file_.MarkersFor(line);
      if (m != nullptr) {
        fn.contracts.insert(m->contracts.begin(), m->contracts.end());
      }
    }

    int bdepth = 1;
    std::size_t m = body_open + 1;
    int last_line = t_[body_open].line;
    while (m < t_.size() && bdepth > 0) {
      const Token& tok = t_[m];
      last_line = tok.line;
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "{") ++bdepth;
        if (tok.text == "}") --bdepth;
        ++m;
        continue;
      }
      if (!IsIdentTok(tok)) {
        ++m;
        continue;
      }
      ScanIdentifier(fn, m);
      ++m;
    }

    bodies_.push_back(
        BodyRange{sig_line, last_line, out_->functions.size()});
    out_->functions.push_back(std::move(fn));
    return m;
  }

  void AddOp(FunctionInfo& fn, int kind, int line, std::string detail) {
    Op op;
    op.kind = kind;
    op.line = line;
    op.detail = std::move(detail);
    op.suppress = SuppressSetFor(line);
    if (kind == Op::kNondet) {
      const LineMarkers* m = file_.MarkersFor(line);
      if (m != nullptr && m->order_insensitive) {
        op.suppress.insert("mcm-nondet-reach");
      }
    }
    fn.ops.push_back(std::move(op));
  }

  bool PlainOrStd(std::size_t m) const {
    if (m == 0) return true;
    const Token& prev = t_[m - 1];
    if (prev.kind != TokenKind::kPunct) return true;
    if (prev.text == "." || prev.text == "->") return false;
    if (prev.text == "::") {
      return m >= 2 && IsIdentTok(t_[m - 2]) && t_[m - 2].text == "std";
    }
    return true;
  }

  bool ArglessTime(std::size_t m) const {
    const std::size_t a = m + 2;
    if (a >= t_.size()) return false;
    if (IsPunctTok(t_[a], ")")) return true;
    return a + 1 < t_.size() && IsPunctTok(t_[a + 1], ")") &&
           (t_[a].text == "0" ||
            (IsIdentTok(t_[a]) &&
             (t_[a].text == "NULL" || t_[a].text == "nullptr")));
  }

  // For "map<Key, ...>": does Key (the first template argument) contain a
  // raw pointer?  Pointer keys order by allocation address.
  bool FirstTemplateArgHasPointer(std::size_t angle_open) const {
    int depth = 1;
    for (std::size_t k = angle_open + 1; k < t_.size() && depth > 0; ++k) {
      if (IsPunctTok(t_[k], "<")) ++depth;
      if (IsPunctTok(t_[k], ">")) --depth;
      if (depth == 1 && IsPunctTok(t_[k], ",")) return false;
      if (IsPunctTok(t_[k], "*")) return true;
    }
    return false;
  }

  // "lock_guard<std::mutex> lock(outbox_mu_)": the guarded mutex is the
  // last identifier of the first constructor argument.
  std::string LockArgName(std::size_t m) const {
    std::size_t k = m + 1;
    if (k < t_.size() && IsPunctTok(t_[k], "<")) {
      int depth = 1;
      for (++k; k < t_.size() && depth > 0; ++k) {
        if (IsPunctTok(t_[k], "<")) ++depth;
        if (IsPunctTok(t_[k], ">")) --depth;
      }
    }
    if (k < t_.size() && IsIdentTok(t_[k])) ++k;  // The variable name.
    if (k >= t_.size() || !IsPunctTok(t_[k], "(")) return "";
    std::string name;
    for (++k; k < t_.size(); ++k) {
      if (IsPunctTok(t_[k], ",") || IsPunctTok(t_[k], ")")) break;
      if (IsIdentTok(t_[k]) && !IsKeyword(t_[k].text)) name = t_[k].text;
    }
    return name;
  }

  void ScanIdentifier(FunctionInfo& fn, std::size_t m) {
    const std::string& text = t_[m].text;
    const int line = t_[m].line;
    const bool call = m + 1 < t_.size() && IsPunctTok(t_[m + 1], "(");
    const bool member =
        m > 0 && (IsPunctTok(t_[m - 1], ".") || IsPunctTok(t_[m - 1], "->"));

    if (!IsKeyword(text)) {
      const std::set<std::string> sup = SuppressSetFor(line);
      if (sup.count("*") == 0 && sup.count("mcm-guard-check") == 0) {
        fn.refs.emplace(text, line);  // Keeps the first line per name.
      }
    } else {
      if (text == "new") AddOp(fn, Op::kAlloc, line, "new");
      if (text == "throw") AddOp(fn, Op::kAlloc, line, "throw");
      return;
    }

    // Direct nondeterminism sources (mirrors mcm-nondeterminism, plus
    // thread ids and pointer-keyed ordering).
    if ((text == "rand" || text == "srand") && call && PlainOrStd(m)) {
      AddOp(fn, Op::kNondet, line, text + "()");
    } else if (text == "random_device" && PlainOrStd(m)) {
      AddOp(fn, Op::kNondet, line, "std::random_device");
    } else if (text == "time" && call && PlainOrStd(m) && ArglessTime(m)) {
      AddOp(fn, Op::kNondet, line, "time()");
    } else if ((text == "steady_clock" || text == "system_clock" ||
                text == "high_resolution_clock") &&
               m + 2 < t_.size() && IsPunctTok(t_[m + 1], "::") &&
               IsIdentTok(t_[m + 2]) && t_[m + 2].text == "now") {
      AddOp(fn, Op::kNondet, line, text + "::now()");
    } else if (text == "get_id" && call) {
      AddOp(fn, Op::kNondet, line, "thread-id read (get_id)");
    } else if ((text == "map" || text == "set" || text == "multimap" ||
                text == "multiset") &&
               m + 1 < t_.size() && IsPunctTok(t_[m + 1], "<") &&
               FirstTemplateArgHasPointer(m + 1)) {
      AddOp(fn, Op::kNondet, line,
            "pointer-keyed std::" + text + " (orders by address)");
    }

    // Allocation.
    if (call && !member &&
        (text == "malloc" || text == "calloc" || text == "realloc" ||
         text == "free" || text == "strdup" || text == "aligned_alloc")) {
      AddOp(fn, Op::kAlloc, line, text + "()");
    } else if (text == "make_unique" || text == "make_shared") {
      AddOp(fn, Op::kAlloc, line, "std::" + text);
    } else if (call && member && IsGrowthCall(text)) {
      AddOp(fn, Op::kAlloc, line, "." + text + "() (may allocate)");
    }

    // Locking.
    if (text == "lock_guard" || text == "scoped_lock" ||
        text == "unique_lock" || text == "shared_lock") {
      AddOp(fn, Op::kLock, line, "std::" + text);
      const std::string mu = LockArgName(m);
      if (!mu.empty()) fn.locks.insert(mu);
    } else if (call && member &&
               (text == "lock" || text == "try_lock" ||
                text == "lock_shared")) {
      AddOp(fn, Op::kLock, line, "." + text + "()");
      if (m >= 2 && IsIdentTok(t_[m - 2])) fn.locks.insert(t_[m - 2].text);
    }

    // Blocking / non-signal-safe calls.
    if (call && IsBlockingCall(text)) {
      AddOp(fn, Op::kBlocking, line, text + "()");
    }

    // Call sites: record the written qualifier chain; skip std::.
    if (call) {
      std::size_t first = m;
      while (first >= 2 && IsPunctTok(t_[first - 1], "::") &&
             IsIdentTok(t_[first - 2]) && !IsKeyword(t_[first - 2].text)) {
        first -= 2;
      }
      if (t_[first].text == "std") return;
      std::string written;
      for (std::size_t k = first; k <= m; k += 2) {
        if (!written.empty()) written += "::";
        written += t_[k].text;
      }
      CallSite site;
      site.name = std::move(written);
      site.line = line;
      site.member = first > 0 && (IsPunctTok(t_[first - 1], ".") ||
                                  IsPunctTok(t_[first - 1], "->"));
      site.args = CallArgCount(m + 1);
      site.suppress = SuppressSetFor(line);
      fn.calls.push_back(std::move(site));
    }
  }

  // Unordered-container iterations are found by the shared file-level pass
  // (alias tracking is file-scoped) and attributed to the enclosing
  // function here.
  void AssignUnorderedIterations() {
    for (const UnorderedIterHit& hit : FindUnorderedIterations(file_)) {
      if (hit.annotated) continue;  // order-insensitive: sanitized.
      for (const BodyRange& body : bodies_) {
        if (hit.first_line < body.first_line ||
            hit.first_line > body.last_line) {
          continue;
        }
        AddOp(out_->functions[body.function_index], Op::kNondet,
              hit.first_line, "unordered-container iteration (hash order)");
        break;
      }
    }
  }

  const SourceFile& file_;
  const std::vector<Token>& t_;
  FileIndex* out_;
  int depth_ = 0;
  std::vector<Scope> scopes_;
  std::vector<BodyRange> bodies_;
};

// ---- Cache serialization ----------------------------------------------------
//
// Line-oriented, fields separated by '\x1f' (never present in paths, names,
// or diagnostic messages).  Any structural surprise fails the whole load --
// the cache is a pure accelerator, so "reparse everything" is always a
// correct fallback.

constexpr char kSep = '\x1f';
constexpr const char* kMagic = "mcmlint-cache";
constexpr int kVersion = 3;

std::string JoinSet(const std::set<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

std::set<std::string> SplitSet(const std::string& joined) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while (pos <= joined.size()) {
    const std::size_t comma = joined.find(',', pos);
    const std::string item =
        joined.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.insert(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t sep = line.find(kSep, pos);
    fields.push_back(
        line.substr(pos, sep == std::string::npos ? sep : sep - pos));
    if (sep == std::string::npos) break;
    pos = sep + 1;
  }
  return fields;
}

bool ParseInt(const std::string& text, long long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

// Content hashes use the full uint64 range, which overflows strtoll.
bool ParseUint(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

void WriteFile(std::ostream& out, const FileIndex& fi) {
  out << 'F' << kSep << fi.path << kSep << fi.content_hash << '\n';
  for (const Diagnostic& d : fi.file_diags) {
    out << 'D' << kSep << d.line << kSep << d.rule << kSep << d.message
        << '\n';
  }
  for (const EnvRead& e : fi.env_reads) {
    out << 'E' << kSep << e.line << kSep << e.name << '\n';
  }
  for (const GuardedVar& g : fi.guarded) {
    out << 'G' << kSep << g.line << kSep << g.name << kSep << g.mutex << '\n';
  }
  for (const FunctionInfo& fn : fi.functions) {
    out << 'U' << kSep << fn.line << kSep << fn.min_args << kSep
        << fn.max_args << kSep << fn.name << kSep << JoinSet(fn.contracts)
        << kSep << JoinSet(fn.suppress) << kSep << JoinSet(fn.locks) << '\n';
    for (const Op& op : fn.ops) {
      out << 'O' << kSep << op.kind << kSep << op.line << kSep << op.detail
          << kSep << JoinSet(op.suppress) << '\n';
    }
    for (const CallSite& call : fn.calls) {
      out << 'C' << kSep << call.line << kSep << (call.member ? 1 : 0) << kSep
          << call.args << kSep << call.name << kSep << JoinSet(call.suppress)
          << '\n';
    }
    for (const auto& [name, line] : fn.refs) {
      out << 'R' << kSep << line << kSep << name << '\n';
    }
  }
}

}  // namespace

void IndexFile(const SourceFile& file, FileIndex* out) {
  Indexer(file, out).Run();
}

std::uint64_t HashContent(const std::string& content) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64.
  for (const char c : content) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool SaveIndexCache(const std::string& path, std::uint64_t config_hash,
                    const std::map<std::string, FileIndex>& cache) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "mcmlint: cannot write cache %s\n", path.c_str());
    return false;
  }
  out << kMagic << ' ' << kVersion << ' ' << config_hash << '\n';
  for (const auto& [rel, fi] : cache) {
    WriteFile(out, fi);
  }
  return static_cast<bool>(out);
}

bool LoadIndexCache(const std::string& path, std::uint64_t config_hash,
                    std::map<std::string, FileIndex>* cache) {
  cache->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header)) return false;
  {
    std::istringstream hs(header);
    std::string magic;
    int version = 0;
    std::uint64_t cfg = 0;
    if (!(hs >> magic >> version >> cfg) || magic != kMagic ||
        version != kVersion || cfg != config_hash) {
      return false;
    }
  }
  FileIndex* current = nullptr;
  FunctionInfo* fn = nullptr;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = SplitFields(line);
    const std::string& tag = f[0];
    long long a = 0;
    const auto fail = [&]() {
      cache->clear();
      return false;
    };
    if (tag == "F") {
      std::uint64_t hash = 0;
      if (f.size() != 3 || !ParseUint(f[2], &hash)) return fail();
      current = &(*cache)[f[1]];
      current->path = f[1];
      current->content_hash = hash;
      fn = nullptr;
    } else if (current == nullptr) {
      return fail();
    } else if (tag == "D") {
      if (f.size() != 4 || !ParseInt(f[1], &a)) return fail();
      current->file_diags.push_back(
          Diagnostic{current->path, static_cast<int>(a), f[2], f[3]});
    } else if (tag == "E") {
      if (f.size() != 3 || !ParseInt(f[1], &a)) return fail();
      current->env_reads.push_back(
          EnvRead{current->path, static_cast<int>(a), f[2]});
    } else if (tag == "G") {
      if (f.size() != 4 || !ParseInt(f[1], &a)) return fail();
      current->guarded.push_back(GuardedVar{f[2], f[3], static_cast<int>(a)});
    } else if (tag == "U") {
      long long min_args = 0, max_args = 0;
      if (f.size() != 8 || !ParseInt(f[1], &a) || !ParseInt(f[2], &min_args) ||
          !ParseInt(f[3], &max_args)) {
        return fail();
      }
      FunctionInfo info;
      info.line = static_cast<int>(a);
      info.min_args = static_cast<int>(min_args);
      info.max_args = static_cast<int>(max_args);
      info.name = f[4];
      info.contracts = SplitSet(f[5]);
      info.suppress = SplitSet(f[6]);
      info.locks = SplitSet(f[7]);
      current->functions.push_back(std::move(info));
      fn = &current->functions.back();
    } else if (fn == nullptr) {
      return fail();
    } else if (tag == "O") {
      long long kind = 0;
      if (f.size() != 5 || !ParseInt(f[1], &kind) || !ParseInt(f[2], &a)) {
        return fail();
      }
      Op op;
      op.kind = static_cast<int>(kind);
      op.line = static_cast<int>(a);
      op.detail = f[3];
      op.suppress = SplitSet(f[4]);
      fn->ops.push_back(std::move(op));
    } else if (tag == "C") {
      long long member = 0, args = 0;
      if (f.size() != 6 || !ParseInt(f[1], &a) || !ParseInt(f[2], &member) ||
          !ParseInt(f[3], &args)) {
        return fail();
      }
      CallSite call;
      call.line = static_cast<int>(a);
      call.member = member != 0;
      call.args = static_cast<int>(args);
      call.name = f[4];
      call.suppress = SplitSet(f[5]);
      fn->calls.push_back(std::move(call));
    } else if (tag == "R") {
      if (f.size() != 3 || !ParseInt(f[1], &a)) return fail();
      fn->refs.emplace(f[2], static_cast<int>(a));
    } else {
      return fail();
    }
  }
  return true;
}

}  // namespace mcmlint
