#include "rules.h"

#include <algorithm>
#include <set>

namespace mcmlint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// True when tokens[i] is a plain use or qualified exactly by "std::" — i.e.
// not a member access and not SomeClass::name.
bool PlainOrStdQualified(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (prev.kind != TokenKind::kPunct) return true;
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.text == "::") {
    return i >= 2 && IsIdent(t[i - 2], "std");
  }
  return true;
}

bool StdQualified(const std::vector<Token>& t, std::size_t i) {
  return i >= 2 && IsPunct(t[i - 1], "::") && IsIdent(t[i - 2], "std");
}

bool NotMember(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return true;
  return !IsPunct(t[i - 1], ".") && !IsPunct(t[i - 1], "->");
}

// Type qualifiers that make a static/global safe for mcm-mutable-static.
bool IsSafeQualifier(const std::string& text) {
  if (text == "const" || text == "constexpr" || text == "constinit" ||
      text == "thread_local") {
    return true;
  }
  if (text.compare(0, 6, "atomic") == 0) return true;  // atomic, atomic_int...
  if (text == "mutex" || text == "shared_mutex" || text == "recursive_mutex" ||
      text == "timed_mutex" || text == "recursive_timed_mutex" ||
      text == "condition_variable" || text == "condition_variable_any" ||
      text == "once_flag") {
    return true;
  }
  return false;
}

// Keywords whose presence means a backward scan did not cover a declaration.
bool IsStatementKeyword(const std::string& text) {
  for (const char* kw :
       {"return",   "if",      "while",    "for",      "switch",  "case",
        "throw",    "new",     "delete",   "else",     "do",      "goto",
        "sizeof",   "typedef", "using",    "template", "typename", "operator",
        "co_await", "co_return", "co_yield", "struct",  "class",   "enum",
        "break",    "continue", "default",  "public",  "private", "protected"}) {
    if (text == kw) return true;
  }
  return false;
}

void Emit(const SourceFile& file, int line, const char* rule,
          std::string message, std::vector<Diagnostic>* diags) {
  diags->push_back(Diagnostic{file.path, line, rule, std::move(message)});
}

}  // namespace

void CheckNondeterminism(const SourceFile& file,
                         std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-nondeterminism";
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const std::string& text = t[i].text;
    const bool has_call = i + 1 < t.size() && IsPunct(t[i + 1], "(");
    if ((text == "rand" || text == "srand") && has_call &&
        PlainOrStdQualified(t, i)) {
      Emit(file, t[i].line, kRule,
           text + "() draws from global, unseeded state; use mcm::Rng "
                  "substreams derived from the run seed",
           diags);
      continue;
    }
    if (text == "random_device" && PlainOrStdQualified(t, i)) {
      Emit(file, t[i].line, kRule,
           "std::random_device is nondeterministic; seed mcm::Rng from the "
           "run config instead",
           diags);
      continue;
    }
    if (text == "time" && has_call && PlainOrStdQualified(t, i)) {
      // Argless forms only: time(), time(0), time(NULL), time(nullptr).
      const std::size_t a = i + 2;
      const bool argless =
          a < t.size() &&
          (IsPunct(t[a], ")") ||
           (a + 1 < t.size() && IsPunct(t[a + 1], ")") &&
            (t[a].text == "0" || IsIdent(t[a], "NULL") ||
             IsIdent(t[a], "nullptr"))));
      if (argless) {
        Emit(file, t[i].line, kRule,
             "time() reads the wall clock; results must not depend on when "
             "the run started",
             diags);
      }
      continue;
    }
    if ((text == "steady_clock" || text == "system_clock" ||
         text == "high_resolution_clock") &&
        i + 2 < t.size() && IsPunct(t[i + 1], "::") && IsIdent(t[i + 2], "now")) {
      Emit(file, t[i].line, kRule,
           "clock reads outside src/telemetry/ can leak timing into "
           "results; use telemetry::MonotonicSeconds() for telemetry-only "
           "timing",
           diags);
    }
  }
}

void CheckRawThread(const SourceFile& file, std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-raw-thread";
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const std::string& text = t[i].text;
    if ((text == "thread" || text == "jthread" || text == "async") &&
        StdQualified(t, i)) {
      Emit(file, t[i].line, kRule,
           "std::" + text +
               " bypasses the runtime/ worker pool and its "
               "ordered-commit determinism contract; use ParallelFor or "
               "TaskGroup",
           diags);
    }
  }
}

void CheckBanned(const SourceFile& file,
                 const std::vector<std::string>& banned,
                 std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-banned";
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    if (i + 1 >= t.size() || !IsPunct(t[i + 1], "(")) continue;
    if (!PlainOrStdQualified(t, i)) continue;
    if (std::find(banned.begin(), banned.end(), t[i].text) == banned.end()) {
      continue;
    }
    Emit(file, t[i].line, kRule,
         t[i].text + "() is on the banned-function list "
                     "(tools/mcmlint/banned.txt)",
         diags);
  }
}

void CheckMutableStatic(const SourceFile& file,
                        std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-mutable-static";
  const std::vector<Token>& t = file.tokens;

  // Declarations introduced by the `static` keyword.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t[i], "static")) continue;
    int depth = 0;
    bool qualified = false;
    bool is_function = false;
    bool terminated = false;
    int last_line = t[i].line;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const Token& tok = t[j];
      last_line = tok.line;
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "<") {
          ++depth;
        } else if (tok.text == ">") {
          if (depth > 0) --depth;
        } else if (depth == 0) {
          if (tok.text == "=" || tok.text == ";" || tok.text == "{") {
            terminated = true;
            break;
          }
          if (tok.text == "(") {  // function declaration or definition
            is_function = true;
            break;
          }
          if (tok.text == "&") qualified = true;  // reference binding
        }
      } else if (tok.kind == TokenKind::kIdentifier && depth == 0 &&
                 IsSafeQualifier(tok.text)) {
        qualified = true;
      }
    }
    if (is_function || !terminated || qualified) continue;
    if (file.GuardedByIn(t[i].line, last_line)) continue;
    Emit(file, t[i].line, kRule,
         "mutable static: make it const/constexpr/std::atomic, or annotate "
         "'// mcmlint: guarded-by(<mutex>)' if a lock protects every access",
         diags);
  }

  // Namespace-scope globals following the g_* convention.  (A token scanner
  // cannot see anonymous-namespace scope, so the naming convention stands in
  // for it; see the rule catalog in docs/ARCHITECTURE.md.)
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier ||
        t[i].text.compare(0, 2, "g_") != 0 || i == 0) {
      continue;
    }
    const Token& prev = t[i - 1];
    const bool typeish =
        (prev.kind == TokenKind::kIdentifier &&
         !IsStatementKeyword(prev.text)) ||
        IsPunct(prev, ">") || IsPunct(prev, "*") || IsPunct(prev, "&");
    if (!typeish) continue;
    // Walk back to the start of the statement; everything between must look
    // like a type for this to be a declaration.
    bool is_decl = true;
    bool qualified = false;
    bool has_static = false;
    for (std::size_t k = i; k-- > 0;) {
      const Token& tok = t[k];
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == ";" || tok.text == "{" || tok.text == "}") break;
        if (tok.text != "::" && tok.text != "<" && tok.text != ">" &&
            tok.text != "*" && tok.text != "&" && tok.text != ",") {
          is_decl = false;
          break;
        }
      } else if (tok.kind == TokenKind::kIdentifier) {
        if (IsStatementKeyword(tok.text)) {
          is_decl = false;
          break;
        }
        if (tok.text == "static") has_static = true;  // handled above
        if (IsSafeQualifier(tok.text)) qualified = true;
      } else {
        is_decl = false;
        break;
      }
    }
    if (!is_decl || has_static || qualified) continue;
    if (file.GuardedByIn(t[i].line, t[i].line)) continue;
    Emit(file, t[i].line, kRule,
         "mutable global '" + t[i].text +
             "': make it const/std::atomic, or annotate '// mcmlint: "
             "guarded-by(<mutex>)' if a lock protects every access",
         diags);
  }
}

std::vector<UnorderedIterHit> FindUnorderedIterations(const SourceFile& file) {
  std::vector<UnorderedIterHit> hits;
  const std::vector<Token>& t = file.tokens;

  std::set<std::string> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> tracked;

  // Pass 1: file-local aliases, then variables/members/params of unordered
  // container type.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (IsIdent(t[i], "using") && i + 2 < t.size() &&
        t[i + 1].kind == TokenKind::kIdentifier && IsPunct(t[i + 2], "=")) {
      for (std::size_t j = i + 3; j < t.size() && !IsPunct(t[j], ";"); ++j) {
        if (t[j].kind == TokenKind::kIdentifier &&
            unordered_types.count(t[j].text) > 0) {
          unordered_types.insert(t[i + 1].text);
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier ||
        unordered_types.count(t[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < t.size() && IsPunct(t[j], "<")) {  // skip template arguments
      int depth = 1;
      for (++j; j < t.size() && depth > 0; ++j) {
        if (IsPunct(t[j], "<")) ++depth;
        if (IsPunct(t[j], ">")) --depth;
      }
    }
    while (j < t.size() &&
           (IsPunct(t[j], "*") || IsPunct(t[j], "&") ||
            IsIdent(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokenKind::kIdentifier &&
        !IsStatementKeyword(t[j].text)) {
      tracked.insert(t[j].text);
    }
  }
  if (tracked.empty()) return hits;

  // Pass 2: for-loop headers that iterate a tracked container.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t[i], "for") || i + 1 >= t.size() ||
        !IsPunct(t[i + 1], "(")) {
      continue;
    }
    int depth = 1;
    std::size_t colon = 0;  // first lone ':' → range-for
    std::size_t end = i + 2;
    for (; end < t.size() && depth > 0; ++end) {
      if (IsPunct(t[end], "(")) ++depth;
      if (IsPunct(t[end], ")")) --depth;
      if (depth > 0 && colon == 0 && IsPunct(t[end], ":")) colon = end;
    }
    const int first_line = t[i].line;
    const int last_line = end > 0 ? t[end - 1].line : first_line;
    bool violates = false;
    if (colon != 0) {
      for (std::size_t j = colon + 1; j < end; ++j) {
        if (t[j].kind == TokenKind::kIdentifier &&
            tracked.count(t[j].text) > 0 && NotMember(t, j)) {
          violates = true;
        }
      }
    } else {
      for (std::size_t j = i + 2; j + 2 < end; ++j) {
        if (t[j].kind == TokenKind::kIdentifier &&
            tracked.count(t[j].text) > 0 &&
            (IsPunct(t[j + 1], ".") || IsPunct(t[j + 1], "->")) &&
            (IsIdent(t[j + 2], "begin") || IsIdent(t[j + 2], "cbegin") ||
             IsIdent(t[j + 2], "rbegin") || IsIdent(t[j + 2], "crbegin"))) {
          violates = true;
        }
      }
    }
    if (!violates) continue;
    UnorderedIterHit hit;
    hit.first_line = first_line;
    hit.last_line = last_line;
    hit.header_end_tok = end;
    hit.annotated = file.OrderInsensitiveIn(first_line, last_line);
    hits.push_back(hit);
  }
  return hits;
}

void CheckUnorderedIteration(const SourceFile& file,
                             std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-unordered-iteration";
  for (const UnorderedIterHit& hit : FindUnorderedIterations(file)) {
    if (hit.annotated) continue;
    Emit(file, hit.first_line, kRule,
         "iteration over a std::unordered_ container follows hash order, "
         "which the determinism contract does not cover; iterate a sorted "
         "view, or annotate '// mcmlint: order-insensitive' if every "
         "iteration effect commutes",
         diags);
  }
}

void CheckFloatUnordered(const SourceFile& file,
                         std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-float-unordered";
  const std::vector<Token>& t = file.tokens;

  const std::vector<UnorderedIterHit> hits = FindUnorderedIterations(file);
  if (hits.empty()) return;

  // Identifiers declared float/double anywhere in the file (declaration
  // tracking is file-local, like the alias tracking above).
  std::set<std::string> floats;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t[i], "float") && !IsIdent(t[i], "double")) continue;
    std::size_t j = i + 1;
    while (j < t.size() &&
           (IsPunct(t[j], "*") || IsPunct(t[j], "&") ||
            IsIdent(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokenKind::kIdentifier &&
        !IsStatementKeyword(t[j].text)) {
      floats.insert(t[j].text);
    }
  }
  if (floats.empty()) return;

  std::set<int> reported;
  for (const UnorderedIterHit& hit : hits) {
    // Body: a balanced brace block right after the header, else a single
    // statement up to ';'.
    std::size_t j = hit.header_end_tok;
    std::size_t body_end = t.size();
    if (j < t.size() && IsPunct(t[j], "{")) {
      int depth = 1;
      std::size_t k = j + 1;
      while (k < t.size() && depth > 0) {
        if (IsPunct(t[k], "{")) ++depth;
        if (IsPunct(t[k], "}")) --depth;
        ++k;
      }
      body_end = k;
      ++j;
    } else {
      std::size_t k = j;
      while (k < t.size() && !IsPunct(t[k], ";")) ++k;
      body_end = k;
    }
    for (; j + 2 < body_end; ++j) {
      if (t[j].kind != TokenKind::kIdentifier || floats.count(t[j].text) == 0) {
        continue;
      }
      // x += ..., x -= ..., or x = x + ...
      const bool compound = (IsPunct(t[j + 1], "+") || IsPunct(t[j + 1], "-")) &&
                            IsPunct(t[j + 2], "=");
      const bool rebind = j + 3 < body_end && IsPunct(t[j + 1], "=") &&
                          t[j + 2].kind == TokenKind::kIdentifier &&
                          t[j + 2].text == t[j].text &&
                          (IsPunct(t[j + 3], "+") || IsPunct(t[j + 3], "-"));
      if (!compound && !rebind) continue;
      if (!reported.insert(t[j].line).second) continue;
      Emit(file, t[j].line, kRule,
           "floating-point accumulation into '" + t[j].text +
               "' inside an unordered-container loop: FP addition is not "
               "associative, so the result depends on hash order; accumulate "
               "over a sorted view or use integer/fixed-point accumulation",
           diags);
    }
  }
}

void CollectEnvReads(const SourceFile& file,
                     const std::vector<std::string>& functions,
                     const std::vector<std::string>& prefixes,
                     std::vector<EnvRead>* reads) {
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    if (std::find(functions.begin(), functions.end(), t[i].text) ==
        functions.end()) {
      continue;
    }
    if (!NotMember(t, i)) continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    if (t[i + 2].kind != TokenKind::kString) continue;  // dynamic name
    const std::string& name = t[i + 2].text;
    for (const std::string& prefix : prefixes) {
      if (name.compare(0, prefix.size(), prefix) == 0) {
        reads->push_back(EnvRead{file.path, t[i].line, name});
        break;
      }
    }
  }
}

std::vector<EnvDoc> ParseReadmeEnvTable(
    const std::string& content, const std::string& section,
    const std::vector<std::string>& prefixes) {
  std::vector<EnvDoc> docs;
  bool in_section = false;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string line =
        content.substr(pos, eol == std::string::npos ? eol : eol - pos);
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') {
      in_section = line.find(section) != std::string::npos;
    } else if (in_section && first != std::string::npos &&
               line[first] == '|') {
      const std::size_t cell_end = line.find('|', first + 1);
      if (cell_end != std::string::npos) {
        const std::string cell = line.substr(first + 1, cell_end - first - 1);
        const std::size_t tick = cell.find('`');
        const std::size_t tick2 =
            tick == std::string::npos ? std::string::npos
                                      : cell.find('`', tick + 1);
        if (tick2 != std::string::npos) {
          const std::string name = cell.substr(tick + 1, tick2 - tick - 1);
          bool matches = false;
          for (const std::string& prefix : prefixes) {
            if (name.compare(0, prefix.size(), prefix) == 0) matches = true;
          }
          if (matches &&
              name.find_first_not_of(
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") ==
                  std::string::npos) {
            docs.push_back(EnvDoc{line_no, name});
          }
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return docs;
}

void DiffEnvRegistry(const std::vector<EnvRead>& reads,
                     const std::vector<EnvDoc>& docs,
                     const std::string& readme_path,
                     std::vector<Diagnostic>* diags) {
  static constexpr const char* kRule = "mcm-env-registry";
  std::set<std::string> documented;
  for (const EnvDoc& doc : docs) documented.insert(doc.name);
  std::set<std::string> read_names;
  for (const EnvRead& read : reads) read_names.insert(read.name);

  std::set<std::string> reported;
  for (const EnvRead& read : reads) {
    if (documented.count(read.name) > 0) continue;
    if (!reported.insert(read.name).second) continue;  // first site per name
    diags->push_back(Diagnostic{
        read.path, read.line, kRule,
        "env var '" + read.name +
            "' is read here but has no row in the README "
            "environment-variable table"});
  }
  for (const EnvDoc& doc : docs) {
    if (read_names.count(doc.name) > 0) continue;
    diags->push_back(Diagnostic{
        readme_path, doc.line, kRule,
        "env var '" + doc.name +
            "' is documented in the README but never read by any scanned "
            "source"});
  }
}

}  // namespace mcmlint
