// mcmlint fixture: mcm-env-registry two-way diff against README_fixture.md.
#include <cstdlib>
#include <string>

namespace fixture {

std::string GetEnv(const std::string& name, const std::string& fallback);

std::string DocumentedRead() {
  return GetEnv("MCM_FIXTURE_DOCUMENTED", "");
}

std::string UndocumentedRead() {
  return GetEnv("MCM_FIXTURE_UNDOCUMENTED", "");  // expect: mcm-env-registry
}

const char* RawRead() {
  return std::getenv("MCM_FIXTURE_RAW");  // expect: mcm-env-registry
}

}  // namespace fixture
