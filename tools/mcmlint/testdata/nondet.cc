// mcmlint fixture: mcm-nondeterminism true positives and NOLINT suppression.
// Lines carrying "expect: <rule>" must produce exactly that diagnostic.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int DrawBad() {
  return std::rand();  // expect: mcm-nondeterminism
}

void SeedBad() {
  std::srand(42u);  // expect: mcm-nondeterminism
}

double ClockBad() {
  auto t0 = std::chrono::steady_clock::now();  // expect: mcm-nondeterminism
  auto t1 = std::chrono::system_clock::now();  // expect: mcm-nondeterminism
  return std::chrono::duration<double>(t0.time_since_epoch()).count() +
         std::chrono::duration<double>(t1.time_since_epoch()).count();
}

long WallBad() {
  return std::time(nullptr);  // expect: mcm-nondeterminism
}

unsigned EntropyBad() {
  std::random_device entropy;  // expect: mcm-nondeterminism
  return entropy();
}

int DrawSuppressed() {
  return std::rand();  // NOLINT(mcm-nondeterminism) fixture suppression
}

// Mentions of rand() or steady_clock::now() in comments or strings must not
// be flagged.
const char* kDescription = "call rand() and steady_clock::now() at will";

}  // namespace fixture
