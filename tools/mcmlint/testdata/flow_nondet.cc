// mcmlint fixture: mcm-nondet-reach -- taint from a nondeterminism source
// into an MCM_CONTRACT(deterministic) entry point through call edges inside
// one file.  Cross-file propagation is covered by flow_taint_a/b.cc.
#include <cstdlib>

namespace fixture_flow {

int FlowLocalSeed() {
  return std::rand();  // expect: mcm-nondeterminism
}

int FlowLocalStep(int x) { return x + FlowLocalSeed(); }

// MCM_CONTRACT(deterministic)
int FlowTaintedEntry(int x) {  // expect: mcm-nondet-reach
  return FlowLocalStep(x);
}

int FlowPureStep(int x) { return x * 2; }

// MCM_CONTRACT(deterministic)
int FlowCleanEntry(int x) {
  return FlowPureStep(x);
}

// A sanitized edge: the nondeterminism stays behind the NOLINT, so the
// contract holds even though the callee is tainted.
// MCM_CONTRACT(deterministic)
int FlowSanitizedEntry(int x) {
  return FlowLocalStep(x);  // NOLINT(mcm-nondet-reach)
}

}  // namespace fixture_flow
