// mcmlint fixture: mcm-mutable-static detection, the safe forms, and the
// guarded-by annotation — at function scope and for g_* namespace globals.
#include <atomic>
#include <mutex>

namespace fixture {

int g_fixture_count = 0;  // expect: mcm-mutable-static
std::atomic<int> g_fixture_flag{0};
std::mutex g_fixture_mu;
int g_fixture_guarded = 0;  // mcmlint: guarded-by(g_fixture_mu)

int NextId() {
  static int next_id = 0;  // expect: mcm-mutable-static
  return ++next_id;
}

int CachedLimit() {
  static const int limit = 64;
  return limit;
}

int AtomicTicket() {
  static std::atomic<int> ticket{0};
  return ticket.fetch_add(1);
}

int GuardedTotal(int delta) {
  static std::mutex mu;
  static int total = 0;  // mcmlint: guarded-by(mu)
  std::lock_guard<std::mutex> lock(mu);
  total += delta;
  return total;
}

}  // namespace fixture
