// mcmlint fixture: mcm-handler-safety -- MCM_CONTRACT(signal-safe)
// functions must not reach allocation, locking, or blocking calls (stdio
// included) through any call chain.
#include <cstdio>

namespace fixture_flow {

void HandlerLogStep() {
  std::printf("stopping\n");
}

int HandlerAtomicStep(int signum) { return signum + 1; }

// Blocking stdio one call away.
// MCM_CONTRACT(signal-safe)
void HandlerUnsafeOnSignal(int signum) {  // expect: mcm-handler-safety
  HandlerLogStep();
  (void)signum;
}

// Direct allocation inside the handler itself.
// MCM_CONTRACT(signal-safe)
void HandlerAllocOnSignal(int signum) {  // expect: mcm-handler-safety
  int* scratch = new int(signum);
  delete scratch;
}

// MCM_CONTRACT(signal-safe)
void HandlerSafeOnSignal(int signum) {
  HandlerAtomicStep(signum);
}

// MCM_CONTRACT(signal-safe)
void HandlerSanitizedOnSignal(int signum) {
  HandlerLogStep();  // NOLINT(mcm-handler-safety)
  (void)signum;
}

}  // namespace fixture_flow
