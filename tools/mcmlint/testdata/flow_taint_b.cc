// mcmlint fixture: the tainted half of the flow_taint_a.cc pair.
#include <chrono>

namespace fixture_flow {

int TaintHelperStep(int x) {
  const auto now = std::chrono::steady_clock::now();  // expect: mcm-nondeterminism
  return x + static_cast<int>(now.time_since_epoch().count() % 7);
}

}  // namespace fixture_flow
