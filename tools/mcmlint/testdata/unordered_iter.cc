// mcmlint fixture: mcm-unordered-iteration detection, alias tracking, and
// the order-insensitive annotation.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

using Index = std::unordered_map<int, int>;

int SumRangeFor(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& entry : counts) {  // expect: mcm-unordered-iteration
    total += entry.second;
  }
  return total;
}

int SumIterator(const Index& index) {
  int total = 0;
  // Iterator-style loops through begin() are caught too.
  for (auto it = index.begin(); it != index.end(); ++it) {  // expect: mcm-unordered-iteration
    total += it->second;
  }
  return total;
}

int SumAnnotated(const std::unordered_set<int>& values) {
  int total = 0;
  for (int v : values) {  // mcmlint: order-insensitive (sum commutes)
    total += v;
  }
  return total;
}

int SumVector(const std::vector<int>& items) {
  int total = 0;
  for (int v : items) {  // ordered container: fine
    total += v;
  }
  return total;
}

}  // namespace fixture
