// mcmlint fixture: mcm-float-unordered -- floating-point accumulation over
// an unordered container is order-dependent even when the loop carries the
// order-insensitive annotation (FP addition does not commute in rounding).
#include <string>
#include <unordered_map>

namespace fixture_flow {

double FloatSumUnordered(const std::unordered_map<std::string, double>& m) {
  double total_cost = 0.0;
  for (const auto& entry : m) {  // expect: mcm-unordered-iteration
    total_cost += entry.second;  // expect: mcm-float-unordered
  }
  return total_cost;
}

double FloatSumAnnotated(const std::unordered_map<std::string, double>& m) {
  double sum_weights = 0.0;
  for (const auto& entry : m) {  // mcmlint: order-insensitive (it is not!)
    sum_weights += entry.second;  // expect: mcm-float-unordered
  }
  return sum_weights;
}

long FloatCountUnordered(const std::unordered_map<std::string, double>& m) {
  long n = 0;
  for (const auto& entry : m) {  // mcmlint: order-insensitive (count commutes)
    n += 1;
    (void)entry;
  }
  return n;
}

double FloatSumSanitized(const std::unordered_map<std::string, double>& m) {
  double acc = 0.0;
  for (const auto& entry : m) {  // mcmlint: order-insensitive (tolerated drift)
    acc += entry.second;  // NOLINT(mcm-float-unordered)
  }
  return acc;
}

}  // namespace fixture_flow
