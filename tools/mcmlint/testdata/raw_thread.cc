// mcmlint fixture: mcm-raw-thread detection and NOLINT suppression.
#include <future>
#include <thread>

namespace fixture {

int LaunchThread() {
  int value = 0;
  std::thread worker([&value] { value = 1; });  // expect: mcm-raw-thread
  worker.join();
  return value;
}

int LaunchAsync() {
  auto pending = std::async([] { return 7; });  // expect: mcm-raw-thread
  return pending.get();
}

unsigned ProbeSuppressed() {
  return std::thread::hardware_concurrency();  // NOLINT(mcm-raw-thread)
}

}  // namespace fixture
