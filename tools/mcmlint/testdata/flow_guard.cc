// mcmlint fixture: mcm-guard-check -- a guarded member may only be touched
// by functions that acquire its mutex themselves or in every caller
// (lock-then-delegate), and an unguarded touch is diagnosed.
#include <deque>
#include <mutex>

namespace fixture_flow {

class GuardedQueue {
 public:
  void SafePush(int v) {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_items_.push_back(v);
  }

  // Lock-then-delegate: the helper below never locks, but its only caller
  // does, so both stay clean.
  void LockedCaller() {
    std::lock_guard<std::mutex> lock(queue_mu_);
    DrainLocked();
  }

  void UnsafeTouch() {
    queue_items_.clear();  // expect: mcm-guard-check
  }

 private:
  void DrainLocked() {
    while (!queue_items_.empty()) queue_items_.pop_front();
  }

  std::mutex queue_mu_;
  std::deque<int> queue_items_;  // mcmlint: guarded-by(queue_mu_)
};

}  // namespace fixture_flow
