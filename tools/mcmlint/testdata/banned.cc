// mcmlint fixture: mcm-banned detection and NOLINT suppression.
#include <cstddef>
#include <cstdio>
#include <cstring>

namespace fixture {

void FormatBad(char* out, int value) {
  std::sprintf(out, "%d", value);  // expect: mcm-banned
}

char* FirstWordBad(char* text) {
  return std::strtok(text, " ");  // expect: mcm-banned
}

void FormatSuppressed(char* out, int value) {
  std::sprintf(out, "%d", value);  // NOLINT(mcm-banned)
}

void FormatGood(char* out, std::size_t size, int value) {
  std::snprintf(out, size, "%d", value);  // near-miss name: fine
}

}  // namespace fixture
