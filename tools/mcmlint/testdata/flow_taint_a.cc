// mcmlint fixture: cross-file taint for mcm-nondet-reach.  The contracted
// entry point lives here; the clock read it reaches lives in
// flow_taint_b.cc, so the diagnostic proves the cross-TU index works.
namespace fixture_flow {

int TaintHelperStep(int x);

// MCM_CONTRACT(deterministic)
int TaintCrossFileEntry(int x) {  // expect: mcm-nondet-reach
  return TaintHelperStep(x);
}

}  // namespace fixture_flow
