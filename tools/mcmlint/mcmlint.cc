// mcmlint: the repo's determinism/concurrency contract checker.
//
// Modes:
//   mcmlint --root DIR [--config FILE]   lint the configured trees; prints
//                                        "file:line: [rule] message" per
//                                        violation and exits nonzero if any.
//   mcmlint --expect FILE...             fixture mode: every rule runs on
//   mcmlint --expect-dir DIR             every file regardless of scoping,
//                                        and diagnostics are compared against
//                                        "expect: mcm-<rule>" comments.
//   mcmlint --list-rules                 print the rule names and exit.
//
// See docs/ARCHITECTURE.md ("Static analysis & determinism contract") for
// the rule catalog and the annotation/suppression policy.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config.h"
#include "lexer.h"
#include "rules.h"

namespace mcmlint {
namespace {

namespace fs = std::filesystem;

constexpr const char* kRuleNames[] = {
    "mcm-nondeterminism", "mcm-unordered-iteration", "mcm-raw-thread",
    "mcm-mutable-static", "mcm-env-registry",        "mcm-banned",
};

// Defaults used when the config does not override them (and in --expect
// mode, which runs without a config file).
const std::vector<std::string> kDefaultBanned = {"strtok", "gets", "sprintf"};
const std::vector<std::string> kDefaultEnvFunctions = {
    "GetEnv", "GetEnvInt", "GetEnvDouble", "ScaledInt", "getenv"};
const std::vector<std::string> kDefaultEnvPrefixes = {"MCM"};
constexpr const char* kDefaultEnvSection = "Environment variables";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

struct LintInputs {
  std::vector<std::string> banned = kDefaultBanned;
  std::vector<std::string> env_functions = kDefaultEnvFunctions;
  std::vector<std::string> env_prefixes = kDefaultEnvPrefixes;
  std::string env_section = kDefaultEnvSection;
};

LintInputs ResolveInputs(const Config& config, const fs::path& root) {
  LintInputs inputs;
  const RuleConfig& banned_rc = config.Rule("mcm-banned");
  const auto list_it = banned_rc.extra.find("list");
  if (list_it != banned_rc.extra.end()) {
    std::string content;
    if (ReadFile((root / list_it->second).string(), &content)) {
      inputs.banned.clear();
      std::istringstream stream(content);
      std::string line;
      while (std::getline(stream, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        for (const std::string& name : SplitList(line)) {
          inputs.banned.push_back(name);
        }
      }
    } else {
      std::fprintf(stderr, "mcmlint: cannot read banned list %s\n",
                   list_it->second.c_str());
    }
  }
  const RuleConfig& env_rc = config.Rule("mcm-env-registry");
  const auto fns_it = env_rc.extra.find("functions");
  if (fns_it != env_rc.extra.end()) {
    inputs.env_functions = SplitList(fns_it->second);
  }
  const auto prefix_it = env_rc.extra.find("prefixes");
  if (prefix_it != env_rc.extra.end()) {
    inputs.env_prefixes = SplitList(prefix_it->second);
  }
  const auto section_it = env_rc.extra.find("section");
  if (section_it != env_rc.extra.end()) {
    inputs.env_section = section_it->second;
  }
  return inputs;
}

// Runs the per-file rules (everything except the cross-file env diff),
// keeping only diagnostics that survive NOLINT suppression.
void LintFile(const SourceFile& file, const LintInputs& inputs,
              const Config* config, const std::string& rel_path,
              std::vector<Diagnostic>* out) {
  const auto in_scope = [&](const char* rule) {
    return config == nullptr || config->InScope(rule, rel_path);
  };
  std::vector<Diagnostic> raw;
  if (in_scope("mcm-nondeterminism")) CheckNondeterminism(file, &raw);
  if (in_scope("mcm-unordered-iteration")) CheckUnorderedIteration(file, &raw);
  if (in_scope("mcm-raw-thread")) CheckRawThread(file, &raw);
  if (in_scope("mcm-mutable-static")) CheckMutableStatic(file, &raw);
  if (in_scope("mcm-banned")) CheckBanned(file, inputs.banned, &raw);
  for (Diagnostic& diag : raw) {
    if (file.Suppressed(diag.line, diag.rule)) continue;
    out->push_back(std::move(diag));
  }
}

void PrintDiagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end());
  for (const Diagnostic& diag : diags) {
    std::printf("%s:%d: [%s] %s\n", diag.path.c_str(), diag.line,
                diag.rule.c_str(), diag.message.c_str());
  }
}

int RunTree(const fs::path& root, const std::string& config_rel) {
  Config config;
  if (!LoadConfig((root / config_rel).string(), &config)) return 2;
  const LintInputs inputs = ResolveInputs(config, root);

  std::vector<std::string> rel_paths;
  for (const std::string& dir : config.scan_dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(config.extensions.begin(), config.extensions.end(),
                    ext) == config.extensions.end()) {
        continue;
      }
      rel_paths.push_back(
          entry.path().lexically_relative(root).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<Diagnostic> diags;
  std::vector<EnvRead> env_reads;
  int scanned = 0;
  for (const std::string& rel : rel_paths) {
    bool excluded = false;
    for (const std::string& prefix : config.excludes) {
      if (rel.compare(0, prefix.size(), prefix) == 0) excluded = true;
    }
    if (excluded) continue;
    std::string content;
    if (!ReadFile((root / rel).string(), &content)) {
      std::fprintf(stderr, "mcmlint: cannot read %s\n", rel.c_str());
      return 2;
    }
    const SourceFile file = Tokenize(rel, content);
    LintFile(file, inputs, &config, rel, &diags);
    if (config.InScope("mcm-env-registry", rel)) {
      std::vector<EnvRead> reads;
      CollectEnvReads(file, inputs.env_functions, inputs.env_prefixes, &reads);
      for (EnvRead& read : reads) {
        if (!file.Suppressed(read.line, "mcm-env-registry")) {
          env_reads.push_back(std::move(read));
        }
      }
    }
    ++scanned;
  }

  if (config.Rule("mcm-env-registry").enabled) {
    const auto readme_it = config.Rule("mcm-env-registry").extra.find("readme");
    const std::string readme_rel =
        readme_it == config.Rule("mcm-env-registry").extra.end()
            ? "README.md"
            : readme_it->second;
    std::string readme;
    if (!ReadFile((root / readme_rel).string(), &readme)) {
      std::fprintf(stderr, "mcmlint: cannot read %s\n", readme_rel.c_str());
      return 2;
    }
    const std::vector<EnvDoc> docs =
        ParseReadmeEnvTable(readme, inputs.env_section, inputs.env_prefixes);
    DiffEnvRegistry(env_reads, docs, readme_rel, &diags);
  }

  PrintDiagnostics(diags);
  std::fprintf(stderr, "mcmlint: %d file(s) scanned, %zu violation(s)\n",
               scanned, diags.size());
  return diags.empty() ? 0 : 1;
}

// --------------------------------------------------------------------------
// Fixture mode: compare actual diagnostics against "expect:" comments.

// Parses "expect: mcm-rule [mcm-rule...]" markers from raw lines.  Works in
// any comment style (//, /* */, <!-- -->) because it scans text, not tokens.
std::multiset<std::pair<int, std::string>> ParseExpectations(
    const std::string& content) {
  std::multiset<std::pair<int, std::string>> expected;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string line =
        content.substr(pos, eol == std::string::npos ? eol : eol - pos);
    ++line_no;
    const std::size_t marker = line.find("expect:");
    if (marker != std::string::npos) {
      std::istringstream stream(line.substr(marker + 7));
      std::string word;
      while (stream >> word) {
        if (word.compare(0, 4, "mcm-") != 0) break;
        expected.emplace(line_no, word);
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return expected;
}

int RunExpect(const std::vector<std::string>& paths) {
  const LintInputs inputs;  // defaults; fixtures target the built-in setup
  std::vector<Diagnostic> diags;
  std::vector<EnvRead> env_reads;
  std::vector<EnvDoc> env_docs;
  std::string readme_path;
  std::multiset<std::pair<int, std::string>> expected;  // keyed per file below
  std::map<std::string, std::multiset<std::pair<int, std::string>>>
      expected_by_file;

  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "mcmlint: cannot read %s\n", path.c_str());
      return 2;
    }
    expected_by_file[path] = ParseExpectations(content);
    if (path.size() > 3 && path.compare(path.size() - 3, 3, ".md") == 0) {
      readme_path = path;
      const std::vector<EnvDoc> docs = ParseReadmeEnvTable(
          content, kDefaultEnvSection, inputs.env_prefixes);
      env_docs.insert(env_docs.end(), docs.begin(), docs.end());
      continue;
    }
    const SourceFile file = Tokenize(path, content);
    LintFile(file, inputs, /*config=*/nullptr, path, &diags);
    std::vector<EnvRead> reads;
    CollectEnvReads(file, inputs.env_functions, inputs.env_prefixes, &reads);
    for (EnvRead& read : reads) {
      if (!file.Suppressed(read.line, "mcm-env-registry")) {
        env_reads.push_back(std::move(read));
      }
    }
  }
  if (!readme_path.empty() || !env_reads.empty()) {
    DiffEnvRegistry(env_reads, env_docs, readme_path, &diags);
  }

  // Compare actual vs expected per file.
  int mismatches = 0;
  std::map<std::string, std::multiset<std::pair<int, std::string>>> actual;
  for (const Diagnostic& diag : diags) {
    actual[diag.path].emplace(diag.line, diag.rule);
  }
  for (const auto& [path, expected_set] : expected_by_file) {
    const auto& actual_set = actual[path];
    for (const auto& [line, rule] : expected_set) {
      if (actual_set.count({line, rule}) == 0) {
        std::printf("%s:%d: expected [%s] diagnostic was not produced\n",
                    path.c_str(), line, rule.c_str());
        ++mismatches;
      }
    }
    for (const auto& [line, rule] : actual_set) {
      if (expected_set.count({line, rule}) == 0) {
        std::printf("%s:%d: unexpected [%s] diagnostic\n", path.c_str(), line,
                    rule.c_str());
        ++mismatches;
      }
    }
  }
  std::fprintf(stderr,
               "mcmlint --expect: %zu file(s), %zu diagnostic(s), "
               "%d mismatch(es)\n",
               paths.size(), diags.size(), mismatches);
  return mismatches == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mcmlint --root DIR [--config FILE]\n"
               "       mcmlint --expect FILE...\n"
               "       mcmlint --expect-dir DIR\n"
               "       mcmlint --list-rules\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string root = ".";
  std::string config_rel = "tools/mcmlint/mcmlint.conf";
  std::vector<std::string> expect_files;
  bool expect_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* rule : kRuleNames) std::printf("%s\n", rule);
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_rel = argv[++i];
    } else if (arg == "--expect") {
      expect_mode = true;
      while (i + 1 < argc) expect_files.push_back(argv[++i]);
    } else if (arg == "--expect-dir" && i + 1 < argc) {
      expect_mode = true;
      const fs::path dir = argv[++i];
      if (!fs::exists(dir)) {
        std::fprintf(stderr, "mcmlint: no such directory %s\n",
                     dir.string().c_str());
        return 2;
      }
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".h" || ext == ".md") {
          expect_files.push_back(entry.path().string());
        }
      }
    } else {
      return Usage();
    }
  }
  if (expect_mode) {
    if (expect_files.empty()) return Usage();
    std::sort(expect_files.begin(), expect_files.end());
    return RunExpect(expect_files);
  }
  return RunTree(fs::path(root), config_rel);
}

}  // namespace
}  // namespace mcmlint

int main(int argc, char** argv) { return mcmlint::Main(argc, argv); }
