// mcmlint: the repo's determinism/concurrency contract checker.
//
// Modes:
//   mcmlint --root DIR [--config FILE]   lint the configured trees; prints
//                                        "file:line: [rule] message" per
//                                        violation and exits nonzero if any.
//     --cache PATH                       persist the cross-TU index keyed by
//                                        file content hashes; unchanged
//                                        files are not re-parsed.
//     --incremental                      shorthand for --cache
//                                        <root>/build/mcmlint.cache.
//     --sarif PATH                       additionally write SARIF 2.1.0.
//     --stats                            print parse/cache counters on
//                                        stderr ("mcmlint-stats: ...").
//     --bench-out PATH                   time a cold full lint and a warm
//                                        incremental re-lint, write a
//                                        BENCH-style report, and exit with
//                                        the lint's status.
//   mcmlint --expect FILE...             fixture mode: every rule (per-file
//   mcmlint --expect-dir DIR             and flow-aware) runs on every file
//                                        regardless of scoping, and
//                                        diagnostics are compared against
//                                        "expect: mcm-<rule>" comments.
//   mcmlint --list-rules                 print the rule names and exit.
//
// See docs/ARCHITECTURE.md ("Static analysis & determinism contract") for
// the rule catalog, the index/taint design, and the annotation policy.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config.h"
#include "flow_rules.h"
#include "index.h"
#include "lexer.h"
#include "rules.h"
#include "runtime/thread_pool.h"
#include "sarif.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace mcmlint {
namespace {

namespace fs = std::filesystem;

constexpr const char* kRuleNames[] = {
    "mcm-nondeterminism", "mcm-unordered-iteration", "mcm-raw-thread",
    "mcm-mutable-static", "mcm-env-registry",        "mcm-banned",
    "mcm-nondet-reach",   "mcm-guard-check",         "mcm-handler-safety",
    "mcm-float-unordered",
};

// Defaults used when the config does not override them (and in --expect
// mode, which runs without a config file).
const std::vector<std::string> kDefaultBanned = {"strtok", "gets", "sprintf"};
const std::vector<std::string> kDefaultEnvFunctions = {
    "GetEnv", "GetEnvInt", "GetEnvDouble", "ScaledInt", "getenv"};
const std::vector<std::string> kDefaultEnvPrefixes = {"MCM"};
constexpr const char* kDefaultEnvSection = "Environment variables";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

struct LintInputs {
  std::vector<std::string> banned = kDefaultBanned;
  std::vector<std::string> env_functions = kDefaultEnvFunctions;
  std::vector<std::string> env_prefixes = kDefaultEnvPrefixes;
  std::string env_section = kDefaultEnvSection;
};

LintInputs ResolveInputs(const Config& config, const fs::path& root) {
  LintInputs inputs;
  const RuleConfig& banned_rc = config.Rule("mcm-banned");
  const auto list_it = banned_rc.extra.find("list");
  if (list_it != banned_rc.extra.end()) {
    std::string content;
    if (ReadFile((root / list_it->second).string(), &content)) {
      inputs.banned.clear();
      std::istringstream stream(content);
      std::string line;
      while (std::getline(stream, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        for (const std::string& name : SplitList(line)) {
          inputs.banned.push_back(name);
        }
      }
    } else {
      std::fprintf(stderr, "mcmlint: cannot read banned list %s\n",
                   list_it->second.c_str());
    }
  }
  const RuleConfig& env_rc = config.Rule("mcm-env-registry");
  const auto fns_it = env_rc.extra.find("functions");
  if (fns_it != env_rc.extra.end()) {
    inputs.env_functions = SplitList(fns_it->second);
  }
  const auto prefix_it = env_rc.extra.find("prefixes");
  if (prefix_it != env_rc.extra.end()) {
    inputs.env_prefixes = SplitList(prefix_it->second);
  }
  const auto section_it = env_rc.extra.find("section");
  if (section_it != env_rc.extra.end()) {
    inputs.env_section = section_it->second;
  }
  return inputs;
}

// The index cache is only valid for the configuration that produced it: a
// retuned rule scope changes which per-file diagnostics get cached, so the
// config file and every resolved input participate in the key.
std::uint64_t ConfigHash(const std::string& config_content,
                         const LintInputs& inputs) {
  std::string key = config_content;
  const auto append = [&key](const std::vector<std::string>& items) {
    for (const std::string& item : items) {
      key += '\x1f';
      key += item;
    }
    key += '\x1e';
  };
  append(inputs.banned);
  append(inputs.env_functions);
  append(inputs.env_prefixes);
  key += inputs.env_section;
  return HashContent(key);
}

// Runs the per-file rules (everything except the cross-file env diff and the
// flow rules), keeping only diagnostics that survive NOLINT suppression.
void LintFile(const SourceFile& file, const LintInputs& inputs,
              const Config* config, const std::string& rel_path,
              std::vector<Diagnostic>* out) {
  const auto in_scope = [&](const char* rule) {
    return config == nullptr || config->InScope(rule, rel_path);
  };
  std::vector<Diagnostic> raw;
  if (in_scope("mcm-nondeterminism")) CheckNondeterminism(file, &raw);
  if (in_scope("mcm-unordered-iteration")) CheckUnorderedIteration(file, &raw);
  if (in_scope("mcm-raw-thread")) CheckRawThread(file, &raw);
  if (in_scope("mcm-mutable-static")) CheckMutableStatic(file, &raw);
  if (in_scope("mcm-banned")) CheckBanned(file, inputs.banned, &raw);
  if (in_scope("mcm-float-unordered")) CheckFloatUnordered(file, &raw);
  for (Diagnostic& diag : raw) {
    if (file.Suppressed(diag.line, diag.rule)) continue;
    out->push_back(std::move(diag));
  }
}

// Parses one file into a FileIndex: per-file diagnostics, env reads, and the
// flow-rule inputs (functions, ops, call sites, guarded vars).
void BuildFileIndex(const std::string& rel, const std::string& content,
                    std::uint64_t content_hash, const LintInputs& inputs,
                    const Config* config, FileIndex* fi) {
  fi->path = rel;
  fi->content_hash = content_hash;
  const SourceFile file = Tokenize(rel, content);
  LintFile(file, inputs, config, rel, &fi->file_diags);
  if (config == nullptr || config->InScope("mcm-env-registry", rel)) {
    std::vector<EnvRead> reads;
    CollectEnvReads(file, inputs.env_functions, inputs.env_prefixes, &reads);
    for (EnvRead& read : reads) {
      if (!file.Suppressed(read.line, "mcm-env-registry")) {
        fi->env_reads.push_back(std::move(read));
      }
    }
  }
  IndexFile(file, fi);
}

struct LintStats {
  int files = 0;
  int parsed = 0;
  int cache_hits = 0;
  int functions = 0;
};

// Lints every file in `rel_paths`, reusing entries of `*files` whose content
// hash is unchanged and parsing the rest in parallel on the runtime pool
// (results land in per-file slots; everything downstream iterates the sorted
// map, so the output is identical for any thread count).  On return `*files`
// holds exactly the current tree.
bool LintTree(const fs::path& root, const Config& config,
              const LintInputs& inputs,
              const std::vector<std::string>& rel_paths,
              std::map<std::string, FileIndex>* files, LintStats* stats) {
  const std::size_t n = rel_paths.size();
  std::vector<FileIndex> slots(n);
  std::vector<char> hit(n, 0);
  std::vector<char> failed(n, 0);
  const std::map<std::string, FileIndex>& prior = *files;  // read-only below
  mcm::ParallelFor(0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
    const std::string& rel = rel_paths[static_cast<std::size_t>(i)];
    std::string content;
    if (!ReadFile((root / rel).string(), &content)) {
      failed[static_cast<std::size_t>(i)] = 1;
      return;
    }
    const std::uint64_t hash = HashContent(content);
    const auto it = prior.find(rel);
    if (it != prior.end() && it->second.content_hash == hash) {
      slots[static_cast<std::size_t>(i)] = it->second;
      hit[static_cast<std::size_t>(i)] = 1;
      return;
    }
    BuildFileIndex(rel, content, hash, inputs, &config,
                   &slots[static_cast<std::size_t>(i)]);
  });

  std::map<std::string, FileIndex> fresh;
  for (std::size_t i = 0; i < n; ++i) {
    if (failed[i]) {
      std::fprintf(stderr, "mcmlint: cannot read %s\n", rel_paths[i].c_str());
      return false;
    }
    stats->files += 1;
    stats->parsed += hit[i] ? 0 : 1;
    stats->cache_hits += hit[i] ? 1 : 0;
    stats->functions += static_cast<int>(slots[i].functions.size());
    fresh[rel_paths[i]] = std::move(slots[i]);
  }
  *files = std::move(fresh);
  return true;
}

// The cross-file passes: flow rules over the whole-tree index, then the
// env-registry diff.  Returns false on a hard error (unreadable README).
bool CrossFilePasses(const fs::path& root, const Config& config,
                     const LintInputs& inputs,
                     const std::map<std::string, FileIndex>& files,
                     std::vector<Diagnostic>* diags) {
  for (const auto& [rel, fi] : files) {
    diags->insert(diags->end(), fi.file_diags.begin(), fi.file_diags.end());
  }
  RunFlowRules(files, diags);

  if (config.Rule("mcm-env-registry").enabled) {
    const auto readme_it = config.Rule("mcm-env-registry").extra.find("readme");
    const std::string readme_rel =
        readme_it == config.Rule("mcm-env-registry").extra.end()
            ? "README.md"
            : readme_it->second;
    std::string readme;
    if (!ReadFile((root / readme_rel).string(), &readme)) {
      std::fprintf(stderr, "mcmlint: cannot read %s\n", readme_rel.c_str());
      return false;
    }
    const std::vector<EnvDoc> docs =
        ParseReadmeEnvTable(readme, inputs.env_section, inputs.env_prefixes);
    std::vector<EnvRead> env_reads;
    for (const auto& [rel, fi] : files) {
      env_reads.insert(env_reads.end(), fi.env_reads.begin(),
                       fi.env_reads.end());
    }
    DiffEnvRegistry(env_reads, docs, readme_rel, diags);
  }
  return true;
}

void PrintDiagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end());
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return !(a < b) && !(b < a);
                          }),
              diags.end());
  for (const Diagnostic& diag : diags) {
    std::printf("%s:%d: [%s] %s\n", diag.path.c_str(), diag.line,
                diag.rule.c_str(), diag.message.c_str());
  }
}

struct TreeOptions {
  std::string cache_path;  // empty: no persistent cache
  std::string sarif_path;
  std::string bench_out;
  bool stats = false;
};

int RunTree(const fs::path& root, const std::string& config_rel,
            const TreeOptions& opts) {
  Config config;
  if (!LoadConfig((root / config_rel).string(), &config)) return 2;
  const LintInputs inputs = ResolveInputs(config, root);
  std::string config_content;
  ReadFile((root / config_rel).string(), &config_content);
  const std::uint64_t config_hash = ConfigHash(config_content, inputs);

  std::vector<std::string> rel_paths;
  for (const std::string& dir : config.scan_dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(config.extensions.begin(), config.extensions.end(),
                    ext) == config.extensions.end()) {
        continue;
      }
      const std::string rel =
          entry.path().lexically_relative(root).generic_string();
      bool excluded = false;
      for (const std::string& prefix : config.excludes) {
        if (rel.compare(0, prefix.size(), prefix) == 0) excluded = true;
      }
      if (!excluded) rel_paths.push_back(rel);
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::map<std::string, FileIndex> files;
  if (!opts.cache_path.empty()) {
    LoadIndexCache(opts.cache_path, config_hash, &files);
  }

  LintStats stats;
  const double lint_start = mcm::telemetry::MonotonicSeconds();
  if (!LintTree(root, config, inputs, rel_paths, &files, &stats)) return 2;
  std::vector<Diagnostic> diags;
  if (!CrossFilePasses(root, config, inputs, files, &diags)) return 2;
  const double lint_seconds = mcm::telemetry::MonotonicSeconds() - lint_start;

  if (!opts.cache_path.empty()) {
    const fs::path parent = fs::path(opts.cache_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      fs::create_directories(parent, ec);
    }
    SaveIndexCache(opts.cache_path, config_hash, files);
  }

  PrintDiagnostics(diags);
  if (!opts.sarif_path.empty() && !WriteSarif(opts.sarif_path, diags)) {
    return 2;
  }
  if (opts.stats) {
    std::fprintf(stderr,
                 "mcmlint-stats: files=%d parsed=%d cache_hits=%d "
                 "functions=%d diagnostics=%zu\n",
                 stats.files, stats.parsed, stats.cache_hits, stats.functions,
                 diags.size());
  }

  if (!opts.bench_out.empty()) {
    // The run above was the cold full lint (or cache-assisted; time the cold
    // path explicitly on a fresh map).  The warm pass re-hashes every file
    // and reuses every index entry -- the incremental steady state.
    std::map<std::string, FileIndex> bench_files;
    LintStats full_stats;
    const double full_start = mcm::telemetry::MonotonicSeconds();
    if (!LintTree(root, config, inputs, rel_paths, &bench_files,
                  &full_stats)) {
      return 2;
    }
    std::vector<Diagnostic> full_diags;
    if (!CrossFilePasses(root, config, inputs, bench_files, &full_diags)) {
      return 2;
    }
    const double full_seconds =
        mcm::telemetry::MonotonicSeconds() - full_start;

    LintStats warm_stats;
    const double warm_start = mcm::telemetry::MonotonicSeconds();
    if (!LintTree(root, config, inputs, rel_paths, &bench_files,
                  &warm_stats)) {
      return 2;
    }
    std::vector<Diagnostic> warm_diags;
    if (!CrossFilePasses(root, config, inputs, bench_files, &warm_diags)) {
      return 2;
    }
    const double warm_seconds =
        mcm::telemetry::MonotonicSeconds() - warm_start;

    mcm::telemetry::RunReport report("lint");
    report.AddPhaseSeconds("full_lint", full_seconds);
    report.AddPhaseSeconds("incremental_relint", warm_seconds);
    report.AddPhaseSeconds("startup_lint", lint_seconds);
    report.SetValue("files", full_stats.files);
    report.SetValue("functions", full_stats.functions);
    report.SetValue("full/parsed", full_stats.parsed);
    report.SetValue("incremental/parsed", warm_stats.parsed);
    report.SetValue("incremental/cache_hits", warm_stats.cache_hits);
    report.SetValue("gate/incremental_over_full_ratio",
                    full_seconds > 0.0 ? warm_seconds / full_seconds : 0.0);
    if (!report.Write(opts.bench_out)) return 2;
  }

  std::fprintf(stderr, "mcmlint: %d file(s) scanned, %zu violation(s)\n",
               stats.files, diags.size());
  return diags.empty() ? 0 : 1;
}

// --------------------------------------------------------------------------
// Fixture mode: compare actual diagnostics against "expect:" comments.

// Parses "expect: mcm-rule [mcm-rule...]" markers from raw lines.  Works in
// any comment style (//, /* */, <!-- -->) because it scans text, not tokens.
std::multiset<std::pair<int, std::string>> ParseExpectations(
    const std::string& content) {
  std::multiset<std::pair<int, std::string>> expected;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string line =
        content.substr(pos, eol == std::string::npos ? eol : eol - pos);
    ++line_no;
    const std::size_t marker = line.find("expect:");
    if (marker != std::string::npos) {
      std::istringstream stream(line.substr(marker + 7));
      std::string word;
      while (stream >> word) {
        if (word.compare(0, 4, "mcm-") != 0) break;
        expected.emplace(line_no, word);
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return expected;
}

int RunExpect(const std::vector<std::string>& paths) {
  const LintInputs inputs;  // defaults; fixtures target the built-in setup
  std::vector<Diagnostic> diags;
  std::vector<EnvRead> env_reads;
  std::vector<EnvDoc> env_docs;
  std::string readme_path;
  std::map<std::string, std::multiset<std::pair<int, std::string>>>
      expected_by_file;
  std::map<std::string, FileIndex> files;  // flow-rule input, cross-file

  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "mcmlint: cannot read %s\n", path.c_str());
      return 2;
    }
    expected_by_file[path] = ParseExpectations(content);
    if (path.size() > 3 && path.compare(path.size() - 3, 3, ".md") == 0) {
      readme_path = path;
      const std::vector<EnvDoc> docs = ParseReadmeEnvTable(
          content, kDefaultEnvSection, inputs.env_prefixes);
      env_docs.insert(env_docs.end(), docs.begin(), docs.end());
      continue;
    }
    FileIndex fi;
    BuildFileIndex(path, content, HashContent(content), inputs,
                   /*config=*/nullptr, &fi);
    diags.insert(diags.end(), fi.file_diags.begin(), fi.file_diags.end());
    env_reads.insert(env_reads.end(), fi.env_reads.begin(),
                     fi.env_reads.end());
    files[path] = std::move(fi);
  }
  RunFlowRules(files, &diags);
  if (!readme_path.empty() || !env_reads.empty()) {
    DiffEnvRegistry(env_reads, env_docs, readme_path, &diags);
  }

  // Compare actual vs expected per file.
  int mismatches = 0;
  std::map<std::string, std::multiset<std::pair<int, std::string>>> actual;
  for (const Diagnostic& diag : diags) {
    actual[diag.path].emplace(diag.line, diag.rule);
  }
  for (const auto& [path, expected_set] : expected_by_file) {
    const auto& actual_set = actual[path];
    for (const auto& [line, rule] : expected_set) {
      if (actual_set.count({line, rule}) == 0) {
        std::printf("%s:%d: expected [%s] diagnostic was not produced\n",
                    path.c_str(), line, rule.c_str());
        ++mismatches;
      }
    }
    for (const auto& [line, rule] : actual_set) {
      if (expected_set.count({line, rule}) == 0) {
        std::printf("%s:%d: unexpected [%s] diagnostic\n", path.c_str(), line,
                    rule.c_str());
        ++mismatches;
      }
    }
  }
  std::fprintf(stderr,
               "mcmlint --expect: %zu file(s), %zu diagnostic(s), "
               "%d mismatch(es)\n",
               paths.size(), diags.size(), mismatches);
  return mismatches == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mcmlint --root DIR [--config FILE] [--cache PATH | "
               "--incremental]\n"
               "               [--sarif PATH] [--stats] [--bench-out PATH]\n"
               "       mcmlint --expect FILE...\n"
               "       mcmlint --expect-dir DIR\n"
               "       mcmlint --list-rules\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string root = ".";
  std::string config_rel = "tools/mcmlint/mcmlint.conf";
  std::vector<std::string> expect_files;
  bool expect_mode = false;
  bool incremental = false;
  TreeOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* rule : kRuleNames) std::printf("%s\n", rule);
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_rel = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      opts.cache_path = argv[++i];
    } else if (arg == "--incremental") {
      incremental = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      opts.sarif_path = argv[++i];
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--bench-out" && i + 1 < argc) {
      opts.bench_out = argv[++i];
    } else if (arg == "--expect") {
      expect_mode = true;
      while (i + 1 < argc) expect_files.push_back(argv[++i]);
    } else if (arg == "--expect-dir" && i + 1 < argc) {
      expect_mode = true;
      const fs::path dir = argv[++i];
      if (!fs::exists(dir)) {
        std::fprintf(stderr, "mcmlint: no such directory %s\n",
                     dir.string().c_str());
        return 2;
      }
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".h" || ext == ".md") {
          expect_files.push_back(entry.path().string());
        }
      }
    } else {
      return Usage();
    }
  }
  if (expect_mode) {
    if (expect_files.empty()) return Usage();
    std::sort(expect_files.begin(), expect_files.end());
    return RunExpect(expect_files);
  }
  if (incremental && opts.cache_path.empty()) {
    opts.cache_path = (fs::path(root) / "build" / "mcmlint.cache").string();
  }
  return RunTree(fs::path(root), config_rel, opts);
}

}  // namespace
}  // namespace mcmlint

int main(int argc, char** argv) { return mcmlint::Main(argc, argv); }
