// Tests for the runtime worker pool (thread pool, parallel-for, task
// groups) and for the end-to-end determinism contract: training,
// validation, and search results must be bit-identical for any thread
// count.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "pipeline/pretrain.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"
#include "runtime/thread_pool.h"
#include "search/search.h"

namespace mcm {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForHonorsBeginOffset) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(4, 10, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hits[i].load(), i >= 4 ? 1 : 0) << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleThreadedAreInline) {
  ThreadPool pool(1);
  int calls = 0;
  pool.ParallelFor(0, 0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(0, 7, [&](std::int64_t) { ++calls; });  // No data race:
  EXPECT_EQ(calls, 7);  // a 1-thread pool runs everything on the caller.
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](std::int64_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  // Every non-throwing claimed iteration still finished before the rethrow.
  EXPECT_LE(completed.load(), 99);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlockAndCoversAll) {
  ThreadPool pool(4);
  constexpr std::int64_t kOuter = 8;
  constexpr std::int64_t kInner = 50;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kOuter, [&](std::int64_t o) {
    pool.ParallelFor(0, kInner, [&](std::int64_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (std::int64_t k = 0; k < kOuter * kInner; ++k) {
    EXPECT_EQ(hits[k].load(), 1) << k;
  }
}

TEST(TaskGroupTest, RunsAllTasksAndIsReusable) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 20; ++i) {
    group.Run([&sum, i] { sum.fetch_add(i); });
  }
  group.Wait();
  EXPECT_EQ(sum.load(), 210);
  group.Run([&sum] { sum.fetch_add(1); });  // Reusable after Wait().
  group.Wait();
  EXPECT_EQ(sum.load(), 211);
}

TEST(TaskGroupTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.Run([] { throw std::runtime_error("task failed"); });
  group.Run([] {});
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The error was consumed; the group works again.
  group.Run([] {});
  EXPECT_NO_THROW(group.Wait());
}

TEST(DefaultPoolTest, ThreadCountOverrideTakesEffect) {
  const int before = DefaultThreadCount();
  SetDefaultThreadCount(3);
  EXPECT_EQ(DefaultThreadCount(), 3);
  EXPECT_EQ(DefaultPool().num_threads(), 3);
  SetDefaultThreadCount(before);
}

// ---- Determinism across thread counts ---------------------------------------

RlConfig TinyConfig() {
  RlConfig config = RlConfig::Quick();
  config.gnn_layers = 2;
  config.hidden_dim = 16;
  config.rollouts_per_update = 6;
  config.minibatches = 2;
  config.epochs = 2;
  config.seed = 5;
  return config;
}

struct PpoRunResult {
  std::vector<std::vector<double>> rewards;  // Per iteration.
  std::vector<double> mean_losses;
  std::vector<Matrix> params;
};

PpoRunResult RunPpo(int threads, int iterations) {
  SetDefaultThreadCount(threads);
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(3);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);
  PolicyNetwork policy(TinyConfig());
  PpoTrainer trainer(policy, Rng(7));
  PpoRunResult out;
  for (int it = 0; it < iterations; ++it) {
    const PpoTrainer::IterationResult result = trainer.Iterate(context, env);
    out.rewards.push_back(result.rewards);
    out.mean_losses.push_back(result.mean_loss);
  }
  out.params = SnapshotParams(policy.Params());
  return out;
}

TEST(DeterminismTest, PpoIterationBitIdenticalAcrossThreadCounts) {
  const int before = DefaultThreadCount();
  const PpoRunResult one = RunPpo(/*threads=*/1, /*iterations=*/2);
  const PpoRunResult four = RunPpo(/*threads=*/4, /*iterations=*/2);
  SetDefaultThreadCount(before);

  ASSERT_EQ(one.rewards.size(), four.rewards.size());
  for (std::size_t it = 0; it < one.rewards.size(); ++it) {
    EXPECT_EQ(one.rewards[it], four.rewards[it]) << "iteration " << it;
    EXPECT_EQ(one.mean_losses[it], four.mean_losses[it]) << "iteration "
                                                         << it;
  }
  ASSERT_EQ(one.params.size(), four.params.size());
  for (std::size_t p = 0; p < one.params.size(); ++p) {
    EXPECT_EQ(one.params[p].data, four.params[p].data) << "param " << p;
  }
}

TEST(DeterminismTest, RandomSearchBitIdenticalAcrossThreadCounts) {
  const int before = DefaultThreadCount();
  auto run = [](int threads) {
    SetDefaultThreadCount(threads);
    const Graph g = MakeMlp("m", 64, {64, 64}, 10);
    AnalyticalCostModel model{McmConfig{}};
    GraphContext context(g, 36);
    Rng rng(3);
    const BaselineResult baseline =
        ComputeHeuristicBaseline(g, model, context.solver(), rng);
    PartitionEnv env(g, model, baseline.eval.runtime_s);
    RandomSearch search{Rng(17)};
    SearchTrace trace = search.Run(context, env, /*budget=*/40);
    return std::make_pair(trace.rewards, env.best_reward());
  };
  const auto one = run(1);
  const auto four = run(4);
  SetDefaultThreadCount(before);
  EXPECT_EQ(one.first, four.first);
  EXPECT_EQ(one.second, four.second);
}

PretrainConfig TinyPretrain() {
  PretrainConfig config;
  config.rl = TinyConfig();
  config.total_samples = 36;
  config.num_checkpoints = 3;
  config.validation_zeroshot_samples = 4;
  config.validation_finetune_samples = 6;
  config.seed = 11;
  return config;
}

std::vector<Graph> SmallGraphs(int count) {
  std::vector<Graph> graphs;
  for (const Graph& g : MakeCorpus()) {
    if (g.NumNodes() < 80 && static_cast<int>(graphs.size()) < count) {
      graphs.push_back(g);
    }
  }
  return graphs;
}

TEST(DeterminismTest, PretrainAndValidateBitIdenticalAcrossThreadCounts) {
  const int before = DefaultThreadCount();
  auto run = [](int threads) {
    SetDefaultThreadCount(threads);
    AnalyticalCostModel model{McmConfig{}};
    PretrainPipeline pipeline(TinyPretrain(), model);
    std::vector<Checkpoint> checkpoints = pipeline.Train(SmallGraphs(2));
    const int best = pipeline.Validate(checkpoints, SmallGraphs(2));
    return std::make_pair(std::move(checkpoints), best);
  };
  auto one = run(1);
  auto four = run(4);
  SetDefaultThreadCount(before);

  EXPECT_EQ(one.second, four.second);
  ASSERT_EQ(one.first.size(), four.first.size());
  for (std::size_t k = 0; k < one.first.size(); ++k) {
    const Checkpoint& a = one.first[k];
    const Checkpoint& b = four.first[k];
    EXPECT_EQ(a.samples_seen, b.samples_seen) << "checkpoint " << k;
    EXPECT_EQ(a.zeroshot_score, b.zeroshot_score) << "checkpoint " << k;
    EXPECT_EQ(a.finetune_score, b.finetune_score) << "checkpoint " << k;
    ASSERT_EQ(a.params.size(), b.params.size());
    for (std::size_t p = 0; p < a.params.size(); ++p) {
      EXPECT_EQ(a.params[p].data, b.params[p].data)
          << "checkpoint " << k << " param " << p;
    }
  }
}

}  // namespace
}  // namespace mcm
