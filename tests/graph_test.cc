// Tests for the graph substrate: structure, analyses, serialization, node
// features, and the model generators (including the corpus and BERT).
#include <sstream>

#include <gtest/gtest.h>

#include "graph/features.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace mcm {
namespace {

Graph Diamond() {
  Graph g("diamond");
  const int a = g.AddNode(OpType::kInput, "a", 1.0, 10.0);
  const int b = g.AddNode(OpType::kRelu, "b", 2.0, 20.0);
  const int c = g.AddNode(OpType::kTanh, "c", 3.0, 30.0);
  const int d = g.AddNode(OpType::kOutput, "d", 4.0, 40.0);
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  return g;
}

TEST(GraphTest, BasicStructure) {
  const Graph g = Diamond();
  EXPECT_EQ(g.NumNodes(), 4);
  EXPECT_EQ(g.NumEdges(), 4);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.InDegree(3), 2);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_DOUBLE_EQ(g.TotalFlops(), 10.0);
  EXPECT_DOUBLE_EQ(g.TotalOutputBytes(), 100.0);
}

TEST(GraphTest, DuplicateEdgesIgnored) {
  Graph g("dup");
  g.AddNode(OpType::kInput, "a", 0, 0);
  g.AddNode(OpType::kOutput, "b", 0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, TopologicalOrderRespectsEdges) {
  const Graph g = Diamond();
  const std::vector<int> order = g.TopologicalOrder();
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(position[static_cast<size_t>(e.src)], position[static_cast<size_t>(e.dst)]);
  }
}

TEST(GraphTest, DepthsAndCriticalPath) {
  const Graph g = Diamond();
  const std::vector<int> depths = g.Depths();
  EXPECT_EQ(depths[0], 0);
  EXPECT_EQ(depths[1], 1);
  EXPECT_EQ(depths[2], 1);
  EXPECT_EQ(depths[3], 2);
  EXPECT_EQ(g.CriticalPathLength(), 2);
}

TEST(GraphTest, AcyclicityDetection) {
  Graph g("cycle");
  g.AddNode(OpType::kInput, "a", 0, 0);
  g.AddNode(OpType::kRelu, "b", 0, 0);
  g.AddNode(OpType::kRelu, "c", 0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsAcyclic());
  g.AddEdge(2, 1);  // Creates the cycle b -> c -> b.
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_NE(g.Validate(), "");
}

TEST(GraphTest, ValidateAcceptsHealthyGraph) {
  EXPECT_EQ(Diamond().Validate(), "");
}

TEST(GraphTest, SerializationRoundtrip) {
  const Graph g = Diamond();
  std::stringstream buffer;
  g.Serialize(buffer);
  const Graph loaded = Graph::Deserialize(buffer);
  EXPECT_EQ(loaded.name(), g.name());
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded.NumEdges(), g.NumEdges());
  for (int u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(loaded.node(u).op, g.node(u).op);
    EXPECT_DOUBLE_EQ(loaded.node(u).compute_flops, g.node(u).compute_flops);
    EXPECT_DOUBLE_EQ(loaded.node(u).output_bytes, g.node(u).output_bytes);
  }
  for (int u = 0; u < g.NumNodes(); ++u) {
    ASSERT_EQ(loaded.OutDegree(u), g.OutDegree(u));
  }
}

TEST(GraphTest, DeserializeRejectsGarbage) {
  std::stringstream bad("not a graph at all");
  EXPECT_THROW(Graph::Deserialize(bad), std::runtime_error);
  std::stringstream truncated("graph g\nnodes 2\nnode 0 0 1 1 1 a\n");
  EXPECT_THROW(Graph::Deserialize(truncated), std::runtime_error);
}

TEST(GraphTest, DotOutputMentionsAllNodes) {
  const Graph g = Diamond();
  std::stringstream dot;
  g.WriteDot(dot);
  const std::string s = dot.str();
  EXPECT_NE(s.find("digraph"), std::string::npos);
  EXPECT_NE(s.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(s.find("n2 -> n3"), std::string::npos);
}

// ---- Generators ------------------------------------------------------------

TEST(GeneratorsTest, MlpIsChainShaped) {
  const Graph g = MakeMlp("m", 128, {256, 128}, 10);
  EXPECT_EQ(g.Validate(), "");
  // A pure MLP has max in/out degree 1 (a chain).
  for (int u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(g.InDegree(u), 1);
    EXPECT_LE(g.OutDegree(u), 1);
  }
  EXPECT_GT(g.TotalParamBytes(), 0.0);
}

TEST(GeneratorsTest, ResNetHasSkipConnections) {
  const Graph g = MakeResNet("r", ResNetConfig{});
  EXPECT_EQ(g.Validate(), "");
  int max_in = 0;
  for (int u = 0; u < g.NumNodes(); ++u) max_in = std::max(max_in, g.InDegree(u));
  EXPECT_GE(max_in, 2);  // Residual adds have two inputs.
}

TEST(GeneratorsTest, InceptionHasBranches) {
  const Graph g = MakeInception("i", InceptionConfig{});
  EXPECT_EQ(g.Validate(), "");
  int max_in = 0;
  for (int u = 0; u < g.NumNodes(); ++u) max_in = std::max(max_in, g.InDegree(u));
  EXPECT_GE(max_in, 4);  // Concat joins four branches.
}

TEST(GeneratorsTest, RecurrentModelsScaleWithTimeSteps) {
  const Graph short_rnn = MakeRnn("r8", 8, 64, 128, 10);
  const Graph long_rnn = MakeRnn("r16", 16, 64, 128, 10);
  EXPECT_EQ(short_rnn.Validate(), "");
  EXPECT_GT(long_rnn.NumNodes(), short_rnn.NumNodes());
  const Graph lstm = MakeLstm("l", 6, 64, 128, 10);
  EXPECT_EQ(lstm.Validate(), "");
  EXPECT_GT(lstm.NumNodes(), MakeRnn("r6", 6, 64, 128, 10).NumNodes());
  const Graph s2s = MakeSeq2Seq("s", 5, 5, 64, 128, 500);
  EXPECT_EQ(s2s.Validate(), "");
}

TEST(GeneratorsTest, BertMatchesPaperScale) {
  const Graph bert = MakeBert();
  EXPECT_EQ(bert.Validate(), "");
  // Section 5.1: BERT has 2138 nodes and ~340M parameters (~600 MB).
  EXPECT_EQ(bert.NumNodes(), 2138);
  const double params = bert.TotalParamBytes() / kWeightBytesPerValue;
  EXPECT_GT(params, 320e6);
  EXPECT_LT(params, 350e6);
  EXPECT_GT(bert.TotalParamBytes(), 550e6);
  EXPECT_LT(bert.TotalParamBytes(), 650e6);
}

TEST(GeneratorsTest, BertHasAttentionFanOut) {
  const Graph bert = MakeBert();
  // Each q/k/v reshape feeds all 16 heads.
  int max_out = 0;
  for (int u = 0; u < bert.NumNodes(); ++u) {
    max_out = std::max(max_out, bert.OutDegree(u));
  }
  EXPECT_GE(max_out, 16);
}

TEST(GeneratorsTest, CorpusMatchesPaperShape) {
  const std::vector<Graph> corpus = MakeCorpus();
  // Section 5.1: 87 models, tens to hundreds of nodes, no attention.
  ASSERT_EQ(corpus.size(), 87u);
  for (const Graph& g : corpus) {
    EXPECT_EQ(g.Validate(), "") << g.name();
    EXPECT_GE(g.NumNodes(), 10) << g.name();
    EXPECT_LE(g.NumNodes(), 999) << g.name();
    EXPECT_GT(g.TotalFlops(), 0.0) << g.name();
  }
}

TEST(GeneratorsTest, CorpusIsDeterministic) {
  const std::vector<Graph> a = MakeCorpus(87);
  const std::vector<Graph> b = MakeCorpus(87);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name(), b[i].name());
    EXPECT_EQ(a[i].NumNodes(), b[i].NumNodes());
    EXPECT_EQ(a[i].NumEdges(), b[i].NumEdges());
  }
}

TEST(GeneratorsTest, SplitIs66_5_16) {
  DatasetSplit split = SplitCorpus(MakeCorpus());
  EXPECT_EQ(split.train.size(), 66u);
  EXPECT_EQ(split.validation.size(), 5u);
  EXPECT_EQ(split.test.size(), 16u);
}

TEST(GeneratorsTest, SplitIsAPartition) {
  DatasetSplit split = SplitCorpus(MakeCorpus());
  std::vector<std::string> names;
  for (const auto& g : split.train) names.push_back(g.name());
  for (const auto& g : split.validation) names.push_back(g.name());
  for (const auto& g : split.test) names.push_back(g.name());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(names.size(), 87u);
}

// ---- Features ---------------------------------------------------------------

TEST(FeaturesTest, DimensionsAndRanges) {
  const Graph g = Diamond();
  const std::vector<float> features = ExtractNodeFeatures(g);
  ASSERT_EQ(features.size(),
            static_cast<std::size_t>(g.NumNodes()) * kNodeFeatureDim);
  for (float f : features) {
    EXPECT_GE(f, 0.0f);
    EXPECT_LE(f, 1.0f);
  }
}

TEST(FeaturesTest, OneHotIsExclusive) {
  const Graph g = Diamond();
  const std::vector<float> features = ExtractNodeFeatures(g);
  for (int u = 0; u < g.NumNodes(); ++u) {
    int ones = 0;
    for (int j = 0; j < kNumOpTypes; ++j) {
      if (features[static_cast<std::size_t>(u) * kNodeFeatureDim + j] == 1.0f) {
        ++ones;
      }
    }
    EXPECT_EQ(ones, 1);
  }
}

TEST(FeaturesTest, DepthFractionIncreasesAlongChain) {
  const Graph g = MakeMlp("m", 32, {32, 32, 32}, 4);
  const std::vector<float> features = ExtractNodeFeatures(g);
  const std::vector<int> order = g.TopologicalOrder();
  const int depth_idx = kNumOpTypes + 5;
  float prev = -1.0f;
  for (int u : order) {
    const float depth =
        features[static_cast<std::size_t>(u) * kNodeFeatureDim + depth_idx];
    EXPECT_GE(depth, prev);
    prev = depth;
  }
}

}  // namespace
}  // namespace mcm
