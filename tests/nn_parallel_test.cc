// Tests for the NN-kernel intra-op parallelism: the --nn-threads knob, and
// the bit-identical-at-any-thread-count contract for the GEMMs, the
// NeighborMean forward/backward (reverse-CSR gather vs. the serial scatter
// reference), Adam, and a full PPO update.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "nn/matrix.h"
#include "nn/modules.h"
#include "nn/tape.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"
#include "runtime/thread_pool.h"
#include "search/search.h"

namespace mcm {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (float& x : m.data) x = static_cast<float>(rng.Normal(0.0, scale));
  return m;
}

// Restores the NN thread count (and the inherit default) on scope exit so
// tests cannot leak an override into each other.
class NnThreadGuard {
 public:
  NnThreadGuard() = default;
  ~NnThreadGuard() { SetNnThreadCount(0); }
};

TEST(NnPoolTest, OverrideAndInheritSemantics) {
  NnThreadGuard guard;
  SetNnThreadCount(3);
  EXPECT_EQ(NnThreadCount(), 3);
  EXPECT_EQ(NnPool().num_threads(), 3);
  // 0 resets to "inherit the runtime thread count" and aliases the default
  // pool (no second worker set for the common configuration).
  SetNnThreadCount(0);
  EXPECT_EQ(NnThreadCount(), DefaultThreadCount());
  EXPECT_EQ(&NnPool(), &DefaultPool());
  // An explicit override equal to the default also aliases.
  SetNnThreadCount(DefaultThreadCount());
  EXPECT_EQ(&NnPool(), &DefaultPool());
}

TEST(NnPoolTest, NnParallelForCoversRangeAtAnyCount) {
  NnThreadGuard guard;
  for (int threads : {1, 4}) {
    SetNnThreadCount(threads);
    constexpr std::int64_t kN = 500;
    std::vector<int> hits(kN, 0);
    // Each index is claimed exactly once, so plain writes do not race.
    NnParallelFor(0, kN, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << i;
  }
}

// Shapes large enough to take the parallel GEMM paths (>= 2^22 flops, rows
// beyond one panel for MatMul/TransB, reduction beyond two slabs for TransA).
TEST(NnParallelTest, GemmBitIdenticalAcrossNnThreadCounts) {
  NnThreadGuard guard;
  Rng rng(21);
  const Matrix a = RandomMatrix(600, 640, rng);   // [m x k]
  const Matrix b = RandomMatrix(640, 128, rng);   // [k x n]
  const Matrix c = RandomMatrix(600, 128, rng);   // [m x n]
  const Matrix bt = RandomMatrix(128, 640, rng);  // [n x k]

  auto run = [&](int threads) {
    SetNnThreadCount(threads);
    Matrix ab, atc, abt;
    MatMul(a, b, ab);          // Row-panel path.
    MatMulTransA(a, c, atc);   // k-slab path (reduction over the 600 rows).
    MatMulTransB(a, bt, abt);  // Row-panel path.
    return std::make_tuple(std::move(ab), std::move(atc), std::move(abt));
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(std::get<0>(one).data, std::get<0>(four).data);
  EXPECT_EQ(std::get<1>(one).data, std::get<1>(four).data);
  EXPECT_EQ(std::get<2>(one).data, std::get<2>(four).data);
}

// Random CSR over `rows` nodes with degrees in [0, max_degree]; duplicate
// neighbors are allowed (the op contract permits them).
NeighborLists RandomLists(int rows, int max_degree, Rng& rng) {
  NeighborLists lists;
  lists.offsets.push_back(0);
  for (int i = 0; i < rows; ++i) {
    const int degree = static_cast<int>(rng.UniformInt(0, max_degree));
    for (int e = 0; e < degree; ++e) {
      lists.indices.push_back(static_cast<int>(rng.UniformInt(0, rows - 1)));
    }
    lists.offsets.push_back(static_cast<int>(lists.indices.size()));
  }
  lists.Finalize();
  return lists;
}

TEST(NnParallelTest, NeighborMeanForwardBitIdenticalAcrossNnThreadCounts) {
  NnThreadGuard guard;
  Rng rng(22);
  const NeighborLists lists = RandomLists(512, 6, rng);
  const Matrix x = RandomMatrix(512, 64, rng);  // 512*64 exceeds the cutover.
  auto run = [&](int threads) {
    SetNnThreadCount(threads);
    Tape tape;
    return tape.value(tape.NeighborMeanOp(tape.Constant(x), &lists));
  };
  const Matrix one = run(1);
  const Matrix four = run(4);
  EXPECT_EQ(one.data, four.data);
}

// Backward fuzz: the reverse-CSR gather must reproduce the serial scatter
// reference EXACTLY (same floats), across random graphs with isolated nodes
// and duplicate edges, at a thread count that exercises the parallel path.
TEST(NnParallelTest, NeighborMeanBackwardMatchesScatterReferenceExactly) {
  NnThreadGuard guard;
  SetNnThreadCount(4);
  Rng rng(23);
  for (int round = 0; round < 8; ++round) {
    const int rows = 257 + 37 * round;  // Straddles the row-block boundary.
    const int cols = 64;
    const NeighborLists lists = RandomLists(rows, 5 + round, rng);
    const Matrix x = RandomMatrix(rows, cols, rng);

    Matrix value = x;
    Matrix grad(rows, cols);
    Tape tape;
    const VarId xv = tape.Parameter(&value, &grad);
    const VarId y = tape.NeighborMeanOp(xv, &lists);
    // Scalar readout: column sums of the row means, so every dy element is
    // nonzero and the upstream gradient is nontrivial.
    Matrix ones(cols, 1);
    std::fill(ones.data.begin(), ones.data.end(), 1.0f);
    const VarId loss =
        tape.MatMulOp(tape.MeanRowsOp(y), tape.Constant(ones));
    tape.Backward(loss);

    // Reference: the pre-rewrite serial scatter, applied to the tape's own
    // upstream gradient dy.
    const Matrix& dy = tape.grad(y);
    Matrix expect(rows, cols);
    for (int i = 0; i < rows; ++i) {
      const int begin = lists.offsets[static_cast<std::size_t>(i)];
      const int end = lists.offsets[static_cast<std::size_t>(i) + 1];
      if (begin == end) continue;
      const float inv = 1.0f / static_cast<float>(end - begin);
      const auto drow = dy.row(i);
      for (int e = begin; e < end; ++e) {
        auto dst = expect.row(lists.indices[static_cast<std::size_t>(e)]);
        for (int j = 0; j < cols; ++j) dst[j] += inv * drow[j];
      }
    }
    EXPECT_EQ(grad.data, expect.data) << "round " << round;
  }
}

TEST(NnParallelTest, AdamStepBitIdenticalAcrossNnThreadCounts) {
  NnThreadGuard guard;
  auto run = [](int threads) {
    SetNnThreadCount(threads);
    Rng rng(24);
    Mlp net("mlp", {64, 128, 128, 8}, rng);
    Adam adam(net.Params());
    for (int step = 0; step < 3; ++step) {
      for (Param* p : net.Params()) {
        for (float& g : p->grad.data) {
          g = static_cast<float>(rng.Normal(0.0, 0.5));
        }
      }
      adam.Step();
    }
    return SnapshotParams(net.Params());
  };
  const std::vector<Matrix> one = run(1);
  const std::vector<Matrix> four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t p = 0; p < one.size(); ++p) {
    EXPECT_EQ(one[p].data, four[p].data) << "param " << p;
  }
}

// ---- Full PPO update across NN thread counts --------------------------------

RlConfig TinyConfig() {
  RlConfig config = RlConfig::Quick();
  config.gnn_layers = 2;
  config.hidden_dim = 16;
  config.rollouts_per_update = 6;
  config.minibatches = 2;
  config.epochs = 2;
  config.seed = 5;
  return config;
}

struct PpoRunResult {
  std::vector<std::vector<double>> rewards;
  std::vector<double> mean_losses;
  std::vector<Matrix> params;
};

// As tests/runtime_test.cc's RunPpo, but varying ONLY the NN kernel
// parallelism; the rollout pool stays at its default size.
PpoRunResult RunPpoAtNnThreads(int nn_threads, int iterations) {
  SetNnThreadCount(nn_threads);
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(3);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);
  PolicyNetwork policy(TinyConfig());
  PpoTrainer trainer(policy, Rng(7));
  PpoRunResult out;
  for (int it = 0; it < iterations; ++it) {
    const PpoTrainer::IterationResult result = trainer.Iterate(context, env);
    out.rewards.push_back(result.rewards);
    out.mean_losses.push_back(result.mean_loss);
  }
  out.params = SnapshotParams(policy.Params());
  return out;
}

TEST(NnParallelTest, PpoUpdateBitIdenticalAcrossNnThreadCounts) {
  NnThreadGuard guard;
  const PpoRunResult one = RunPpoAtNnThreads(/*nn_threads=*/1, /*iterations=*/2);
  const PpoRunResult four = RunPpoAtNnThreads(/*nn_threads=*/4, /*iterations=*/2);

  ASSERT_EQ(one.rewards.size(), four.rewards.size());
  for (std::size_t it = 0; it < one.rewards.size(); ++it) {
    EXPECT_EQ(one.rewards[it], four.rewards[it]) << "iteration " << it;
    EXPECT_EQ(one.mean_losses[it], four.mean_losses[it]) << "iteration " << it;
  }
  ASSERT_EQ(one.params.size(), four.params.size());
  for (std::size_t p = 0; p < one.params.size(); ++p) {
    EXPECT_EQ(one.params[p].data, four.params[p].data) << "param " << p;
  }
}

}  // namespace
}  // namespace mcm
