// Tests for the analytical cost model and the hardware simulator, including
// the dynamic (memory) constraint, the performance nonlinearities, and the
// analytical-vs-simulated correlation the calibration study relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "costmodel/cost_model.h"
#include "costmodel/delta_eval.h"
#include "costmodel/eval_cache.h"
#include "faults/faults.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "partition/heuristics.h"
#include "runtime/thread_pool.h"
#include "solver/modes.h"

namespace mcm {
namespace {

Partition Assign(std::vector<int> chips, int num_chips) {
  Partition p;
  p.assignment = std::move(chips);
  p.num_chips = num_chips;
  return p;
}

McmConfig SmallMcm() {
  McmConfig mcm;
  mcm.num_chips = 4;
  mcm.chip_flops_per_s = 1e9;
  mcm.effective_utilization = 1.0;
  mcm.link_bandwidth_bytes_per_s = 1e9;
  mcm.link_latency_s = 0.0;
  mcm.sram_bytes_per_chip = 1e9;
  return mcm;
}

TEST(AnalyticalTest, SingleChipRuntimeIsComputeOnly) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 5e8, 100.0);
  g.AddNode(OpType::kMatMul, "b", 5e8, 100.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({0, 0}, 4));
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.runtime_s, 1.0, 1e-9);  // 1 GFLOP at 1 GFLOP/s.
  EXPECT_NEAR(r.throughput, 1.0, 1e-9);
}

TEST(AnalyticalTest, PipelineBottleneckIsMaxChip) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 8e8, 0.0);
  g.AddNode(OpType::kMatMul, "b", 2e8, 0.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({0, 1}, 4));
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.runtime_s, 0.8, 1e-9);  // Bottleneck chip 0.
}

TEST(AnalyticalTest, CommunicationChargesBothEndpoints) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 0.0, 5e8);  // 0.5 GB output.
  g.AddNode(OpType::kMatMul, "b", 0.0, 0.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({0, 1}, 4));
  ASSERT_TRUE(r.valid);
  // Each endpoint pays 0.5 s of transfer at 1 GB/s.
  EXPECT_NEAR(r.runtime_s, 0.5, 1e-9);
}

TEST(AnalyticalTest, RejectsStaticallyInvalidPartitions) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 1.0);
  g.AddNode(OpType::kMatMul, "b", 1.0, 1.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({1, 0}, 4));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.failure, EvalFailure::kStaticConstraint);
}

TEST(AnalyticalTest, BalancedBeatsImbalanced) {
  // Four equal nodes on a chain: 2+2 split beats 3+1.
  Graph g("g");
  for (int i = 0; i < 4; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e8, 0.0);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  AnalyticalCostModel model(SmallMcm());
  const double balanced =
      model.Evaluate(g, Assign({0, 0, 1, 1}, 4)).runtime_s;
  const double skewed = model.Evaluate(g, Assign({0, 0, 0, 1}, 4)).runtime_s;
  EXPECT_LT(balanced, skewed);
}

// ---- Hardware simulator ------------------------------------------------------

TEST(HwSimTest, AgreesWithAnalyticalOnComputeShape) {
  // With generous memory and no noise, the simulator's runtime ordering
  // matches the analytical model on compute-dominated partitions.
  Graph g("g");
  for (int i = 0; i < 4; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e9, 1e3, 1e6);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  HardwareSim sim(opt);
  const double balanced = sim.Evaluate(g, Assign({0, 0, 1, 1}, 4)).runtime_s;
  const double skewed = sim.Evaluate(g, Assign({0, 0, 0, 1}, 4)).runtime_s;
  EXPECT_LT(balanced, skewed);
}

TEST(HwSimTest, DynamicConstraintRejectsOversizedChip) {
  Graph g("g");
  // A node whose weights alone exceed chip SRAM.
  g.AddNode(OpType::kMatMul, "big", 1.0, 1.0, 100e6);
  g.AddNode(OpType::kMatMul, "ok", 1.0, 1.0, 1.0);
  g.AddEdge(0, 1);
  HardwareSim::Options opt;
  opt.mcm.sram_bytes_per_chip = 64e6;
  HardwareSim sim(opt);
  const EvalResult r = sim.Evaluate(g, Assign({0, 0}, 4));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.failure, EvalFailure::kOutOfMemory);
  const auto report = sim.Simulate(g, Assign({0, 0}, 4));
  EXPECT_TRUE(report.oom);
  EXPECT_EQ(report.first_oom_chip, 0);
}

TEST(HwSimTest, PeakMemoryTracksLiveness) {
  // Chain a -> b -> c on one chip: a's buffer dies after b runs, so the
  // peak is params + two live buffers, not three.
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "b", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "c", 1.0, 10e6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  HardwareSim sim;
  const auto report = sim.Simulate(g, Assign({0, 0, 0}, 4));
  EXPECT_LE(report.chips[0].peak_memory_bytes, 20e6 + 1);
  EXPECT_GE(report.chips[0].peak_memory_bytes, 20e6 - 1);
}

TEST(HwSimTest, FanOutKeepsProducerBufferLive) {
  // a feeds b and c, b feeds c: at c's slot all three buffers are live.
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "b", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "c", 1.0, 10e6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  HardwareSim sim;
  const auto report = sim.Simulate(g, Assign({0, 0, 0}, 4));
  EXPECT_GE(report.chips[0].peak_memory_bytes, 30e6 - 1);
}

TEST(HwSimTest, MultiHopTransfersOccupyIntermediateLinks) {
  // A transfer from chip 0 to chip 2 loads links 0->1 and 1->2.  Build a
  // pattern where the direct edge is legal: the middle chip holds only an
  // unconnected constant.
  Graph g("g");
  g.AddNode(OpType::kMatMul, "src", 1.0, 8e6);       // node 0 chip 0
  g.AddNode(OpType::kConstant, "mid", 0.0, 1.0);     // node 1 chip 1
  g.AddNode(OpType::kMatMul, "dst", 1.0, 1.0);       // node 2 chip 2
  g.AddNode(OpType::kMatMul, "mid_user", 1.0, 1.0);  // node 3 chip 2
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  HardwareSim sim(opt);
  const Partition p = Assign({0, 1, 2, 2}, 3);
  ASSERT_EQ(ValidateStatic(g, p), Violation::kNone);
  const auto report = sim.Simulate(g, p);
  ASSERT_EQ(report.link_bytes.size(), 2u);
  EXPECT_GE(report.link_bytes[0], 8e6);
  EXPECT_GE(report.link_bytes[1], 8e6);
}

TEST(HwSimTest, NoiseIsDeterministicPerPartition) {
  const Graph g = MakeMlp("m", 64, {128, 128}, 10);
  HardwareSim sim;
  const Partition p = GreedyContiguousByCount(g, 4);
  const EvalResult r1 = sim.Evaluate(g, p);
  const EvalResult r2 = sim.Evaluate(g, p);
  ASSERT_TRUE(r1.valid);
  EXPECT_DOUBLE_EQ(r1.runtime_s, r2.runtime_s);
}

TEST(HwSimTest, NoiseDiffersAcrossPartitions) {
  Graph g("g");
  for (int i = 0; i < 6; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e9, 1e3);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  HardwareSim sim;
  const double r1 = sim.Evaluate(g, Assign({0, 0, 0, 1, 1, 1}, 2)).runtime_s;
  const double r2 = sim.Evaluate(g, Assign({0, 0, 1, 1, 1, 1}, 2)).runtime_s;
  // Different partitions with different bottlenecks; also different noise.
  EXPECT_NE(r1, r2);
}

TEST(HwSimTest, LowIntensityOpsRunAtLowerUtilization) {
  // Same FLOPs, one op moves far more bytes: it must take longer.
  Graph dense("dense");
  dense.AddNode(OpType::kMatMul, "mm", 1e9, 1e3, 0.0);
  Graph sparse("sparse");
  sparse.AddNode(OpType::kAdd, "add", 1e9, 1e9, 0.0);
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  opt.mcm.sram_bytes_per_chip = 8e9;
  HardwareSim sim(opt);
  const double t_dense = sim.Evaluate(dense, Assign({0}, 2)).runtime_s;
  const double t_sparse = sim.Evaluate(sparse, Assign({0}, 2)).runtime_s;
  EXPECT_GT(t_sparse, 2.0 * t_dense);
}

TEST(HwSimTest, MemoryPressureSlowsTheChip) {
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  opt.mcm.sram_bytes_per_chip = 100e6;
  HardwareSim sim(opt);
  Graph light("light");
  light.AddNode(OpType::kMatMul, "mm", 1e9, 1e3, 10e6);
  Graph heavy("heavy");
  heavy.AddNode(OpType::kMatMul, "mm", 1e9, 1e3, 95e6);
  const double t_light = sim.Evaluate(light, Assign({0}, 2)).runtime_s;
  const double t_heavy = sim.Evaluate(heavy, Assign({0}, 2)).runtime_s;
  EXPECT_GT(t_heavy, t_light);
}

// ---- Partition-evaluation memo cache ----------------------------------------

// Counts Evaluate calls so tests can distinguish hits from misses; returns a
// runtime derived from the assignment so wrong cache results are detectable.
class CountingModel final : public CostModel {
 public:
  EvalResult Evaluate(const Graph&, const Partition& partition) override {
    ++calls;
    double t = 1.0;
    for (int chip : partition.assignment) t += 0.01 * (chip + 1);
    return EvalResult::Valid(t);
  }
  std::string name() const override { return "counting"; }

  int calls = 0;
};

TEST(EvalCacheTest, HitsServeWithoutReevaluating) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  CountingModel model;
  EvalCache cache(8);
  const Partition p1 = Assign({0, 1}, 4);
  const Partition p2 = Assign({1, 0}, 4);

  const EvalResult first = cache.Evaluate(g, model, p1);
  EXPECT_EQ(model.calls, 1);
  EXPECT_EQ(cache.misses(), 1);

  const EvalResult again = cache.Evaluate(g, model, p1);
  EXPECT_EQ(model.calls, 1);  // Served from cache.
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(again.runtime_s, first.runtime_s);  // Bit-identical hit.
  EXPECT_EQ(again.valid, first.valid);

  cache.Evaluate(g, model, p2);  // Different assignment: a real miss.
  EXPECT_EQ(model.calls, 2);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(EvalCacheTest, EvictsLeastRecentlyUsedFirst) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  CountingModel model;
  EvalCache cache(2);
  const Partition a = Assign({0}, 4);
  const Partition b = Assign({1}, 4);
  const Partition c = Assign({2}, 4);

  cache.Evaluate(g, model, a);
  cache.Evaluate(g, model, b);
  cache.Evaluate(g, model, a);  // Touch `a`: `b` becomes least recent.
  cache.Evaluate(g, model, c);  // Evicts `b`.
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);

  cache.Evaluate(g, model, a);  // Still cached.
  EXPECT_EQ(model.calls, 3);
  cache.Evaluate(g, model, b);  // Evicted: must re-evaluate.
  EXPECT_EQ(model.calls, 4);
}

TEST(EvalCacheTest, DefaultCapacityOverride) {
  SetDefaultEvalCacheCapacity(17);
  EXPECT_EQ(DefaultEvalCacheCapacity(), 17);
  SetDefaultEvalCacheCapacity(0);  // 0 = caching disabled.
  EXPECT_EQ(DefaultEvalCacheCapacity(), 0);
  SetDefaultEvalCacheCapacity(-1);  // Clears the override (env/base default).
  EXPECT_GE(DefaultEvalCacheCapacity(), 0);
}

TEST(EvalCacheTest, DifferentGraphsDoNotCollide) {
  // Same assignment, two different graphs: the second lookup must miss.
  Graph g1("g1");
  g1.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  Graph g2("g2");
  g2.AddNode(OpType::kMatMul, "a", 2e6, 20.0);
  ASSERT_NE(g1.uid(), g2.uid());
  CountingModel model;
  EvalCache cache(8);
  const Partition p = Assign({0}, 4);
  cache.Evaluate(g1, model, p);
  cache.Evaluate(g2, model, p);
  EXPECT_EQ(model.calls, 2);
  EXPECT_EQ(cache.misses(), 2);
  cache.Evaluate(g1, model, p);  // Still cached per graph.
  cache.Evaluate(g2, model, p);
  EXPECT_EQ(model.calls, 2);
  EXPECT_EQ(cache.hits(), 2);
}

TEST(EvalCacheTest, DifferentModelsDoNotCollide) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  AnalyticalCostModel analytical{McmConfig{}};
  CountingModel counting;
  EvalCache cache(8);
  const Partition p = Assign({0}, 4);
  const EvalResult a = cache.Evaluate(g, analytical, p);
  // Same graph and assignment under a different model name: a miss, and the
  // counting model's own result (not the memoized analytical one).
  const EvalResult c = cache.Evaluate(g, counting, p);
  EXPECT_EQ(counting.calls, 1);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_NE(a.runtime_s, c.runtime_s);
}

TEST(EvalCacheTest, GraphMutationInvalidatesEntries) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  CountingModel model;
  EvalCache cache(8);
  const Partition p = Assign({0}, 4);
  cache.Evaluate(g, model, p);
  // Copies share the uid (identical content), so they hit.
  const Graph copy = g;
  cache.Evaluate(copy, model, p);
  EXPECT_EQ(model.calls, 1);
  // Mutation bumps the uid: stale entries can no longer be served.
  g.mutable_node(0).compute_flops *= 2.0;
  EXPECT_NE(g.uid(), copy.uid());
  cache.Evaluate(g, model, p);
  EXPECT_EQ(model.calls, 2);
}

// ---- Incremental (delta) evaluation -----------------------------------------

// Random layered DAG with forward edges only, plus a complete (not
// necessarily statically valid) chip assignment to use as a base.
struct FuzzCase {
  Graph graph{"fuzz"};
  Partition base;
  int num_chips = 0;
};

FuzzCase MakeFuzzCase(Rng& rng) {
  FuzzCase out;
  const int nodes = 20 + static_cast<int>(rng.UniformInt(41));
  out.num_chips = 3 + static_cast<int>(rng.UniformInt(6));
  for (int i = 0; i < nodes; ++i) {
    out.graph.AddNode(OpType::kMatMul, "n",
                      1e6 * static_cast<double>(1 + rng.UniformInt(100)),
                      1e3 * static_cast<double>(1 + rng.UniformInt(100)),
                      1e3 * static_cast<double>(1 + rng.UniformInt(100)));
    if (i > 0) {
      // Chain edge keeps the graph connected; extra random forward edges
      // create fan-in/fan-out so moves touch several chips at once.
      out.graph.AddEdge(i - 1, i);
      for (int e = 0; e < 2; ++e) {
        const int src = static_cast<int>(rng.UniformInt(
            static_cast<std::uint64_t>(i)));
        if (src != i - 1) out.graph.AddEdge(src, i);
      }
    }
  }
  // Contiguous-by-id base: Eq. 2 always holds, Eq. 3/4 sometimes do not,
  // so the fuzz exercises both valid and invalid Score() paths.
  out.base.num_chips = out.num_chips;
  out.base.assignment.resize(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    out.base.assignment[static_cast<std::size_t>(i)] =
        i * out.num_chips / nodes;
  }
  return out;
}

// Asserts the optimized evaluator, the reference oracle, and a fresh full
// evaluation agree bit-for-bit on the current assignment.
void ExpectDeltaAgreement(const FuzzCase& c, const DeltaEvaluator& evaluator,
                          const DeltaEvaluatorReference& reference) {
  AnalyticalCostModel model{McmConfig{}};
  ASSERT_EQ(evaluator.partition().assignment,
            reference.partition().assignment);
  const EvalResult full = model.Evaluate(c.graph, evaluator.partition());
  const EvalResult fast = evaluator.Score();
  const EvalResult oracle = reference.Score();
  EXPECT_EQ(evaluator.StaticallyValid(),
            IsStaticallyValid(c.graph, evaluator.partition()));
  EXPECT_EQ(evaluator.StaticallyValid(), reference.StaticallyValid());
  for (const EvalResult& r : {fast, oracle}) {
    EXPECT_EQ(full.valid, r.valid);
    EXPECT_EQ(full.failure, r.failure);
    EXPECT_EQ(full.runtime_s, r.runtime_s);    // Exact, not approximate:
    EXPECT_EQ(full.latency_s, r.latency_s);    // the bit-identical contract.
    EXPECT_EQ(full.throughput, r.throughput);
  }
}

TEST(DeltaEvalTest, FuzzMatchesFullModelAndReference) {
  Rng rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    const FuzzCase c = MakeFuzzCase(rng);
    DeltaEvaluator evaluator(c.graph, McmConfig{});
    DeltaEvaluatorReference reference(c.graph, McmConfig{});
    evaluator.Rebase(c.base);
    reference.Rebase(c.base);
    ExpectDeltaAgreement(c, evaluator, reference);
    for (int step = 0; step < 40; ++step) {
      const bool undo = evaluator.undo_depth() > 0 && rng.UniformInt(4) == 0;
      if (undo) {
        evaluator.Undo();
        reference.Undo();
      } else {
        const int node = static_cast<int>(rng.UniformInt(
            static_cast<std::uint64_t>(c.graph.NumNodes())));
        const int chip = static_cast<int>(rng.UniformInt(
            static_cast<std::uint64_t>(c.num_chips)));
        evaluator.Apply(node, chip);
        reference.Apply(node, chip);
      }
      ExpectDeltaAgreement(c, evaluator, reference);
    }
    // Unwinding the whole history must restore the base bit-for-bit.
    while (evaluator.undo_depth() > 0) {
      evaluator.Undo();
      reference.Undo();
    }
    EXPECT_EQ(evaluator.partition().assignment, c.base.assignment);
    ExpectDeltaAgreement(c, evaluator, reference);
  }
}

TEST(DeltaEvalTest, ScorerResultsAreThreadCountInvariant) {
  // Scores a batch of near-base partitions through a DeltaScorerPool at 1
  // and 4 threads; both must match sequential full evaluations exactly.
  Rng rng(77);
  const FuzzCase c = MakeFuzzCase(rng);
  std::vector<Partition> candidates;
  for (int k = 0; k < 32; ++k) {
    Partition p = c.base;
    const int moves = 1 + static_cast<int>(rng.UniformInt(3));
    for (int m = 0; m < moves; ++m) {
      const std::size_t node = rng.UniformInt(
          static_cast<std::uint64_t>(c.graph.NumNodes()));
      p.assignment[node] =
          static_cast<int>(rng.UniformInt(
              static_cast<std::uint64_t>(c.num_chips)));
    }
    candidates.push_back(std::move(p));
  }

  AnalyticalCostModel model{McmConfig{}};
  std::vector<EvalResult> expected;
  for (const Partition& p : candidates) {
    expected.push_back(model.Evaluate(c.graph, p));
  }

  for (const int threads : {1, 4}) {
    DeltaScorerPool pool(&model, model.AsAnalytical());
    std::vector<EvalResult> got(candidates.size());
    ThreadPool workers(threads);
    workers.ParallelFor(0, static_cast<std::int64_t>(candidates.size()),
                        [&](std::int64_t i) {
                          auto lease = pool.Acquire();
                          got[static_cast<std::size_t>(i)] =
                              lease.scorer().Evaluate(
                                  c.graph,
                                  candidates[static_cast<std::size_t>(i)]);
                        });
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(expected[i].valid, got[i].valid);
      EXPECT_EQ(expected[i].runtime_s, got[i].runtime_s);
      EXPECT_EQ(expected[i].latency_s, got[i].latency_s);
    }
    EXPECT_GE(pool.scorers_created(), 1);
    EXPECT_LE(pool.scorers_created(), threads);
  }
}

TEST(DeltaEvalTest, ScorerCountsFastAndRebuildPaths) {
  Graph g("g");
  for (int i = 0; i < 12; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e8, 1e3);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  AnalyticalCostModel model{McmConfig{}};
  DeltaScorer scorer(&model, model.AsAnalytical());

  Partition base = Assign({0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}, 4);
  scorer.Evaluate(g, base);
  EXPECT_EQ(scorer.rebuilds(), 1);  // First sight of the graph.
  scorer.Evaluate(g, base);         // Zero-move diff.
  EXPECT_EQ(scorer.fast_evals(), 1);

  Partition moved = base;
  moved.assignment[2] = 1;  // Single-node diff.
  const EvalResult fast = scorer.Evaluate(g, moved);
  EXPECT_EQ(scorer.fast_evals(), 2);
  EXPECT_EQ(fast.runtime_s, model.Evaluate(g, moved).runtime_s);

  // A lone far candidate goes to the slow model (a Rebase would only pay
  // off if later requests stayed near it).
  Partition far = Assign({1, 1, 1, 2, 2, 2, 3, 3, 3, 3, 3, 3}, 4);
  const EvalResult far_slow = scorer.Evaluate(g, far);
  EXPECT_EQ(scorer.fallback_evals(), 1);
  EXPECT_EQ(scorer.rebuilds(), 1);
  EXPECT_EQ(far_slow.runtime_s, model.Evaluate(g, far).runtime_s);

  // A second far candidate *near the previous one* signals local search
  // jumped regions: the scorer re-locks with a Rebase...
  Partition far_nudged = far;
  far_nudged.assignment[0] = 0;
  scorer.Evaluate(g, far_nudged);
  EXPECT_EQ(scorer.rebuilds(), 2);
  // ...and serves subsequent neighbors incrementally again.
  Partition far_neighbor = far_nudged;
  far_neighbor.assignment[4] = 1;
  const EvalResult relocked = scorer.Evaluate(g, far_neighbor);
  EXPECT_EQ(scorer.fast_evals(), 3);
  EXPECT_EQ(relocked.runtime_s, model.Evaluate(g, far_neighbor).runtime_s);

  Partition incomplete = base;
  incomplete.assignment[5] = -1;
  const EvalResult fb = scorer.Evaluate(g, incomplete);
  EXPECT_EQ(scorer.fallback_evals(), 2);  // Slow path screens it.
  EXPECT_FALSE(fb.valid);
}

TEST(DeltaEvalTest, ScorerFallsBackWithoutAnalyticalCore) {
  Graph g("g");
  for (int i = 0; i < 6; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e9, 1e3, 1e6);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  HardwareSim sim;
  ASSERT_EQ(sim.AsAnalytical(), nullptr);
  DeltaScorer scorer(&sim, sim.AsAnalytical());
  const Partition p = Assign({0, 0, 0, 1, 1, 1}, 2);
  const EvalResult via_scorer = scorer.Evaluate(g, p);
  const EvalResult direct = sim.Evaluate(g, p);
  EXPECT_EQ(scorer.fallback_evals(), 1);
  EXPECT_EQ(scorer.fast_evals(), 0);
  EXPECT_EQ(via_scorer.runtime_s, direct.runtime_s);
}

TEST(DeltaEvalTest, ResilientAnalyticalExposesCore) {
  AnalyticalCostModel model{McmConfig{}};
  ResilientCostModel resilient(&model, nullptr, RetryPolicy{});
  EXPECT_EQ(resilient.AsAnalytical(), model.AsAnalytical());
  HardwareSim sim;
  ResilientCostModel resilient_sim(&sim, &model, RetryPolicy{});
  EXPECT_EQ(resilient_sim.AsAnalytical(), nullptr);
}

TEST(DeltaEvalTest, FirstChipOverMemoryIsAdvisoryOnly) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 1.0, 50e6);
  g.AddNode(OpType::kMatMul, "b", 1.0, 1.0, 90e6);
  g.AddEdge(0, 1);
  DeltaEvaluator evaluator(g, McmConfig{});
  Partition p = Assign({0, 1}, 2);
  evaluator.Rebase(p);
  EXPECT_EQ(evaluator.FirstChipOverMemory(200e6), -1);
  EXPECT_EQ(evaluator.FirstChipOverMemory(60e6), 1);
  EXPECT_EQ(evaluator.FirstChipOverMemory(10e6), 0);
  // Score() never enforces the bound: the analytical model does not either.
  EXPECT_TRUE(evaluator.Score().valid);
}

TEST(DeltaEvalTest, DefaultGateOverride) {
  SetDefaultDeltaEvalEnabled(0);
  EXPECT_FALSE(DefaultDeltaEvalEnabled());
  SetDefaultDeltaEvalEnabled(1);
  EXPECT_TRUE(DefaultDeltaEvalEnabled());
  SetDefaultDeltaEvalEnabled(-1);  // Clears the override (env/base default).
  EXPECT_TRUE(DefaultDeltaEvalEnabled());
}

// ---- Calibration-style property (mini Figure 7) -----------------------------

TEST(CalibrationTest, AnalyticalPredictsHardwareOrdering) {
  // On random valid BERT partitions the two models correlate strongly but
  // imperfectly, and a nontrivial fraction fails only on hardware --
  // exactly the paper's Section 5.4 structure.
  const Graph bert = MakeBert();
  CpSolver solver(bert, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(bert.NumNodes(), 36);
  AnalyticalCostModel analytical{McmConfig{}};
  HardwareSim hw;
  Rng rng(31);
  std::vector<double> predicted, measured;
  int invalid = 0, total = 0;
  for (int k = 0; k < 40; ++k) {
    const auto order = AlapRandomTopologicalOrder(bert, rng);
    const SolveResult r = SolveSample(solver, order, probs, rng);
    if (!r.success) continue;
    ++total;
    const EvalResult h = hw.Evaluate(bert, r.partition);
    if (!h.valid) {
      ++invalid;
      continue;
    }
    predicted.push_back(analytical.Evaluate(bert, r.partition).runtime_s);
    measured.push_back(h.runtime_s);
  }
  ASSERT_GE(total, 38);
  const double correlation = PearsonCorrelation(predicted, measured);
  EXPECT_GT(correlation, 0.6);
  EXPECT_LT(correlation, 0.999);  // Imperfect: the models must differ.
  EXPECT_GT(invalid, 0);          // Some samples fail only on hardware.
  EXPECT_LT(invalid, total / 2);
}

}  // namespace
}  // namespace mcm
