// Tests for the analytical cost model and the hardware simulator, including
// the dynamic (memory) constraint, the performance nonlinearities, and the
// analytical-vs-simulated correlation the calibration study relies on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "costmodel/cost_model.h"
#include "costmodel/eval_cache.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "partition/heuristics.h"
#include "solver/modes.h"

namespace mcm {
namespace {

Partition Assign(std::vector<int> chips, int num_chips) {
  Partition p;
  p.assignment = std::move(chips);
  p.num_chips = num_chips;
  return p;
}

McmConfig SmallMcm() {
  McmConfig mcm;
  mcm.num_chips = 4;
  mcm.chip_flops_per_s = 1e9;
  mcm.effective_utilization = 1.0;
  mcm.link_bandwidth_bytes_per_s = 1e9;
  mcm.link_latency_s = 0.0;
  mcm.sram_bytes_per_chip = 1e9;
  return mcm;
}

TEST(AnalyticalTest, SingleChipRuntimeIsComputeOnly) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 5e8, 100.0);
  g.AddNode(OpType::kMatMul, "b", 5e8, 100.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({0, 0}, 4));
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.runtime_s, 1.0, 1e-9);  // 1 GFLOP at 1 GFLOP/s.
  EXPECT_NEAR(r.throughput, 1.0, 1e-9);
}

TEST(AnalyticalTest, PipelineBottleneckIsMaxChip) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 8e8, 0.0);
  g.AddNode(OpType::kMatMul, "b", 2e8, 0.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({0, 1}, 4));
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.runtime_s, 0.8, 1e-9);  // Bottleneck chip 0.
}

TEST(AnalyticalTest, CommunicationChargesBothEndpoints) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 0.0, 5e8);  // 0.5 GB output.
  g.AddNode(OpType::kMatMul, "b", 0.0, 0.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({0, 1}, 4));
  ASSERT_TRUE(r.valid);
  // Each endpoint pays 0.5 s of transfer at 1 GB/s.
  EXPECT_NEAR(r.runtime_s, 0.5, 1e-9);
}

TEST(AnalyticalTest, RejectsStaticallyInvalidPartitions) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 1.0);
  g.AddNode(OpType::kMatMul, "b", 1.0, 1.0);
  g.AddEdge(0, 1);
  AnalyticalCostModel model(SmallMcm());
  const EvalResult r = model.Evaluate(g, Assign({1, 0}, 4));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.failure, EvalFailure::kStaticConstraint);
}

TEST(AnalyticalTest, BalancedBeatsImbalanced) {
  // Four equal nodes on a chain: 2+2 split beats 3+1.
  Graph g("g");
  for (int i = 0; i < 4; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e8, 0.0);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  AnalyticalCostModel model(SmallMcm());
  const double balanced =
      model.Evaluate(g, Assign({0, 0, 1, 1}, 4)).runtime_s;
  const double skewed = model.Evaluate(g, Assign({0, 0, 0, 1}, 4)).runtime_s;
  EXPECT_LT(balanced, skewed);
}

// ---- Hardware simulator ------------------------------------------------------

TEST(HwSimTest, AgreesWithAnalyticalOnComputeShape) {
  // With generous memory and no noise, the simulator's runtime ordering
  // matches the analytical model on compute-dominated partitions.
  Graph g("g");
  for (int i = 0; i < 4; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e9, 1e3, 1e6);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  HardwareSim sim(opt);
  const double balanced = sim.Evaluate(g, Assign({0, 0, 1, 1}, 4)).runtime_s;
  const double skewed = sim.Evaluate(g, Assign({0, 0, 0, 1}, 4)).runtime_s;
  EXPECT_LT(balanced, skewed);
}

TEST(HwSimTest, DynamicConstraintRejectsOversizedChip) {
  Graph g("g");
  // A node whose weights alone exceed chip SRAM.
  g.AddNode(OpType::kMatMul, "big", 1.0, 1.0, 100e6);
  g.AddNode(OpType::kMatMul, "ok", 1.0, 1.0, 1.0);
  g.AddEdge(0, 1);
  HardwareSim::Options opt;
  opt.mcm.sram_bytes_per_chip = 64e6;
  HardwareSim sim(opt);
  const EvalResult r = sim.Evaluate(g, Assign({0, 0}, 4));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.failure, EvalFailure::kOutOfMemory);
  const auto report = sim.Simulate(g, Assign({0, 0}, 4));
  EXPECT_TRUE(report.oom);
  EXPECT_EQ(report.first_oom_chip, 0);
}

TEST(HwSimTest, PeakMemoryTracksLiveness) {
  // Chain a -> b -> c on one chip: a's buffer dies after b runs, so the
  // peak is params + two live buffers, not three.
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "b", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "c", 1.0, 10e6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  HardwareSim sim;
  const auto report = sim.Simulate(g, Assign({0, 0, 0}, 4));
  EXPECT_LE(report.chips[0].peak_memory_bytes, 20e6 + 1);
  EXPECT_GE(report.chips[0].peak_memory_bytes, 20e6 - 1);
}

TEST(HwSimTest, FanOutKeepsProducerBufferLive) {
  // a feeds b and c, b feeds c: at c's slot all three buffers are live.
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "b", 1.0, 10e6);
  g.AddNode(OpType::kMatMul, "c", 1.0, 10e6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  HardwareSim sim;
  const auto report = sim.Simulate(g, Assign({0, 0, 0}, 4));
  EXPECT_GE(report.chips[0].peak_memory_bytes, 30e6 - 1);
}

TEST(HwSimTest, MultiHopTransfersOccupyIntermediateLinks) {
  // A transfer from chip 0 to chip 2 loads links 0->1 and 1->2.  Build a
  // pattern where the direct edge is legal: the middle chip holds only an
  // unconnected constant.
  Graph g("g");
  g.AddNode(OpType::kMatMul, "src", 1.0, 8e6);       // node 0 chip 0
  g.AddNode(OpType::kConstant, "mid", 0.0, 1.0);     // node 1 chip 1
  g.AddNode(OpType::kMatMul, "dst", 1.0, 1.0);       // node 2 chip 2
  g.AddNode(OpType::kMatMul, "mid_user", 1.0, 1.0);  // node 3 chip 2
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  HardwareSim sim(opt);
  const Partition p = Assign({0, 1, 2, 2}, 3);
  ASSERT_EQ(ValidateStatic(g, p), Violation::kNone);
  const auto report = sim.Simulate(g, p);
  ASSERT_EQ(report.link_bytes.size(), 2u);
  EXPECT_GE(report.link_bytes[0], 8e6);
  EXPECT_GE(report.link_bytes[1], 8e6);
}

TEST(HwSimTest, NoiseIsDeterministicPerPartition) {
  const Graph g = MakeMlp("m", 64, {128, 128}, 10);
  HardwareSim sim;
  const Partition p = GreedyContiguousByCount(g, 4);
  const EvalResult r1 = sim.Evaluate(g, p);
  const EvalResult r2 = sim.Evaluate(g, p);
  ASSERT_TRUE(r1.valid);
  EXPECT_DOUBLE_EQ(r1.runtime_s, r2.runtime_s);
}

TEST(HwSimTest, NoiseDiffersAcrossPartitions) {
  Graph g("g");
  for (int i = 0; i < 6; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e9, 1e3);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  HardwareSim sim;
  const double r1 = sim.Evaluate(g, Assign({0, 0, 0, 1, 1, 1}, 2)).runtime_s;
  const double r2 = sim.Evaluate(g, Assign({0, 0, 1, 1, 1, 1}, 2)).runtime_s;
  // Different partitions with different bottlenecks; also different noise.
  EXPECT_NE(r1, r2);
}

TEST(HwSimTest, LowIntensityOpsRunAtLowerUtilization) {
  // Same FLOPs, one op moves far more bytes: it must take longer.
  Graph dense("dense");
  dense.AddNode(OpType::kMatMul, "mm", 1e9, 1e3, 0.0);
  Graph sparse("sparse");
  sparse.AddNode(OpType::kAdd, "add", 1e9, 1e9, 0.0);
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  opt.mcm.sram_bytes_per_chip = 8e9;
  HardwareSim sim(opt);
  const double t_dense = sim.Evaluate(dense, Assign({0}, 2)).runtime_s;
  const double t_sparse = sim.Evaluate(sparse, Assign({0}, 2)).runtime_s;
  EXPECT_GT(t_sparse, 2.0 * t_dense);
}

TEST(HwSimTest, MemoryPressureSlowsTheChip) {
  HardwareSim::Options opt;
  opt.noise_stddev = 0.0;
  opt.mcm.sram_bytes_per_chip = 100e6;
  HardwareSim sim(opt);
  Graph light("light");
  light.AddNode(OpType::kMatMul, "mm", 1e9, 1e3, 10e6);
  Graph heavy("heavy");
  heavy.AddNode(OpType::kMatMul, "mm", 1e9, 1e3, 95e6);
  const double t_light = sim.Evaluate(light, Assign({0}, 2)).runtime_s;
  const double t_heavy = sim.Evaluate(heavy, Assign({0}, 2)).runtime_s;
  EXPECT_GT(t_heavy, t_light);
}

// ---- Partition-evaluation memo cache ----------------------------------------

// Counts Evaluate calls so tests can distinguish hits from misses; returns a
// runtime derived from the assignment so wrong cache results are detectable.
class CountingModel final : public CostModel {
 public:
  EvalResult Evaluate(const Graph&, const Partition& partition) override {
    ++calls;
    double t = 1.0;
    for (int chip : partition.assignment) t += 0.01 * (chip + 1);
    return EvalResult::Valid(t);
  }
  std::string name() const override { return "counting"; }

  int calls = 0;
};

TEST(EvalCacheTest, HitsServeWithoutReevaluating) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  CountingModel model;
  EvalCache cache(8);
  const Partition p1 = Assign({0, 1}, 4);
  const Partition p2 = Assign({1, 0}, 4);

  const EvalResult first = cache.Evaluate(g, model, p1);
  EXPECT_EQ(model.calls, 1);
  EXPECT_EQ(cache.misses(), 1);

  const EvalResult again = cache.Evaluate(g, model, p1);
  EXPECT_EQ(model.calls, 1);  // Served from cache.
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(again.runtime_s, first.runtime_s);  // Bit-identical hit.
  EXPECT_EQ(again.valid, first.valid);

  cache.Evaluate(g, model, p2);  // Different assignment: a real miss.
  EXPECT_EQ(model.calls, 2);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(EvalCacheTest, EvictsLeastRecentlyUsedFirst) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 1e6, 10.0);
  CountingModel model;
  EvalCache cache(2);
  const Partition a = Assign({0}, 4);
  const Partition b = Assign({1}, 4);
  const Partition c = Assign({2}, 4);

  cache.Evaluate(g, model, a);
  cache.Evaluate(g, model, b);
  cache.Evaluate(g, model, a);  // Touch `a`: `b` becomes least recent.
  cache.Evaluate(g, model, c);  // Evicts `b`.
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);

  cache.Evaluate(g, model, a);  // Still cached.
  EXPECT_EQ(model.calls, 3);
  cache.Evaluate(g, model, b);  // Evicted: must re-evaluate.
  EXPECT_EQ(model.calls, 4);
}

TEST(EvalCacheTest, DefaultCapacityOverride) {
  SetDefaultEvalCacheCapacity(17);
  EXPECT_EQ(DefaultEvalCacheCapacity(), 17);
  SetDefaultEvalCacheCapacity(0);  // 0 = caching disabled.
  EXPECT_EQ(DefaultEvalCacheCapacity(), 0);
  SetDefaultEvalCacheCapacity(-1);  // Clears the override (env/base default).
  EXPECT_GE(DefaultEvalCacheCapacity(), 0);
}

// ---- Calibration-style property (mini Figure 7) -----------------------------

TEST(CalibrationTest, AnalyticalPredictsHardwareOrdering) {
  // On random valid BERT partitions the two models correlate strongly but
  // imperfectly, and a nontrivial fraction fails only on hardware --
  // exactly the paper's Section 5.4 structure.
  const Graph bert = MakeBert();
  CpSolver solver(bert, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(bert.NumNodes(), 36);
  AnalyticalCostModel analytical{McmConfig{}};
  HardwareSim hw;
  Rng rng(31);
  std::vector<double> predicted, measured;
  int invalid = 0, total = 0;
  for (int k = 0; k < 40; ++k) {
    const auto order = AlapRandomTopologicalOrder(bert, rng);
    const SolveResult r = SolveSample(solver, order, probs, rng);
    if (!r.success) continue;
    ++total;
    const EvalResult h = hw.Evaluate(bert, r.partition);
    if (!h.valid) {
      ++invalid;
      continue;
    }
    predicted.push_back(analytical.Evaluate(bert, r.partition).runtime_s);
    measured.push_back(h.runtime_s);
  }
  ASSERT_GE(total, 38);
  const double correlation = PearsonCorrelation(predicted, measured);
  EXPECT_GT(correlation, 0.6);
  EXPECT_LT(correlation, 0.999);  // Imperfect: the models must differ.
  EXPECT_GT(invalid, 0);          // Some samples fail only on hardware.
  EXPECT_LT(invalid, total / 2);
}

}  // namespace
}  // namespace mcm
