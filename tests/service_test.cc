// Tests for the partition service: wire protocol round-trips, admission
// control, micro-batching determinism, the placement cache, the daemon's
// graceful drain, and the serving determinism contract (served placements
// are bit-identical to the same request run offline).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "runtime/thread_pool.h"
#include "service/admission.h"
#include "service/batcher.h"
#include "service/handler.h"
#include "service/placement_cache.h"
#include "service/protocol.h"
#include "service/server.h"
#include "telemetry/metrics.h"

namespace mcm::service {
namespace {

std::string SmallGraphText() {
  Graph g("svc");
  for (int i = 0; i < 8; ++i) {
    g.AddNode(OpType::kMatMul, "n" + std::to_string(i), 1e6, 4096);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  std::ostringstream os;
  g.Serialize(os);
  return os.str();
}

PartitionRequest SmallRequest(std::uint64_t seed = 1,
                              RequestMode mode = RequestMode::kSolver) {
  PartitionRequest request;
  request.id = "t" + std::to_string(seed);
  request.mode = mode;
  request.graph_text = SmallGraphText();
  request.chips = 4;
  request.budget = 8;
  request.seed = seed;
  return request;
}

// The bit-identity contract covers the placement and its cost breakdown;
// the correlation id is per-caller and batch_size/cached are diagnostic.
// Normalize those three before comparing responses.
PartitionResponse Normalized(PartitionResponse response) {
  response.id.clear();
  response.batch_size = 1;
  response.cached = false;
  return response;
}

// ---- Protocol ---------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTripsThroughEncodeAndParse) {
  PartitionRequest request = SmallRequest(42, RequestMode::kSearch);
  request.method = "sa";
  request.model = "hwsim";
  request.objective = "latency";
  request.deadline_ms = 1500;

  const std::string line = EncodeRequest(request);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  PartitionRequest parsed;
  std::string error;
  ASSERT_TRUE(ParseRequest(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed, request);
}

TEST(ProtocolTest, ResponseRoundTripsThroughEncodeAndParse) {
  PartitionResponse response;
  response.id = "r/\"quoted\"\n";
  response.ok = true;
  response.assignment = {0, 1, 1, 2, 3, 0};
  response.num_chips = 4;
  response.improvement = 1.25;
  response.runtime_s = 3.5e-4;
  response.latency_s = 7.0e-4;
  response.throughput = 2857.14;
  response.baseline_runtime_s = 4.375e-4;
  response.cached = true;
  response.batch_size = 3;

  PartitionResponse parsed;
  std::string error;
  ASSERT_TRUE(ParseResponse(EncodeResponse(response), &parsed, &error))
      << error;
  EXPECT_EQ(parsed, response);
}

TEST(ProtocolTest, ErrorResponseRoundTrips) {
  const PartitionResponse error_response =
      MakeErrorResponse("req-9", "queue full", 40);
  PartitionResponse parsed;
  std::string error;
  ASSERT_TRUE(
      ParseResponse(EncodeResponse(error_response), &parsed, &error));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.error, "queue full");
  EXPECT_EQ(parsed.retry_after_ms, 40);
}

TEST(ProtocolTest, EncodingIsDeterministic) {
  const PartitionRequest request = SmallRequest(7);
  EXPECT_EQ(EncodeRequest(request), EncodeRequest(request));
}

TEST(ProtocolTest, MalformedInputIsRejected) {
  PartitionRequest request;
  std::string error;
  EXPECT_FALSE(ParseRequest("", &request, &error));
  EXPECT_FALSE(ParseRequest("{", &request, &error));
  EXPECT_FALSE(ParseRequest("[1,2]", &request, &error));
  EXPECT_FALSE(ParseRequest("{\"graph\": \"g\"} trailing", &request, &error));
  EXPECT_FALSE(ParseRequest("{\"chips\": 4}", &request, &error))
      << "a request without a graph must be rejected";
  EXPECT_FALSE(ParseRequest("{\"graph\": \"g\", \"mode\": \"bogus\"}",
                            &request, &error));
}

TEST(ProtocolTest, CacheKeyDiscriminatesEveryPlacementShapingField) {
  const PartitionRequest base = SmallRequest(1);
  EXPECT_EQ(RequestCacheKey(base), RequestCacheKey(base));

  PartitionRequest other = base;
  other.id = "different-id";  // Correlation id must NOT change the key.
  EXPECT_EQ(RequestCacheKey(base), RequestCacheKey(other));

  other = base;
  other.seed += 1;
  EXPECT_NE(RequestCacheKey(base), RequestCacheKey(other));
  other = base;
  other.chips += 1;
  EXPECT_NE(RequestCacheKey(base), RequestCacheKey(other));
  other = base;
  other.mode = RequestMode::kSearch;
  EXPECT_NE(RequestCacheKey(base), RequestCacheKey(other));
  other = base;
  other.graph_text += "x";
  EXPECT_NE(RequestCacheKey(base), RequestCacheKey(other));
  other = base;
  other.deadline_ms = 100;
  EXPECT_NE(RequestCacheKey(base), RequestCacheKey(other));
}

// ---- Admission control ------------------------------------------------------

TEST(AdmissionQueueTest, RejectsWhenFull) {
  AdmissionQueue queue(2);
  QueuedRequest item;
  item.request = SmallRequest(1);
  EXPECT_TRUE(queue.TryPush(item));
  EXPECT_TRUE(queue.TryPush(item));
  EXPECT_FALSE(queue.TryPush(item)) << "third push must hit the depth limit";
  EXPECT_EQ(queue.size(), 2u);

  // Popping frees room again.
  EXPECT_EQ(queue.PopBatch(1).size(), 1u);
  EXPECT_TRUE(queue.TryPush(item));
}

TEST(AdmissionQueueTest, PopBatchDrainsInAdmissionOrderThenStops) {
  AdmissionQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    QueuedRequest item;
    item.request = SmallRequest(static_cast<std::uint64_t>(i));
    item.sequence = i;
    ASSERT_TRUE(queue.TryPush(std::move(item)));
  }
  queue.Close();
  EXPECT_FALSE(queue.TryPush(QueuedRequest{})) << "closed queue rejects";

  const std::vector<QueuedRequest> first = queue.PopBatch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].sequence, 0);
  EXPECT_EQ(first[2].sequence, 2);
  EXPECT_EQ(queue.PopBatch(16).size(), 2u);
  EXPECT_TRUE(queue.PopBatch(16).empty()) << "closed + drained: stop signal";
}

TEST(AdmissionQueueTest, RetryAfterHintIsDeterministicAndBounded) {
  AdmissionQueue queue(128);
  EXPECT_EQ(queue.RetryAfterMs(2), queue.RetryAfterMs(2));
  for (const int executors : {1, 2, 8}) {
    const std::int64_t hint = queue.RetryAfterMs(executors);
    EXPECT_GE(hint, 10);
    EXPECT_LE(hint, 5000);
  }
}

// ---- Handler ----------------------------------------------------------------

TEST(HandlerTest, ExecutesEveryModeAndReportsCosts) {
  for (const RequestMode mode :
       {RequestMode::kSolver, RequestMode::kSearch, RequestMode::kZeroShot,
        RequestMode::kFinetune}) {
    const PartitionRequest request = SmallRequest(3, mode);
    const PartitionResponse response =
        ExecutePartitionRequest(request, nullptr);
    ASSERT_TRUE(response.ok) << RequestModeName(mode) << ": "
                             << response.error;
    EXPECT_EQ(response.id, request.id);
    EXPECT_EQ(static_cast<int>(response.assignment.size()), 8);
    EXPECT_EQ(response.num_chips, 4);
    EXPECT_GT(response.runtime_s, 0.0);
    EXPECT_GT(response.baseline_runtime_s, 0.0);
    EXPECT_GT(response.improvement, 0.0);
  }
}

TEST(HandlerTest, IsDeterministicAcrossRepeatedExecution) {
  const PartitionRequest request = SmallRequest(11, RequestMode::kSearch);
  const PartitionResponse a = ExecutePartitionRequest(request, nullptr);
  const PartitionResponse b = ExecutePartitionRequest(request, nullptr);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a, b);
}

TEST(HandlerTest, InvalidRequestsFailSoftly) {
  PartitionRequest request = SmallRequest(1);
  request.chips = 0;
  EXPECT_FALSE(ExecutePartitionRequest(request, nullptr).ok);

  request = SmallRequest(1);
  request.graph_text = "not a graph";
  const PartitionResponse response =
      ExecutePartitionRequest(request, nullptr);
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());

  request = SmallRequest(1);
  request.model = "quantum";
  EXPECT_FALSE(ExecutePartitionRequest(request, nullptr).ok);
}

TEST(HandlerTest, DeadlineKeepsResultsDeterministic) {
  PartitionRequest request = SmallRequest(5, RequestMode::kSearch);
  request.deadline_ms = 2000;
  const PartitionResponse a = ExecutePartitionRequest(request, nullptr);
  const PartitionResponse b = ExecutePartitionRequest(request, nullptr);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a, b);
}

TEST(HandlerTest, CheckpointShapeConfigRejectsUnknownShape) {
  EXPECT_EQ(CheckpointShapeConfig("quick", 6).num_chips, 6);
  EXPECT_EQ(CheckpointShapeConfig("pretrain", 8).hidden_dim, 16);
  EXPECT_THROW(CheckpointShapeConfig("bogus", 8), std::runtime_error);
}

// ---- Micro-batcher ----------------------------------------------------------

TEST(BatcherTest, FormBatchesCoalescesCompatibleRuns) {
  std::vector<QueuedRequest> items;
  auto push = [&](RequestMode mode, int chips) {
    QueuedRequest item;
    item.request = SmallRequest(items.size() + 1, mode);
    item.request.chips = chips;
    items.push_back(std::move(item));
  };
  push(RequestMode::kZeroShot, 4);
  push(RequestMode::kZeroShot, 4);   // Coalesces with the first.
  push(RequestMode::kZeroShot, 8);   // Different shape: new batch.
  push(RequestMode::kFinetune, 8);   // Heavy mode: singleton.
  push(RequestMode::kFinetune, 8);   // Still a singleton.
  push(RequestMode::kSolver, 4);

  const auto batches = FormBatches(items, 8);
  ASSERT_EQ(batches.size(), 5u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[2].size(), 1u);
  EXPECT_EQ(batches[3].size(), 1u);
  EXPECT_EQ(batches[4].size(), 1u);
  // Admission order is preserved across the split.
  EXPECT_EQ(batches[0][1].request.id, items[1].request.id);
  EXPECT_EQ(batches[4][0].request.id, items[5].request.id);
}

TEST(BatcherTest, FormBatchesHonorsMaxBatch) {
  std::vector<QueuedRequest> items;
  for (int i = 0; i < 7; ++i) {
    QueuedRequest item;
    item.request = SmallRequest(static_cast<std::uint64_t>(i),
                                RequestMode::kZeroShot);
    items.push_back(std::move(item));
  }
  const auto batches = FormBatches(items, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[1].size(), 3u);
  EXPECT_EQ(batches[2].size(), 1u);
}

TEST(BatcherTest, BatchedExecutionIsBitIdenticalToUnbatched) {
  ThreadPool pool(4);
  MicroBatcher batcher(pool, /*cache=*/nullptr, /*warm_start=*/nullptr);

  std::vector<QueuedRequest> batch;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    QueuedRequest item;
    item.request = SmallRequest(seed, RequestMode::kZeroShot);
    batch.push_back(std::move(item));
  }
  const std::vector<PartitionResponse> batched = batcher.ExecuteBatch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PartitionResponse solo =
        ExecutePartitionRequest(batch[i].request, nullptr);
    ASSERT_TRUE(batched[i].ok) << batched[i].error;
    EXPECT_EQ(batched[i].batch_size, 5);
    EXPECT_EQ(Normalized(batched[i]), Normalized(solo))
        << "request " << i << " differs between batched and solo execution";
  }
}

TEST(BatcherTest, DuplicateRequestsExecuteOnceAndShareTheResult) {
  ThreadPool pool(2);
  PlacementCache cache(16);
  MicroBatcher batcher(pool, &cache, nullptr);

  std::vector<QueuedRequest> batch;
  for (int i = 0; i < 4; ++i) {
    QueuedRequest item;
    item.request = SmallRequest(9, RequestMode::kSolver);  // Identical work.
    item.request.id = "dup" + std::to_string(i);
    batch.push_back(std::move(item));
  }
  const std::int64_t executed_before =
      telemetry::Counter::Get("service/executed").Value();
  const std::vector<PartitionResponse> responses =
      batcher.ExecuteBatch(batch);
  const std::int64_t executed_after =
      telemetry::Counter::Get("service/executed").Value();
  EXPECT_EQ(executed_after - executed_before, 1)
      << "four identical requests must collapse to one execution";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(responses[static_cast<std::size_t>(i)].ok);
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].id,
              "dup" + std::to_string(i));
    EXPECT_EQ(Normalized(responses[static_cast<std::size_t>(i)]),
              Normalized(responses[0]));
  }
}

// ---- Placement cache --------------------------------------------------------

TEST(PlacementCacheTest, HitReturnsIdenticalPlacementWithoutReEvaluation) {
  ThreadPool pool(2);
  PlacementCache cache(8);
  MicroBatcher batcher(pool, &cache, nullptr);

  QueuedRequest item;
  item.request = SmallRequest(21, RequestMode::kSearch);
  const std::vector<PartitionResponse> first =
      batcher.ExecuteBatch({item});
  ASSERT_TRUE(first[0].ok);
  EXPECT_FALSE(first[0].cached);

  item.request.id = "second-call";
  const std::int64_t executed_before =
      telemetry::Counter::Get("service/executed").Value();
  const std::vector<PartitionResponse> second =
      batcher.ExecuteBatch({item});
  const std::int64_t executed_after =
      telemetry::Counter::Get("service/executed").Value();
  EXPECT_EQ(executed_after, executed_before)
      << "a cache hit must not re-execute the request";
  ASSERT_TRUE(second[0].ok);
  EXPECT_TRUE(second[0].cached);
  EXPECT_EQ(second[0].id, "second-call") << "hit re-stamps the caller's id";
  EXPECT_EQ(Normalized(second[0]), Normalized(first[0]))
      << "cached placement must be bit-identical to the original";
  EXPECT_EQ(cache.hits(), 1);
}

TEST(PlacementCacheTest, EvictsLeastRecentlyUsed) {
  PlacementCache cache(2);
  PartitionResponse response;
  response.ok = true;
  response.assignment = {0, 1};
  cache.Insert("a", response);
  cache.Insert("b", response);

  // Touch "a" so "b" is the LRU victim when "c" arrives.
  PartitionResponse out;
  ASSERT_TRUE(cache.Lookup("a", "id", &out));
  cache.Insert("c", response);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a", "id", &out));
  EXPECT_FALSE(cache.Lookup("b", "id", &out)) << "LRU entry must be evicted";
  EXPECT_TRUE(cache.Lookup("c", "id", &out));
}

TEST(PlacementCacheTest, FailedResponsesAreNeverCached) {
  PlacementCache cache(4);
  cache.Insert("k", MakeErrorResponse("id", "transient overload"));
  PartitionResponse out;
  EXPECT_FALSE(cache.Lookup("k", "id", &out));
}

TEST(PlacementCacheTest, ZeroCapacityDisablesCaching) {
  PlacementCache cache(0);
  PartitionResponse response;
  response.ok = true;
  cache.Insert("k", response);
  PartitionResponse out;
  EXPECT_FALSE(cache.Lookup("k", "id", &out));
}

// ---- Daemon (Unix domain socket) --------------------------------------------

class ServerFixture {
 public:
  explicit ServerFixture(ServerConfig config) {
    if (config.socket_path.empty()) {
      config.socket_path =
          (std::filesystem::temp_directory_path() /
           ("mcm_service_test_" + std::to_string(getpid()) + ".sock"))
              .string();
    }
    server_ = std::make_unique<Server>(config);
    server_->Start();
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~ServerFixture() {
    server_->Shutdown();
    thread_.join();
  }

  Server& server() { return *server_; }
  const std::string& socket_path() {
    return server_->config().socket_path;
  }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST(ServerTest, ServesRequestsOverUnixSocket) {
  ServerFixture fixture(ServerConfig{});
  ServiceClient client(fixture.socket_path());
  const PartitionRequest request = SmallRequest(31, RequestMode::kSearch);
  const PartitionResponse response = client.Call(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.id, request.id);
  EXPECT_EQ(static_cast<int>(response.assignment.size()), 8);
}

TEST(ServerTest, ServedPlacementIsBitIdenticalToOfflineExecution) {
  ServerFixture fixture(ServerConfig{});
  ServiceClient client(fixture.socket_path());
  for (const RequestMode mode :
       {RequestMode::kSolver, RequestMode::kSearch,
        RequestMode::kZeroShot}) {
    const PartitionRequest request = SmallRequest(37, mode);
    const PartitionResponse served = client.Call(request);
    const PartitionResponse offline =
        ExecutePartitionRequest(request, nullptr);
    ASSERT_TRUE(served.ok) << served.error;
    EXPECT_EQ(Normalized(served), Normalized(offline))
        << "mode " << RequestModeName(mode);
  }
}

TEST(ServerTest, MalformedLineGetsAnErrorResponseNotADisconnect) {
  ServerFixture fixture(ServerConfig{});
  ServiceClient client(fixture.socket_path());

  // Hand-rolled bad line via the pipelined API is not possible (Send
  // encodes), so open a raw check through the protocol: an unparsable
  // request must produce ok=false while keeping the connection usable.
  PartitionRequest bad = SmallRequest(1);
  bad.graph_text = "definitely not a graph";
  const PartitionResponse error_response = client.Call(bad);
  EXPECT_FALSE(error_response.ok);

  const PartitionResponse good = client.Call(SmallRequest(2));
  EXPECT_TRUE(good.ok) << good.error;
}

TEST(ServerTest, DrainCompletesInFlightRequests) {
  ServerConfig config;
  config.executors = 2;
  config.cache_capacity = 0;  // Every request does real work.
  ServerFixture fixture(config);
  ServiceClient client(fixture.socket_path());

  // Pipeline several slow requests, wait for the first response (so the
  // server is demonstrably mid-stream), then request shutdown while the
  // rest are in flight.  Every request sent before Shutdown must get an
  // explicit response: a full result if it was admitted, a retry-after
  // rejection if it raced the drain gate -- never a silent drop.
  constexpr int kInFlight = 6;
  auto request_for = [](int i) {
    PartitionRequest request =
        SmallRequest(static_cast<std::uint64_t>(100 + i),
                     RequestMode::kSearch);
    request.id = "drain" + std::to_string(i);
    request.budget = 4000;
    return request;
  };
  for (int i = 0; i < kInFlight; ++i) client.Send(request_for(i));

  const PartitionResponse first = client.ReadResponse();
  ASSERT_TRUE(first.ok) << first.error;
  fixture.server().Shutdown();

  int ok = 1;
  for (int i = 1; i < kInFlight; ++i) {
    const PartitionResponse response = client.ReadResponse();
    if (response.ok) {
      ++ok;
      EXPECT_EQ(Normalized(response),
                Normalized(ExecutePartitionRequest(
                    request_for(std::stoi(response.id.substr(5))), nullptr)))
          << "drained response must match offline execution";
    } else {
      EXPECT_GT(response.retry_after_ms, 0) << response.error;
    }
  }
  EXPECT_GE(ok, 1) << "already-admitted requests must finish";
}

TEST(ServerTest, QueueFullRejectsWithRetryAfter) {
  ServerConfig config;
  config.queue_depth = 1;
  config.executors = 1;
  config.max_batch = 1;
  config.cache_capacity = 0;
  ServerFixture fixture(config);
  ServiceClient client(fixture.socket_path());

  // Flood far past the queue depth in one burst.  With depth 1 and slow
  // search requests, some must bounce with a retry-after hint.
  constexpr int kBurst = 12;
  for (int i = 0; i < kBurst; ++i) {
    PartitionRequest request = SmallRequest(
        static_cast<std::uint64_t>(200 + i), RequestMode::kSearch);
    request.id = "burst" + std::to_string(i);
    request.budget = 4000;  // Slow enough that the burst outpaces execution.
    client.Send(request);
  }
  int rejected = 0;
  int completed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const PartitionResponse response = client.ReadResponse();
    if (response.ok) {
      ++completed;
    } else {
      ++rejected;
      EXPECT_GT(response.retry_after_ms, 0)
          << "rejection must carry a retry-after hint: " << response.error;
    }
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(rejected, 0) << "burst of " << kBurst
                         << " must overflow a depth-1 queue";
}

}  // namespace
}  // namespace mcm::service
