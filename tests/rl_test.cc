// Tests for the policy network, environment, and PPO trainer.
#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"
#include "telemetry/metrics.h"

namespace mcm {
namespace {

RlConfig TinyConfig() {
  RlConfig config = RlConfig::Quick();
  config.gnn_layers = 2;
  config.hidden_dim = 16;
  config.rollouts_per_update = 6;
  config.minibatches = 2;
  config.epochs = 2;
  config.seed = 5;
  return config;
}

TEST(GraphContextTest, PrecomputesFeaturesAndNeighbors) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  GraphContext context(g, 36);
  EXPECT_EQ(context.num_nodes(), g.NumNodes());
  EXPECT_EQ(context.features().rows, g.NumNodes());
  EXPECT_EQ(context.neighbors().num_rows(), g.NumNodes());
  EXPECT_EQ(context.solver().num_chips(), 36);
}

TEST(PolicyTest, SampleRolloutShapes) {
  const Graph g = MakeMlp("m", 64, {64, 64, 64}, 10);
  GraphContext context(g, 36);
  RlConfig config = TinyConfig();
  PolicyNetwork policy(config);
  Rng rng(1);
  const Rollout rollout = policy.SampleRollout(context, rng);
  ASSERT_EQ(static_cast<int>(rollout.actions.size()),
            config.decode_iterations);
  for (const auto& step : rollout.actions) {
    ASSERT_EQ(static_cast<int>(step.size()), g.NumNodes());
    for (int a : step) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, 36);
    }
  }
  EXPECT_EQ(rollout.probs.num_nodes, g.NumNodes());
  EXPECT_EQ(rollout.probs.num_chips, 36);
  EXPECT_TRUE(rollout.candidate.Complete());
}

TEST(PolicyTest, GreedyRolloutIsDeterministic) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  GraphContext context(g, 36);
  PolicyNetwork policy(TinyConfig());
  const Rollout a = policy.GreedyRollout(context);
  const Rollout b = policy.GreedyRollout(context);
  EXPECT_EQ(a.candidate, b.candidate);
}

TEST(PolicyTest, SameSeedSamePolicy) {
  const Graph g = MakeMlp("m", 64, {64}, 10);
  GraphContext context(g, 36);
  PolicyNetwork p1(TinyConfig()), p2(TinyConfig());
  const Rollout a = p1.GreedyRollout(context);
  const Rollout b = p2.GreedyRollout(context);
  EXPECT_EQ(a.candidate, b.candidate);
}

TEST(PolicyTest, LossIsFiniteAndBackpropagates) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  GraphContext context(g, 36);
  PolicyNetwork policy(TinyConfig());
  Rng rng(2);
  Rollout rollout = policy.SampleRollout(context, rng);
  rollout.reward = 1.2;
  rollout.advantage = 0.5;
  Tape tape;
  const VarId loss = policy.BuildLoss(tape, context, rollout);
  EXPECT_TRUE(std::isfinite(tape.value(loss).at(0, 0)));
  tape.Backward(loss);
  double grad_norm = 0.0;
  for (Param* p : policy.Params()) {
    for (float gval : p->grad.data) grad_norm += std::abs(gval);
  }
  EXPECT_GT(grad_norm, 0.0);
}

TEST(EnvTest, RewardIsImprovementOverBaseline) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  PartitionEnv env(g, model, /*baseline_runtime_s=*/1e-3);
  // All nodes on chip 0 is always valid.
  Partition p = Partition::Empty(g.NumNodes(), 36);
  std::fill(p.assignment.begin(), p.assignment.end(), 0);
  const double reward = env.Reward(p);
  const EvalResult direct = model.Evaluate(g, p);
  EXPECT_NEAR(reward, 1e-3 / direct.runtime_s, 1e-9);
  EXPECT_EQ(env.num_evaluations(), 1);
}

TEST(EnvTest, InvalidPartitionEarnsZero) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  PartitionEnv env(g, model, 1e-3);
  Partition p = Partition::Empty(g.NumNodes(), 36);
  std::fill(p.assignment.begin(), p.assignment.end(), 0);
  p.assignment[0] = 5;  // Source above its consumers: monotone violation.
  EXPECT_EQ(env.Reward(p), 0.0);
  EXPECT_EQ(env.last_eval().failure, EvalFailure::kStaticConstraint);
}

TEST(EnvTest, HeuristicBaselineIsValidOnCorpus) {
  const std::vector<Graph> corpus = MakeCorpus();
  AnalyticalCostModel model{McmConfig{}};
  Rng rng(3);
  for (int idx : {1, 25, 55, 82}) {
    const Graph& g = corpus[static_cast<std::size_t>(idx)];
    CpSolver solver(g, 36);
    const BaselineResult baseline =
        ComputeHeuristicBaseline(g, model, solver, rng);
    EXPECT_TRUE(baseline.eval.valid) << g.name();
    EXPECT_EQ(ValidateStatic(g, baseline.partition), Violation::kNone)
        << g.name();
  }
}

TEST(EnvTest, CorrectAndScoreProducesValidPartitions) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[30];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(4);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);
  PolicyNetwork policy(TinyConfig());
  for (const auto mode :
       {RlConfig::SolverMode::kFix, RlConfig::SolverMode::kSample}) {
    Rollout rollout = policy.SampleRollout(context, rng);
    CorrectAndScore(context, env, mode, rollout, rng);
    ASSERT_TRUE(rollout.solver_success);
    EXPECT_EQ(ValidateStatic(g, rollout.corrected), Violation::kNone);
    EXPECT_GT(rollout.reward, 0.0);
    // Final-iteration actions were retargeted at the corrected partition.
    for (int u = 0; u < g.NumNodes(); ++u) {
      EXPECT_EQ(rollout.actions.back()[static_cast<std::size_t>(u)],
                rollout.corrected.chip(u));
    }
  }
}

TEST(EnvTest, NoSolverModeScoresRawCandidate) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  PartitionEnv env(g, model, 1e-3);
  PolicyNetwork policy(TinyConfig());
  Rng rng(6);
  Rollout rollout = policy.SampleRollout(context, rng);
  CorrectAndScore(context, env, RlConfig::SolverMode::kNone, rollout, rng);
  EXPECT_EQ(rollout.corrected, rollout.candidate);
  // An untrained policy's candidate is essentially always invalid.
  if (ValidateStatic(g, rollout.candidate) != Violation::kNone) {
    EXPECT_EQ(rollout.reward, 0.0);
  }
}

TEST(PolicyTest, EmbeddingCacheIsInvisibleAndInvalidatesOnParamChange) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  GraphContext context(g, 36);
  PolicyNetwork cached(TinyConfig()), fresh(TinyConfig());
  cached.set_embedding_cache_enabled(true);
  fresh.set_embedding_cache_enabled(false);

  auto& hits = telemetry::Counter::Get("rl/embed_cache_hits");
  auto& misses = telemetry::Counter::Get("rl/embed_cache_misses");
  const std::int64_t hits0 = hits.Value();
  const std::int64_t misses0 = misses.Value();

  // First use fills the cache (a miss); repeats are hits and bit-identical
  // to the uncached policy.
  EXPECT_EQ(cached.PredictValue(context), fresh.PredictValue(context));
  EXPECT_EQ(misses.Value(), misses0 + 1);
  EXPECT_EQ(cached.PredictValue(context), fresh.PredictValue(context));
  EXPECT_EQ(cached.GreedyRollout(context).candidate,
            fresh.GreedyRollout(context).candidate);
  EXPECT_GE(hits.Value(), hits0 + 2);

  // Mutating parameters changes the fingerprint: the stale embedding must
  // not be reused (this is the RestoreParams / optimizer-step path).
  auto perturb = [](PolicyNetwork& p) {
    for (Param* param : p.Params()) {
      for (float& v : param->value.data) v += 0.25f;
    }
  };
  perturb(cached);
  perturb(fresh);
  const std::int64_t misses_before = misses.Value();
  EXPECT_EQ(cached.PredictValue(context), fresh.PredictValue(context));
  EXPECT_EQ(misses.Value(), misses_before + 1);

  // Explicit invalidation also forces a recompute.
  cached.InvalidateEmbeddingCache();
  EXPECT_EQ(cached.PredictValue(context), fresh.PredictValue(context));
  EXPECT_EQ(misses.Value(), misses_before + 2);
}

TEST(PpoTest, CachingDoesNotChangeTrainingResults) {
  // Embedding reuse and the eval memo cache must be invisible to training:
  // same rewards and bit-identical parameters after several PPO iterations.
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[12];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext c1(g, 36), c2(g, 36);
  Rng rng(21);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, c1.solver(), rng);
  PartitionEnv cached_env(g, model, baseline.eval.runtime_s,
                          PartitionEnv::Objective::kThroughput,
                          /*eval_cache_capacity=*/1024);
  PartitionEnv plain_env(g, model, baseline.eval.runtime_s,
                         PartitionEnv::Objective::kThroughput,
                         /*eval_cache_capacity=*/0);
  PolicyNetwork p1(TinyConfig()), p2(TinyConfig());
  p1.set_embedding_cache_enabled(true);
  p2.set_embedding_cache_enabled(false);
  PpoTrainer t1(p1, Rng(22)), t2(p2, Rng(22));
  for (int it = 0; it < 3; ++it) {
    const auto r1 = t1.Iterate(c1, cached_env);
    const auto r2 = t2.Iterate(c2, plain_env);
    EXPECT_EQ(r1.rewards, r2.rewards);
  }
  const std::vector<Matrix> s1 = SnapshotParams(p1.Params());
  const std::vector<Matrix> s2 = SnapshotParams(p2.Params());
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].data, s2[i].data);
  }
  ASSERT_NE(cached_env.eval_cache(), nullptr);
  EXPECT_GT(cached_env.eval_cache()->hits() +
                cached_env.eval_cache()->misses(),
            0);
}

TEST(PpoTest, IterationProducesRequestedSamples) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[12];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(7);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);
  RlConfig config = TinyConfig();
  PolicyNetwork policy(config);
  PpoTrainer trainer(policy, Rng(8));
  const auto result = trainer.Iterate(context, env);
  EXPECT_EQ(static_cast<int>(result.rewards.size()),
            config.rollouts_per_update);
  EXPECT_GE(result.best_reward, result.mean_reward);
  EXPECT_TRUE(std::isfinite(result.mean_loss));
}

TEST(PpoTest, UpdateChangesParameters) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[12];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(9);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);
  PolicyNetwork policy(TinyConfig());
  const std::vector<Matrix> before = SnapshotParams(policy.Params());
  PpoTrainer trainer(policy, Rng(10));
  trainer.Iterate(context, env);
  const std::vector<Matrix> after = SnapshotParams(policy.Params());
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].data != after[i].data) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(PpoTest, EvaluateOnlyLeavesParametersUntouched) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[12];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(11);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);
  PolicyNetwork policy(TinyConfig());
  const std::vector<Matrix> before = SnapshotParams(policy.Params());
  PpoTrainer trainer(policy, Rng(12));
  const auto result = trainer.EvaluateOnly(context, env, 5);
  EXPECT_EQ(result.rewards.size(), 5u);
  const std::vector<Matrix> after = SnapshotParams(policy.Params());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].data, after[i].data);
  }
}

TEST(PpoTest, LearnsOnSmallGraph) {
  // Learning sanity check.  With the epsilon-uniform exploration mix the
  // *initial* sample quality already matches random search, so the check is
  // (a) training never degrades the sampling distribution and (b) the run
  // discovers clearly-better-than-baseline partitions.
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph* g = nullptr;
  for (const auto& c : corpus) {
    if (c.name() == "lstm_3") g = &c;
  }
  ASSERT_NE(g, nullptr);
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(*g, 36);
  Rng rng(13);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(*g, model, context.solver(), rng);
  PartitionEnv env(*g, model, baseline.eval.runtime_s);
  RlConfig config = RlConfig::Quick();
  config.seed = 3;
  PolicyNetwork policy(config);
  PpoTrainer trainer(policy, Rng(9));
  double first_mean = 0.0;
  double last_means = 0.0;
  double best = 0.0;
  const int iterations = 30;
  for (int it = 0; it < iterations; ++it) {
    const auto result = trainer.Iterate(context, env);
    if (it == 0) first_mean = result.mean_reward;
    if (it >= iterations - 5) last_means += result.mean_reward / 5.0;
    best = std::max(best, result.best_reward);
  }
  EXPECT_GT(last_means, 0.85 * first_mean);
  EXPECT_GT(best, 1.2);
}

}  // namespace
}  // namespace mcm
