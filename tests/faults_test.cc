// Tests for the fault-tolerance layer: deterministic fault injection,
// retry/backoff policy, the resilient cost-model decorator, solver budget
// degradation, checkpoint/resume bit-identity, and env-knob clamping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "faults/faults.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partition.h"
#include "pipeline/checkpoint.h"
#include "pipeline/pretrain.h"
#include "runtime/thread_pool.h"
#include "solver/cp_solver.h"
#include "solver/modes.h"
#include "telemetry/metrics.h"

namespace mcm {
namespace {

Graph Chain(int n) {
  Graph g("chain");
  for (int i = 0; i < n; ++i) {
    g.AddNode(OpType::kRelu, "n" + std::to_string(i), 1.0, 1.0);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  return g;
}

Partition AllZeros(int num_nodes, int num_chips) {
  Partition p = Partition::Empty(num_nodes, num_chips);
  for (int& chip : p.assignment) chip = 0;
  return p;
}

std::int64_t CounterValue(const char* name) {
  return telemetry::Counter::Get(name).Value();
}

// ---- FaultInjector ----------------------------------------------------------

FaultConfig HalfRate() {
  FaultConfig config;
  config.rate = 0.5;
  return config;
}

TEST(FaultInjectorTest, SampleIsPureAndSeedSensitive) {
  const FaultInjector a(HalfRate());
  const FaultInjector b(HalfRate());
  FaultConfig reseeded = HalfRate();
  reseeded.seed ^= 0x5eedULL;
  const FaultInjector c(reseeded);

  int fired = 0;
  bool seed_changes_draws = false;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    FaultKind kind_a{};
    FaultKind kind_b{};
    FaultKind kind_c{};
    const bool fa = a.Sample(key, &kind_a);
    const bool fb = b.Sample(key, &kind_b);
    const bool fc = c.Sample(key, &kind_c);
    EXPECT_EQ(fa, fb);
    if (fa) {
      EXPECT_EQ(kind_a, kind_b);
      ++fired;
    }
    if (fa != fc) seed_changes_draws = true;
  }
  // rate=0.5 over 1000 keys: the hash should fire roughly half the time.
  EXPECT_GT(fired, 350);
  EXPECT_LT(fired, 650);
  EXPECT_TRUE(seed_changes_draws);
}

TEST(FaultInjectorTest, SampleIsIdenticalAcrossThreadCounts) {
  const FaultInjector injector(HalfRate());
  constexpr int kKeys = 512;

  const auto draw_all = [&](ThreadPool& pool) {
    std::vector<int> out(kKeys, -1);
    pool.ParallelFor(0, kKeys, [&](std::int64_t i) {
      FaultKind kind{};
      const bool fired =
          injector.Sample(static_cast<std::uint64_t>(i), &kind);
      out[static_cast<std::size_t>(i)] =
          fired ? 1 + static_cast<int>(kind) : 0;
    });
    return out;
  };

  ThreadPool serial(1);
  ThreadPool parallel(4);
  EXPECT_EQ(draw_all(serial), draw_all(parallel));
}

TEST(FaultInjectorTest, RateEndpoints) {
  FaultConfig off;
  off.rate = 0.0;
  FaultConfig on;
  on.rate = 1.0;
  const FaultInjector never(off);
  const FaultInjector always(on);
  for (std::uint64_t key = 0; key < 100; ++key) {
    FaultKind kind{};
    EXPECT_FALSE(never.Sample(key, &kind));
    EXPECT_TRUE(always.Sample(key, &kind));
  }
}

TEST(FaultInjectorTest, KindRestrictionIsHonored) {
  FaultConfig config;
  config.rate = 1.0;
  config.enable_timeout = false;
  config.enable_spurious_invalid = false;
  config.enable_nan_cost = true;
  const FaultInjector injector(config);
  for (std::uint64_t key = 0; key < 100; ++key) {
    FaultKind kind{};
    ASSERT_TRUE(injector.Sample(key, &kind));
    EXPECT_EQ(kind, FaultKind::kNanCost);
  }
}

TEST(FaultInjectorTest, NextReplaysIdenticallyAndAdvancesPerKey) {
  FaultInjector a(HalfRate());
  FaultInjector b(HalfRate());
  for (std::uint64_t key = 0; key < 8; ++key) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      FaultKind kind_a{};
      FaultKind kind_b{};
      const bool fa = a.Next(key, &kind_a);
      const bool fb = b.Next(key, &kind_b);
      EXPECT_EQ(fa, fb);
      if (fa) {
        EXPECT_EQ(kind_a, kind_b);
      }
    }
  }
  // Attempts draw fresh keys: at rate 0.5 a key cannot fire (or miss) on
  // all 16 attempts unless the hash is badly broken.
  FaultInjector c(HalfRate());
  int fired = 0;
  for (int attempt = 0; attempt < 16; ++attempt) {
    FaultKind kind{};
    if (c.Next(42, &kind)) ++fired;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 16);
}

TEST(FaultConfigTest, FromEnvParsesAndClamps) {
  ::setenv("MCMPART_FAULT_RATE", "2.5", 1);
  ::setenv("MCMPART_FAULT_KINDS", "nan,timeout", 1);
  ::setenv("MCMPART_FAULT_SEED", "123", 1);
  const FaultConfig config = FaultConfig::FromEnv();
  ::unsetenv("MCMPART_FAULT_RATE");
  ::unsetenv("MCMPART_FAULT_KINDS");
  ::unsetenv("MCMPART_FAULT_SEED");
  EXPECT_DOUBLE_EQ(config.rate, 1.0);  // Clamped from 2.5.
  EXPECT_EQ(config.seed, 123u);
  EXPECT_TRUE(config.enable_timeout);
  EXPECT_TRUE(config.enable_nan_cost);
  EXPECT_FALSE(config.enable_spurious_invalid);
}

// ---- RetryPolicy ------------------------------------------------------------

TEST(RetryPolicyTest, BackoffStaysWithinJitteredExponentialBounds) {
  RetryPolicy policy;
  policy.initial_backoff_s = 1e-3;
  policy.max_backoff_s = 0.25;
  for (std::uint64_t key = 0; key < 16; ++key) {
    for (int attempt = 1; attempt <= 10; ++attempt) {
      const double base =
          std::min(policy.max_backoff_s,
                   policy.initial_backoff_s * std::exp2(attempt - 1));
      const double backoff = policy.BackoffSeconds(key, attempt);
      EXPECT_GE(backoff, 0.5 * base);
      EXPECT_LT(backoff, 1.5 * base);
      // Deterministic: the same (key, attempt) always backs off equally.
      EXPECT_DOUBLE_EQ(backoff, policy.BackoffSeconds(key, attempt));
    }
  }
}

TEST(RetryPolicyTest, JitterVariesWithKey) {
  const RetryPolicy policy;
  bool varies = false;
  for (std::uint64_t key = 1; key < 16 && !varies; ++key) {
    varies = policy.BackoffSeconds(key, 3) != policy.BackoffSeconds(0, 3);
  }
  EXPECT_TRUE(varies);
}

TEST(RetryPolicyTest, FromEnvClampsNegatives) {
  ::setenv("MCMPART_EVAL_RETRIES", "-3", 1);
  ::setenv("MCMPART_EVAL_BACKOFF_MS", "-10", 1);
  ::setenv("MCMPART_EVAL_DEADLINE_MS", "-1", 1);
  const RetryPolicy policy = RetryPolicy::FromEnv();
  ::unsetenv("MCMPART_EVAL_RETRIES");
  ::unsetenv("MCMPART_EVAL_BACKOFF_MS");
  ::unsetenv("MCMPART_EVAL_DEADLINE_MS");
  EXPECT_EQ(policy.max_retries, 0);
  EXPECT_DOUBLE_EQ(policy.initial_backoff_s, 0.0);
  EXPECT_DOUBLE_EQ(policy.deadline_s, 0.0);
}

// ---- ResilientCostModel -----------------------------------------------------

// Scripted model: returns the queued results in order, then `steady` for
// every further call.
class ScriptedModel final : public CostModel {
 public:
  ScriptedModel(std::vector<EvalResult> script, EvalResult steady)
      : script_(std::move(script)), steady_(steady) {}

  EvalResult Evaluate(const Graph&, const Partition&) override {
    const std::size_t call = calls_++;
    return call < script_.size() ? script_[call] : steady_;
  }
  std::string name() const override { return "scripted"; }
  int calls() const { return static_cast<int>(calls_); }

 private:
  const std::vector<EvalResult> script_;
  const EvalResult steady_;
  std::size_t calls_ = 0;
};

RetryPolicy InstantRetries(int max_retries) {
  RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.initial_backoff_s = 0.0;
  policy.max_backoff_s = 0.0;
  policy.deadline_s = 0.0;  // Disabled: no clock reads.
  return policy;
}

TEST(ResilientCostModelTest, RecoversAfterTransientFailures) {
  const Graph g = Chain(4);
  const Partition p = AllZeros(4, 2);
  ScriptedModel flaky({EvalResult::Invalid(EvalFailure::kTimeout),
                       EvalResult::Invalid(EvalFailure::kEvaluatorError)},
                      EvalResult::Valid(2.0));
  ResilientCostModel resilient(&flaky, nullptr, InstantRetries(4));

  const std::int64_t retries_before = CounterValue("faults/retries");
  const std::int64_t recovered_before = CounterValue("faults/recovered");
  const EvalResult result = resilient.Evaluate(g, p);
  EXPECT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.runtime_s, 2.0);
  EXPECT_EQ(flaky.calls(), 3);
  EXPECT_EQ(CounterValue("faults/retries") - retries_before, 2);
  EXPECT_EQ(CounterValue("faults/recovered") - recovered_before, 1);
}

TEST(ResilientCostModelTest, ExhaustionFallsBackToSecondaryModel) {
  const Graph g = Chain(4);
  const Partition p = AllZeros(4, 2);
  ScriptedModel broken({}, EvalResult::Invalid(EvalFailure::kTimeout));
  AnalyticalCostModel analytical{McmConfig{}};
  ResilientCostModel resilient(&broken, &analytical, InstantRetries(2));

  const std::int64_t exhausted_before =
      CounterValue("faults/retry_exhausted");
  const std::int64_t degraded_before = CounterValue("faults/degraded_evals");
  const EvalResult result = resilient.Evaluate(g, p);
  EXPECT_TRUE(result.valid);  // The analytical fallback scored it.
  EXPECT_GT(result.runtime_s, 0.0);
  EXPECT_EQ(broken.calls(), 3);  // 1 initial + 2 retries.
  EXPECT_EQ(CounterValue("faults/retry_exhausted") - exhausted_before, 1);
  EXPECT_EQ(CounterValue("faults/degraded_evals") - degraded_before, 1);
}

TEST(ResilientCostModelTest, NanCostIsSanitizedWithoutFallback) {
  const Graph g = Chain(4);
  const Partition p = AllZeros(4, 2);
  EvalResult nan_result = EvalResult::Valid(1.0);
  nan_result.runtime_s = std::numeric_limits<double>::quiet_NaN();
  ScriptedModel broken({}, nan_result);
  ResilientCostModel resilient(&broken, nullptr, InstantRetries(1));

  const EvalResult result = resilient.Evaluate(g, p);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.failure, EvalFailure::kEvaluatorError);
  EXPECT_TRUE(std::isfinite(result.runtime_s));  // NaN never escapes.
}

TEST(ResilientCostModelTest, DeterministicRejectionsAreNotRetried) {
  const Graph g = Chain(4);
  const Partition p = AllZeros(4, 2);
  ScriptedModel model({}, EvalResult::Invalid(EvalFailure::kStaticConstraint));
  ResilientCostModel resilient(&model, nullptr, InstantRetries(4));

  const EvalResult result = resilient.Evaluate(g, p);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.failure, EvalFailure::kStaticConstraint);
  EXPECT_EQ(model.calls(), 1);
}

TEST(ResilientCostModelTest, DeadlineCutsRetriesShort) {
  const Graph g = Chain(4);
  const Partition p = AllZeros(4, 2);
  ScriptedModel broken({}, EvalResult::Invalid(EvalFailure::kTimeout));
  RetryPolicy policy = InstantRetries(10);
  policy.initial_backoff_s = 1e-3;
  policy.deadline_s = 1e-9;  // The first backoff already overshoots.
  ResilientCostModel resilient(&broken, nullptr, policy);

  const std::int64_t retries_before = CounterValue("faults/retries");
  const EvalResult result = resilient.Evaluate(g, p);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(broken.calls(), 1);  // No retry fit inside the deadline.
  EXPECT_EQ(CounterValue("faults/retries") - retries_before, 0);
}

// ---- Solver budget degradation ----------------------------------------------

TEST(SolverBudgetTest, ExhaustedBudgetDegradesToValidPartition) {
  const Graph g = Chain(12);
  CpSolver::Options options;
  options.propagation_budget = 1;  // Exhausts on the first decision.
  CpSolver solver(g, 4, options);
  Rng rng(7);

  const std::int64_t degraded_before = CounterValue("solver/degraded_solves");
  const SolveResult result = SolveSampleWithRestarts(
      solver, g, ProbMatrix::Uniform(12, 4), rng);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(IsStaticallyValid(g, result.partition));
  EXPECT_EQ(CounterValue("solver/degraded_solves") - degraded_before, 1);
}

TEST(SolverBudgetTest, UnlimitedBudgetDoesNotDegrade) {
  const Graph g = Chain(12);
  CpSolver solver(g, 4);
  Rng rng(7);
  const SolveResult result = SolveSampleWithRestarts(
      solver, g, ProbMatrix::Uniform(12, 4), rng);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(IsStaticallyValid(g, result.partition));
}

// ---- Checkpoint state round-trip --------------------------------------------

PretrainConfig TinyPretrain() {
  PretrainConfig config;
  config.rl = RlConfig::Quick();
  config.rl.gnn_layers = 2;
  config.rl.hidden_dim = 16;
  config.rl.rollouts_per_update = 6;
  config.rl.epochs = 2;
  config.rl.minibatches = 2;
  config.total_samples = 24;
  config.num_checkpoints = 2;
  config.validation_zeroshot_samples = 4;
  config.validation_finetune_samples = 6;
  config.seed = 11;
  return config;
}

Matrix FilledMatrix(int rows, int cols, float start) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.data.size(); ++i) {
    m.data[i] = start + 0.25f * static_cast<float>(i);
  }
  return m;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows == b.rows && a.cols == b.cols &&
         std::memcmp(a.data.data(), b.data.data(),
                     a.data.size() * sizeof(float)) == 0;
}

PretrainState MakeState() {
  PretrainState state;
  state.iteration = 3;
  state.samples_seen = 18;
  state.next_checkpoint_at = 12;
  state.task_index = 5;
  state.rng_state = {0x1111, 0x2222, 0x3333, 0x4444};
  state.params = {FilledMatrix(3, 4, 0.5f), FilledMatrix(2, 2, -1.0f)};
  state.adam.step = 9;
  state.adam.m = {FilledMatrix(3, 4, 0.0f), FilledMatrix(2, 2, 0.125f)};
  state.adam.v = {FilledMatrix(3, 4, 1.0f), FilledMatrix(2, 2, 2.0f)};
  Checkpoint emitted;
  emitted.id = 0;
  emitted.samples_seen = 12;
  emitted.params = {FilledMatrix(3, 4, 7.0f)};
  state.emitted.push_back(std::move(emitted));
  return state;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  const std::filesystem::path path_;
};

TEST(PretrainStateTest, RoundTripIsBitIdentical) {
  const TempDir dir("mcm_faults_test_roundtrip");
  const PretrainConfig config = TinyPretrain();
  const PretrainState state = MakeState();
  SavePretrainState(state, config, dir.str());

  const std::optional<PretrainState> loaded =
      LoadPretrainState(config, dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->iteration, state.iteration);
  EXPECT_EQ(loaded->samples_seen, state.samples_seen);
  EXPECT_EQ(loaded->next_checkpoint_at, state.next_checkpoint_at);
  EXPECT_EQ(loaded->task_index, state.task_index);
  EXPECT_EQ(loaded->rng_state, state.rng_state);
  ASSERT_EQ(loaded->params.size(), state.params.size());
  for (std::size_t i = 0; i < state.params.size(); ++i) {
    EXPECT_TRUE(BitIdentical(loaded->params[i], state.params[i]));
  }
  EXPECT_EQ(loaded->adam.step, state.adam.step);
  ASSERT_EQ(loaded->adam.m.size(), state.adam.m.size());
  for (std::size_t i = 0; i < state.adam.m.size(); ++i) {
    EXPECT_TRUE(BitIdentical(loaded->adam.m[i], state.adam.m[i]));
    EXPECT_TRUE(BitIdentical(loaded->adam.v[i], state.adam.v[i]));
  }
  ASSERT_EQ(loaded->emitted.size(), 1u);
  EXPECT_EQ(loaded->emitted[0].id, 0);
  EXPECT_EQ(loaded->emitted[0].samples_seen, 12);
  ASSERT_EQ(loaded->emitted[0].params.size(), 1u);
  EXPECT_TRUE(
      BitIdentical(loaded->emitted[0].params[0], state.emitted[0].params[0]));
}

TEST(PretrainStateTest, MissingFileIsAFreshStart) {
  const TempDir dir("mcm_faults_test_missing");
  EXPECT_FALSE(LoadPretrainState(TinyPretrain(), dir.str()).has_value());
}

TEST(PretrainStateTest, FingerprintMismatchThrows) {
  const TempDir dir("mcm_faults_test_fingerprint");
  const PretrainConfig config = TinyPretrain();
  SavePretrainState(MakeState(), config, dir.str());

  PretrainConfig other = config;
  other.seed += 1;
  EXPECT_NE(PretrainConfigFingerprint(config),
            PretrainConfigFingerprint(other));
  EXPECT_THROW(LoadPretrainState(other, dir.str()), std::runtime_error);
}

TEST(PretrainStateTest, TruncatedFileThrows) {
  const TempDir dir("mcm_faults_test_truncated");
  const PretrainConfig config = TinyPretrain();
  SavePretrainState(MakeState(), config, dir.str());

  const std::string path = PretrainStatePath(dir.str());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(LoadPretrainState(config, dir.str()), std::runtime_error);
}

// ---- Resume bit-identity through the pipeline -------------------------------

std::vector<Graph> SmallGraphs(int count) {
  std::vector<Graph> graphs;
  const std::vector<Graph> corpus = MakeCorpus();
  for (const Graph& g : corpus) {
    if (g.NumNodes() < 80 && static_cast<int>(graphs.size()) < count) {
      graphs.push_back(g);
    }
  }
  return graphs;
}

TEST(PretrainResumeTest, InterruptedRunResumesBitIdentically) {
  const TempDir dir_full("mcm_faults_test_resume_full");
  const TempDir dir_cut("mcm_faults_test_resume_cut");
  const std::vector<Graph> graphs = SmallGraphs(2);
  ASSERT_GE(graphs.size(), 1u);
  AnalyticalCostModel model{McmConfig{}};

  PretrainConfig full = TinyPretrain();
  full.checkpoint_dir = dir_full.str();
  full.checkpoint_every = 1;
  const std::vector<Checkpoint> uninterrupted =
      PretrainPipeline(full, model).Train(graphs);

  PretrainConfig cut = full;
  cut.checkpoint_dir = dir_cut.str();
  cut.stop_after_iterations = 2;
  PretrainPipeline(cut, model).Train(graphs);

  PretrainConfig resumed_config = cut;
  resumed_config.stop_after_iterations = 0;
  resumed_config.resume = true;
  const std::vector<Checkpoint> resumed =
      PretrainPipeline(resumed_config, model).Train(graphs);

  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (std::size_t i = 0; i < uninterrupted.size(); ++i) {
    EXPECT_EQ(resumed[i].id, uninterrupted[i].id);
    EXPECT_EQ(resumed[i].samples_seen, uninterrupted[i].samples_seen);
    ASSERT_EQ(resumed[i].params.size(), uninterrupted[i].params.size());
    for (std::size_t j = 0; j < uninterrupted[i].params.size(); ++j) {
      EXPECT_TRUE(
          BitIdentical(resumed[i].params[j], uninterrupted[i].params[j]));
    }
  }

  // The final state files must match byte for byte (the fingerprint covers
  // the trajectory-shaping config, which is identical across the two runs).
  const auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string state_full = read_all(PretrainStatePath(dir_full.str()));
  const std::string state_cut = read_all(PretrainStatePath(dir_cut.str()));
  ASSERT_FALSE(state_full.empty());
  EXPECT_EQ(state_full, state_cut);
}

// ---- Env knob clamping ------------------------------------------------------

TEST(EnvClampTest, IntClampsOutOfRangeValues) {
  ::setenv("X_FAULTS_TEST_INT", "-5", 1);
  EXPECT_EQ(GetEnvInt("X_FAULTS_TEST_INT", 7, 0, 100), 0);
  ::setenv("X_FAULTS_TEST_INT", "9999", 1);
  EXPECT_EQ(GetEnvInt("X_FAULTS_TEST_INT", 7, 0, 100), 100);
  ::setenv("X_FAULTS_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("X_FAULTS_TEST_INT", 7, 0, 100), 42);
  ::unsetenv("X_FAULTS_TEST_INT");
  EXPECT_EQ(GetEnvInt("X_FAULTS_TEST_INT", 7, 0, 100), 7);
}

TEST(EnvClampTest, DoubleClampsOutOfRangeAndNonFiniteValues) {
  ::setenv("X_FAULTS_TEST_DOUBLE", "-0.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("X_FAULTS_TEST_DOUBLE", 0.5, 0.0, 1.0), 0.0);
  ::setenv("X_FAULTS_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("X_FAULTS_TEST_DOUBLE", 0.5, 0.0, 1.0), 1.0);
  ::setenv("X_FAULTS_TEST_DOUBLE", "nan", 1);
  const double clamped = GetEnvDouble("X_FAULTS_TEST_DOUBLE", 0.5, 0.0, 1.0);
  EXPECT_TRUE(clamped >= 0.0 && clamped <= 1.0);
  ::unsetenv("X_FAULTS_TEST_DOUBLE");
  EXPECT_DOUBLE_EQ(GetEnvDouble("X_FAULTS_TEST_DOUBLE", 0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace mcm
