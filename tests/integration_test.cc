// End-to-end integration tests across all modules: the full paper pipeline
// at miniature scale -- pre-train on small graphs with the analytical model,
// transfer to an unseen graph, evaluate against the hardware simulator.
#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "partition/heuristics.h"
#include "pipeline/pretrain.h"
#include "rl/env.h"
#include "search/search.h"

namespace mcm {
namespace {

TEST(IntegrationTest, FullPipelineMiniature) {
  // Split a small corpus subset into train/validation/test.
  const std::vector<Graph> corpus = MakeCorpus();
  std::vector<Graph> train, validation, test;
  for (const Graph& g : corpus) {
    if (g.NumNodes() >= 120) continue;
    if (train.size() < 3) {
      train.push_back(g);
    } else if (validation.size() < 1) {
      validation.push_back(g);
    } else if (test.size() < 1) {
      test.push_back(g);
    }
  }
  ASSERT_EQ(train.size(), 3u);
  ASSERT_EQ(test.size(), 1u);

  AnalyticalCostModel analytical{McmConfig{}};

  PretrainConfig config;
  config.rl = RlConfig::Quick();
  config.rl.gnn_layers = 2;
  config.rl.hidden_dim = 16;
  config.rl.rollouts_per_update = 8;
  config.rl.epochs = 2;
  config.rl.minibatches = 2;
  config.total_samples = 64;
  config.num_checkpoints = 2;
  config.validation_zeroshot_samples = 4;
  config.validation_finetune_samples = 8;
  config.seed = 21;

  // Training + validation phases.
  PretrainPipeline pipeline(config, analytical);
  std::vector<Checkpoint> checkpoints = pipeline.Train(train);
  ASSERT_FALSE(checkpoints.empty());
  const int best = pipeline.Validate(checkpoints, validation);

  // Deployment phase on the unseen test graph: zero-shot + fine-tune.
  const Graph& target = test.front();
  GraphContext context(target, 36);
  Rng rng(22);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(target, analytical, context.solver(), rng);
  ASSERT_TRUE(baseline.eval.valid);
  PartitionEnv env(target, analytical, baseline.eval.runtime_s);

  PolicyNetwork deployed(config.rl);
  PretrainPipeline::Restore(deployed,
                            checkpoints[static_cast<std::size_t>(best)]);
  RlSearch finetune(deployed, Rng(23), /*zero_shot=*/false, "RL Finetuning");
  const SearchTrace trace = finetune.Run(context, env, 24);
  EXPECT_EQ(trace.rewards.size(), 24u);
  EXPECT_GT(trace.BestWithin(24), 0.0);
}

TEST(IntegrationTest, HardwareSimRejectsSomeAnalyticallyFineBertSamples) {
  // The dynamic-constraint gap between pre-training (analytical) and
  // deployment (hardware) that Section 5.4 analyzes.
  const Graph bert = MakeBert();
  GraphContext context(bert, 36);
  AnalyticalCostModel analytical{McmConfig{}};
  HardwareSim hw;
  Rng rng(24);
  const ProbMatrix uniform = ProbMatrix::Uniform(bert.NumNodes(), 36);
  int analytical_valid = 0, hw_valid = 0;
  for (int k = 0; k < 25; ++k) {
    const auto order = AlapRandomTopologicalOrder(bert, rng);
    const SolveResult r = SolveSample(context.solver(), order, uniform, rng);
    ASSERT_TRUE(r.success);
    if (analytical.Evaluate(bert, r.partition).valid) ++analytical_valid;
    if (hw.Evaluate(bert, r.partition).valid) ++hw_valid;
  }
  EXPECT_EQ(analytical_valid, 25);  // No dynamic constraint analytically.
  EXPECT_LT(hw_valid, 25);          // Hardware rejects some.
  EXPECT_GT(hw_valid, 12);          // But not most.
}

TEST(IntegrationTest, SearchStrategiesProduceComparableTracesOnBert) {
  // A tiny Figure-6-shaped run: all strategies produce valid traces against
  // the hardware simulator with the production-greedy baseline.
  const Graph bert = MakeBert();
  GraphContext context(bert, 36);
  HardwareSim hw;
  Rng rng(25);
  const Partition greedy = GreedyContiguousByParams(bert, 36);
  const SolveResult repaired =
      RepairPartition(context.solver(), bert, greedy, rng);
  ASSERT_TRUE(repaired.success);
  const EvalResult baseline_eval = hw.Evaluate(bert, repaired.partition);
  ASSERT_TRUE(baseline_eval.valid);
  PartitionEnv env(bert, hw, baseline_eval.runtime_s);

  RandomSearch random{Rng(26)};
  const SearchTrace random_trace = random.Run(context, env, 6);
  EXPECT_EQ(random_trace.rewards.size(), 6u);
  EXPECT_GT(random_trace.BestWithin(6), 0.0);
}

}  // namespace
}  // namespace mcm
