// Tests for the telemetry subsystem: shard-merge correctness under
// ParallelFor, histogram bucket-edge semantics, Chrome-trace JSON
// well-formedness, run-report serialization, and the determinism contract:
// PPO and search results must be bit-identical with telemetry enabled or
// disabled, at any thread count.
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"
#include "runtime/thread_pool.h"
#include "search/search.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::RunReport;

// ---- A minimal JSON well-formedness checker ---------------------------------
// Enough of RFC 8259 to reject anything structurally broken (unbalanced
// braces, bad escapes, trailing garbage); we only produce objects, arrays,
// strings, numbers, and null.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Raw control.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (int k = 1; k <= 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + k]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::int64_t CounterValue(const telemetry::MetricsSnapshot& snap,
                          std::string_view name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return -1;
}

// ---- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterMergesThreadShardsUnderParallelFor) {
  Counter& counter = Counter::Get("test/parallel_hits");
  const std::int64_t before = counter.Value();
  constexpr std::int64_t kN = 5000;
  ThreadPool pool(4);
  pool.ParallelFor(0, kN, [&](std::int64_t) { counter.Add(); });
  EXPECT_EQ(counter.Value() - before, kN);
  // A second wave re-uses the per-thread cells and keeps accumulating.
  pool.ParallelFor(0, kN, [&](std::int64_t) { counter.Add(2); });
  EXPECT_EQ(counter.Value() - before, 3 * kN);
}

TEST(MetricsTest, CounterSurvivesThreadExit) {
  Counter& counter = Counter::Get("test/thread_churn");
  const std::int64_t before = counter.Value();
  {
    ThreadPool pool(3);
    pool.ParallelFor(0, 100, [&](std::int64_t) { counter.Add(); });
  }  // Pool (and its threads) destroyed; shards stay owned by the metric.
  EXPECT_EQ(counter.Value() - before, 100);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  const double bounds[] = {1.0, 2.0, 4.0};
  Histogram& h = Histogram::Get("test/edges", bounds);
  const Histogram::Snapshot before = h.Snap();
  ASSERT_EQ(before.bounds, std::vector<double>({1.0, 2.0, 4.0}));
  ASSERT_EQ(before.buckets.size(), 4u);  // Three finite + overflow.

  h.Observe(-5.0);  // Below the first bound: first bucket.
  h.Observe(1.0);   // Exactly on a bound: that bucket (inclusive upper).
  h.Observe(1.5);
  h.Observe(2.0);
  h.Observe(4.0);
  h.Observe(4.0001);  // Above the last bound: overflow.

  const Histogram::Snapshot after = h.Snap();
  std::vector<std::int64_t> delta(after.buckets.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = after.buckets[i] - before.buckets[i];
  }
  EXPECT_EQ(delta, std::vector<std::int64_t>({2, 2, 1, 1}));
  EXPECT_EQ(after.count - before.count, 6);
  EXPECT_DOUBLE_EQ(after.sum - before.sum, -5.0 + 1.0 + 1.5 + 2.0 + 4.0 + 4.0001);
}

TEST(MetricsTest, HistogramMergesShardsUnderParallelFor) {
  const double bounds[] = {10.0, 100.0};
  Histogram& h = Histogram::Get("test/parallel_hist", bounds);
  const Histogram::Snapshot before = h.Snap();
  constexpr std::int64_t kN = 3000;
  ThreadPool pool(4);
  pool.ParallelFor(0, kN, [&](std::int64_t i) {
    h.Observe(static_cast<double>(i % 200));  // Deterministic per index.
  });
  const Histogram::Snapshot after = h.Snap();
  EXPECT_EQ(after.count - before.count, kN);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < after.buckets.size(); ++i) {
    total += after.buckets[i] - before.buckets[i];
  }
  EXPECT_EQ(total, kN);  // Every observation landed in exactly one bucket.
}

TEST(MetricsTest, GaugeSetMaxIsCommutative) {
  Gauge& g = Gauge::Get("test/max_gauge");
  g.Set(0.0);
  ThreadPool pool(4);
  pool.ParallelFor(0, 1000, [&](std::int64_t i) {
    g.SetMax(static_cast<double>(i));
  });
  EXPECT_EQ(g.Value(), 999.0);
  g.SetMax(5.0);  // Lower value does not regress the max.
  EXPECT_EQ(g.Value(), 999.0);
}

TEST(MetricsTest, SnapshotIsNameSortedAndIncludesStandardNames) {
  telemetry::RegisterStandardMetrics();
  const telemetry::MetricsSnapshot snap = telemetry::SnapshotMetrics();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  EXPECT_GE(CounterValue(snap, "solver/fix_repaired"), 0);
  EXPECT_GE(CounterValue(snap, "hwsim/oom_rejections"), 0);
  EXPECT_GE(CounterValue(snap, "rl/episodes"), 0);
}

// ---- Trace ------------------------------------------------------------------

TEST(TraceTest, DisabledTracingRecordsNothing) {
  telemetry::EnableTracing(false);
  telemetry::ClearTraceForTest();
  { MCM_TRACE_SPAN("should/not/appear"); }
  telemetry::EnableTracing(true);
  const std::string path = testing::TempDir() + "mcm_trace_empty.json";
  ASSERT_TRUE(telemetry::WriteTrace(path));
  telemetry::EnableTracing(false);
  const std::string text = ReadFile(path);
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_EQ(text.find("should/not/appear"), std::string::npos);
}

TEST(TraceTest, WritesWellFormedChromeTraceJson) {
  telemetry::ClearTraceForTest();
  telemetry::EnableTracing(true);
  {
    MCM_TRACE_SPAN("outer/phase");
    { MCM_TRACE_SPAN("inner \"quoted\"\nname\t\\slash"); }  // Needs escaping.
    ThreadPool pool(4);
    pool.ParallelFor(0, 16, [](std::int64_t) {
      MCM_TRACE_SPAN("worker/span");
    });
  }
  const std::string path = testing::TempDir() + "mcm_trace.json";
  ASSERT_TRUE(telemetry::WriteTrace(path));
  telemetry::EnableTracing(false);
  telemetry::ClearTraceForTest();

  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"outer/phase\""), std::string::npos);
  EXPECT_NE(text.find("\"worker/span\""), std::string::npos);
  // Complete events carry the Chrome trace-event fields.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\""), std::string::npos);
  // The escaped name round-trips without raw control characters.
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
}

// ---- Run reports ------------------------------------------------------------

TEST(RunReportTest, SerializesStableWellFormedJson) {
  RunReport report("unit_test");
  report.AddPhaseSeconds("solve", 1.25);
  report.AddPhaseSeconds("solve", 0.25);  // Accumulates.
  report.SetValue("answer", 42.0);
  report.SetValue("not_finite", std::numeric_limits<double>::quiet_NaN());
  report.SetString("scale", "quick \"q\"");
  const std::string json = report.ToJson();

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"name\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"solve\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(json.find("\"not_finite\":null"), std::string::npos);  // NaN.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RunReportTest, WriteProducesReadableFile) {
  RunReport report("write_test");
  report.SetValue("x", 1.0);
  const std::string path = testing::TempDir() + "mcm_report.json";
  ASSERT_TRUE(report.Write(path));
  const std::string text = ReadFile(path);
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_NE(text.find("\"write_test\""), std::string::npos);
}

// ---- Determinism: telemetry on/off ------------------------------------------
// The contract from src/telemetry/metrics.h: telemetry is write-only with
// respect to the computation, so every reward, parameter, and search result
// is bit-identical with telemetry enabled or disabled, at any thread count.

RlConfig TinyConfig() {
  RlConfig config = RlConfig::Quick();
  config.gnn_layers = 2;
  config.hidden_dim = 16;
  config.rollouts_per_update = 6;
  config.minibatches = 2;
  config.epochs = 2;
  config.seed = 5;
  return config;
}

struct PpoRunResult {
  std::vector<double> rewards;
  double mean_loss = 0.0;
  std::vector<Matrix> params;
  std::vector<double> search_rewards;
  double search_best = 0.0;
};

PpoRunResult RunPpoAndSearch(int threads, bool telemetry_on) {
  SetDefaultThreadCount(threads);
  telemetry::ResetMetricsForTest();
  telemetry::ClearTraceForTest();
  telemetry::EnableTracing(telemetry_on);

  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(g, 36);
  Rng rng(3);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, context.solver(), rng);
  PartitionEnv env(g, model, baseline.eval.runtime_s);

  PpoRunResult out;
  {
    PolicyNetwork policy(TinyConfig());
    PpoTrainer trainer(policy, Rng(7));
    const PpoTrainer::IterationResult result = trainer.Iterate(context, env);
    out.rewards = result.rewards;
    out.mean_loss = result.mean_loss;
    out.params = SnapshotParams(policy.Params());
  }
  {
    RandomSearch search{Rng(17)};
    PartitionEnv search_env(g, model, baseline.eval.runtime_s);
    const SearchTrace trace = search.Run(context, search_env, /*budget=*/30);
    out.search_rewards = trace.rewards;
    out.search_best = search_env.best_reward();
  }

  telemetry::EnableTracing(false);
  telemetry::ClearTraceForTest();
  return out;
}

void ExpectBitIdentical(const PpoRunResult& a, const PpoRunResult& b,
                        const char* label) {
  EXPECT_EQ(a.rewards, b.rewards) << label;
  EXPECT_EQ(a.mean_loss, b.mean_loss) << label;
  ASSERT_EQ(a.params.size(), b.params.size()) << label;
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    EXPECT_EQ(a.params[p].data, b.params[p].data) << label << " param " << p;
  }
  EXPECT_EQ(a.search_rewards, b.search_rewards) << label;
  EXPECT_EQ(a.search_best, b.search_best) << label;
}

TEST(DeterminismTest, TelemetryOnOffBitIdenticalAtOneAndFourThreads) {
  const int before = DefaultThreadCount();
  const PpoRunResult off1 = RunPpoAndSearch(1, /*telemetry_on=*/false);
  const PpoRunResult on1 = RunPpoAndSearch(1, /*telemetry_on=*/true);
  const PpoRunResult off4 = RunPpoAndSearch(4, /*telemetry_on=*/false);
  const PpoRunResult on4 = RunPpoAndSearch(4, /*telemetry_on=*/true);
  SetDefaultThreadCount(before);

  ExpectBitIdentical(off1, on1, "telemetry on vs off, 1 thread");
  ExpectBitIdentical(off4, on4, "telemetry on vs off, 4 threads");
  ExpectBitIdentical(off1, off4, "1 vs 4 threads, telemetry off");
  ExpectBitIdentical(on1, on4, "1 vs 4 threads, telemetry on");
}

TEST(DeterminismTest, InstrumentedRunPopulatesExpectedCounters) {
  const int before = DefaultThreadCount();
  RunPpoAndSearch(2, /*telemetry_on=*/true);
  SetDefaultThreadCount(before);
  const telemetry::MetricsSnapshot snap = telemetry::SnapshotMetrics();
  EXPECT_GT(CounterValue(snap, "rl/episodes"), 0);
  EXPECT_GT(CounterValue(snap, "rl/policy_updates"), 0);
  EXPECT_GT(CounterValue(snap, "solver/sample_solves"), 0);
  EXPECT_GT(CounterValue(snap, "search/random_samples"), 0);
  EXPECT_GT(CounterValue(snap, "runtime/tasks_submitted"), 0);
}

}  // namespace
}  // namespace mcm
