// Tests for the search strategies and their traces.
#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "rl/env.h"
#include "search/search.h"

namespace mcm {
namespace {

struct Fixture {
  std::vector<Graph> corpus = MakeCorpus();
  const Graph& graph() { return corpus[30]; }
  AnalyticalCostModel model{McmConfig{}};
  GraphContext context{graph(), 36};
  double baseline_runtime;
  PartitionEnv env;

  Fixture()
      : baseline_runtime([this] {
          Rng rng(1);
          return ComputeHeuristicBaseline(graph(), model, context.solver(),
                                          rng)
              .eval.runtime_s;
        }()),
        env(graph(), model, baseline_runtime) {}
};

TEST(SearchTraceTest, BestSoFarAndThresholds) {
  SearchTrace trace;
  trace.rewards = {0.5, 0.2, 1.1, 0.9, 1.4};
  EXPECT_DOUBLE_EQ(trace.BestWithin(2), 0.5);
  EXPECT_DOUBLE_EQ(trace.BestWithin(3), 1.1);
  EXPECT_DOUBLE_EQ(trace.BestWithin(100), 1.4);
  const std::vector<double> curve = trace.BestSoFar();
  EXPECT_EQ(curve, (std::vector<double>{0.5, 0.5, 1.1, 1.1, 1.4}));
  EXPECT_EQ(trace.SamplesToReach(1.0).value(), 3u);
  EXPECT_EQ(trace.SamplesToReach(1.4).value(), 5u);
  EXPECT_FALSE(trace.SamplesToReach(2.0).has_value());
}

TEST(RandomSearchTest, ProducesValidRewardsAndExactBudget) {
  Fixture f;
  RandomSearch search{Rng(2)};
  const SearchTrace trace = search.Run(f.context, f.env, 40);
  EXPECT_EQ(trace.rewards.size(), 40u);
  EXPECT_EQ(trace.strategy, "Random");
  int positive = 0;
  for (double r : trace.rewards) {
    EXPECT_GE(r, 0.0);
    if (r > 0.0) ++positive;
  }
  // The analytical model enforces no dynamic constraint, so nearly every
  // solver-corrected sample earns a positive reward.
  EXPECT_GE(positive, 38);
}

TEST(RandomSearchTest, DeterministicPerSeed) {
  Fixture f1, f2;
  RandomSearch s1{Rng(3)}, s2{Rng(3)};
  const SearchTrace t1 = s1.Run(f1.context, f1.env, 10);
  const SearchTrace t2 = s2.Run(f2.context, f2.env, 10);
  EXPECT_EQ(t1.rewards, t2.rewards);
}

TEST(SimulatedAnnealingTest, RunsAndImprovesOverFirstSample) {
  Fixture f;
  SimulatedAnnealing search{Rng(4)};
  const SearchTrace trace = search.Run(f.context, f.env, 60);
  EXPECT_EQ(trace.rewards.size(), 60u);
  EXPECT_GE(trace.BestWithin(60), trace.rewards.front());
}

TEST(RlSearchTest, TracksBudgetAndImproves) {
  Fixture f;
  RlConfig config = RlConfig::Quick();
  config.rollouts_per_update = 10;
  config.seed = 7;
  PolicyNetwork policy(config);
  RlSearch search(policy, Rng(5));
  const SearchTrace trace = search.Run(f.context, f.env, 30);
  EXPECT_EQ(trace.rewards.size(), 30u);
  EXPECT_EQ(trace.strategy, "RL");
}

TEST(RlSearchTest, ZeroShotDoesNotTrain) {
  Fixture f;
  RlConfig config = RlConfig::Quick();
  config.rollouts_per_update = 5;
  config.seed = 8;
  PolicyNetwork policy(config);
  const std::vector<Matrix> before = SnapshotParams(policy.Params());
  RlSearch search(policy, Rng(6), /*zero_shot=*/true, "RL Zeroshot");
  const SearchTrace trace = search.Run(f.context, f.env, 15);
  EXPECT_EQ(trace.rewards.size(), 15u);
  EXPECT_EQ(trace.strategy, "RL Zeroshot");
  const std::vector<Matrix> after = SnapshotParams(policy.Params());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].data, after[i].data);
  }
}

TEST(SearchDeterminismTest, EvalCacheDoesNotChangeResults) {
  // The memo cache is pure memoization: every trace reward and the best
  // partition must be bit-identical with the cache on or off.
  std::vector<Graph> corpus = MakeCorpus();
  const Graph& graph = corpus[30];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext c1(graph, 36), c2(graph, 36);
  Rng rng(1);
  const double baseline =
      ComputeHeuristicBaseline(graph, model, c1.solver(), rng).eval.runtime_s;
  PartitionEnv cached(graph, model, baseline,
                      PartitionEnv::Objective::kThroughput,
                      /*eval_cache_capacity=*/1024);
  PartitionEnv uncached(graph, model, baseline,
                        PartitionEnv::Objective::kThroughput,
                        /*eval_cache_capacity=*/0);
  ASSERT_NE(cached.eval_cache(), nullptr);
  EXPECT_EQ(uncached.eval_cache(), nullptr);
  SimulatedAnnealing s1{Rng(9)}, s2{Rng(9)};
  const SearchTrace t1 = s1.Run(c1, cached, 60);
  const SearchTrace t2 = s2.Run(c2, uncached, 60);
  EXPECT_EQ(t1.rewards, t2.rewards);
  ASSERT_TRUE(cached.has_best());
  ASSERT_TRUE(uncached.has_best());
  EXPECT_EQ(cached.best_partition().assignment,
            uncached.best_partition().assignment);
  // The cache actually saw the search's evaluations.
  EXPECT_GT(cached.eval_cache()->hits() + cached.eval_cache()->misses(), 0);
}

TEST(SearchDeterminismTest, DeltaEvalDoesNotChangeResults) {
  // The incremental evaluator is a pure fast path: every trace reward and
  // the best partition must be bit-identical with delta eval on or off.
  std::vector<Graph> corpus = MakeCorpus();
  const Graph& graph = corpus[30];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext c1(graph, 36), c2(graph, 36);
  Rng rng(1);
  const double baseline =
      ComputeHeuristicBaseline(graph, model, c1.solver(), rng).eval.runtime_s;
  PartitionEnv with_delta(graph, model, baseline,
                          PartitionEnv::Objective::kThroughput,
                          /*eval_cache_capacity=*/0,
                          /*fallback_model=*/nullptr,
                          /*retry_policy=*/nullptr, /*delta_eval=*/1);
  PartitionEnv without(graph, model, baseline,
                       PartitionEnv::Objective::kThroughput,
                       /*eval_cache_capacity=*/0,
                       /*fallback_model=*/nullptr,
                       /*retry_policy=*/nullptr, /*delta_eval=*/0);
  ASSERT_NE(with_delta.delta_pool(), nullptr);
  EXPECT_EQ(without.delta_pool(), nullptr);
  SimulatedAnnealing s1{Rng(9)}, s2{Rng(9)};
  const SearchTrace t1 = s1.Run(c1, with_delta, 60);
  const SearchTrace t2 = s2.Run(c2, without, 60);
  EXPECT_EQ(t1.rewards, t2.rewards);
  ASSERT_TRUE(with_delta.has_best());
  ASSERT_TRUE(without.has_best());
  EXPECT_EQ(with_delta.best_reward(), without.best_reward());
  EXPECT_EQ(with_delta.best_partition().assignment,
            without.best_partition().assignment);
}

TEST(HillClimbTest, TracksBudgetAndOnlyValidMovesScore) {
  Fixture f;
  HillClimbSearch search{Rng(11)};
  const SearchTrace trace = search.Run(f.context, f.env, 200);
  EXPECT_EQ(trace.rewards.size(), 200u);
  EXPECT_EQ(trace.strategy, "HillClimb");
  int positive = 0;
  for (double r : trace.rewards) {
    EXPECT_GE(r, 0.0);
    if (r > 0.0) ++positive;
  }
  // The solver seed scores, and at least some single-node moves survive the
  // static-validity screen.
  EXPECT_GT(positive, 1);
  ASSERT_TRUE(f.env.has_best());
  EXPECT_GE(f.env.best_reward(), trace.rewards.front());
}

TEST(HillClimbTest, DeterministicPerSeedAndDeltaInvariant) {
  std::vector<Graph> corpus = MakeCorpus();
  const Graph& graph = corpus[30];
  AnalyticalCostModel model{McmConfig{}};
  GraphContext c1(graph, 36), c2(graph, 36);
  Rng rng(1);
  const double baseline =
      ComputeHeuristicBaseline(graph, model, c1.solver(), rng).eval.runtime_s;
  PartitionEnv e1(graph, model, baseline,
                  PartitionEnv::Objective::kThroughput,
                  /*eval_cache_capacity=*/0, /*fallback_model=*/nullptr,
                  /*retry_policy=*/nullptr, /*delta_eval=*/1);
  PartitionEnv e2(graph, model, baseline,
                  PartitionEnv::Objective::kThroughput,
                  /*eval_cache_capacity=*/0, /*fallback_model=*/nullptr,
                  /*retry_policy=*/nullptr, /*delta_eval=*/0);
  HillClimbSearch s1{Rng(13)}, s2{Rng(13)};
  const SearchTrace t1 = s1.Run(c1, e1, 120);
  const SearchTrace t2 = s2.Run(c2, e2, 120);
  EXPECT_EQ(t1.rewards, t2.rewards);
  ASSERT_TRUE(e1.has_best());
  EXPECT_EQ(e1.best_partition().assignment, e2.best_partition().assignment);
}

TEST(NoSolverRlTest, FindsNoValidPartition) {
  // Table 1 / Section 5.1: without the constraint solver the reward space
  // is so sparse that RL never sees a valid sample.
  Fixture f;
  RlConfig config = RlConfig::Quick();
  config.solver_mode = RlConfig::SolverMode::kNone;
  config.rollouts_per_update = 10;
  config.seed = 9;
  PolicyNetwork policy(config);
  NoSolverRlSearch search(policy, Rng(7));
  const SearchTrace trace = search.Run(f.context, f.env, 40);
  EXPECT_EQ(trace.rewards.size(), 40u);
  EXPECT_DOUBLE_EQ(trace.BestWithin(40), 0.0);
}

}  // namespace
}  // namespace mcm
