// Tests for the CP solver: domain helpers, propagation, backtracking, the
// SAMPLE/FIX drivers (paper Algorithms 1 and 2), and solve-validity property
// sweeps over the corpus.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "partition/heuristics.h"
#include "partition/partition.h"
#include "solver/cp_solver.h"
#include "solver/modes.h"

namespace mcm {
namespace {

TEST(DomainTest, Helpers) {
  EXPECT_EQ(FullDomain(4), 0b1111ULL);
  EXPECT_EQ(FullDomain(64), ~0ULL);
  EXPECT_EQ(DomainMin(0b0110), 1);
  EXPECT_EQ(DomainMax(0b0110), 2);
  EXPECT_EQ(DomainSize(0b0110), 2);
  EXPECT_TRUE(DomainContains(0b0110, 1));
  EXPECT_FALSE(DomainContains(0b0110, 0));
  EXPECT_EQ(MaskFrom(2), ~0ULL << 2);
  EXPECT_EQ(MaskFrom(64), 0ULL);
  EXPECT_EQ(MaskUpTo(2), 0b111ULL);
  EXPECT_EQ(MaskUpTo(63), ~0ULL);
}

Graph Chain(int n) {
  Graph g("chain");
  for (int i = 0; i < n; ++i) {
    g.AddNode(OpType::kRelu, "n" + std::to_string(i), 1.0, 1.0);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  return g;
}

TEST(CpSolverTest, MonotonePropagationOnChain) {
  const Graph g = Chain(5);
  CpSolver solver(g, 4);
  // Fix the middle node to chip 2: predecessors <= 2, successors >= 2.
  const int decisions = solver.SetDomain(2, 1ULL << 2);
  EXPECT_EQ(decisions, 1);
  EXPECT_LE(DomainMax(solver.GetDomain(0)), 2);
  EXPECT_LE(DomainMax(solver.GetDomain(1)), 2);
  EXPECT_GE(DomainMin(solver.GetDomain(3)), 2);
  EXPECT_GE(DomainMin(solver.GetDomain(4)), 2);
}

TEST(CpSolverTest, NoSkipForcesSourceToChipZero) {
  const Graph g = Chain(4);
  CpSolver solver(g, 8);
  // Fixing the head to chip 3 leaves chips 0..2 with no possible nodes,
  // so the solver must fail the attempt and exclude it.
  const int decisions = solver.SetDomain(0, 1ULL << 3);
  // The decision failed and was excluded; no decision remains on the stack.
  EXPECT_EQ(decisions, 0);
  EXPECT_FALSE(DomainContains(solver.GetDomain(0), 3));
  EXPECT_GT(solver.stats().failures, 0);
}

TEST(CpSolverTest, PigeonholeLimitsChainHeads) {
  const Graph g = Chain(4);
  CpSolver solver(g, 8);
  // Node 1 can be at most on chip 1: only node 0 can sit below it.
  solver.SetDomain(1, FullDomain(8));
  EXPECT_LE(DomainMax(solver.GetDomain(1)), 7);  // Sanity.
  const int decisions = solver.SetDomain(1, 1ULL << 5);
  EXPECT_EQ(decisions, 1);  // Committed something...
  EXPECT_NE(solver.FixedValue(1), 5);  // ...but not chip 5.
}

TEST(CpSolverTest, ResetRestoresRoot) {
  const Graph g = Chain(4);
  CpSolver solver(g, 4);
  solver.SetDomain(1, 1ULL << 1);
  solver.Reset();
  for (int u = 0; u < 4; ++u) {
    EXPECT_EQ(solver.GetDomain(u), FullDomain(4));
  }
  EXPECT_EQ(solver.NumDecisions(), 0);
  EXPECT_EQ(solver.NumFixedNodes(), 0);
  EXPECT_EQ(solver.MaxFixedChip(), -1);
}

TEST(CpSolverTest, TriangleCheckRejectsFigure2e) {
  // Figure 2e topology: fixing nodes to chips {0,1,2,2,2} must fail at the
  // decision that completes the triangle.
  Graph g("fig2");
  for (int i = 0; i < 5; ++i) g.AddNode(OpType::kRelu, "n", 1, 1);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 4);
  CpSolver solver(g, 3);
  int i = solver.SetDomain(0, 1ULL << 0);
  ASSERT_EQ(i, 1);
  i = solver.SetDomain(1, 1ULL << 1);
  ASSERT_EQ(i, 2);
  // Node 2 on chip 2 creates direct dep 0 -> 2; the path through chip 1
  // will exist via nodes 1,3 -- the solver's pruning must forbid it now
  // (the used-chip-between rule) or at the completing decision.
  i = solver.SetDomain(2, 1ULL << 2);
  if (i == 3) {
    // If accepted, completing the assignment must eventually fail/repair:
    // node 3 >= chip 1 and node 4 >= chip 2 by monotonicity.
    i = solver.SetDomain(3, 1ULL << 1);
    i = solver.SetDomain(4, 1ULL << 2);
    Partition p = solver.ExtractPartition();
    if (solver.AllFixed()) {
      EXPECT_EQ(ValidateStatic(g, p), Violation::kNone);
    }
  } else {
    EXPECT_FALSE(DomainContains(solver.GetDomain(2), 2));
  }
}

TEST(CpSolverTest, MaxFixedChipAndQuotaMask) {
  const Graph g = Chain(6);
  CpSolver solver(g, 4);
  EXPECT_EQ(solver.MaxFixedChip(), -1);
  solver.SetDomain(0, 1ULL << 0);
  solver.SetDomain(1, 1ULL << 1);
  EXPECT_EQ(solver.MaxFixedChip(), 1);
  const ChipDomain under2 = solver.UnderQuotaMask(1);
  EXPECT_FALSE(DomainContains(under2, 0));
  EXPECT_FALSE(DomainContains(under2, 1));
  EXPECT_TRUE(DomainContains(under2, 2));
}

// ---- Node orders -----------------------------------------------------------

bool IsPermutation(const std::vector<int>& order, int n) {
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int u : order) {
    if (u < 0 || u >= n || seen[static_cast<std::size_t>(u)]) return false;
    seen[static_cast<std::size_t>(u)] = true;
  }
  return static_cast<int>(order.size()) == n;
}

TEST(NodeOrderTest, AllOrdersArePermutations) {
  const Graph g = MakeResNet("r", ResNetConfig{});
  Rng rng(3);
  EXPECT_TRUE(IsPermutation(RandomNodeOrder(g.NumNodes(), rng), g.NumNodes()));
  EXPECT_TRUE(IsPermutation(TopologicalNodeOrder(g), g.NumNodes()));
  EXPECT_TRUE(IsPermutation(RandomTopologicalOrder(g, rng), g.NumNodes()));
  EXPECT_TRUE(IsPermutation(AlapRandomTopologicalOrder(g, rng), g.NumNodes()));
}

TEST(NodeOrderTest, RandomTopologicalRespectsEdges) {
  const Graph g = MakeInception("i", InceptionConfig{});
  Rng rng(11);
  const std::vector<int> order = RandomTopologicalOrder(g, rng);
  std::vector<int> position(static_cast<std::size_t>(g.NumNodes()));
  for (int i = 0; i < g.NumNodes(); ++i) {
    position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  for (const Edge& e : g.edges()) {
    EXPECT_LT(position[static_cast<std::size_t>(e.src)],
              position[static_cast<std::size_t>(e.dst)]);
  }
}

TEST(NodeOrderTest, AlapOrderDefersSourcesAfterConsumers) {
  // h0 (a constant source) must be decided after at least one consumer.
  Graph g("src");
  const int h0 = g.AddNode(OpType::kConstant, "h0", 0, 1);
  const int a = g.AddNode(OpType::kInput, "a", 0, 1);
  const int b = g.AddNode(OpType::kMatMul, "b", 1, 1);
  const int c = g.AddNode(OpType::kMatMul, "c", 1, 1);
  g.AddEdge(a, b);
  g.AddEdge(h0, c);
  g.AddEdge(b, c);
  Rng rng(1);
  const std::vector<int> order = AlapRandomTopologicalOrder(g, rng);
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_GT(position[static_cast<std::size_t>(h0)], position[static_cast<std::size_t>(c)]);
}

TEST(NodeOrderTest, OrdersVaryAcrossDraws) {
  // Needs a graph with ALAP-level ties (parallel branches); a pure chain
  // has a deterministic ALAP order.
  const Graph g = MakeInception("i", InceptionConfig{});
  Rng rng(5);
  const auto o1 = AlapRandomTopologicalOrder(g, rng);
  const auto o2 = AlapRandomTopologicalOrder(g, rng);
  EXPECT_NE(o1, o2);
}

// ---- SAMPLE / FIX drivers ---------------------------------------------------

TEST(SolveSampleTest, ChainAlwaysSolvesWithoutBacktracking) {
  const Graph g = Chain(20);
  CpSolver solver(g, 8);
  const ProbMatrix probs = ProbMatrix::Uniform(20, 8);
  Rng rng(2);
  for (int k = 0; k < 20; ++k) {
    const auto order = AlapRandomTopologicalOrder(g, rng);
    const SolveResult r = SolveSample(solver, order, probs, rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(ValidateStatic(g, r.partition), Violation::kNone);
  }
}

// Property sweep: SAMPLE mode must emit statically valid partitions for
// every corpus family.
class SampleValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(SampleValidityTest, CorpusGraphSolvesValidly) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  CpSolver solver(g, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(g.NumNodes(), 36);
  Rng rng(17 + GetParam());
  int successes = 0;
  for (int k = 0; k < 10; ++k) {
    const auto order = AlapRandomTopologicalOrder(g, rng);
    const SolveResult r = SolveSample(solver, order, probs, rng);
    if (!r.success) continue;
    ++successes;
    EXPECT_EQ(ValidateStatic(g, r.partition), Violation::kNone) << g.name();
  }
  EXPECT_GE(successes, 9) << g.name();
}

INSTANTIATE_TEST_SUITE_P(Corpus, SampleValidityTest,
                         ::testing::Values(0, 5, 16, 20, 32, 40, 46, 52, 60,
                                           66, 70, 74, 79, 82, 86));

TEST(SolveSampleTest, PartitionsVaryAcrossSolves) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[40];
  CpSolver solver(g, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(g.NumNodes(), 36);
  Rng rng(3);
  const auto o1 = AlapRandomTopologicalOrder(g, rng);
  const auto r1 = SolveSample(solver, o1, probs, rng);
  const auto o2 = AlapRandomTopologicalOrder(g, rng);
  const auto r2 = SolveSample(solver, o2, probs, rng);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_NE(r1.partition.assignment, r2.partition.assignment);
}

TEST(SolveSampleTest, ConcentratedProbsFollowPolicy) {
  // A probability matrix that puts all mass on chip 0 must place every node
  // on chip 0 (which is always valid).
  const Graph g = Chain(10);
  CpSolver solver(g, 4);
  ProbMatrix probs = ProbMatrix::Uniform(10, 4);
  for (int u = 0; u < 10; ++u) {
    auto row = probs.row(u);
    row[0] = 1.0;
    row[1] = row[2] = row[3] = 0.0;
  }
  Rng rng(4);
  const auto order = AlapRandomTopologicalOrder(g, rng);
  const SolveResult r = SolveSample(solver, order, probs, rng);
  ASSERT_TRUE(r.success);
  for (int u = 0; u < 10; ++u) EXPECT_EQ(r.partition.chip(u), 0);
}

TEST(SolveFixTest, ValidCandidateIsKeptVerbatim) {
  // FIX mode must keep a coherent valid candidate unchanged.
  const Graph g = Chain(12);
  CpSolver solver(g, 4);
  Partition candidate = Partition::Empty(12, 4);
  for (int u = 0; u < 12; ++u) {
    candidate.assignment[static_cast<std::size_t>(u)] = u / 3;
  }
  ASSERT_EQ(ValidateStatic(g, candidate), Violation::kNone);
  Rng rng(5);
  const auto order = TopologicalNodeOrder(g);
  const SolveResult r = SolveFix(solver, order, candidate, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.nodes_kept, 12);
  EXPECT_EQ(r.partition, candidate);
}

TEST(SolveFixTest, RepairsInvalidCandidate) {
  // An invalid candidate (violates no-skip) must be repaired into validity.
  const Graph g = Chain(12);
  CpSolver solver(g, 4);
  Partition candidate = Partition::Empty(12, 4);
  for (int u = 0; u < 12; ++u) {
    candidate.assignment[static_cast<std::size_t>(u)] = u < 6 ? 0 : 3;
  }
  ASSERT_NE(ValidateStatic(g, candidate), Violation::kNone);
  Rng rng(6);
  const auto order = TopologicalNodeOrder(g);
  const SolveResult r = SolveFix(solver, order, candidate, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(ValidateStatic(g, r.partition), Violation::kNone);
  EXPECT_GT(r.nodes_kept, 0);  // The coherent prefix survives.
}

class FixValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(FixValidityTest, RepairsRandomCandidatesOnCorpus) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  CpSolver solver(g, 36);
  Rng rng(23 + GetParam());
  for (int k = 0; k < 5; ++k) {
    // Fully random (usually invalid) candidate.
    Partition candidate = Partition::Empty(g.NumNodes(), 36);
    for (int& chip : candidate.assignment) {
      chip = static_cast<int>(rng.UniformInt(36));
    }
    const SolveResult r = SolveFixWithRestarts(solver, g, candidate, rng);
    ASSERT_TRUE(r.success) << g.name();
    EXPECT_EQ(ValidateStatic(g, r.partition), Violation::kNone) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FixValidityTest,
                         ::testing::Values(2, 18, 35, 50, 68, 78, 85));

TEST(SolveBertTest, SampleAndFixSolveBertWithoutThrashing) {
  const Graph bert = MakeBert();
  CpSolver solver(bert, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(bert.NumNodes(), 36);
  Rng rng(7);
  const auto order = AlapRandomTopologicalOrder(bert, rng);
  const SolveResult sample = SolveSample(solver, order, probs, rng);
  ASSERT_TRUE(sample.success);
  EXPECT_EQ(ValidateStatic(bert, sample.partition), Violation::kNone);
  // Near-zero backtracking: at most a small multiple of N calls.
  EXPECT_LE(sample.set_domain_calls, 4 * bert.NumNodes());

  const Partition greedy = GreedyContiguousByCount(bert, 36);
  const auto order2 = AlapRandomTopologicalOrder(bert, rng);
  const SolveResult fixed = SolveFix(solver, order2, greedy, rng);
  ASSERT_TRUE(fixed.success);
  EXPECT_EQ(ValidateStatic(bert, fixed.partition), Violation::kNone);
  EXPECT_GT(fixed.nodes_kept, bert.NumNodes() / 2);
}

TEST(ProbMatrixTest, UniformRowsSumToOne) {
  const ProbMatrix probs = ProbMatrix::Uniform(3, 5);
  for (int u = 0; u < 3; ++u) {
    double sum = 0.0;
    for (double p : probs.row(u)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace mcm
