// Tests for the matrix kernels, the autodiff tape (including finite-
// difference gradient checks for every op), modules, Adam, and checkpoints.
#include <cmath>
#include <functional>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "nn/arena.h"
#include "nn/matrix.h"
#include "nn/modules.h"
#include "nn/tape.h"
#include "runtime/thread_pool.h"

namespace mcm {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (float& x : m.data) x = static_cast<float>(rng.Normal(0.0, scale));
  return m;
}

TEST(MatrixTest, MatMulMatchesNaive) {
  Rng rng(1);
  const Matrix a = RandomMatrix(7, 5, rng);
  const Matrix b = RandomMatrix(5, 9, rng);
  Matrix out;
  MatMul(a, b, out);
  ASSERT_EQ(out.rows, 7);
  ASSERT_EQ(out.cols, 9);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 9; ++j) {
      float expect = 0.0f;
      for (int k = 0; k < 5; ++k) expect += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(out.at(i, j), expect, 1e-4);
    }
  }
}

TEST(MatrixTest, MatMulTransAMatchesNaive) {
  Rng rng(2);
  const Matrix a = RandomMatrix(6, 4, rng);
  const Matrix b = RandomMatrix(6, 3, rng);
  Matrix out;
  MatMulTransA(a, b, out);
  ASSERT_EQ(out.rows, 4);
  ASSERT_EQ(out.cols, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      float expect = 0.0f;
      for (int k = 0; k < 6; ++k) expect += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(out.at(i, j), expect, 1e-4);
    }
  }
}

TEST(MatrixTest, MatMulTransBMatchesNaive) {
  Rng rng(3);
  const Matrix a = RandomMatrix(5, 4, rng);
  const Matrix b = RandomMatrix(7, 4, rng);
  Matrix out;
  MatMulTransB(a, b, out);
  ASSERT_EQ(out.rows, 5);
  ASSERT_EQ(out.cols, 7);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 7; ++j) {
      float expect = 0.0f;
      for (int k = 0; k < 4; ++k) expect += a.at(i, k) * b.at(j, k);
      EXPECT_NEAR(out.at(i, j), expect, 1e-4);
    }
  }
}

TEST(MatrixTest, AccumulateAddsIntoExisting) {
  Rng rng(4);
  const Matrix a = RandomMatrix(3, 3, rng);
  const Matrix b = RandomMatrix(3, 3, rng);
  Matrix out;
  MatMul(a, b, out);
  Matrix twice = out;
  MatMul(a, b, twice, /*accumulate=*/true);
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    EXPECT_NEAR(twice.data[i], 2.0f * out.data[i], 1e-4);
  }
}

// ---- Blocked kernels vs naive references -----------------------------------

// The blocked kernels may reassociate (and, on AVX hosts, contract) float
// sums, so they are compared to the references with a relative tolerance.
void ExpectMatrixNear(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows, want.rows);
  ASSERT_EQ(got.cols, want.cols);
  for (std::size_t i = 0; i < want.data.size(); ++i) {
    const double scale =
        std::max({std::abs(static_cast<double>(want.data[i])), 1.0});
    EXPECT_NEAR(got.data[i], want.data[i], 1e-4 * scale) << "element " << i;
  }
}

using GemmKernel = void (*)(const Matrix&, const Matrix&, Matrix&, bool);

// Runs blocked vs reference over every (m, k, n) combination of `dims`,
// covering degenerate single-row/column shapes and every micro-tile edge
// remainder, for both accumulate modes.
void CheckKernelAgainstReference(GemmKernel kernel, GemmKernel reference,
                                 bool a_is_transposed, bool b_is_transposed) {
  const int dims[] = {1, 2, 3, 5, 7, 8, 13, 31, 33, 65};
  Rng rng(77);
  for (int m : dims) {
    for (int k : dims) {
      for (int n : dims) {
        SCOPED_TRACE("shape m=" + std::to_string(m) + " k=" +
                     std::to_string(k) + " n=" + std::to_string(n));
        const Matrix a = a_is_transposed ? RandomMatrix(k, m, rng)
                                         : RandomMatrix(m, k, rng);
        const Matrix b = b_is_transposed ? RandomMatrix(n, k, rng)
                                         : RandomMatrix(k, n, rng);
        Matrix got, want;
        kernel(a, b, got, /*accumulate=*/false);
        reference(a, b, want, /*accumulate=*/false);
        ExpectMatrixNear(got, want);
        // Accumulate into identical pre-filled outputs.
        Matrix seed = RandomMatrix(m, n, rng);
        Matrix got_acc = seed, want_acc = seed;
        kernel(a, b, got_acc, /*accumulate=*/true);
        reference(a, b, want_acc, /*accumulate=*/true);
        ExpectMatrixNear(got_acc, want_acc);
        if (::testing::Test::HasFailure()) return;  // One shape is enough.
      }
    }
  }
}

TEST(MatrixKernelTest, MatMulMatchesReferenceAcrossShapes) {
  CheckKernelAgainstReference(MatMul, MatMulReference, false, false);
}

TEST(MatrixKernelTest, MatMulTransAMatchesReferenceAcrossShapes) {
  CheckKernelAgainstReference(MatMulTransA, MatMulTransAReference, true,
                              false);
}

TEST(MatrixKernelTest, MatMulTransBMatchesReferenceAcrossShapes) {
  CheckKernelAgainstReference(MatMulTransB, MatMulTransBReference, false,
                              true);
}

// The parallel split is a pure function of shape, so results must be
// bit-identical for any worker-pool size.  Shapes are chosen to cross the
// parallel cutover (2*m*n*k >= 2^22 flops).
TEST(MatrixKernelTest, ResultsAreBitIdenticalAcrossThreadCounts) {
  const int saved_threads = DefaultThreadCount();
  Rng rng(31);
  // MatMul / MatMulTransB: 512 rows crosses the row-panel split.
  const Matrix a = RandomMatrix(512, 96, rng);
  const Matrix b = RandomMatrix(96, 80, rng);
  const Matrix bt = RandomMatrix(80, 96, rng);
  // MatMulTransA: 600 reduction rows crosses the k-slab split.
  const Matrix ta = RandomMatrix(600, 64, rng);
  const Matrix tb = RandomMatrix(600, 64, rng);
  std::vector<Matrix> mm, mta, mtb;
  for (int threads : {1, 2, 8}) {
    SetDefaultThreadCount(threads);
    Matrix out;
    MatMul(a, b, out);
    mm.push_back(out);
    MatMulTransA(ta, tb, out);
    mta.push_back(out);
    MatMulTransB(a, bt, out);
    mtb.push_back(out);
  }
  SetDefaultThreadCount(saved_threads);
  for (std::size_t i = 1; i < mm.size(); ++i) {
    EXPECT_EQ(mm[0].data, mm[i].data);
    EXPECT_EQ(mta[0].data, mta[i].data);
    EXPECT_EQ(mtb[0].data, mtb[i].data);
  }
}

TEST(ArenaTest, TapeRetiresAndReusesBuffers) {
  ScratchArena::ClearThreadPool();
  Rng rng(3);
  const Matrix x = RandomMatrix(16, 16, rng);
  auto build = [&] {
    Tape tape;
    const VarId v = tape.Constant(x);
    tape.value(tape.TanhOp(tape.ReluOp(v)));
  };
  build();  // The destructor retires node storage into this thread's pool.
  EXPECT_GT(ScratchArena::PooledBuffers(), 0u);
  const std::size_t reuses_before = ScratchArena::ReuseCount();
  build();  // The second episode must be served from the pool.
  EXPECT_GT(ScratchArena::ReuseCount(), reuses_before);
  ScratchArena::ClearThreadPool();
}

// ---- Finite-difference gradient checking ----------------------------------

// Builds a scalar loss from an input parameter through `network`, then
// verifies d loss / d input against central finite differences.
void CheckGradients(
    int rows, int cols,
    const std::function<VarId(Tape&, VarId)>& network,
    double tolerance = 2e-2, std::uint64_t seed = 99) {
  Rng rng(seed);
  Matrix value = RandomMatrix(rows, cols, rng, 0.7);
  Matrix grad(rows, cols);

  // Analytic gradients.
  {
    Tape tape;
    const VarId x = tape.Parameter(&value, &grad);
    const VarId loss = network(tape, x);
    tape.Backward(loss);
  }

  // Central differences on a sample of coordinates (all when small).
  const double h = 1e-3;
  for (std::size_t i = 0; i < value.data.size(); ++i) {
    const float saved = value.data[i];
    value.data[i] = saved + static_cast<float>(h);
    double up, down;
    {
      Tape tape;
      Matrix unused(rows, cols);
      const VarId x = tape.Parameter(&value, &unused);
      up = tape.value(network(tape, x)).at(0, 0);
    }
    value.data[i] = saved - static_cast<float>(h);
    {
      Tape tape;
      Matrix unused(rows, cols);
      const VarId x = tape.Parameter(&value, &unused);
      down = tape.value(network(tape, x)).at(0, 0);
    }
    value.data[i] = saved;
    const double numeric = (up - down) / (2.0 * h);
    const double analytic = grad.data[i];
    const double err = std::abs(numeric - analytic) /
                       std::max({std::abs(numeric), std::abs(analytic), 1.0});
    EXPECT_LT(err, tolerance)
        << "coordinate " << i << ": numeric=" << numeric
        << " analytic=" << analytic;
  }
}

// Reduces any matrix to a scalar via a fixed quadratic-ish readout so every
// element influences the loss.
VarId Readout(Tape& tape, VarId x) {
  const Matrix& v = tape.value(x);
  Matrix w(v.cols, 1);
  for (int j = 0; j < v.cols; ++j) {
    w.at(j, 0) = 0.3f + 0.05f * static_cast<float>(j % 7);
  }
  const VarId wv = tape.Constant(std::move(w));
  const VarId col = tape.MatMulOp(x, wv);      // [rows x 1]
  const VarId pooled = tape.MeanRowsOp(col);   // [1 x 1]
  return tape.SquaredErrorOp(pooled, 0.37);
}

TEST(TapeGradientTest, MatMul) {
  Rng rng(5);
  Matrix other = RandomMatrix(4, 6, rng);
  CheckGradients(3, 4, [&](Tape& tape, VarId x) {
    const VarId b = tape.Constant(other);
    return Readout(tape, tape.MatMulOp(x, b));
  });
}

TEST(TapeGradientTest, MatMulRightArgument) {
  Rng rng(6);
  Matrix other = RandomMatrix(5, 3, rng);
  CheckGradients(3, 4, [&](Tape& tape, VarId x) {
    const VarId a = tape.Constant(other);
    return Readout(tape, tape.MatMulOp(a, x));
  });
}

TEST(TapeGradientTest, AddAndBroadcast) {
  Rng rng(7);
  Matrix other = RandomMatrix(4, 5, rng);
  CheckGradients(4, 5, [&](Tape& tape, VarId x) {
    const VarId b = tape.Constant(other);
    return Readout(tape, tape.AddOp(x, b));
  });
  CheckGradients(1, 5, [&](Tape& tape, VarId x) {
    const VarId a = tape.Constant(other);
    return Readout(tape, tape.AddRowBroadcast(a, x));
  });
}

TEST(TapeGradientTest, Relu) {
  CheckGradients(4, 4, [&](Tape& tape, VarId x) {
    return Readout(tape, tape.ReluOp(x));
  }, /*tolerance=*/5e-2);  // Kinks near zero are fine to miss slightly.
}

TEST(TapeGradientTest, Tanh) {
  CheckGradients(4, 4, [&](Tape& tape, VarId x) {
    return Readout(tape, tape.TanhOp(x));
  });
}

TEST(TapeGradientTest, ConcatCols) {
  Rng rng(8);
  Matrix other = RandomMatrix(3, 2, rng);
  CheckGradients(3, 4, [&](Tape& tape, VarId x) {
    const VarId b = tape.Constant(other);
    return Readout(tape, tape.ConcatCols(x, b));
  });
}

TEST(TapeGradientTest, NeighborMean) {
  // A 4-node path graph: 0-1-2-3 (undirected neighbor lists).
  NeighborLists lists;
  lists.offsets = {0, 1, 3, 5, 6};
  lists.indices = {1, 0, 2, 1, 3, 2};
  lists.Finalize();
  CheckGradients(4, 3, [&](Tape& tape, VarId x) {
    return Readout(tape, tape.NeighborMeanOp(x, &lists));
  });
}

TEST(TapeGradientTest, MeanRows) {
  CheckGradients(5, 3, [&](Tape& tape, VarId x) {
    return Readout(tape, tape.MeanRowsOp(x));
  });
}

TEST(TapeGradientTest, L2NormalizeRows) {
  CheckGradients(4, 5, [&](Tape& tape, VarId x) {
    return Readout(tape, tape.L2NormalizeRowsOp(x));
  });
}

TEST(TapeGradientTest, PpoLoss) {
  const std::vector<int> actions = {0, 2, 1, 3};
  const std::vector<float> old_logp = {-1.2f, -0.9f, -1.6f, -1.1f};
  CheckGradients(4, 4, [&](Tape& tape, VarId x) {
    return tape.PpoLossOp(x, actions, /*advantage=*/0.8, old_logp,
                          /*clip_epsilon=*/0.2, /*entropy_coef=*/0.05);
  });
  // Negative advantage exercises the other clip branch.
  CheckGradients(4, 4, [&](Tape& tape, VarId x) {
    return tape.PpoLossOp(x, actions, /*advantage=*/-0.6, old_logp,
                          /*clip_epsilon=*/0.2, /*entropy_coef=*/0.05);
  }, 2e-2, /*seed=*/123);
}

TEST(TapeGradientTest, SquaredErrorAndAddScaled) {
  CheckGradients(1, 1, [&](Tape& tape, VarId x) {
    const VarId a = tape.SquaredErrorOp(x, 0.25);
    const VarId b = tape.SquaredErrorOp(x, -1.0);
    return tape.AddScaled(a, 0.7, b, 1.3);
  });
}

TEST(TapeTest, BackwardAccumulatesIntoSharedParameter) {
  Matrix value(2, 2);
  value.data = {1.0f, 2.0f, 3.0f, 4.0f};
  Matrix grad(2, 2);
  Tape tape;
  const VarId x = tape.Parameter(&value, &grad);
  // Use x twice: gradients must sum.
  const VarId sum = tape.AddOp(x, x);
  const VarId loss = Readout(tape, sum);
  tape.Backward(loss);
  Matrix grad_once(2, 2);
  {
    Tape tape2;
    const VarId x2 = tape2.Parameter(&value, &grad_once);
    Matrix identity(2, 2);
    identity.at(0, 0) = identity.at(1, 1) = 2.0f;  // 2*x via constant matmul
    const VarId two_x = tape2.MatMulOp(x2, tape2.Constant(identity));
    tape2.Backward(Readout(tape2, two_x));
  }
  for (std::size_t i = 0; i < grad.data.size(); ++i) {
    EXPECT_NEAR(grad.data[i], grad_once.data[i], 1e-4);
  }
}

TEST(TapeTest, RowSoftmaxSumsToOne) {
  Rng rng(11);
  const Matrix logits = RandomMatrix(6, 8, rng, 2.0);
  const Matrix probs = Tape::RowSoftmax(logits);
  for (int i = 0; i < probs.rows; ++i) {
    double sum = 0.0;
    for (int j = 0; j < probs.cols; ++j) {
      EXPECT_GT(probs.at(i, j), 0.0f);
      sum += probs.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(TapeTest, RowLogProbsMatchesSoftmax) {
  Rng rng(12);
  const Matrix logits = RandomMatrix(5, 7, rng, 1.5);
  const Matrix probs = Tape::RowSoftmax(logits);
  const std::vector<int> actions = {0, 3, 6, 2, 4};
  const std::vector<float> logp = Tape::RowLogProbs(logits, actions);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(std::exp(logp[static_cast<std::size_t>(i)]),
                probs.at(i, actions[static_cast<std::size_t>(i)]), 1e-4);
  }
}

// ---- Modules ---------------------------------------------------------------

TEST(ModulesTest, LinearShapesAndDeterminism) {
  Rng rng1(42), rng2(42);
  Linear l1("fc", 8, 5, rng1);
  Linear l2("fc", 8, 5, rng2);
  Rng data_rng(1);
  const Matrix x = RandomMatrix(3, 8, data_rng);
  Tape t1, t2;
  const auto& y1 = t1.value(l1.Forward(t1, t1.Constant(x)));
  const auto& y2 = t2.value(l2.Forward(t2, t2.Constant(x)));
  ASSERT_EQ(y1.rows, 3);
  ASSERT_EQ(y1.cols, 5);
  EXPECT_EQ(y1.data, y2.data);  // Same seed, same init, same output.
}

TEST(ModulesTest, GraphSageOutputsNormalizedRows) {
  Rng rng(7);
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  const NeighborLists lists = BuildNeighborLists(g);
  GraphSageNetwork net(5, 16, 2, rng);
  Rng data_rng(3);
  Matrix features = RandomMatrix(g.NumNodes(), 5, data_rng);
  Tape tape;
  const VarId out = net.Forward(tape, tape.Constant(features), &lists);
  const Matrix& h = tape.value(out);
  ASSERT_EQ(h.rows, g.NumNodes());
  ASSERT_EQ(h.cols, 16);
  for (int i = 0; i < h.rows; ++i) {
    double norm = 0.0;
    for (int j = 0; j < h.cols; ++j) {
      norm += static_cast<double>(h.at(i, j)) * h.at(i, j);
    }
    // Rows are L2-normalized (or all-zero if ReLU killed everything).
    EXPECT_TRUE(norm < 1.0 + 1e-3);
  }
}

TEST(ModulesTest, BuildNeighborListsIsUndirected) {
  Graph g("tiny");
  const int a = g.AddNode(OpType::kInput, "a", 0, 1);
  const int b = g.AddNode(OpType::kRelu, "b", 1, 1);
  const int c = g.AddNode(OpType::kOutput, "c", 0, 1);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  const NeighborLists lists = BuildNeighborLists(g);
  ASSERT_EQ(lists.num_rows(), 3);
  EXPECT_EQ(lists.offsets[1] - lists.offsets[0], 1);  // a: {b}
  EXPECT_EQ(lists.offsets[2] - lists.offsets[1], 2);  // b: {a, c}
  EXPECT_EQ(lists.offsets[3] - lists.offsets[2], 1);  // c: {b}
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize 0.5*(w . x - 3)^2 over w.
  Param w("w", 1, 4);
  Rng rng(5);
  for (float& v : w.value.data) v = static_cast<float>(rng.Normal());
  Adam adam({&w}, Adam::Options{.lr = 0.05});
  Matrix x(4, 1);
  x.data = {1.0f, -2.0f, 0.5f, 3.0f};
  double final_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    Tape tape;
    const VarId wv = tape.Parameter(&w.value, &w.grad);
    const VarId pred = tape.MatMulOp(wv, tape.Constant(x));
    const VarId loss = tape.SquaredErrorOp(pred, 3.0);
    final_loss = tape.value(loss).at(0, 0);
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_LT(final_loss, 1e-3);
}

TEST(CheckpointTest, SaveLoadRoundtrip) {
  Rng rng(9);
  Mlp original("net", {4, 8, 3}, rng);
  Rng rng2(1234);
  Mlp other("net", {4, 8, 3}, rng2);

  std::stringstream buffer;
  SaveParams(original.Params(), buffer);
  LoadParams(other.Params(), buffer);

  Rng data_rng(2);
  const Matrix x = RandomMatrix(2, 4, data_rng);
  Tape t1, t2;
  const auto& y1 = t1.value(original.Forward(t1, t1.Constant(x)));
  const auto& y2 = t2.value(other.Forward(t2, t2.Constant(x)));
  EXPECT_EQ(y1.data, y2.data);
}

TEST(CheckpointTest, LoadRejectsMismatch) {
  Rng rng(10);
  Mlp a("a", {4, 3}, rng);
  Mlp b("b", {4, 3}, rng);
  std::stringstream buffer;
  SaveParams(a.Params(), buffer);
  EXPECT_THROW(LoadParams(b.Params(), buffer), std::runtime_error);
}

TEST(CheckpointTest, SnapshotRestoreRoundtrip) {
  Rng rng(11);
  Mlp net("net", {3, 5, 2}, rng);
  const std::vector<Matrix> snapshot = SnapshotParams(net.Params());
  // Perturb.
  for (Param* p : net.Params()) {
    for (float& v : p->value.data) v += 1.0f;
  }
  RestoreParams(net.Params(), snapshot);
  const std::vector<Matrix> after = SnapshotParams(net.Params());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].data, after[i].data);
  }
}

}  // namespace
}  // namespace mcm
