// Tests for the extension surface: the latency objective, checkpoint file
// persistence, and broader property sweeps across the corpus.
#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "partition/heuristics.h"
#include "pipeline/pretrain.h"
#include "rl/env.h"
#include "solver/modes.h"

namespace mcm {
namespace {

Partition Assign(std::vector<int> chips, int num_chips) {
  Partition p;
  p.assignment = std::move(chips);
  p.num_chips = num_chips;
  return p;
}

// ---- Latency objective -------------------------------------------------------

TEST(LatencyTest, LatencyIsSumAndRuntimeIsMaxOfStageTimes) {
  Graph g("g");
  g.AddNode(OpType::kMatMul, "a", 6e8, 0.0);
  g.AddNode(OpType::kMatMul, "b", 4e8, 0.0);
  g.AddEdge(0, 1);
  McmConfig mcm;
  mcm.chip_flops_per_s = 1e9;
  mcm.effective_utilization = 1.0;
  mcm.link_bandwidth_bytes_per_s = 1e12;
  AnalyticalCostModel model(mcm);
  const EvalResult split = model.Evaluate(g, Assign({0, 1}, 4));
  ASSERT_TRUE(split.valid);
  EXPECT_NEAR(split.runtime_s, 0.6, 1e-9);
  EXPECT_NEAR(split.latency_s, 1.0, 1e-9);
  // On a single chip, latency equals runtime.
  const EvalResult fused = model.Evaluate(g, Assign({0, 0}, 4));
  EXPECT_NEAR(fused.latency_s, fused.runtime_s, 1e-12);
}

TEST(LatencyTest, LatencyAtLeastRuntimeEverywhere) {
  const std::vector<Graph> corpus = MakeCorpus();
  AnalyticalCostModel analytical{McmConfig{}};
  HardwareSim hw;
  Rng rng(77);
  for (int idx : {3, 21, 39, 57, 75}) {
    const Graph& g = corpus[static_cast<std::size_t>(idx)];
    CpSolver solver(g, 36);
    const ProbMatrix uniform = ProbMatrix::Uniform(g.NumNodes(), 36);
    const SolveResult r = SolveSampleWithRestarts(solver, g, uniform, rng);
    ASSERT_TRUE(r.success) << g.name();
    for (CostModel* model : {static_cast<CostModel*>(&analytical),
                             static_cast<CostModel*>(&hw)}) {
      const EvalResult eval = model->Evaluate(g, r.partition);
      if (!eval.valid) continue;
      EXPECT_GE(eval.latency_s, eval.runtime_s - 1e-12)
          << g.name() << " under " << model->name();
    }
  }
}

TEST(LatencyTest, EnvObjectiveSwitchesMetric) {
  const Graph g = MakeMlp("m", 128, {256, 256}, 10);
  AnalyticalCostModel model{McmConfig{}};
  Partition p = Partition::Empty(g.NumNodes(), 36);
  for (int u = 0; u < g.NumNodes(); ++u) {
    p.assignment[static_cast<std::size_t>(u)] = u < g.NumNodes() / 2 ? 0 : 1;
  }
  ASSERT_EQ(ValidateStatic(g, p), Violation::kNone);
  const EvalResult eval = model.Evaluate(g, p);
  PartitionEnv throughput_env(g, model, 1.0,
                              PartitionEnv::Objective::kThroughput);
  PartitionEnv latency_env(g, model, 1.0, PartitionEnv::Objective::kLatency);
  EXPECT_NEAR(throughput_env.Reward(p), 1.0 / eval.runtime_s, 1e-9);
  EXPECT_NEAR(latency_env.Reward(p), 1.0 / eval.latency_s, 1e-9);
  // The latency objective penalizes splitting more, so its reward is lower.
  EXPECT_LT(latency_env.Reward(p), throughput_env.Reward(p));
}

TEST(LatencyTest, SingleChipMaximizesLatencyObjective) {
  // Under the latency objective with negligible communication, fewer chips
  // is better (no pipeline benefit for one sample): all-on-one-chip must
  // score at least as well as any split.
  Graph g("chain");
  for (int i = 0; i < 8; ++i) {
    g.AddNode(OpType::kMatMul, "n", 1e8, 1e3);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  AnalyticalCostModel model{McmConfig{}};
  PartitionEnv env(g, model, 1.0, PartitionEnv::Objective::kLatency);
  Partition fused = Partition::Empty(8, 4);
  std::fill(fused.assignment.begin(), fused.assignment.end(), 0);
  Partition split = Partition::Empty(8, 4);
  for (int u = 0; u < 8; ++u) split.assignment[static_cast<std::size_t>(u)] = u / 2;
  EXPECT_GE(env.Reward(fused), env.Reward(split));
}

// ---- Checkpoint files --------------------------------------------------------

TEST(CheckpointFileTest, SaveLoadRoundtrip) {
  RlConfig config = RlConfig::Quick();
  config.gnn_layers = 2;
  config.hidden_dim = 16;
  config.seed = 9;
  PolicyNetwork original(config);
  Checkpoint checkpoint;
  checkpoint.id = 7;
  checkpoint.samples_seen = 123;
  checkpoint.params = SnapshotParams(original.Params());

  const std::string path =
      (std::filesystem::temp_directory_path() / "mcm_ckpt_test.txt").string();
  PretrainPipeline::SaveCheckpointFile(checkpoint, config, path);
  const Checkpoint loaded =
      PretrainPipeline::LoadCheckpointFile(config, path);
  EXPECT_EQ(loaded.id, 7);
  EXPECT_EQ(loaded.samples_seen, 123);
  ASSERT_EQ(loaded.params.size(), checkpoint.params.size());
  for (std::size_t i = 0; i < loaded.params.size(); ++i) {
    EXPECT_EQ(loaded.params[i].data, checkpoint.params[i].data);
  }
  std::filesystem::remove(path);
}

TEST(CheckpointFileTest, LoadRejectsMissingAndGarbage) {
  RlConfig config = RlConfig::Quick();
  config.gnn_layers = 2;
  config.hidden_dim = 16;
  EXPECT_THROW(
      PretrainPipeline::LoadCheckpointFile(config, "/nonexistent/ckpt"),
      std::runtime_error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mcm_ckpt_garbage.txt")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a checkpoint\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(PretrainPipeline::LoadCheckpointFile(config, path),
               std::runtime_error);
  std::filesystem::remove(path);
}

// ---- Broader property sweeps --------------------------------------------------

// Serialization round-trips every corpus family.
class SerializationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationSweepTest, RoundtripsCorpusGraph) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  std::stringstream buffer;
  g.Serialize(buffer);
  const Graph loaded = Graph::Deserialize(buffer);
  EXPECT_EQ(loaded.NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(loaded.TotalFlops(), g.TotalFlops());
  EXPECT_DOUBLE_EQ(loaded.TotalParamBytes(), g.TotalParamBytes());
}

INSTANTIATE_TEST_SUITE_P(Corpus, SerializationSweepTest,
                         ::testing::Values(0, 10, 20, 30, 40, 50, 60, 70, 80));

// The greedy-repair baseline is valid and better than a single chip for
// sufficiently large graphs, under both cost models.
class BaselineSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineSweepTest, BaselineValidAndMultiChip) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  AnalyticalCostModel model{McmConfig{}};
  CpSolver solver(g, 36);
  Rng rng(101);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(g, model, solver, rng);
  ASSERT_TRUE(baseline.eval.valid) << g.name();
  // Compare with all-on-one-chip.
  Partition fused = Partition::Empty(g.NumNodes(), 36);
  std::fill(fused.assignment.begin(), fused.assignment.end(), 0);
  const EvalResult fused_eval = model.Evaluate(g, fused);
  EXPECT_LE(baseline.eval.runtime_s, fused_eval.runtime_s * 1.001)
      << g.name();
}

INSTANTIATE_TEST_SUITE_P(Corpus, BaselineSweepTest,
                         ::testing::Values(4, 24, 44, 64, 84));

// Hardware-simulator reports are internally consistent across the corpus.
class HwSimSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HwSimSweepTest, ReportInternallyConsistent) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  CpSolver solver(g, 36);
  const ProbMatrix uniform = ProbMatrix::Uniform(g.NumNodes(), 36);
  Rng rng(55 + GetParam());
  const SolveResult r = SolveSampleWithRestarts(solver, g, uniform, rng);
  ASSERT_TRUE(r.success) << g.name();
  HardwareSim sim;
  const HardwareSim::Report report = sim.Simulate(g, r.partition);
  ASSERT_TRUE(report.statically_valid);
  int total_nodes = 0;
  for (const auto& chip : report.chips) {
    total_nodes += chip.num_nodes;
    EXPECT_GE(chip.peak_memory_bytes, chip.param_bytes - 1.0);
    EXPECT_GE(chip.compute_s, 0.0);
    EXPECT_GE(chip.transfer_s, 0.0);
  }
  EXPECT_EQ(total_nodes, g.NumNodes());
  if (!report.oom) {
    double max_stage = 0.0;
    for (const auto& chip : report.chips) {
      max_stage = std::max(max_stage, chip.compute_s + chip.transfer_s);
    }
    // Runtime is the noisy bottleneck: within noise bounds of max stage.
    EXPECT_GE(report.runtime_s, 0.8 * max_stage);
    EXPECT_GE(report.latency_s, report.runtime_s - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, HwSimSweepTest,
                         ::testing::Values(6, 26, 46, 66, 86));

// Chip-load accounting conserves totals under any valid partition.
class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, LoadsSumToGraphTotals) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  CpSolver solver(g, 36);
  const ProbMatrix uniform = ProbMatrix::Uniform(g.NumNodes(), 36);
  Rng rng(91 + GetParam());
  const SolveResult r = SolveSampleWithRestarts(solver, g, uniform, rng);
  ASSERT_TRUE(r.success) << g.name();
  const auto loads = ComputeChipLoads(g, r.partition);
  double flops = 0.0, params = 0.0, in_bytes = 0.0, out_bytes = 0.0;
  for (const ChipLoad& load : loads) {
    flops += load.compute_flops;
    params += load.param_bytes;
    in_bytes += load.bytes_in;
    out_bytes += load.bytes_out;
  }
  EXPECT_NEAR(flops, g.TotalFlops(), 1e-6 * g.TotalFlops() + 1e-9);
  EXPECT_NEAR(params, g.TotalParamBytes(),
              1e-6 * g.TotalParamBytes() + 1e-9);
  EXPECT_NEAR(in_bytes, out_bytes, 1e-6 * out_bytes + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ConservationTest,
                         ::testing::Values(8, 28, 48, 68));

// ---- Partition reporting & persistence ----------------------------------------

TEST(PartitionIoTest, DescribeMentionsValidityAndChips) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  Partition p = Partition::Empty(g.NumNodes(), 4);
  for (int u = 0; u < g.NumNodes(); ++u) {
    p.assignment[static_cast<std::size_t>(u)] = u * 4 / g.NumNodes();
  }
  const std::string text = DescribePartition(g, p);
  EXPECT_NE(text.find("static validity: none"), std::string::npos);
  EXPECT_NE(text.find("chips used: 4"), std::string::npos);
}

TEST(PartitionIoTest, SaveLoadRoundtrip) {
  const Graph g = MakeMlp("m", 64, {64}, 10);
  Partition p = Partition::Empty(g.NumNodes(), 8);
  Rng rng(5);
  for (int& chip : p.assignment) chip = static_cast<int>(rng.UniformInt(8));
  std::stringstream buffer;
  SavePartition(p, buffer);
  const Partition loaded = LoadPartition(g.NumNodes(), 8, buffer);
  EXPECT_EQ(loaded, p);
}

TEST(PartitionIoTest, LoadRejectsBadInput) {
  std::stringstream wrong_header("bogus 3 2\n0 0\n1 1\n2 0\n");
  EXPECT_THROW(LoadPartition(3, 2, wrong_header), std::runtime_error);
  std::stringstream out_of_range("mcm-partition-v1 2 2\n0 0\n1 9\n");
  EXPECT_THROW(LoadPartition(2, 2, out_of_range), std::runtime_error);
  std::stringstream truncated("mcm-partition-v1 2 2\n0 0\n");
  EXPECT_THROW(LoadPartition(2, 2, truncated), std::runtime_error);
}

TEST(BestPartitionTest, EnvTracksIncumbent) {
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  AnalyticalCostModel model{McmConfig{}};
  PartitionEnv env(g, model, 1e-3);
  EXPECT_FALSE(env.has_best());
  Partition fused = Partition::Empty(g.NumNodes(), 36);
  std::fill(fused.assignment.begin(), fused.assignment.end(), 0);
  const double r1 = env.Reward(fused);
  ASSERT_TRUE(env.has_best());
  EXPECT_EQ(env.best_partition(), fused);
  EXPECT_DOUBLE_EQ(env.best_reward(), r1);
  // A better (two-chip) partition replaces the incumbent.
  Partition split = fused;
  for (int u = g.NumNodes() / 2; u < g.NumNodes(); ++u) {
    split.assignment[static_cast<std::size_t>(u)] = 1;
  }
  const double r2 = env.Reward(split);
  if (r2 > r1) {
    EXPECT_EQ(env.best_partition(), split);
  } else {
    EXPECT_EQ(env.best_partition(), fused);
  }
}

TEST(SolverOptionsTest, PropagationCanBeDisabled) {
  // With all pruning off the solver is still correct (just slower): small
  // graphs must still solve and validate.
  const Graph g = MakeMlp("m", 64, {64, 64}, 10);
  CpSolver::Options options;
  options.prune_triangle_domains = false;
  options.assume_connected_used_chips = false;
  CpSolver solver(g, 8, options);
  const ProbMatrix uniform = ProbMatrix::Uniform(g.NumNodes(), 8);
  Rng rng(3);
  const SolveResult r = SolveSampleWithRestarts(solver, g, uniform, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(ValidateStatic(g, r.partition), Violation::kNone);
}

}  // namespace
}  // namespace mcm
