// Tests for RNG, hashing, statistics, and environment scaling helpers.
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"

namespace mcm {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c;
  }
  Rng d(42), e(43);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (d.Next() != e.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 1600);
    EXPECT_LT(count, 2400);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalHasRightMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.Stddev(), 1.0, 0.03);
}

TEST(RngTest, SampleDiscreteFollowsWeights) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 4.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.SampleDiscrete(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 1.0 / 8.0, 0.02);
  EXPECT_NEAR(counts[1] / 8000.0, 3.0 / 8.0, 0.02);
  EXPECT_NEAR(counts[3] / 8000.0, 4.0 / 8.0, 0.02);
}

TEST(RngTest, SampleDiscreteMaskedRespectsMask) {
  Rng rng(12);
  const std::vector<double> weights = {5.0, 5.0, 5.0, 5.0};
  for (int i = 0; i < 200; ++i) {
    const std::size_t pick = rng.SampleDiscreteMasked(weights, 0b1010);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, SampleDiscreteMaskedZeroWeightsFallsBackToUniform) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.SampleDiscreteMasked(weights, 0b0110)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(counts[1] / 4000.0, 0.5, 0.05);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(15);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(HashTest, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  const std::vector<std::uint64_t> xs = {1, 2, 3};
  const std::vector<std::uint64_t> ys = {3, 2, 1};
  EXPECT_NE(HashSpan(xs), HashSpan(ys));
  EXPECT_EQ(HashSpan(xs), HashSpan(xs));
}

TEST(StatsTest, BasicAggregates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_NEAR(Stddev(xs), 1.1180, 1e-3);
  EXPECT_NEAR(Geomean(xs), 2.2134, 1e-3);
}

TEST(StatsTest, GeomeanOfEqualValues) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(Geomean(xs), 2.0);
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, flat), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 2.5);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  Rng rng(16);
  std::vector<double> xs;
  RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    xs.push_back(x);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.Mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(stats.Variance(), Variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(stats.Min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(stats.Max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(StatsTest, RunningStatsMergeEqualsConcatenation) {
  Rng rng(17);
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.UniformDouble();
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Normal();
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
}

TEST(StatsTest, EmaConverges) {
  Ema ema(0.9);
  EXPECT_FALSE(ema.Initialized());
  for (int i = 0; i < 200; ++i) ema.Add(5.0);
  EXPECT_TRUE(ema.Initialized());
  EXPECT_NEAR(ema.Value(), 5.0, 1e-6);
}

TEST(EnvTest, IntAndDoubleParsing) {
  ::setenv("MCM_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 7), 123);
  ::setenv("MCM_TEST_INT", "bogus", 1);
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 7), 7);
  ::unsetenv("MCM_TEST_INT");
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 7), 7);
  ::setenv("MCM_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MCM_TEST_DBL", 1.0), 2.5);
  ::unsetenv("MCM_TEST_DBL");
}

TEST(EnvTest, BenchScale) {
  ::unsetenv("MCM_BENCH_SCALE");
  EXPECT_EQ(GetBenchScale(), BenchScale::kQuick);
  EXPECT_EQ(ScaledInt("MCM_TEST_KNOB", 10, 1000), 10);
  ::setenv("MCM_BENCH_SCALE", "full", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kFull);
  EXPECT_EQ(ScaledInt("MCM_TEST_KNOB", 10, 1000), 1000);
  ::setenv("MCM_TEST_KNOB", "55", 1);
  EXPECT_EQ(ScaledInt("MCM_TEST_KNOB", 10, 1000), 55);
  ::unsetenv("MCM_TEST_KNOB");
  ::unsetenv("MCM_BENCH_SCALE");
}

}  // namespace
}  // namespace mcm
