// Tests for partition validation -- including the paper's Figure 2 examples
// -- chip loads, metrics, and the compiler heuristics.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "partition/heuristics.h"
#include "partition/partition.h"

namespace mcm {
namespace {

// The computation graph of the paper's Figure 2a: five nodes
//   0 -> 1, 0 -> 2, 1 -> 3, 2 -> 4, 3 -> 4.
Graph Figure2Graph() {
  Graph g("fig2");
  for (int i = 0; i < 5; ++i) {
    g.AddNode(OpType::kMatMul, "n" + std::to_string(i), 1.0, 1.0);
  }
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 4);
  return g;
}

Partition Assign(std::vector<int> chips, int num_chips) {
  Partition p;
  p.assignment = std::move(chips);
  p.num_chips = num_chips;
  return p;
}

TEST(PartitionTest, CompletenessAndChipsUsed) {
  Partition p = Partition::Empty(3, 4);
  EXPECT_FALSE(p.Complete());
  EXPECT_EQ(p.NumChipsUsed(), 0);
  p.assignment = {0, 1, 1};
  EXPECT_TRUE(p.Complete());
  EXPECT_EQ(p.NumChipsUsed(), 2);
}

TEST(PartitionTest, Figure2cViolatesAcyclicDataflow) {
  // Figure 2c: data flows from chip 1 back to chip 0.
  const Graph g = Figure2Graph();
  // Node 2 on chip 1, node 4 on chip 0: edge (2,4) goes backward.
  const Partition p = Assign({0, 0, 1, 1, 0}, 2);
  EXPECT_FALSE(CheckAcyclicDataflow(g, p));
  EXPECT_EQ(ValidateStatic(g, p), Violation::kAcyclicDataflow);
}

TEST(PartitionTest, Figure2dViolatesNoSkippedChips) {
  // Figure 2d: chip 1 is empty while chip 2 is used.
  const Graph g = Figure2Graph();
  const Partition p = Assign({0, 0, 0, 2, 2}, 3);
  EXPECT_TRUE(CheckAcyclicDataflow(g, p));
  EXPECT_FALSE(CheckNoSkippedChips(g, p));
  EXPECT_EQ(ValidateStatic(g, p), Violation::kSkippedChip);
}

TEST(PartitionTest, Figure2eViolatesTriangleDependency) {
  // Figure 2e: direct dependency chip0 -> chip2 (node 0 -> node 2) coexists
  // with the indirect chain chip0 -> chip1 -> chip2 (0 -> 1 -> 3).
  const Graph g = Figure2Graph();
  const Partition p = Assign({0, 1, 2, 2, 2}, 3);
  EXPECT_TRUE(CheckAcyclicDataflow(g, p));
  EXPECT_TRUE(CheckNoSkippedChips(g, p));
  EXPECT_FALSE(CheckTriangleDependency(g, p));
  EXPECT_EQ(ValidateStatic(g, p), Violation::kTriangle);
}

TEST(PartitionTest, ValidPartitionsPass) {
  const Graph g = Figure2Graph();
  EXPECT_EQ(ValidateStatic(g, Assign({0, 0, 0, 0, 0}, 3)), Violation::kNone);
  EXPECT_EQ(ValidateStatic(g, Assign({0, 0, 0, 1, 1}, 2)), Violation::kNone);
  EXPECT_EQ(ValidateStatic(g, Assign({0, 1, 1, 1, 1}, 2)), Violation::kNone);
}

TEST(PartitionTest, IncompleteDetected) {
  const Graph g = Figure2Graph();
  Partition p = Partition::Empty(5, 2);
  EXPECT_EQ(ValidateStatic(g, p), Violation::kIncomplete);
  p.assignment = {0, 0, 0, 0, 7};  // Out of range.
  EXPECT_EQ(ValidateStatic(g, p), Violation::kIncomplete);
}

TEST(PartitionTest, AdjacentChipEdgesAreFine) {
  // A pure chain over adjacent chips satisfies everything.
  Graph g("chain");
  for (int i = 0; i < 6; ++i) g.AddNode(OpType::kRelu, "n", 1, 1);
  for (int i = 0; i + 1 < 6; ++i) g.AddEdge(i, i + 1);
  EXPECT_EQ(ValidateStatic(g, Assign({0, 0, 1, 1, 2, 2}, 3)),
            Violation::kNone);
  // Skipping a chip in the middle of the chain is a no-skip violation.
  EXPECT_EQ(ValidateStatic(g, Assign({0, 0, 2, 2, 2, 2}, 3)),
            Violation::kSkippedChip);
}

TEST(ChipGraphTest, DependencyAdjacencyAndLongestPaths) {
  const Graph g = Figure2Graph();
  const Partition p = Assign({0, 1, 2, 2, 2}, 3);
  const auto adj = ChipDependencyAdjacency(g, p);
  EXPECT_TRUE(adj[0] & (1ULL << 1));  // 0 -> 1 via edge (0,1).
  EXPECT_TRUE(adj[0] & (1ULL << 2));  // 0 -> 2 via edge (0,2).
  EXPECT_TRUE(adj[1] & (1ULL << 2));  // 1 -> 2 via edge (1,3).
  const auto delta = ChipLongestPaths(adj, 3);
  EXPECT_EQ(delta[0][1], 1);
  EXPECT_EQ(delta[1][2], 1);
  EXPECT_EQ(delta[0][2], 2);  // The violating longest path.
}

TEST(ChipGraphTest, IgnoresUnassignedNodes) {
  const Graph g = Figure2Graph();
  Partition p = Partition::Empty(5, 3);
  p.assignment = {0, 1, -1, -1, -1};
  const auto adj = ChipDependencyAdjacency(g, p);
  EXPECT_TRUE(adj[0] & (1ULL << 1));
  EXPECT_FALSE(adj[1] & (1ULL << 2));
}

TEST(ChipLoadTest, ComputesPerChipResources) {
  Graph g("loads");
  g.AddNode(OpType::kMatMul, "a", 10.0, 100.0, 7.0);
  g.AddNode(OpType::kMatMul, "b", 20.0, 200.0, 0.0);
  g.AddNode(OpType::kMatMul, "c", 30.0, 300.0, 0.0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  const Partition p = Assign({0, 0, 1}, 2);
  const auto loads = ComputeChipLoads(g, p);
  EXPECT_DOUBLE_EQ(loads[0].compute_flops, 30.0);
  EXPECT_DOUBLE_EQ(loads[0].param_bytes, 7.0);
  EXPECT_EQ(loads[0].num_nodes, 2);
  // Cross-chip traffic: a -> c (100 bytes) and b -> c (200 bytes).
  EXPECT_DOUBLE_EQ(loads[0].bytes_out, 300.0);
  EXPECT_DOUBLE_EQ(loads[1].bytes_in, 300.0);
}

TEST(ChipLoadTest, MulticonsumerSendsOncePerRemoteChip) {
  Graph g("fanout");
  g.AddNode(OpType::kMatMul, "src", 1.0, 50.0);
  g.AddNode(OpType::kRelu, "c1", 1.0, 1.0);
  g.AddNode(OpType::kRelu, "c2", 1.0, 1.0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  // Both consumers on the same remote chip: one transfer, not two.
  const auto loads = ComputeChipLoads(g, Assign({0, 1, 1}, 2));
  EXPECT_DOUBLE_EQ(loads[0].bytes_out, 50.0);
}

TEST(MetricsTest, ImbalanceAndCuts) {
  Graph g("m");
  g.AddNode(OpType::kMatMul, "a", 30.0, 10.0);
  g.AddNode(OpType::kMatMul, "b", 10.0, 10.0);
  g.AddEdge(0, 1);
  const auto metrics = ComputePartitionMetrics(g, Assign({0, 1}, 2));
  EXPECT_EQ(metrics.chips_used, 2);
  EXPECT_DOUBLE_EQ(metrics.max_chip_flops, 30.0);
  EXPECT_DOUBLE_EQ(metrics.mean_chip_flops, 20.0);
  EXPECT_DOUBLE_EQ(metrics.compute_imbalance, 1.5);
  EXPECT_EQ(metrics.cut_edges, 1);
  EXPECT_DOUBLE_EQ(metrics.total_cut_bytes, 10.0);
}

// ---- Heuristics ------------------------------------------------------------

class HeuristicsOnCorpusTest : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicsOnCorpusTest, ContiguousCandidatesRespectMonotonicity) {
  const std::vector<Graph> corpus = MakeCorpus();
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())];
  for (const Partition& p :
       {GreedyContiguousByCount(g, 36), GreedyContiguousByCost(g, 36),
        GreedyContiguousByParams(g, 36)}) {
    EXPECT_TRUE(p.Complete());
    // Contiguous topological intervals always satisfy Eq. (2) and Eq. (3).
    EXPECT_TRUE(CheckAcyclicDataflow(g, p)) << g.name();
    EXPECT_TRUE(CheckNoSkippedChips(g, p)) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(CorpusSample, HeuristicsOnCorpusTest,
                         ::testing::Values(0, 7, 19, 33, 47, 61, 72, 80, 86));

TEST(HeuristicsTest, GreedyByCostBalancesBetterThanByCount) {
  // A chain whose cost is concentrated in the first few nodes.
  Graph g("skewed");
  for (int i = 0; i < 20; ++i) {
    g.AddNode(OpType::kMatMul, "n", i < 4 ? 100.0 : 1.0, 1.0);
    if (i > 0) g.AddEdge(i - 1, i);
  }
  const auto by_count = ComputePartitionMetrics(g, GreedyContiguousByCount(g, 4));
  const auto by_cost = ComputePartitionMetrics(g, GreedyContiguousByCost(g, 4));
  EXPECT_LT(by_cost.compute_imbalance, by_count.compute_imbalance);
}

TEST(HeuristicsTest, GreedyUsesAllChipsWhenPossible) {
  const Graph g = MakeMlp("m", 64, {64, 64, 64, 64, 64, 64}, 10);
  const Partition p = GreedyContiguousByCount(g, 8);
  EXPECT_EQ(ComputePartitionMetrics(g, p).chips_used, 8);
}

TEST(HeuristicsTest, GreedyHandlesFewerNodesThanChips) {
  Graph g("tiny");
  g.AddNode(OpType::kInput, "a", 1, 1);
  g.AddNode(OpType::kOutput, "b", 1, 1);
  g.AddEdge(0, 1);
  const Partition p = GreedyContiguousByCount(g, 36);
  EXPECT_TRUE(p.Complete());
  EXPECT_LE(p.NumChipsUsed(), 2);
  EXPECT_EQ(ValidateStatic(g, p), Violation::kNone);
}

TEST(HeuristicsTest, RandomContiguousIsMonotoneAndDeterministicPerSeed) {
  const Graph g = MakeMlp("m", 64, {64, 64, 64}, 10);
  Rng rng1(5), rng2(5);
  const Partition p1 = RandomContiguousPartition(g, 8, rng1);
  const Partition p2 = RandomContiguousPartition(g, 8, rng2);
  EXPECT_EQ(p1, p2);
  EXPECT_TRUE(CheckAcyclicDataflow(g, p1));
  EXPECT_TRUE(CheckNoSkippedChips(g, p1));
}

}  // namespace
}  // namespace mcm
