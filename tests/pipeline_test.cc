// Tests for the pre-training pipeline (training worker, validation worker,
// checkpoint restore) and checkpoint-file corruption handling.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "pipeline/checkpoint.h"
#include "pipeline/pretrain.h"

namespace mcm {
namespace {

PretrainConfig TinyPretrain() {
  PretrainConfig config;
  config.rl = RlConfig::Quick();
  config.rl.gnn_layers = 2;
  config.rl.hidden_dim = 16;
  config.rl.rollouts_per_update = 6;
  config.rl.epochs = 2;
  config.rl.minibatches = 2;
  config.total_samples = 48;
  config.num_checkpoints = 4;
  config.validation_zeroshot_samples = 4;
  config.validation_finetune_samples = 6;
  config.seed = 11;
  return config;
}

std::vector<Graph> SmallGraphs(int count) {
  std::vector<Graph> graphs;
  const std::vector<Graph> corpus = MakeCorpus();
  for (const Graph& g : corpus) {
    if (g.NumNodes() < 80 && static_cast<int>(graphs.size()) < count) {
      graphs.push_back(g);
    }
  }
  return graphs;
}

TEST(BuildGraphTasksTest, ProducesEnvsWithValidBaselines) {
  AnalyticalCostModel model{McmConfig{}};
  const std::vector<Graph> graphs = SmallGraphs(3);
  const std::vector<GraphTask> tasks = BuildGraphTasks(graphs, model, 36, 1);
  ASSERT_EQ(tasks.size(), 3u);
  for (const GraphTask& task : tasks) {
    EXPECT_GT(task.baseline_runtime_s, 0.0);
    EXPECT_NE(task.context, nullptr);
    EXPECT_NE(task.env, nullptr);
  }
}

TEST(PretrainPipelineTest, TrainEmitsCheckpoints) {
  AnalyticalCostModel model{McmConfig{}};
  PretrainPipeline pipeline(TinyPretrain(), model);
  const std::vector<Checkpoint> checkpoints =
      pipeline.Train(SmallGraphs(3));
  ASSERT_GE(checkpoints.size(), 3u);
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    EXPECT_EQ(checkpoints[i].id, static_cast<int>(i));
    EXPECT_FALSE(checkpoints[i].params.empty());
    if (i > 0) {
      EXPECT_GE(checkpoints[i].samples_seen,
                checkpoints[i - 1].samples_seen);
    }
  }
}

TEST(PretrainPipelineTest, CheckpointsDifferAcrossTraining) {
  AnalyticalCostModel model{McmConfig{}};
  PretrainPipeline pipeline(TinyPretrain(), model);
  const std::vector<Checkpoint> checkpoints =
      pipeline.Train(SmallGraphs(2));
  ASSERT_GE(checkpoints.size(), 2u);
  bool changed = false;
  const auto& first = checkpoints.front().params;
  const auto& last = checkpoints.back().params;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].data != last[i].data) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(PretrainPipelineTest, RestoreReproducesCheckpointBehavior) {
  AnalyticalCostModel model{McmConfig{}};
  const PretrainConfig config = TinyPretrain();
  PretrainPipeline pipeline(config, model);
  const std::vector<Checkpoint> checkpoints =
      pipeline.Train(SmallGraphs(2));
  PolicyNetwork restored(config.rl);
  PretrainPipeline::Restore(restored, checkpoints.back());
  const std::vector<Matrix> restored_params =
      SnapshotParams(restored.Params());
  for (std::size_t i = 0; i < restored_params.size(); ++i) {
    EXPECT_EQ(restored_params[i].data, checkpoints.back().params[i].data);
  }
}

TEST(PretrainPipelineTest, ValidatePicksACheckpoint) {
  AnalyticalCostModel model{McmConfig{}};
  PretrainPipeline pipeline(TinyPretrain(), model);
  std::vector<Checkpoint> checkpoints = pipeline.Train(SmallGraphs(2));
  const int best =
      pipeline.Validate(checkpoints, SmallGraphs(1));
  ASSERT_GE(best, 0);
  ASSERT_LT(best, static_cast<int>(checkpoints.size()));
  EXPECT_TRUE(checkpoints[static_cast<std::size_t>(best)].validated);
  EXPECT_GE(checkpoints[static_cast<std::size_t>(best)].finetune_score, 0.0);
}

// ---- Checkpoint-file corruption ---------------------------------------------
//
// The binary pretrain-state format (pipeline/checkpoint.cc) and the text
// policy-checkpoint format (SaveCheckpointFile) must both reject damaged
// files loudly: a truncated, bit-rotted, or wrong-version file throws
// instead of yielding a silently partial state.

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }
  std::filesystem::path path() const { return path_; }

 private:
  const std::filesystem::path path_;
};

PretrainState SmallState(const PretrainConfig& config) {
  // Route real policy parameters through the state so shapes are plausible.
  PolicyNetwork policy(config.rl);
  PretrainState state;
  state.iteration = 2;
  state.samples_seen = 12;
  state.next_checkpoint_at = 24;
  state.params = SnapshotParams(policy.Params());
  return state;
}

// Overwrites `count` bytes at `offset` with `byte`, XOR-flipped so the
// patch always differs from the original content.
void CorruptFile(const std::string& path, std::uint64_t offset, int count,
                 char flip) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open());
  for (int i = 0; i < count; ++i) {
    file.seekg(static_cast<std::streamoff>(offset) + i);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ flip);
    file.seekp(static_cast<std::streamoff>(offset) + i);
    file.write(&byte, 1);
  }
}

// State-file header layout: magic[8], version u32, fingerprint u64,
// checksum u64, payload (checkpoint.h).
constexpr std::uint64_t kVersionOffset = 8;
constexpr std::uint64_t kPayloadOffset = 28;

TEST(CheckpointCorruptionTest, StateFileBadMagicThrows) {
  const TempDir dir("mcm_pipeline_test_bad_magic");
  const PretrainConfig config = TinyPretrain();
  SavePretrainState(SmallState(config), config, dir.str());
  CorruptFile(PretrainStatePath(dir.str()), 0, 1, 0x7f);
  EXPECT_THROW(LoadPretrainState(config, dir.str()), std::runtime_error);
}

TEST(CheckpointCorruptionTest, StateFileWrongVersionThrows) {
  const TempDir dir("mcm_pipeline_test_bad_version");
  const PretrainConfig config = TinyPretrain();
  SavePretrainState(SmallState(config), config, dir.str());
  CorruptFile(PretrainStatePath(dir.str()), kVersionOffset, 1, 0x10);
  EXPECT_THROW(LoadPretrainState(config, dir.str()), std::runtime_error);
}

TEST(CheckpointCorruptionTest, StateFileBadChecksumThrows) {
  const TempDir dir("mcm_pipeline_test_bad_checksum");
  const PretrainConfig config = TinyPretrain();
  SavePretrainState(SmallState(config), config, dir.str());
  // Flip one payload byte: the stored checksum no longer matches.
  CorruptFile(PretrainStatePath(dir.str()), kPayloadOffset + 3, 1, 0x01);
  EXPECT_THROW(LoadPretrainState(config, dir.str()), std::runtime_error);
}

TEST(CheckpointCorruptionTest, StateFileTruncatedToHeaderThrows) {
  const TempDir dir("mcm_pipeline_test_header_only");
  const PretrainConfig config = TinyPretrain();
  SavePretrainState(SmallState(config), config, dir.str());
  // Cut inside the header itself (stricter than the payload truncation
  // covered in faults_test.cc).
  std::filesystem::resize_file(PretrainStatePath(dir.str()),
                               kVersionOffset + 2);
  EXPECT_THROW(LoadPretrainState(config, dir.str()), std::runtime_error);
}

TEST(CheckpointCorruptionTest, PolicyFileRoundTripAndWarmStart) {
  const TempDir dir("mcm_pipeline_test_policy_file");
  const PretrainConfig config = TinyPretrain();
  PolicyNetwork policy(config.rl);
  Checkpoint checkpoint;
  checkpoint.id = 7;
  checkpoint.samples_seen = 42;
  checkpoint.params = SnapshotParams(policy.Params());
  const std::string path = (dir.path() / "policy.ckpt").string();
  PretrainPipeline::SaveCheckpointFile(checkpoint, config.rl, path);

  const Checkpoint loaded =
      PretrainPipeline::LoadCheckpointFile(config.rl, path);
  EXPECT_EQ(loaded.id, 7);
  EXPECT_EQ(loaded.samples_seen, 42);

  PolicyNetwork restored(config.rl);
  PretrainPipeline::WarmStartFromFile(restored, path);
  const std::vector<Matrix> params = SnapshotParams(restored.Params());
  ASSERT_EQ(params.size(), checkpoint.params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].data, checkpoint.params[i].data);
  }
}

TEST(CheckpointCorruptionTest, PolicyFileBadHeaderThrows) {
  const TempDir dir("mcm_pipeline_test_policy_header");
  const PretrainConfig config = TinyPretrain();
  const std::string path = (dir.path() / "policy.ckpt").string();
  {
    std::ofstream out(path);
    out << "not-a-checkpoint 0 0\n";
  }
  EXPECT_THROW(PretrainPipeline::LoadCheckpointFile(config.rl, path),
               std::runtime_error);
}

TEST(CheckpointCorruptionTest, PolicyFileTruncatedThrows) {
  const TempDir dir("mcm_pipeline_test_policy_truncated");
  const PretrainConfig config = TinyPretrain();
  PolicyNetwork policy(config.rl);
  Checkpoint checkpoint;
  checkpoint.params = SnapshotParams(policy.Params());
  const std::string path = (dir.path() / "policy.ckpt").string();
  PretrainPipeline::SaveCheckpointFile(checkpoint, config.rl, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 3);
  EXPECT_THROW(PretrainPipeline::LoadCheckpointFile(config.rl, path),
               std::runtime_error);
}

TEST(CheckpointCorruptionTest, PolicyFileWrongShapeThrows) {
  const TempDir dir("mcm_pipeline_test_policy_shape");
  const PretrainConfig config = TinyPretrain();
  PolicyNetwork policy(config.rl);
  Checkpoint checkpoint;
  checkpoint.params = SnapshotParams(policy.Params());
  const std::string path = (dir.path() / "policy.ckpt").string();
  PretrainPipeline::SaveCheckpointFile(checkpoint, config.rl, path);
  RlConfig other = config.rl;
  other.hidden_dim *= 2;  // Loading under a different shape must fail.
  EXPECT_THROW(PretrainPipeline::LoadCheckpointFile(other, path),
               std::runtime_error);
}

}  // namespace
}  // namespace mcm
