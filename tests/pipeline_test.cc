// Tests for the pre-training pipeline (training worker, validation worker,
// checkpoint restore).
#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "pipeline/pretrain.h"

namespace mcm {
namespace {

PretrainConfig TinyPretrain() {
  PretrainConfig config;
  config.rl = RlConfig::Quick();
  config.rl.gnn_layers = 2;
  config.rl.hidden_dim = 16;
  config.rl.rollouts_per_update = 6;
  config.rl.epochs = 2;
  config.rl.minibatches = 2;
  config.total_samples = 48;
  config.num_checkpoints = 4;
  config.validation_zeroshot_samples = 4;
  config.validation_finetune_samples = 6;
  config.seed = 11;
  return config;
}

std::vector<Graph> SmallGraphs(int count) {
  std::vector<Graph> graphs;
  const std::vector<Graph> corpus = MakeCorpus();
  for (const Graph& g : corpus) {
    if (g.NumNodes() < 80 && static_cast<int>(graphs.size()) < count) {
      graphs.push_back(g);
    }
  }
  return graphs;
}

TEST(BuildGraphTasksTest, ProducesEnvsWithValidBaselines) {
  AnalyticalCostModel model{McmConfig{}};
  const std::vector<Graph> graphs = SmallGraphs(3);
  const std::vector<GraphTask> tasks = BuildGraphTasks(graphs, model, 36, 1);
  ASSERT_EQ(tasks.size(), 3u);
  for (const GraphTask& task : tasks) {
    EXPECT_GT(task.baseline_runtime_s, 0.0);
    EXPECT_NE(task.context, nullptr);
    EXPECT_NE(task.env, nullptr);
  }
}

TEST(PretrainPipelineTest, TrainEmitsCheckpoints) {
  AnalyticalCostModel model{McmConfig{}};
  PretrainPipeline pipeline(TinyPretrain(), model);
  const std::vector<Checkpoint> checkpoints =
      pipeline.Train(SmallGraphs(3));
  ASSERT_GE(checkpoints.size(), 3u);
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    EXPECT_EQ(checkpoints[i].id, static_cast<int>(i));
    EXPECT_FALSE(checkpoints[i].params.empty());
    if (i > 0) {
      EXPECT_GE(checkpoints[i].samples_seen,
                checkpoints[i - 1].samples_seen);
    }
  }
}

TEST(PretrainPipelineTest, CheckpointsDifferAcrossTraining) {
  AnalyticalCostModel model{McmConfig{}};
  PretrainPipeline pipeline(TinyPretrain(), model);
  const std::vector<Checkpoint> checkpoints =
      pipeline.Train(SmallGraphs(2));
  ASSERT_GE(checkpoints.size(), 2u);
  bool changed = false;
  const auto& first = checkpoints.front().params;
  const auto& last = checkpoints.back().params;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].data != last[i].data) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(PretrainPipelineTest, RestoreReproducesCheckpointBehavior) {
  AnalyticalCostModel model{McmConfig{}};
  const PretrainConfig config = TinyPretrain();
  PretrainPipeline pipeline(config, model);
  const std::vector<Checkpoint> checkpoints =
      pipeline.Train(SmallGraphs(2));
  PolicyNetwork restored(config.rl);
  PretrainPipeline::Restore(restored, checkpoints.back());
  const std::vector<Matrix> restored_params =
      SnapshotParams(restored.Params());
  for (std::size_t i = 0; i < restored_params.size(); ++i) {
    EXPECT_EQ(restored_params[i].data, checkpoints.back().params[i].data);
  }
}

TEST(PretrainPipelineTest, ValidatePicksACheckpoint) {
  AnalyticalCostModel model{McmConfig{}};
  PretrainPipeline pipeline(TinyPretrain(), model);
  std::vector<Checkpoint> checkpoints = pipeline.Train(SmallGraphs(2));
  const int best =
      pipeline.Validate(checkpoints, SmallGraphs(1));
  ASSERT_GE(best, 0);
  ASSERT_LT(best, static_cast<int>(checkpoints.size()));
  EXPECT_TRUE(checkpoints[static_cast<std::size_t>(best)].validated);
  EXPECT_GE(checkpoints[static_cast<std::size_t>(best)].finetune_score, 0.0);
}

}  // namespace
}  // namespace mcm
