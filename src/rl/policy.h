// The paper's policy: a GraphSAGE feature network producing per-node
// embeddings h_G, and a feed-forward policy network mapping each node's
// embedding (plus an encoding of the node's action in the previous decode
// iteration) to a probability distribution over the C chips.  A value head
// over the mean-pooled graph embedding provides the PPO baseline.
//
// Decoding follows Equation (7): an iterative, non-autoregressive process.
// All N nodes are sampled in parallel each iteration; iteration t conditions
// on the full action vector y^(t-1) through a one-hot action input, and the
// process repeats T times (T << N).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "nn/modules.h"
#include "nn/tape.h"
#include "solver/cp_solver.h"
#include "solver/modes.h"

namespace mcm {

// Architecture and PPO hyper-parameters.  Defaults are the paper's
// configuration (8x128 GraphSAGE, 2x128 policy FFN, PPO with 20 rollouts /
// 4 minibatches / 10 epochs).
struct RlConfig {
  int num_chips = 36;
  int gnn_layers = 8;
  int hidden_dim = 128;
  int policy_layers = 2;
  int decode_iterations = 2;  // T in Eq. (7).

  int rollouts_per_update = 20;
  int minibatches = 4;
  int epochs = 10;
  double clip_epsilon = 0.2;
  double entropy_coef = 0.01;
  double value_coef = 0.5;
  double learning_rate = 3e-4;

  // The paper reports FIX mode outperforming SAMPLE (Section 5.1); on this
  // substrate the ablation bench (bench/ablation_fix_vs_sample) finds the
  // opposite at small sample budgets -- an untrained policy's candidate
  // anchors skew FIX-mode repairs -- so SAMPLE is the default here.  kNone
  // bypasses the solver entirely: the paper's "RL without constraint
  // solver" ablation, where invalid candidates earn zero reward.
  enum class SolverMode { kFix, kSample, kNone };
  SolverMode solver_mode = SolverMode::kSample;

  // Fraction of uniform distribution mixed into the emitted P before it is
  // handed to the constraint solver (epsilon-greedy exploration).  Without
  // it an untrained policy's arbitrary concentration explores far less of
  // the partition space than uniform random search.
  double exploration_mix = 0.10;

  std::uint64_t seed = 1;

  // A small configuration for single-core benches; identical shapes, less
  // compute.  Scaled values can still be overridden field by field.
  static RlConfig Quick() {
    RlConfig config;
    config.gnn_layers = 3;
    config.hidden_dim = 48;
    config.epochs = 4;
    config.minibatches = 2;
    return config;
  }
};

// Per-graph immutable state shared across rollouts and updates: features,
// neighbor lists, and a solver instance.
class GraphContext {
 public:
  // `solver_options` tunes the embedded CP solver; the partition service
  // uses it to derive a deterministic propagation budget from per-request
  // deadlines (service/handler.cc).
  GraphContext(const Graph& graph, int num_chips,
               CpSolver::Options solver_options = {});

  const Graph& graph() const { return *graph_; }
  const Matrix& features() const { return features_; }
  const NeighborLists& neighbors() const { return neighbors_; }
  CpSolver& solver() { return solver_; }
  int num_nodes() const { return features_.rows; }
  // Process-unique id; embedding caches key on it instead of the object
  // address, which could be reused by a later context.
  std::uint64_t uid() const { return uid_; }

 private:
  const Graph* graph_;
  std::uint64_t uid_;
  Matrix features_;
  NeighborLists neighbors_;
  CpSolver solver_;
};

// One decode trajectory: the per-iteration sampled actions with their
// behavior-policy log-probs, the resulting candidate partition, and (after
// correction/evaluation) the reward.
struct Rollout {
  // actions[t] is the N-vector of per-node chips sampled at iteration t.
  std::vector<std::vector<int>> actions;
  // old_logp[t][i] = log prob of actions[t][i] under the behavior policy.
  std::vector<std::vector<float>> old_logp;
  // Final-iteration probability matrix P (input to the constraint solver).
  ProbMatrix probs;
  // Candidate y (final-iteration actions) and solver-corrected y'.
  Partition candidate;
  Partition corrected;
  bool solver_success = false;
  double reward = 0.0;   // Throughput improvement of y' (0 when invalid).
  double advantage = 0.0;
  double value_pred = 0.0;
};

class PolicyNetwork {
 public:
  explicit PolicyNetwork(const RlConfig& config);

  const RlConfig& config() const { return config_; }
  ParamRefs Params();

  // Runs the full T-iteration decode, sampling actions, and returns the
  // rollout skeleton (candidate partition filled; reward left to the env).
  Rollout SampleRollout(GraphContext& context, Rng& rng);

  // Deterministic decode for zero-shot deployment: per iteration every node
  // takes its argmax chip.  Returns candidate + final probabilities.
  Rollout GreedyRollout(GraphContext& context);

  // Recomputes, under the *current* parameters, the total PPO surrogate +
  // entropy loss of a rollout (summed over decode iterations) and the value
  // loss; records everything on `tape` for backprop.
  VarId BuildLoss(Tape& tape, GraphContext& context, const Rollout& rollout);

  // Mean loss over a minibatch of rollouts of the same graph; the (costly)
  // feature-network pass is recorded once and shared by all rollouts.
  VarId BuildMinibatchLoss(Tape& tape, GraphContext& context,
                           std::span<const Rollout* const> rollouts);

  // Value prediction for a graph under current parameters (no grad).
  double PredictValue(GraphContext& context);

  // ---- Static-embedding reuse ----
  //
  // The GraphSAGE embedding depends only on the graph's (immutable) node
  // features and the feature-network parameters, while the decode loop is
  // re-run per rollout and per iteration.  Inference paths (SampleRollout /
  // GreedyRollout / PredictValue) therefore reuse one cached embedding per
  // (context, feature-net parameter fingerprint) pair; any parameter
  // mutation -- Adam steps, checkpoint restores, manual edits -- changes the
  // fingerprint and forces a recompute, so the cache can never go stale.
  // Training passes (BuildMinibatchLoss) always re-record the feature
  // network on the gradient tape and never consult the cache.  Because the
  // kernels are deterministic, a cache hit is bit-identical to a fresh
  // forward pass.  Default on; MCMPART_EMBED_CACHE=0 disables.
  bool embedding_cache_enabled() const { return embed_cache_enabled_; }
  void set_embedding_cache_enabled(bool enabled);
  // Drops the cached embedding (next inference recomputes).  Parameter
  // changes are detected automatically; this is for callers that mutate
  // node features in place behind a live GraphContext.
  void InvalidateEmbeddingCache();

 private:
  // Records the feature network on the tape, returning per-node embeddings.
  VarId EmbedGraph(Tape& tape, GraphContext& context);
  // Embedding for no-grad paths: returns the cached embedding as a tape
  // constant when valid, recomputing (and caching) otherwise.
  VarId EmbedGraphForInference(Tape& tape, GraphContext& context);
  Matrix CachedEmbedding(GraphContext& context);
  std::uint64_t FeatureParamsFingerprint();
  // Records one decode-iteration head: embeddings + one-hot(prev actions)
  // -> logits [N x C].  `prev` may be null for iteration 0.
  VarId HeadLogits(Tape& tape, VarId embeddings,
                   const std::vector<int>* prev);

  RlConfig config_;
  Rng init_rng_;
  GraphSageNetwork feature_net_;
  Mlp policy_head_;
  Mlp value_head_;

  // Single-slot embedding cache.  Guarded by embed_mu_: rollout workers call
  // SampleRollout concurrently on a shared policy.
  bool embed_cache_enabled_ = true;
  std::mutex embed_mu_;
  std::uint64_t embed_context_uid_ = 0;  // 0 = empty (uids start at 1).
  std::uint64_t embed_fingerprint_ = 0;
  Matrix embed_value_;
};

}  // namespace mcm
