#include "rl/env.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "partition/heuristics.h"

namespace mcm {

SolveResult RepairPartition(CpSolver& solver, const Graph& graph,
                            const Partition& candidate, Rng& rng) {
  return SolveFixWithRestarts(solver, graph, candidate, rng);
}

BaselineResult ComputeHeuristicBaseline(const Graph& graph, CostModel& model,
                                        CpSolver& solver, Rng& rng,
                                        CostModel* fallback,
                                        const RetryPolicy* retry_policy) {
  const Partition greedy =
      GreedyContiguousByCount(graph, solver.num_chips());
  BaselineResult result;
  if (IsStaticallyValid(graph, greedy)) {
    result.partition = greedy;
  } else {
    // Deterministic repair: the baseline must be stable across runs, so use
    // a fixed-seed repair stream independent of the caller's rng state.
    Rng repair_rng(HashCombine(0xba5e11d5ULL, graph.NumNodes()));
    SolveResult repair = RepairPartition(solver, graph, greedy, repair_rng);
    // FIX mode always terminates with a valid partition on these graphs;
    // fall back to the always-valid single-chip partition if it could not.
    if (repair.success) {
      result.partition = std::move(repair.partition);
    } else {
      result.partition = Partition::Empty(graph.NumNodes(), solver.num_chips());
      std::fill(result.partition.assignment.begin(),
                result.partition.assignment.end(), 0);
    }
    (void)rng;
  }
  // The baseline anchors every reward in a run, so it deserves the same
  // retry/degradation protection as rollout evaluations.
  ResilientCostModel resilient(
      &model, fallback,
      retry_policy != nullptr ? *retry_policy : RetryPolicy::FromEnv());
  result.eval = resilient.Evaluate(graph, result.partition);
  return result;
}

PartitionEnv::PartitionEnv(const Graph& graph, CostModel& model,
                           double baseline_runtime_s, Objective objective,
                           int eval_cache_capacity, CostModel* fallback_model,
                           const RetryPolicy* retry_policy, int delta_eval)
    : graph_(&graph),
      model_(&model),
      resilient_(std::make_shared<ResilientCostModel>(
          &model, fallback_model,
          retry_policy != nullptr ? *retry_policy : RetryPolicy::FromEnv())),
      baseline_runtime_s_(baseline_runtime_s),
      objective_(objective) {
  const int capacity = eval_cache_capacity < 0 ? DefaultEvalCacheCapacity()
                                               : eval_cache_capacity;
  if (capacity > 0) {
    eval_cache_ =
        std::make_shared<EvalCache>(static_cast<std::size_t>(capacity));
  }
  const bool delta_on =
      delta_eval < 0 ? DefaultDeltaEvalEnabled() : delta_eval > 0;
  if (delta_on && resilient_->AsAnalytical() != nullptr) {
    delta_pool_ = std::make_shared<DeltaScorerPool>(
        resilient_.get(), resilient_->AsAnalytical());
  }
}

// MCM_CONTRACT(deterministic): the reward is part of the transferability
// contract -- identical partitions must score identically across runs,
// thread counts, and hosts (mcmlint's nondet-reach rule audits everything
// reachable from here).
double PartitionEnv::Score(const Partition& partition,
                           EvalResult* eval) const {
  if (delta_pool_ != nullptr) {
    // Lease one incremental scorer for this evaluation: per-lease state
    // keeps Score safe to call concurrently, and the scorer's results are
    // bit-identical to resilient_->Evaluate on every path.  The scorer
    // reports the wrapped model's name, so cache entries stay
    // interchangeable with the non-delta path.
    auto lease = delta_pool_->Acquire();
    *eval = eval_cache_ != nullptr
                ? eval_cache_->Evaluate(*graph_, lease.scorer(), partition)
                : lease.scorer().Evaluate(*graph_, partition);
  } else {
    *eval = eval_cache_ != nullptr
                ? eval_cache_->Evaluate(*graph_, *resilient_, partition)
                : resilient_->Evaluate(*graph_, partition);
  }
  const double cost = objective_ == Objective::kLatency ? eval->latency_s
                                                        : eval->runtime_s;
  if (!eval->valid || cost <= 0.0) return 0.0;
  return baseline_runtime_s_ / cost;
}

void PartitionEnv::CommitScore(const Partition& partition,
                               const EvalResult& eval, double reward) {
  ++num_evaluations_;
  last_eval_ = eval;
  if (reward > best_reward_) {
    best_reward_ = reward;
    best_partition_ = partition;
  }
}

double PartitionEnv::Reward(const Partition& partition) {
  EvalResult eval;
  const double reward = Score(partition, &eval);
  CommitScore(partition, eval, reward);
  return reward;
}

const Partition& ScoredPartition(const Rollout& rollout,
                                 RlConfig::SolverMode mode) {
  return mode == RlConfig::SolverMode::kNone ? rollout.candidate
                                             : rollout.corrected;
}

void CorrectRollout(GraphContext& context, CpSolver& solver,
                    RlConfig::SolverMode mode, Rollout& rollout, Rng& rng) {
  const Graph& graph = context.graph();
  if (mode == RlConfig::SolverMode::kNone) {
    rollout.corrected = rollout.candidate;
    rollout.solver_success = true;
    return;
  }
  SolveResult solved;
  if (mode == RlConfig::SolverMode::kFix) {
    solved = SolveFixWithRestarts(solver, graph, rollout.candidate, rng);
  } else {
    solved = SolveSampleWithRestarts(solver, graph, rollout.probs, rng);
  }
  rollout.solver_success = solved.success;
  if (!solved.success) {
    // Extremely rare (solver budget exhausted): treat as an invalid sample.
    rollout.corrected = rollout.candidate;
    return;
  }
  rollout.corrected = std::move(solved.partition);

  {
    // The solver's corrected assignment y' is the action that actually
    // earned the reward (the paper trains on the reward of y' rather than
    // y): retarget the final decode iteration at y', with log-probs taken
    // from the emitted distribution P.  Without this, an untrained policy
    // gets near-zero learning signal -- the correction decorrelates the
    // sampled y from the reward.
    const int n = context.num_nodes();
    auto& final_actions = rollout.actions.back();
    auto& final_logp = rollout.old_logp.back();
    for (int i = 0; i < n; ++i) {
      const int chip = rollout.corrected.chip(i);
      final_actions[static_cast<std::size_t>(i)] = chip;
      const double p = std::max(
          static_cast<double>(
              rollout.probs.row(i)[static_cast<std::size_t>(chip)]),
          1e-12);
      final_logp[static_cast<std::size_t>(i)] =
          static_cast<float>(std::log(p));
    }
  }
}

void CorrectAndScore(GraphContext& context, PartitionEnv& env,
                     RlConfig::SolverMode mode, Rollout& rollout, Rng& rng) {
  CorrectRollout(context, context.solver(), mode, rollout, rng);
  if (!rollout.solver_success) {
    rollout.reward = 0.0;
    return;
  }
  rollout.reward = env.Reward(ScoredPartition(rollout, mode));
}

}  // namespace mcm
