#include "rl/policy.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"
#include "graph/features.h"
#include "telemetry/metrics.h"

namespace mcm {
namespace {

// One-hot encoding of an action vector as an [N x C] matrix; nullptr (no
// previous iteration) encodes as all zeros.
Matrix OneHotActions(const std::vector<int>* actions, int num_nodes,
                     int num_chips) {
  Matrix m(num_nodes, num_chips);
  if (actions == nullptr) return m;
  MCM_CHECK_EQ(static_cast<int>(actions->size()), num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    m.at(i, (*actions)[static_cast<std::size_t>(i)]) = 1.0f;
  }
  return m;
}

std::vector<int> MlpDims(int in_dim, int hidden_dim, int out_dim,
                         int num_layers) {
  std::vector<int> dims;
  dims.push_back(in_dim);
  for (int i = 0; i < num_layers - 1; ++i) dims.push_back(hidden_dim);
  dims.push_back(out_dim);
  return dims;
}

}  // namespace

namespace {
std::uint64_t NextGraphContextUid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

GraphContext::GraphContext(const Graph& graph, int num_chips,
                           CpSolver::Options solver_options)
    : graph_(&graph),
      uid_(NextGraphContextUid()),
      neighbors_(BuildNeighborLists(graph)),
      solver_(graph, num_chips, solver_options) {
  const std::vector<float> raw = ExtractNodeFeatures(graph);
  features_ = Matrix(graph.NumNodes(), kNodeFeatureDim);
  features_.data = raw;
}

PolicyNetwork::PolicyNetwork(const RlConfig& config)
    : config_(config),
      init_rng_(config.seed),
      feature_net_(kNodeFeatureDim, config.hidden_dim, config.gnn_layers,
                   init_rng_),
      policy_head_("policy",
                   MlpDims(config.hidden_dim + config.num_chips,
                           config.hidden_dim, config.num_chips,
                           config.policy_layers),
                   init_rng_),
      value_head_("value",
                  MlpDims(config.hidden_dim, config.hidden_dim, 1, 2),
                  init_rng_) {
  embed_cache_enabled_ = GetEnvInt("MCMPART_EMBED_CACHE", 1, 0, 1) != 0;
}

void PolicyNetwork::set_embedding_cache_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(embed_mu_);
  embed_cache_enabled_ = enabled;
  embed_context_uid_ = 0;
  embed_value_ = Matrix();
}

void PolicyNetwork::InvalidateEmbeddingCache() {
  std::lock_guard<std::mutex> lock(embed_mu_);
  embed_context_uid_ = 0;
  embed_value_ = Matrix();
}

// Fingerprint of every feature-network parameter: shapes plus raw float bit
// patterns.  Any mutation path -- optimizer steps, checkpoint restores,
// direct writes through Params() -- changes the fingerprint, so cache
// staleness cannot outlive one parameter edit.  Cost is one pass over the
// feature-net weights, orders of magnitude cheaper than the GraphSAGE
// forward it guards.
std::uint64_t PolicyNetwork::FeatureParamsFingerprint() {
  std::uint64_t hash = 0x9e3779b97f4a7c15ull;
  for (const Param* param : feature_net_.Params()) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(param->value.rows));
    hash = HashCombine(hash, static_cast<std::uint64_t>(param->value.cols));
    for (const float x : param->value.data) {
      std::uint32_t bits;
      std::memcpy(&bits, &x, sizeof(bits));
      hash = HashCombine(hash, bits);
    }
  }
  return hash;
}

Matrix PolicyNetwork::CachedEmbedding(GraphContext& context) {
  static telemetry::Counter& hits =
      telemetry::Counter::Get("rl/embed_cache_hits");
  static telemetry::Counter& misses =
      telemetry::Counter::Get("rl/embed_cache_misses");
  const std::uint64_t fingerprint = FeatureParamsFingerprint();
  {
    std::lock_guard<std::mutex> lock(embed_mu_);
    if (embed_context_uid_ == context.uid() &&
        embed_fingerprint_ == fingerprint && embed_value_.rows > 0) {
      hits.Add();
      return embed_value_;
    }
  }
  // Miss: recompute OUTSIDE the lock so concurrent rollouts are never
  // serialized behind one GraphSAGE forward.  Racing misses duplicate work,
  // but the recompute is a pure function of (params, context) and the tape
  // ops are bit-deterministic, so every racer computes identical bits and
  // last-writer-wins installs the same value.
  misses.Add();
  Tape tape;
  Matrix fresh = tape.value(EmbedGraph(tape, context));
  std::lock_guard<std::mutex> lock(embed_mu_);
  embed_value_ = std::move(fresh);
  embed_context_uid_ = context.uid();
  embed_fingerprint_ = fingerprint;
  return embed_value_;
}

VarId PolicyNetwork::EmbedGraphForInference(Tape& tape,
                                            GraphContext& context) {
  if (!embed_cache_enabled_) return EmbedGraph(tape, context);
  return tape.Constant(CachedEmbedding(context));
}

ParamRefs PolicyNetwork::Params() {
  ParamRefs refs = feature_net_.Params();
  for (Param* p : policy_head_.Params()) refs.push_back(p);
  for (Param* p : value_head_.Params()) refs.push_back(p);
  return refs;
}

VarId PolicyNetwork::EmbedGraph(Tape& tape, GraphContext& context) {
  const VarId features = tape.Constant(context.features());
  return feature_net_.Forward(tape, features, &context.neighbors());
}

VarId PolicyNetwork::HeadLogits(Tape& tape, VarId embeddings,
                                const std::vector<int>* prev) {
  const Matrix& h = tape.value(embeddings);
  const VarId prev_onehot =
      tape.Constant(OneHotActions(prev, h.rows, config_.num_chips));
  return policy_head_.Forward(tape, tape.ConcatCols(embeddings, prev_onehot));
}

Rollout PolicyNetwork::SampleRollout(GraphContext& context, Rng& rng) {
  Tape tape;
  const VarId h = EmbedGraphForInference(tape, context);
  const int n = context.num_nodes();
  const int c = config_.num_chips;

  Rollout rollout;
  const std::vector<int>* prev = nullptr;
  Matrix probs;
  for (int t = 0; t < config_.decode_iterations; ++t) {
    const VarId logits = HeadLogits(tape, h, prev);
    probs = Tape::RowSoftmax(tape.value(logits));
    std::vector<int> actions(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<double> weights(static_cast<std::size_t>(c));
      const auto row = probs.row(i);
      for (int j = 0; j < c; ++j) weights[static_cast<std::size_t>(j)] = row[j];
      actions[static_cast<std::size_t>(i)] =
          static_cast<int>(rng.SampleDiscrete(weights));
    }
    rollout.old_logp.push_back(
        Tape::RowLogProbs(tape.value(logits), actions));
    rollout.actions.push_back(std::move(actions));
    prev = &rollout.actions.back();
  }

  rollout.probs.num_nodes = n;
  rollout.probs.num_chips = c;
  rollout.probs.data.assign(probs.data.begin(), probs.data.end());
  // Epsilon-mix with uniform: the behavior distribution the solver samples
  // from (and whose log-probs are recorded when retargeting at y').
  const double mix = config_.exploration_mix;
  if (mix > 0.0) {
    for (double& p : rollout.probs.data) {
      p = (1.0 - mix) * p + mix / c;
    }
  }

  rollout.candidate = Partition::Empty(n, c);
  const auto& final_actions = rollout.actions.back();
  for (int i = 0; i < n; ++i) {
    rollout.candidate.assignment[static_cast<std::size_t>(i)] =
        final_actions[static_cast<std::size_t>(i)];
  }
  rollout.value_pred = static_cast<double>(
      tape.value(value_head_.Forward(tape, tape.MeanRowsOp(h))).at(0, 0));
  return rollout;
}

Rollout PolicyNetwork::GreedyRollout(GraphContext& context) {
  Tape tape;
  const VarId h = EmbedGraphForInference(tape, context);
  const int n = context.num_nodes();
  const int c = config_.num_chips;

  Rollout rollout;
  const std::vector<int>* prev = nullptr;
  Matrix probs;
  for (int t = 0; t < config_.decode_iterations; ++t) {
    const VarId logits = HeadLogits(tape, h, prev);
    probs = Tape::RowSoftmax(tape.value(logits));
    std::vector<int> actions(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto row = probs.row(i);
      actions[static_cast<std::size_t>(i)] = static_cast<int>(
          std::max_element(row.begin(), row.end()) - row.begin());
    }
    rollout.old_logp.push_back(
        Tape::RowLogProbs(tape.value(logits), actions));
    rollout.actions.push_back(std::move(actions));
    prev = &rollout.actions.back();
  }
  rollout.probs.num_nodes = n;
  rollout.probs.num_chips = c;
  rollout.probs.data.assign(probs.data.begin(), probs.data.end());
  rollout.candidate = Partition::Empty(n, c);
  const auto& final_actions = rollout.actions.back();
  for (int i = 0; i < n; ++i) {
    rollout.candidate.assignment[static_cast<std::size_t>(i)] =
        final_actions[static_cast<std::size_t>(i)];
  }
  rollout.value_pred = static_cast<double>(
      tape.value(value_head_.Forward(tape, tape.MeanRowsOp(h))).at(0, 0));
  return rollout;
}

VarId PolicyNetwork::BuildLoss(Tape& tape, GraphContext& context,
                               const Rollout& rollout) {
  const Rollout* one[] = {&rollout};
  return BuildMinibatchLoss(tape, context, one);
}

VarId PolicyNetwork::BuildMinibatchLoss(
    Tape& tape, GraphContext& context,
    std::span<const Rollout* const> rollouts) {
  MCM_CHECK(!rollouts.empty());
  const VarId h = EmbedGraph(tape, context);
  const double inv_batch = 1.0 / static_cast<double>(rollouts.size());
  VarId total = -1;
  for (const Rollout* rollout : rollouts) {
    VarId sample_loss = -1;
    const std::vector<int>* prev = nullptr;
    for (std::size_t t = 0; t < rollout->actions.size(); ++t) {
      const VarId logits = HeadLogits(tape, h, prev);
      const VarId ppo = tape.PpoLossOp(
          logits, rollout->actions[t], rollout->advantage,
          rollout->old_logp[t], config_.clip_epsilon, config_.entropy_coef);
      sample_loss =
          sample_loss < 0 ? ppo : tape.AddScaled(sample_loss, 1.0, ppo, 1.0);
      prev = &rollout->actions[t];
    }
    const VarId value = value_head_.Forward(tape, tape.MeanRowsOp(h));
    const VarId value_loss = tape.SquaredErrorOp(value, rollout->reward);
    sample_loss =
        tape.AddScaled(sample_loss, 1.0, value_loss, config_.value_coef);
    total = total < 0
                ? tape.AddScaled(sample_loss, inv_batch, sample_loss, 0.0)
                : tape.AddScaled(total, 1.0, sample_loss, inv_batch);
  }
  return total;
}

double PolicyNetwork::PredictValue(GraphContext& context) {
  Tape tape;
  const VarId h = EmbedGraphForInference(tape, context);
  return static_cast<double>(
      tape.value(value_head_.Forward(tape, tape.MeanRowsOp(h))).at(0, 0));
}

}  // namespace mcm
