// Proximal Policy Optimization trainer (Schulman et al., 2017), wired to
// the paper's loop: sample rollouts with the policy, correct each with the
// constraint solver, evaluate on the cost model, and update with the
// clipped surrogate over `epochs` x `minibatches`.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/modules.h"
#include "rl/env.h"
#include "rl/policy.h"

namespace mcm {

class PpoTrainer {
 public:
  PpoTrainer(PolicyNetwork& policy, Rng rng);

  struct IterationResult {
    // Per-sample rewards in collection order (for search traces).
    std::vector<double> rewards;
    double mean_reward = 0.0;
    double best_reward = 0.0;
    double mean_loss = 0.0;
    int invalid_samples = 0;  // Zero-reward (dynamic-constraint) samples.
  };

  // One PPO iteration: `rollouts_per_update` samples on (context, env),
  // advantage computation, and the update epochs.
  IterationResult Iterate(GraphContext& context, PartitionEnv& env);

  // Collection without updates (zero-shot deployment): stochastic samples
  // through the solver, rewards recorded, parameters untouched.
  IterationResult EvaluateOnly(GraphContext& context, PartitionEnv& env,
                               int num_samples);

  PolicyNetwork& policy() { return policy_; }
  Adam& optimizer() { return adam_; }
  // The trainer's sampling stream; exposed so checkpoint/resume can save
  // and restore it (see pipeline/checkpoint.h).
  Rng& rng() { return rng_; }

 private:
  std::vector<Rollout> CollectRollouts(GraphContext& context,
                                       PartitionEnv& env, int count,
                                       IterationResult& result);

  PolicyNetwork& policy_;
  Adam adam_;
  Rng rng_;
};

}  // namespace mcm
