#include "rl/ppo.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "runtime/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

constexpr double kRewardBounds[] = {0.0, 0.25, 0.5, 0.75, 1.0,
                                    1.5, 2.0,  3.0, 5.0};

}  // namespace

PpoTrainer::PpoTrainer(PolicyNetwork& policy, Rng rng)
    : policy_(policy),
      adam_(policy.Params(),
            Adam::Options{.lr = policy.config().learning_rate}),
      rng_(rng) {}

std::vector<Rollout> PpoTrainer::CollectRollouts(GraphContext& context,
                                                 PartitionEnv& env, int count,
                                                 IterationResult& result) {
  const RlConfig::SolverMode mode = policy_.config().solver_mode;
  // One base draw per batch keeps the trainer's RNG stream identical for
  // any thread count; each rollout derives a private substream from it
  // (the runtime's determinism contract, runtime/thread_pool.h).
  const std::uint64_t base_seed = rng_.Next();

  std::vector<Rollout> rollouts(static_cast<std::size_t>(count));
  std::vector<EvalResult> evals(static_cast<std::size_t>(count));
  std::vector<double> scores(static_cast<std::size_t>(count), 0.0);
  ParallelFor(0, count, [&](std::int64_t k) {
    Rng task_rng(HashCombine(base_seed, static_cast<std::uint64_t>(k)));
    Rollout& rollout = rollouts[static_cast<std::size_t>(k)];
    rollout = policy_.SampleRollout(context, task_rng);
    // CpSolver is stateful: each task repairs with a private instance so
    // the context's shared solver is never touched concurrently.
    CpSolver solver(context.graph(), context.solver().num_chips());
    CorrectRollout(context, solver, mode, rollout, task_rng);
    if (rollout.solver_success) {
      scores[static_cast<std::size_t>(k)] = env.Score(
          ScoredPartition(rollout, mode), &evals[static_cast<std::size_t>(k)]);
    }
  });

  // Serial reduction in collection order: environment counters, incumbent
  // tracking, and reward bookkeeping match the single-threaded loop bit for
  // bit.  Telemetry recorded here (not in the workers) costs nothing extra
  // and keeps per-episode ordering trivially deterministic.
  static telemetry::Counter& episodes = telemetry::Counter::Get("rl/episodes");
  static telemetry::Counter& invalid_episodes =
      telemetry::Counter::Get("rl/invalid_episodes");
  static telemetry::Histogram& reward_hist =
      telemetry::Histogram::Get("rl/reward", kRewardBounds);
  for (int k = 0; k < count; ++k) {
    Rollout& rollout = rollouts[static_cast<std::size_t>(k)];
    if (rollout.solver_success) {
      rollout.reward = scores[static_cast<std::size_t>(k)];
      env.CommitScore(ScoredPartition(rollout, mode),
                      evals[static_cast<std::size_t>(k)], rollout.reward);
    } else {
      rollout.reward = 0.0;
    }
    result.rewards.push_back(rollout.reward);
    if (rollout.reward <= 0.0) {
      ++result.invalid_samples;
      invalid_episodes.Add();
    }
    episodes.Add();
    reward_hist.Observe(rollout.reward);
  }
  return rollouts;
}

PpoTrainer::IterationResult PpoTrainer::Iterate(GraphContext& context,
                                                PartitionEnv& env) {
  const RlConfig& config = policy_.config();
  IterationResult result;
  std::vector<Rollout> rollouts;
  {
    MCM_TRACE_SPAN("rl/collect");
    rollouts =
        CollectRollouts(context, env, config.rollouts_per_update, result);
  }

  RunningStats reward_stats;
  for (const Rollout& rollout : rollouts) reward_stats.Add(rollout.reward);
  result.mean_reward = reward_stats.Mean();
  result.best_reward = reward_stats.Max();

  // Advantages: reward minus the learned value baseline, normalized across
  // the batch for stable updates.
  RunningStats adv_stats;
  for (Rollout& rollout : rollouts) {
    rollout.advantage = rollout.reward - rollout.value_pred;
    adv_stats.Add(rollout.advantage);
  }
  const double adv_std = std::max(adv_stats.Stddev(), 1e-6);
  for (Rollout& rollout : rollouts) {
    rollout.advantage = (rollout.advantage - adv_stats.Mean()) / adv_std;
  }

  // PPO epochs over shuffled minibatches.
  MCM_TRACE_SPAN("rl/update");
  static telemetry::Counter& policy_updates =
      telemetry::Counter::Get("rl/policy_updates");
  static telemetry::Counter& minibatches =
      telemetry::Counter::Get("rl/minibatches");
  policy_updates.Add();
  std::vector<const Rollout*> pool;
  pool.reserve(rollouts.size());
  for (const Rollout& rollout : rollouts) pool.push_back(&rollout);
  const int num_minibatches = std::max(1, config.minibatches);
  RunningStats loss_stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng_.Shuffle(pool);
    for (int mb = 0; mb < num_minibatches; ++mb) {
      const std::size_t begin = pool.size() * mb / num_minibatches;
      const std::size_t end = pool.size() * (mb + 1) / num_minibatches;
      if (begin == end) continue;
      Tape tape;
      const VarId loss = policy_.BuildMinibatchLoss(
          tape, context,
          std::span<const Rollout* const>(pool.data() + begin, end - begin));
      loss_stats.Add(static_cast<double>(tape.value(loss).at(0, 0)));
      tape.Backward(loss);
      adam_.Step();
      minibatches.Add();
    }
  }
  result.mean_loss = loss_stats.Mean();
  return result;
}

PpoTrainer::IterationResult PpoTrainer::EvaluateOnly(GraphContext& context,
                                                     PartitionEnv& env,
                                                     int num_samples) {
  IterationResult result;
  std::vector<Rollout> rollouts =
      CollectRollouts(context, env, num_samples, result);
  RunningStats reward_stats;
  for (const Rollout& rollout : rollouts) reward_stats.Add(rollout.reward);
  result.mean_reward = reward_stats.Mean();
  result.best_reward = reward_stats.Max();
  return result;
}

}  // namespace mcm
