#include "rl/ppo.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace mcm {

PpoTrainer::PpoTrainer(PolicyNetwork& policy, Rng rng)
    : policy_(policy),
      adam_(policy.Params(),
            Adam::Options{.lr = policy.config().learning_rate}),
      rng_(rng) {}

std::vector<Rollout> PpoTrainer::CollectRollouts(GraphContext& context,
                                                 PartitionEnv& env, int count,
                                                 IterationResult& result) {
  std::vector<Rollout> rollouts;
  rollouts.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    Rollout rollout = policy_.SampleRollout(context, rng_);
    CorrectAndScore(context, env, policy_.config().solver_mode, rollout,
                    rng_);
    result.rewards.push_back(rollout.reward);
    if (rollout.reward <= 0.0) ++result.invalid_samples;
    rollouts.push_back(std::move(rollout));
  }
  return rollouts;
}

PpoTrainer::IterationResult PpoTrainer::Iterate(GraphContext& context,
                                                PartitionEnv& env) {
  const RlConfig& config = policy_.config();
  IterationResult result;
  std::vector<Rollout> rollouts = CollectRollouts(
      context, env, config.rollouts_per_update, result);

  RunningStats reward_stats;
  for (const Rollout& rollout : rollouts) reward_stats.Add(rollout.reward);
  result.mean_reward = reward_stats.Mean();
  result.best_reward = reward_stats.Max();

  // Advantages: reward minus the learned value baseline, normalized across
  // the batch for stable updates.
  RunningStats adv_stats;
  for (Rollout& rollout : rollouts) {
    rollout.advantage = rollout.reward - rollout.value_pred;
    adv_stats.Add(rollout.advantage);
  }
  const double adv_std = std::max(adv_stats.Stddev(), 1e-6);
  for (Rollout& rollout : rollouts) {
    rollout.advantage = (rollout.advantage - adv_stats.Mean()) / adv_std;
  }

  // PPO epochs over shuffled minibatches.
  std::vector<const Rollout*> pool;
  pool.reserve(rollouts.size());
  for (const Rollout& rollout : rollouts) pool.push_back(&rollout);
  const int num_minibatches = std::max(1, config.minibatches);
  RunningStats loss_stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng_.Shuffle(pool);
    for (int mb = 0; mb < num_minibatches; ++mb) {
      const std::size_t begin = pool.size() * mb / num_minibatches;
      const std::size_t end = pool.size() * (mb + 1) / num_minibatches;
      if (begin == end) continue;
      Tape tape;
      const VarId loss = policy_.BuildMinibatchLoss(
          tape, context,
          std::span<const Rollout* const>(pool.data() + begin, end - begin));
      loss_stats.Add(static_cast<double>(tape.value(loss).at(0, 0)));
      tape.Backward(loss);
      adam_.Step();
    }
  }
  result.mean_loss = loss_stats.Mean();
  return result;
}

PpoTrainer::IterationResult PpoTrainer::EvaluateOnly(GraphContext& context,
                                                     PartitionEnv& env,
                                                     int num_samples) {
  IterationResult result;
  std::vector<Rollout> rollouts =
      CollectRollouts(context, env, num_samples, result);
  RunningStats reward_stats;
  for (const Rollout& rollout : rollouts) reward_stats.Add(rollout.reward);
  result.mean_reward = reward_stats.Mean();
  result.best_reward = reward_stats.Max();
  return result;
}

}  // namespace mcm
