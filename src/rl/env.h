// The partitioning environment: candidate partition -> corrected partition
// -> evaluation -> reward.
//
// Rewards follow the paper's metric: throughput improvement over a compiler
// heuristic (the greedy baseline), i.e. runtime_baseline / runtime_candidate.
// An invalid partition (dynamic constraint) earns zero reward, exactly as
// the paper's evaluation platform "returns a zero throughput when it
// evaluates an invalid partition".
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "partition/partition.h"
#include "rl/policy.h"
#include "solver/modes.h"

namespace mcm {

// Repairs an arbitrary candidate into a statically valid partition with the
// solver's FIX mode over a fresh ALAP-random order.
SolveResult RepairPartition(CpSolver& solver, const Graph& graph,
                            const Partition& candidate, Rng& rng);

// The compiler-heuristic baseline the paper normalizes against: the greedy
// contiguous partition, repaired to static validity.  Returns the repaired
// partition and its evaluation (which callers should verify is valid).
struct BaselineResult {
  Partition partition;
  EvalResult eval;
};
BaselineResult ComputeHeuristicBaseline(const Graph& graph, CostModel& model,
                                        CpSolver& solver, Rng& rng);

class PartitionEnv {
 public:
  // A multi-chip TPU "focuses more on throughput rather than latency.
  // However, our framework can easily re-target a latency metric"
  // (Section 5.1): both objectives are supported.
  enum class Objective { kThroughput, kLatency };

  // `baseline_runtime_s` anchors the improvement metric (baseline latency
  // when the latency objective is selected); use ComputeHeuristicBaseline
  // to obtain it.
  PartitionEnv(const Graph& graph, CostModel& model,
               double baseline_runtime_s,
               Objective objective = Objective::kThroughput)
      : graph_(&graph),
        model_(&model),
        baseline_runtime_s_(baseline_runtime_s),
        objective_(objective) {}

  Objective objective() const { return objective_; }

  // Evaluates a (corrected) partition: improvement ratio, or 0 when invalid.
  double Reward(const Partition& partition);

  // Full evaluation result of the last Reward() call.
  const EvalResult& last_eval() const { return last_eval_; }
  double baseline_runtime_s() const { return baseline_runtime_s_; }
  const Graph& graph() const { return *graph_; }
  CostModel& model() { return *model_; }

  std::int64_t num_evaluations() const { return num_evaluations_; }

  // The best-scoring valid partition seen by this environment, if any.
  // Search strategies all score through Reward(), so after a run this holds
  // the incumbent the trace's best value refers to.
  bool has_best() const { return best_reward_ > 0.0; }
  double best_reward() const { return best_reward_; }
  const Partition& best_partition() const { return best_partition_; }

 private:
  const Graph* graph_;
  CostModel* model_;
  double baseline_runtime_s_;
  Objective objective_;
  EvalResult last_eval_;
  std::int64_t num_evaluations_ = 0;
  double best_reward_ = 0.0;
  Partition best_partition_;
};

// Runs the full candidate -> corrected -> reward step for one rollout,
// filling `rollout.corrected`, `rollout.solver_success`, and
// `rollout.reward`.  In SAMPLE mode the rollout's final-iteration actions
// and log-probs are replaced by the solver's (valid) assignment, which is
// the action that actually earned the reward.
void CorrectAndScore(GraphContext& context, PartitionEnv& env,
                     RlConfig::SolverMode mode, Rollout& rollout, Rng& rng);

}  // namespace mcm
