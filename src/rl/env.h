// The partitioning environment: candidate partition -> corrected partition
// -> evaluation -> reward.
//
// Rewards follow the paper's metric: throughput improvement over a compiler
// heuristic (the greedy baseline), i.e. runtime_baseline / runtime_candidate.
// An invalid partition (dynamic constraint) earns zero reward, exactly as
// the paper's evaluation platform "returns a zero throughput when it
// evaluates an invalid partition".
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "costmodel/delta_eval.h"
#include "costmodel/eval_cache.h"
#include "faults/faults.h"
#include "graph/graph.h"
#include "partition/partition.h"
#include "rl/policy.h"
#include "solver/modes.h"

namespace mcm {

// Repairs an arbitrary candidate into a statically valid partition with the
// solver's FIX mode over a fresh ALAP-random order.
SolveResult RepairPartition(CpSolver& solver, const Graph& graph,
                            const Partition& candidate, Rng& rng);

// The compiler-heuristic baseline the paper normalizes against: the greedy
// contiguous partition, repaired to static validity.  Returns the repaired
// partition and its evaluation (which callers should verify is valid).
struct BaselineResult {
  Partition partition;
  EvalResult eval;
};
// `fallback` (optional, not owned) is the degradation model used when
// `model` keeps failing transiently; see ResilientCostModel.  The baseline
// evaluation runs through the same retry/degradation path as rollouts.
// `retry_policy` (optional) overrides the environment-derived retry/backoff
// budget -- the partition service wires per-request deadlines through it.
BaselineResult ComputeHeuristicBaseline(const Graph& graph, CostModel& model,
                                        CpSolver& solver, Rng& rng,
                                        CostModel* fallback = nullptr,
                                        const RetryPolicy* retry_policy = nullptr);

class PartitionEnv {
 public:
  // A multi-chip TPU "focuses more on throughput rather than latency.
  // However, our framework can easily re-target a latency metric"
  // (Section 5.1): both objectives are supported.
  enum class Objective { kThroughput, kLatency };

  // `baseline_runtime_s` anchors the improvement metric (baseline latency
  // when the latency objective is selected); use ComputeHeuristicBaseline
  // to obtain it.  `eval_cache_capacity` sizes the partition-evaluation
  // memo cache in front of the cost model (entries; 0 disables, negative
  // uses DefaultEvalCacheCapacity(), i.e. --eval-cache /
  // MCMPART_EVAL_CACHE).  Copies of an env share one cache -- the cache is
  // pure memoization of a stateless Evaluate, so sharing never changes
  // results, only wall time.
  //
  // Every evaluation runs through a ResilientCostModel wrapping `model`:
  // transient failures (timeouts, evaluator errors, NaN costs -- see
  // faults/faults.h) are retried with backoff, and after retry exhaustion
  // the evaluation degrades to `fallback_model` when one is provided
  // (counted in faults/degraded_evals) or scores as invalid.  With a
  // model that never fails transiently (the analytical model, or hwsim
  // without fault injection) this wrapper is a deterministic no-op.
  // `fallback_model` is not owned and must outlive the env and its copies.
  // `retry_policy` (optional, copied) overrides RetryPolicy::FromEnv() for
  // the wrapper -- the partition service derives it from each request's
  // deadline so one slow evaluation cannot eat another request's budget.
  //
  // `delta_eval` selects the incremental scoring path (see
  // costmodel/delta_eval.h): 0 disables, positive enables, negative (the
  // default) uses DefaultDeltaEvalEnabled(), i.e. --delta-eval /
  // MCMPART_DELTA_EVAL.  It engages only when the wrapped model has an
  // analytical core (AsAnalytical() != nullptr); hwsim and fault-injected
  // models keep full evaluations.  Either way every score is bit-identical
  // -- the gate trades wall time only.  Copies of an env share the scorer
  // pool like the cache.
  PartitionEnv(const Graph& graph, CostModel& model,
               double baseline_runtime_s,
               Objective objective = Objective::kThroughput,
               int eval_cache_capacity = -1,
               CostModel* fallback_model = nullptr,
               const RetryPolicy* retry_policy = nullptr,
               int delta_eval = -1);

  Objective objective() const { return objective_; }

  // Evaluates a (corrected) partition: improvement ratio, or 0 when invalid.
  double Reward(const Partition& partition);

  // Thread-safe half of Reward(): evaluates `partition` on the cost model
  // and returns the reward without touching any environment state, filling
  // `*eval` with the full evaluation.  Cost-model implementations are
  // stateless (see cost_model.h), so Score may run concurrently from many
  // workers; pair each call with a CommitScore in collection order so
  // counters and the incumbent are updated exactly as the sequential
  // Reward() loop would have.
  double Score(const Partition& partition, EvalResult* eval) const;

  // Serial half of Reward(): records a Score() result (evaluation counter,
  // last_eval, incumbent tracking).  Must be called from one thread at a
  // time, in the deterministic collection order.
  void CommitScore(const Partition& partition, const EvalResult& eval,
                   double reward);

  // Full evaluation result of the last Reward() call.
  const EvalResult& last_eval() const { return last_eval_; }
  double baseline_runtime_s() const { return baseline_runtime_s_; }
  const Graph& graph() const { return *graph_; }
  CostModel& model() { return *model_; }

  std::int64_t num_evaluations() const { return num_evaluations_; }

  // The memo cache, if enabled (for tests/telemetry).
  const EvalCache* eval_cache() const { return eval_cache_.get(); }

  // The delta-scorer pool, if the incremental path is engaged (for tests).
  const DeltaScorerPool* delta_pool() const { return delta_pool_.get(); }

  // The best-scoring valid partition seen by this environment, if any.
  // Search strategies all score through Reward(), so after a run this holds
  // the incumbent the trace's best value refers to.
  bool has_best() const { return best_reward_ > 0.0; }
  double best_reward() const { return best_reward_; }
  const Partition& best_partition() const { return best_partition_; }

 private:
  const Graph* graph_;
  CostModel* model_;
  // Retry/degradation wrapper around model_; shared across env copies like
  // the cache (stateless Evaluate, so sharing never changes results).
  std::shared_ptr<ResilientCostModel> resilient_;
  std::shared_ptr<EvalCache> eval_cache_;  // Null when disabled.
  // Incremental scorers over resilient_'s analytical core; null when the
  // delta path is gated off or the model has no analytical core.
  std::shared_ptr<DeltaScorerPool> delta_pool_;
  double baseline_runtime_s_;
  Objective objective_;
  EvalResult last_eval_;
  std::int64_t num_evaluations_ = 0;
  double best_reward_ = 0.0;
  Partition best_partition_;
};

// Solver-repair step of a rollout, without any environment interaction:
// fills `rollout.corrected` and `rollout.solver_success` using the *given*
// solver instance (parallel rollout collection hands each task a private
// solver -- CpSolver is stateful and must not be shared across threads).
// In SAMPLE/FIX mode the rollout's final-iteration actions and log-probs
// are replaced by the solver's (valid) assignment, which is the action that
// actually earned the reward.
void CorrectRollout(GraphContext& context, CpSolver& solver,
                    RlConfig::SolverMode mode, Rollout& rollout, Rng& rng);

// Returns the partition a corrected rollout is scored on: the raw candidate
// when the solver is bypassed (kNone), the solver-corrected partition
// otherwise.
const Partition& ScoredPartition(const Rollout& rollout,
                                 RlConfig::SolverMode mode);

// Runs the full candidate -> corrected -> reward step for one rollout,
// filling `rollout.corrected`, `rollout.solver_success`, and
// `rollout.reward`.  Sequential convenience wrapper over CorrectRollout +
// PartitionEnv::Reward using the context's shared solver.
void CorrectAndScore(GraphContext& context, PartitionEnv& env,
                     RlConfig::SolverMode mode, Rollout& rollout, Rng& rng);

}  // namespace mcm
