#include "telemetry/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace mcm::telemetry {

namespace {

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendJsonDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no NaN/Inf literal.
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

template <typename Map, typename AppendValue>
void AppendJsonObject(std::string& out, const Map& map,
                      AppendValue&& append_value) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : map) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, key);
    out.push_back(':');
    append_value(out, value);
  }
  out.push_back('}');
}

void AppendHistogramSnapshot(std::string& out,
                             const Histogram::Snapshot& snapshot) {
  out += "{\"bounds\":[";
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonDouble(out, snapshot.bounds[i]);
  }
  out += "],\"buckets\":[";
  for (std::size_t i = 0; i < snapshot.buckets.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(snapshot.buckets[i]);
  }
  out += "],\"count\":";
  out += std::to_string(snapshot.count);
  out += ",\"sum\":";
  AppendJsonDouble(out, snapshot.sum);
  out.push_back('}');
}

}  // namespace

void RunReport::AddPhaseSeconds(std::string_view phase, double seconds) {
  phases_[std::string(phase)] += seconds;
}

void RunReport::SetValue(std::string_view key, double value) {
  values_[std::string(key)] = value;
}

void RunReport::SetString(std::string_view key, std::string_view value) {
  strings_[std::string(key)] = std::string(value);
}

std::string RunReport::ToJson() const {
  const MetricsSnapshot metrics = SnapshotMetrics();

  std::string out = "{\"name\":";
  AppendJsonString(out, name_);

  out += ",\"phases\":";
  AppendJsonObject(out, phases_,
                   [](std::string& o, double v) { AppendJsonDouble(o, v); });
  out += ",\"values\":";
  AppendJsonObject(out, values_,
                   [](std::string& o, double v) { AppendJsonDouble(o, v); });
  out += ",\"strings\":";
  AppendJsonObject(out, strings_, [](std::string& o, const std::string& v) {
    AppendJsonString(o, v);
  });

  // SnapshotMetrics() returns name-sorted vectors, matching the std::map
  // iteration order used above.
  out += ",\"metrics\":{\"counters\":";
  AppendJsonObject(out, metrics.counters, [](std::string& o, std::int64_t v) {
    o += std::to_string(v);
  });
  out += ",\"gauges\":";
  AppendJsonObject(out, metrics.gauges,
                   [](std::string& o, double v) { AppendJsonDouble(o, v); });
  out += ",\"histograms\":";
  AppendJsonObject(out, metrics.histograms,
                   [](std::string& o, const Histogram::Snapshot& v) {
                     AppendHistogramSnapshot(o, v);
                   });
  out += "}}\n";
  return out;
}

bool RunReport::Write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    MCM_LOG(kWarning) << "cannot open report output " << path;
    return false;
  }
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace mcm::telemetry
