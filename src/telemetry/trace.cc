#include "telemetry/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/env.h"
#include "common/logging.h"

namespace mcm::telemetry {

namespace {

std::atomic<bool> g_tracing_enabled{false};

struct TraceEvent {
  std::string name;
  std::int64_t start_us;
  std::int64_t dur_us;
};

// One buffer per recording thread.  The owning thread appends under its own
// mutex (uncontended in steady state); the exporter takes the same mutex to
// copy events out.  Buffers are shared_ptr-owned by both the thread_local
// handle and the global list, so events of exited threads survive to export.
struct ThreadBuffer {
  explicit ThreadBuffer(int tid) : tid(tid) {}
  const int tid;
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct BufferList {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferList& Buffers() {
  static BufferList* const list = new BufferList;
  return *list;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    BufferList& list = Buffers();
    std::lock_guard<std::mutex> lock(list.mu);
    auto created =
        std::make_shared<ThreadBuffer>(static_cast<int>(list.buffers.size()));
    list.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point TraceOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

std::string& TracePathStorage() {
  static std::string* const path = new std::string;
  return *path;
}

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

namespace internal {

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

std::int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceOrigin())
      .count();
}

void RecordSpan(std::string_view name, std::int64_t start_us,
                std::int64_t end_us) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      TraceEvent{std::string(name), start_us, end_us - start_us});
}

}  // namespace internal

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       TraceOrigin())
      .count();
}

void EnableTracing(bool enabled) {
  if (enabled) TraceOrigin();  // Pin the clock origin before the first span.
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return internal::TracingEnabled(); }

void ClearTraceForTest() {
  BufferList& list = Buffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (auto& buffer : list.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

bool WriteTrace(const std::string& path) {
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  {
    BufferList& list = Buffers();
    std::lock_guard<std::mutex> lock(list.mu);
    for (const auto& buffer : list.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      for (const TraceEvent& event : buffer->events) {
        if (!first) json.push_back(',');
        first = false;
        json += "{\"name\":";
        AppendJsonString(json, event.name);
        json += ",\"cat\":\"mcm\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        json += std::to_string(buffer->tid);
        json += ",\"ts\":";
        json += std::to_string(event.start_us);
        json += ",\"dur\":";
        json += std::to_string(event.dur_us);
        json += "}";
      }
    }
  }
  json += "]}\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    MCM_LOG(kWarning) << "cannot open trace output " << path;
    return false;
  }
  out << json;
  return static_cast<bool>(out);
}

void SetTracePath(std::string path) {
  TracePathStorage() = std::move(path);
  EnableTracing(!TracePathStorage().empty());
}

const std::string& TracePath() { return TracePathStorage(); }

bool WriteTraceIfConfigured() {
  const std::string& path = TracePathStorage();
  if (path.empty()) return true;
  return WriteTrace(path);
}

void InitTelemetryFromEnv() {
  const std::optional<std::string> path = GetEnv("MCMPART_TRACE");
  if (path.has_value() && !path->empty()) SetTracePath(*path);
}

}  // namespace mcm::telemetry
