// Structured run reports: a metrics snapshot plus per-phase wall times and
// arbitrary scalar/string results, serialized to a stable JSON layout.
//
//   {
//     "name": "fig5_pretrain_curves",
//     "phases": {"pretrain": 12.31, ...},          // seconds
//     "values": {"final/rl": 1.83, ...},
//     "strings": {"scale": "quick", ...},
//     "metrics": {
//       "counters": {"solver/fix_repaired": 42, ...},
//       "gauges": {...},
//       "histograms": {"rl/reward": {"bounds": [...], "buckets": [...],
//                                    "count": N, "sum": S}, ...}
//     }
//   }
//
// The CLI writes one for --metrics-out, the benches one per binary
// (BENCH_<name>.json).  Keys within each object are emitted sorted, so
// reports diff cleanly across runs.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace mcm::telemetry {

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  // Records a phase duration in seconds; repeated calls accumulate.
  void AddPhaseSeconds(std::string_view phase, double seconds);
  void SetValue(std::string_view key, double value);
  void SetString(std::string_view key, std::string_view value);

  // Serializes the report plus a fresh SnapshotMetrics() to JSON.
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false (with a warning) on I/O error.
  bool Write(const std::string& path) const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::map<std::string, double> phases_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> strings_;
};

// Accumulates wall time into `report`'s phase `phase` on destruction.
class PhaseTimer {
 public:
  PhaseTimer(RunReport& report, std::string phase)
      : report_(report),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    report_.AddPhaseSeconds(
        phase_, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  RunReport& report_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mcm::telemetry
