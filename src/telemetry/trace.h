// RAII trace spans exportable as Chrome trace-event JSON.
//
// Spans are buffered per thread (a mutex-guarded buffer per thread, touched
// only by its owner except at export time) and only recorded while tracing is
// enabled.  When tracing is off — the default — constructing a span costs one
// relaxed atomic load and touches no clock, so instrumented hot paths stay
// free.  Like the metrics registry, tracing is write-only with respect to the
// computation: no RNG reads, no branching on recorded state, so results are
// bit-identical with tracing on or off at any thread count.
//
// Usage:
//
//   void Solve() {
//     MCM_TRACE_SPAN("solver/solve");
//     ...
//   }
//
// Enable with EnableTracing() (the CLI maps --trace-out / MCMPART_TRACE to
// it) and export with WriteTrace(path), which emits
// {"traceEvents":[{"ph":"X",...}]} — loadable in Perfetto or
// chrome://tracing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mcm::telemetry {

namespace internal {

bool TracingEnabled();  // One relaxed load.

// Records a complete ("ph":"X") event for the calling thread.  Timestamps
// are microseconds from a process-wide steady-clock origin.
void RecordSpan(std::string_view name, std::int64_t start_us,
                std::int64_t end_us);

std::int64_t TraceNowMicros();

}  // namespace internal

// A scoped trace span.  `name` must outlive the span; string literals are
// the intended use.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (internal::TracingEnabled()) {
      name_ = name;
      start_us_ = internal::TraceNowMicros();
      armed_ = true;
    }
  }
  ~TraceSpan() {
    if (armed_ && internal::TracingEnabled()) {
      internal::RecordSpan(name_, start_us_, internal::TraceNowMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string_view name_;
  std::int64_t start_us_ = 0;
  bool armed_ = false;
};

#define MCM_TRACE_SPAN_CONCAT2(a, b) a##b
#define MCM_TRACE_SPAN_CONCAT(a, b) MCM_TRACE_SPAN_CONCAT2(a, b)
// Opens a span covering the rest of the enclosing scope.
#define MCM_TRACE_SPAN(name)                                    \
  ::mcm::telemetry::TraceSpan MCM_TRACE_SPAN_CONCAT(            \
      mcm_trace_span_, __LINE__)(name)

// Seconds since a process-wide steady-clock origin (the same origin trace
// timestamps use).  This is the one sanctioned monotonic-clock read outside
// src/telemetry/ — mcmlint's mcm-nondeterminism rule bans raw
// steady_clock::now() elsewhere so that wall-time can never feed back into
// results.  Telemetry-only: durations derived from it may be Observe()d or
// logged, never branched on.
double MonotonicSeconds();

// Turns span recording on or off.  Spans already in flight when tracing
// flips off are dropped at destruction time without being recorded.
void EnableTracing(bool enabled = true);
bool TracingEnabled();

// Drops every buffered event.  Only safe when no span is in flight;
// intended for tests.
void ClearTraceForTest();

// Writes all buffered events as Chrome trace-event JSON.  Returns false if
// the file cannot be opened.
bool WriteTrace(const std::string& path);

// Remembers `path` and enables tracing; WriteTraceIfConfigured() exports to
// it.  Lets main() configure once and flush at every exit point.
void SetTracePath(std::string path);
const std::string& TracePath();
bool WriteTraceIfConfigured();

// Reads MCMPART_TRACE; when set and non-empty, equivalent to
// SetTracePath(value).  Called from CLI and bench mains.
void InitTelemetryFromEnv();

}  // namespace mcm::telemetry
