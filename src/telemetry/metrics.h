// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms.
//
// Recording is designed for the hot paths scheduled on the runtime worker
// pool (runtime/thread_pool.h):
//
//  * Counters and histograms are sharded per thread.  Each (metric, thread)
//    pair owns a private cell of relaxed atomics; recording is one relaxed
//    fetch_add on an uncontended cache line, TSan-clean by construction, and
//    shards only merge when a snapshot is taken.  Cells of exited threads
//    stay owned by the metric, so cumulative values survive thread churn.
//  * Gauges are process-global relaxed atomics.  `SetMax` folds with max,
//    which commutes, so its final value is schedule-independent; plain `Set`
//    is last-write-wins and belongs in serial code.
//
// Telemetry is strictly write-only with respect to the computation: nothing
// in the library reads an RNG or branches on recorded state, so every
// partition, reward, checkpoint, and bench number is bit-identical with
// telemetry on or off, at any thread count (tests/telemetry_test.cc).
//
// Metric handles are interned by name and never freed; hot call sites cache
// the reference once:
//
//   static Counter& repairs = Counter::Get("solver/fix_repaired");
//   repairs.Add();
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mcm::telemetry {

namespace internal {
struct CounterCell;
struct HistogramCell;
}  // namespace internal

// Monotonically increasing 64-bit counter.
class Counter {
 public:
  // Interns (or finds) the counter named `name`.  The reference is valid for
  // the process lifetime.
  static Counter& Get(std::string_view name);

  void Add(std::int64_t delta = 1);
  // Merged value across all thread shards (including exited threads).
  std::int64_t Value() const;
  const std::string& name() const { return name_; }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  Counter(std::string name, int id);

  internal::CounterCell* NewCellLocked();

  const std::string name_;
  const int id_;  // Index into the per-thread cell table.
  mutable std::mutex mu_;  // Guards cells_ (structure only; cells are atomic).
  std::vector<std::unique_ptr<internal::CounterCell>> cells_;
};

// Last-written double value; SetMax retains the maximum seen.
class Gauge {
 public:
  static Gauge& Get(std::string_view name);

  // Last-write-wins; call from serial code if a deterministic value matters.
  void Set(double value);
  // Folds with max (commutative): deterministic under any schedule.
  void SetMax(double value);
  double Value() const;
  const std::string& name() const { return name_; }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  explicit Gauge(std::string name);

  struct Impl;
  const std::string name_;
  std::unique_ptr<Impl> impl_;
};

// Fixed-bucket histogram.  `bounds` are the ascending inclusive upper bounds
// of the finite buckets; a value v lands in the first bucket with
// v <= bounds[i], or in the trailing overflow bucket.
class Histogram {
 public:
  // Interns the histogram; the first registration fixes the bucket bounds
  // and later calls with the same name ignore their `bounds` argument.
  static Histogram& Get(std::string_view name, std::span<const double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::int64_t> buckets;  // bounds.size() + 1, overflow last.
    std::int64_t count = 0;
    double sum = 0.0;
  };
  Snapshot Snap() const;
  const std::string& name() const { return name_; }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  Histogram(std::string name, int id, std::vector<double> bounds);

  internal::HistogramCell* NewCellLocked();

  const std::string name_;
  const int id_;
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<internal::HistogramCell>> cells_;
};

// A merged, name-sorted view of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

MetricsSnapshot SnapshotMetrics();

// Zeroes every metric (counters, gauges, histogram shards).  Only safe when
// no recording is in flight; intended for tests.
void ResetMetricsForTest();

// Interns the canonical instrumentation names used across the stack so that
// exported metrics JSON always carries the solver/hwsim/rl/pipeline/runtime
// keys, even for runs that never exercised a layer (counters read 0).
// Called by the CLI and the bench harness before any work runs.
void RegisterStandardMetrics();

}  // namespace mcm::telemetry
