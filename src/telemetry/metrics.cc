#include "telemetry/metrics.h"

#include <algorithm>
#include <atomic>
#include <map>

namespace mcm::telemetry {

namespace internal {

// One thread's shard of one counter.  Owned by the Counter (so values of
// exited threads persist); addressed lock-free through a per-thread table.
struct CounterCell {
  std::atomic<std::int64_t> value{0};
};

struct HistogramCell {
  explicit HistogramCell(std::size_t num_buckets) : buckets(num_buckets) {}
  std::vector<std::atomic<std::int64_t>> buckets;  // Finite + overflow.
  std::atomic<std::int64_t> count{0};
  std::atomic<double> sum{0.0};
};

}  // namespace internal

namespace {

using internal::CounterCell;
using internal::HistogramCell;

// Per-thread cell tables, indexed by metric id.  Raw pointers only: the
// metric owns the cell, the table is a cache, and a table outliving its
// thread merely drops the pointers.
thread_local std::vector<CounterCell*> tls_counter_cells;
thread_local std::vector<HistogramCell*> tls_histogram_cells;

}  // namespace

// Interning registry.  A leaked heap singleton so worker threads recording
// during static destruction never race the registry's teardown.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* const registry = new Registry;
    return *registry;
  }

  Counter& GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      const int id = static_cast<int>(counters_.size());
      it = counters_
               .emplace(std::string(name),
                        std::unique_ptr<Counter>(
                            new Counter(std::string(name), id)))
               .first;
    }
    return *it->second;
  }

  Gauge& GetGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_
               .emplace(std::string(name),
                        std::unique_ptr<Gauge>(new Gauge(std::string(name))))
               .first;
    }
    return *it->second;
  }

  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      const int id = static_cast<int>(histograms_.size());
      std::vector<double> sorted(bounds.begin(), bounds.end());
      std::sort(sorted.begin(), sorted.end());
      it = histograms_
               .emplace(std::string(name),
                        std::unique_ptr<Histogram>(new Histogram(
                            std::string(name), id, std::move(sorted))))
               .first;
    }
    return *it->second;
  }

  MetricsSnapshot Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snapshot;
    for (const auto& [name, counter] : counters_) {
      snapshot.counters.emplace_back(name, counter->Value());
    }
    for (const auto& [name, gauge] : gauges_) {
      snapshot.gauges.emplace_back(name, gauge->Value());
    }
    for (const auto& [name, histogram] : histograms_) {
      snapshot.histograms.emplace_back(name, histogram->Snap());
    }
    return snapshot;
  }

  void Reset();

 private:
  Registry() = default;

  std::mutex mu_;
  // std::map keeps the snapshot name-sorted without a second pass.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---- Counter ----------------------------------------------------------------

Counter::Counter(std::string name, int id) : name_(std::move(name)), id_(id) {}

Counter& Counter::Get(std::string_view name) {
  return Registry::Instance().GetCounter(name);
}

CounterCell* Counter::NewCellLocked() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(std::make_unique<CounterCell>());
  return cells_.back().get();
}

void Counter::Add(std::int64_t delta) {
  const auto id = static_cast<std::size_t>(id_);
  if (id >= tls_counter_cells.size()) {
    tls_counter_cells.resize(id + 1, nullptr);
  }
  CounterCell*& cell = tls_counter_cells[id];
  if (cell == nullptr) cell = NewCellLocked();
  cell->value.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->value.load(std::memory_order_relaxed);
  }
  return total;
}

// ---- Gauge ------------------------------------------------------------------

struct Gauge::Impl {
  std::atomic<double> value{0.0};
};

Gauge::Gauge(std::string name)
    : name_(std::move(name)), impl_(std::make_unique<Impl>()) {}

Gauge& Gauge::Get(std::string_view name) {
  return Registry::Instance().GetGauge(name);
}

void Gauge::Set(double value) {
  impl_->value.store(value, std::memory_order_relaxed);
}

void Gauge::SetMax(double value) {
  double current = impl_->value.load(std::memory_order_relaxed);
  while (value > current &&
         !impl_->value.compare_exchange_weak(current, value,
                                             std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const {
  return impl_->value.load(std::memory_order_relaxed);
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string name, int id, std::vector<double> bounds)
    : name_(std::move(name)), id_(id), bounds_(std::move(bounds)) {}

Histogram& Histogram::Get(std::string_view name,
                          std::span<const double> bounds) {
  return Registry::Instance().GetHistogram(name, bounds);
}

HistogramCell* Histogram::NewCellLocked() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(std::make_unique<HistogramCell>(bounds_.size() + 1));
  return cells_.back().get();
}

void Histogram::Observe(double value) {
  const auto id = static_cast<std::size_t>(id_);
  if (id >= tls_histogram_cells.size()) {
    tls_histogram_cells.resize(id + 1, nullptr);
  }
  HistogramCell*& cell = tls_histogram_cells[id];
  if (cell == nullptr) cell = NewCellLocked();
  const std::size_t bucket =
      static_cast<std::size_t>(
          std::lower_bound(bounds_.begin(), bounds_.end(), value) -
          bounds_.begin());
  cell->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  cell->sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& cell : cells_) {
    for (std::size_t b = 0; b < cell->buckets.size(); ++b) {
      snapshot.buckets[b] += cell->buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.count += cell->count.load(std::memory_order_relaxed);
    snapshot.sum += cell->sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

// ---- Registry-wide operations -----------------------------------------------

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    std::lock_guard<std::mutex> cell_lock(counter->mu_);
    for (auto& cell : counter->cells_) {
      cell->value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [name, histogram] : histograms_) {
    std::lock_guard<std::mutex> cell_lock(histogram->mu_);
    for (auto& cell : histogram->cells_) {
      for (auto& bucket : cell->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      cell->count.store(0, std::memory_order_relaxed);
      cell->sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot SnapshotMetrics() { return Registry::Instance().Snapshot(); }

void ResetMetricsForTest() { Registry::Instance().Reset(); }

void RegisterStandardMetrics() {
  static constexpr const char* kCounters[] = {
      "costmodel/delta_fallback",
      "costmodel/delta_fast",
      "costmodel/delta_rebuild",
      "costmodel/eval_cache_evictions",
      "costmodel/eval_cache_hits",
      "costmodel/eval_cache_misses",
      "faults/degraded_evals",
      "faults/injected",
      "faults/injected_invalid",
      "faults/injected_nan",
      "faults/injected_timeout",
      "faults/recovered",
      "faults/retries",
      "faults/retry_exhausted",
      "hwsim/link_bound_evals",
      "hwsim/oom_rejections",
      "hwsim/simulations",
      "hwsim/static_invalid",
      "pipeline/checkpoints",
      "pipeline/resumes",
      "pipeline/state_loads",
      "pipeline/state_saves",
      "pipeline/validate_cells",
      "rl/embed_cache_hits",
      "rl/embed_cache_misses",
      "rl/episodes",
      "rl/invalid_episodes",
      "rl/policy_updates",
      "runtime/parallel_fors",
      "runtime/parallel_iterations",
      "runtime/tasks_executed",
      "runtime/tasks_submitted",
      "search/hillclimb_proposals",
      "search/random_samples",
      "search/sa_proposals",
      "service/admitted",
      "service/batches",
      "service/cache_evictions",
      "service/cache_hits",
      "service/cache_misses",
      "service/completed",
      "service/connections",
      "service/drained",
      "service/executed",
      "service/protocol_errors",
      "service/rejected",
      "service/requests",
      "solver/backtracks",
      "solver/degraded_solves",
      "solver/fix_already_feasible",
      "solver/fix_repaired",
      "solver/fix_solves",
      "solver/probe_accepted",
      "solver/probe_proposals",
      "solver/propagations",
      "solver/sample_solves",
      "solver/set_domain_calls",
      "solver/solve_failures",
  };
  for (const char* name : kCounters) Counter::Get(name);
  Gauge::Get("hwsim/max_chip_peak_memory_bytes");
}

}  // namespace mcm::telemetry
