#include "nn/arena.h"

#include <algorithm>
#include <utility>

namespace mcm {
namespace {

struct ThreadPoolState {
  std::vector<std::vector<float>> buffers;
  std::size_t reuses = 0;
};

ThreadPoolState& State() {
  thread_local ThreadPoolState state;
  return state;
}

// Picks the pooled buffer whose capacity fits `size` best (smallest capacity
// >= size), falling back to the largest available buffer (which then grows
// in place).  The pool stays small in practice -- a rollout cycles a few
// dozen shapes -- so the linear scan is cheap.
std::vector<float> TakeBuffer(std::size_t size) {
  ThreadPoolState& state = State();
  if (state.buffers.empty()) return {};
  std::size_t best = 0;
  bool best_fits = false;
  for (std::size_t i = 0; i < state.buffers.size(); ++i) {
    const std::size_t cap = state.buffers[i].capacity();
    const bool fits = cap >= size;
    if (fits && (!best_fits || cap < state.buffers[best].capacity())) {
      best = i;
      best_fits = true;
    } else if (!best_fits && !fits && cap > state.buffers[best].capacity()) {
      best = i;
    }
  }
  std::vector<float> out = std::move(state.buffers[best]);
  state.buffers[best] = std::move(state.buffers.back());
  state.buffers.pop_back();
  ++state.reuses;
  return out;
}

}  // namespace

std::vector<float> ScratchArena::AcquireBuffer(std::size_t size) {
  std::vector<float> buffer = TakeBuffer(size);
  buffer.resize(size);
  return buffer;
}

void ScratchArena::ReleaseBuffer(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) return;
  ThreadPoolState& state = State();
  if (state.buffers.size() >= kMaxPooledBuffers) return;  // Drop: frees.
  buffer.clear();
  state.buffers.push_back(std::move(buffer));
}

Matrix ScratchArena::AcquireUninit(int rows, int cols) {
  Matrix m;
  m.rows = rows;
  m.cols = cols;
  m.data = AcquireBuffer(static_cast<std::size_t>(rows) * cols);
  return m;
}

Matrix ScratchArena::AcquireZeroed(int rows, int cols) {
  Matrix m = AcquireUninit(rows, cols);
  std::fill(m.data.begin(), m.data.end(), 0.0f);
  return m;
}

Matrix ScratchArena::AcquireCopy(const Matrix& src) {
  Matrix m = AcquireUninit(src.rows, src.cols);
  std::copy(src.data.begin(), src.data.end(), m.data.begin());
  return m;
}

void ScratchArena::Release(Matrix&& m) {
  ReleaseBuffer(std::move(m.data));
  m.rows = 0;
  m.cols = 0;
  m.data = {};
}

std::size_t ScratchArena::PooledBuffers() { return State().buffers.size(); }

std::size_t ScratchArena::ReuseCount() { return State().reuses; }

void ScratchArena::ClearThreadPool() {
  State().buffers.clear();
  State().buffers.shrink_to_fit();
}

}  // namespace mcm
