// Naive GEMM reference kernels and matrix initializers.
//
// This translation unit is deliberately compiled WITHOUT the -march=native
// kernel flags applied to matrix.cc (see CMakeLists.txt): the references are
// the pre-optimization kernels verbatim, and keeping them at baseline flags
// means the BM_*Reference microbenchmarks measure what the project actually
// shipped before the blocked kernels landed.  The initializers live here for
// the same reason -- their scalar double math must not change codegen with
// the kernel flags, so parameter initialization stays bit-identical whether
// or not the host qualifies for the vector kernels.
#include "nn/matrix.h"

#include <cmath>
#include <cstddef>

#include "common/logging.h"

namespace mcm {

void MatMulReference(const Matrix& a, const Matrix& b, Matrix& out,
                     bool accumulate) {
  MCM_CHECK_EQ(a.cols, b.rows);
  if (!accumulate || out.rows != a.rows || out.cols != b.cols) {
    out = Matrix(a.rows, b.cols);
  }
  // i-k-j loop order streams through b and out rows sequentially.
  for (int i = 0; i < a.rows; ++i) {
    float* out_row = out.data.data() + static_cast<std::size_t>(i) * out.cols;
    for (int k = 0; k < a.cols; ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      const float* b_row =
          b.data.data() + static_cast<std::size_t>(k) * b.cols;
      for (int j = 0; j < b.cols; ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void MatMulTransAReference(const Matrix& a, const Matrix& b, Matrix& out,
                           bool accumulate) {
  MCM_CHECK_EQ(a.rows, b.rows);
  if (!accumulate || out.rows != a.cols || out.cols != b.cols) {
    out = Matrix(a.cols, b.cols);
  }
  for (int k = 0; k < a.rows; ++k) {
    const float* a_row = a.data.data() + static_cast<std::size_t>(k) * a.cols;
    const float* b_row = b.data.data() + static_cast<std::size_t>(k) * b.cols;
    for (int i = 0; i < a.cols; ++i) {
      const float aki = a_row[i];
      if (aki == 0.0f) continue;
      float* out_row =
          out.data.data() + static_cast<std::size_t>(i) * out.cols;
      for (int j = 0; j < b.cols; ++j) out_row[j] += aki * b_row[j];
    }
  }
}

void MatMulTransBReference(const Matrix& a, const Matrix& b, Matrix& out,
                           bool accumulate) {
  MCM_CHECK_EQ(a.cols, b.cols);
  if (!accumulate || out.rows != a.rows || out.cols != b.rows) {
    out = Matrix(a.rows, b.rows);
  }
  for (int i = 0; i < a.rows; ++i) {
    const float* a_row = a.data.data() + static_cast<std::size_t>(i) * a.cols;
    float* out_row = out.data.data() + static_cast<std::size_t>(i) * out.cols;
    for (int j = 0; j < b.rows; ++j) {
      const float* b_row =
          b.data.data() + static_cast<std::size_t>(j) * b.cols;
      float acc = 0.0f;
      for (int k = 0; k < a.cols; ++k) acc += a_row[k] * b_row[k];
      out_row[j] += acc;
    }
  }
}

void InitHe(Matrix& m, int fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / fan_in);
  for (float& x : m.data) x = static_cast<float>(rng.Normal(0.0, stddev));
}

void InitXavier(Matrix& m, int fan_in, int fan_out, Rng& rng) {
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (float& x : m.data) {
    x = static_cast<float>(rng.UniformDouble(-limit, limit));
  }
}

}  // namespace mcm
