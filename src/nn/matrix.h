// Dense row-major float matrix and the handful of kernels the GNN needs.
//
// The three GEMM variants are cache-blocked, register-tiled kernels written
// so the compiler's auto-vectorizer can keep the accumulators in vector
// registers -- no BLAS dependency and no fast-math.  Large shapes run on the
// NN kernel pool (NnParallelFor; sized by --nn-threads, which defaults to
// inheriting the runtime thread count) with blocking that is fixed and
// shape-only (never a function of the thread count), so results are
// bit-identical run-to-run and across worker-pool sizes.  The naive reference kernels are retained
// (`*Reference`) for tests and microbenchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mcm {

struct Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<float> data;  // Row-major, size rows*cols.

  Matrix() = default;
  Matrix(int r, int c) : rows(r), cols(c), data(static_cast<std::size_t>(r) * c, 0.0f) {}

  float& at(int r, int c) { return data[static_cast<std::size_t>(r) * cols + c]; }
  float at(int r, int c) const {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
  std::span<float> row(int r) {
    return std::span<float>(data).subspan(static_cast<std::size_t>(r) * cols,
                                          static_cast<std::size_t>(cols));
  }
  std::span<const float> row(int r) const {
    return std::span<const float>(data).subspan(
        static_cast<std::size_t>(r) * cols, static_cast<std::size_t>(cols));
  }
  void Zero() { std::fill(data.begin(), data.end(), 0.0f); }
  bool SameShape(const Matrix& other) const {
    return rows == other.rows && cols == other.cols;
  }
};

// out = a * b.  Shapes: [m x k] * [k x n] -> [m x n].  `accumulate` adds
// into `out` instead of overwriting (used by backward passes); when `out`
// has the wrong shape it is reallocated and the call behaves like a plain
// overwrite.
void MatMul(const Matrix& a, const Matrix& b, Matrix& out,
            bool accumulate = false);

// out = a^T * b.  Shapes: [k x m]^T * [k x n] -> [m x n].
void MatMulTransA(const Matrix& a, const Matrix& b, Matrix& out,
                  bool accumulate = false);

// out = a * b^T.  Shapes: [m x k] * [n x k]^T -> [m x n].
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix& out,
                  bool accumulate = false);

// Naive scalar triple-loop references, kept as the ground truth for kernel
// tests and as the baseline side of the GEMM microbenchmarks.  Semantics
// match the blocked kernels up to floating-point summation order.
void MatMulReference(const Matrix& a, const Matrix& b, Matrix& out,
                     bool accumulate = false);
void MatMulTransAReference(const Matrix& a, const Matrix& b, Matrix& out,
                           bool accumulate = false);
void MatMulTransBReference(const Matrix& a, const Matrix& b, Matrix& out,
                           bool accumulate = false);

// Gaussian init scaled by sqrt(2 / fan_in) (He) or Xavier-uniform.
void InitHe(Matrix& m, int fan_in, Rng& rng);
void InitXavier(Matrix& m, int fan_in, int fan_out, Rng& rng);

}  // namespace mcm
