// Per-thread scratch arena for Matrix storage.
//
// Rollouts build and tear down a Tape per episode; every op node allocates a
// value and a gradient matrix, so a single PPO iteration used to churn
// thousands of short-lived heap blocks.  The arena keeps a small per-thread
// pool of retired float buffers and hands them back out on the next
// allocation of a compatible size, turning the steady-state cost into a
// vector swap instead of malloc/free.
//
// Design constraints:
//   * Thread-local and lock-free: rollout workers run concurrently and must
//     never contend on the allocator they were introduced to avoid.
//   * Buffers may migrate between threads (a Matrix acquired on one thread
//     can be released on another); that only moves heap blocks between
//     pools, which is safe.
//   * Bounded: the pool never holds more than kMaxPooledBuffers buffers, so
//     a one-off large workload cannot pin memory forever.
//
// Determinism: the arena only recycles storage; values written into acquired
// buffers are always fully initialized (zeroed or assigned), so numerical
// results are unaffected.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace mcm {

class ScratchArena {
 public:
  // Returns a rows x cols matrix with all elements zeroed, reusing pooled
  // storage when a buffer is available.
  static Matrix AcquireZeroed(int rows, int cols);
  // Returns a rows x cols matrix whose contents are unspecified; callers
  // must assign every element before reading.
  static Matrix AcquireUninit(int rows, int cols);
  // Returns a pooled-storage copy of `src`.
  static Matrix AcquireCopy(const Matrix& src);

  // Retires a matrix's storage into the calling thread's pool.  The matrix
  // is left empty.  Safe on moved-from / empty matrices (no-op).
  static void Release(Matrix&& m);

  // Raw-buffer variants for kernel-internal scratch (e.g. reduction
  // partials).  AcquireBuffer does not zero.
  static std::vector<float> AcquireBuffer(std::size_t size);
  static void ReleaseBuffer(std::vector<float>&& buffer);

  // ---- Introspection (per-thread; for tests and telemetry) ----
  static std::size_t PooledBuffers();  // Buffers currently pooled.
  static std::size_t ReuseCount();     // Acquisitions served from the pool.
  static void ClearThreadPool();       // Frees this thread's pool.

  static constexpr std::size_t kMaxPooledBuffers = 256;
};

}  // namespace mcm
