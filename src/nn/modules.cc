#include "nn/modules.h"

#include <cmath>
#include <limits>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace mcm {

Linear::Linear(std::string name, int in_dim, int out_dim, Rng& rng)
    : weight_(name + "/w", in_dim, out_dim), bias_(name + "/b", 1, out_dim) {
  InitXavier(weight_.value, in_dim, out_dim, rng);
}

VarId Linear::Forward(Tape& tape, VarId x) {
  const VarId w = tape.Parameter(&weight_.value, &weight_.grad);
  const VarId b = tape.Parameter(&bias_.value, &bias_.grad);
  return tape.AddRowBroadcast(tape.MatMulOp(x, w), b);
}

ParamRefs Linear::Params() { return {&weight_, &bias_}; }

GraphSageLayer::GraphSageLayer(std::string name, int in_dim, int out_dim,
                               Rng& rng)
    : w_self_(name + "/w_self", in_dim, out_dim),
      w_neigh_(name + "/w_neigh", in_dim, out_dim),
      bias_(name + "/b", 1, out_dim) {
  InitXavier(w_self_.value, in_dim, out_dim, rng);
  InitXavier(w_neigh_.value, in_dim, out_dim, rng);
}

VarId GraphSageLayer::Forward(Tape& tape, VarId h,
                              const NeighborLists* neighbors) {
  const VarId w_self =
      tape.Parameter(&w_self_.value, &w_self_.grad);
  const VarId w_neigh =
      tape.Parameter(&w_neigh_.value, &w_neigh_.grad);
  const VarId b = tape.Parameter(&bias_.value, &bias_.grad);
  const VarId self_term = tape.MatMulOp(h, w_self);
  const VarId neigh_term =
      tape.MatMulOp(tape.NeighborMeanOp(h, neighbors), w_neigh);
  const VarId pre =
      tape.AddRowBroadcast(tape.AddOp(self_term, neigh_term), b);
  return tape.L2NormalizeRowsOp(tape.ReluOp(pre));
}

ParamRefs GraphSageLayer::Params() { return {&w_self_, &w_neigh_, &bias_}; }

GraphSageNetwork::GraphSageNetwork(int input_dim, int hidden_dim,
                                   int num_layers, Rng& rng)
    : hidden_dim_(hidden_dim) {
  MCM_CHECK_GT(num_layers, 0);
  int in_dim = input_dim;
  for (int layer = 0; layer < num_layers; ++layer) {
    layers_.emplace_back("sage" + std::to_string(layer), in_dim, hidden_dim,
                         rng);
    in_dim = hidden_dim;
  }
}

VarId GraphSageNetwork::Forward(Tape& tape, VarId features,
                                const NeighborLists* neighbors) {
  VarId h = features;
  for (GraphSageLayer& layer : layers_) {
    h = layer.Forward(tape, h, neighbors);
  }
  return h;
}

ParamRefs GraphSageNetwork::Params() {
  ParamRefs refs;
  for (GraphSageLayer& layer : layers_) {
    for (Param* p : layer.Params()) refs.push_back(p);
  }
  return refs;
}

Mlp::Mlp(std::string name, const std::vector<int>& dims, Rng& rng) {
  MCM_CHECK_GE(dims.size(), 2u);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(name + "/fc" + std::to_string(i),
                         dims[i], dims[i + 1], rng);
  }
}

VarId Mlp::Forward(Tape& tape, VarId x) {
  VarId h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(tape, h);
    if (i + 1 < layers_.size()) h = tape.ReluOp(h);
  }
  return h;
}

ParamRefs Mlp::Params() {
  ParamRefs refs;
  for (Linear& layer : layers_) {
    for (Param* p : layer.Params()) refs.push_back(p);
  }
  return refs;
}

NeighborLists BuildNeighborLists(const Graph& graph) {
  NeighborLists lists;
  const int n = graph.NumNodes();
  lists.offsets.resize(static_cast<std::size_t>(n) + 1, 0);
  for (int u = 0; u < n; ++u) {
    lists.offsets[static_cast<std::size_t>(u) + 1] =
        lists.offsets[static_cast<std::size_t>(u)] + graph.InDegree(u) +
        graph.OutDegree(u);
  }
  lists.indices.resize(static_cast<std::size_t>(lists.offsets.back()));
  std::vector<int> cursor(lists.offsets.begin(), lists.offsets.end() - 1);
  for (int u = 0; u < n; ++u) {
    for (int p : graph.Predecessors(u)) {
      lists.indices[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = p;
    }
    for (int s : graph.Successors(u)) {
      lists.indices[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = s;
    }
  }
  lists.Finalize();
  return lists;
}

Adam::Adam(ParamRefs params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows, p->value.cols);
    v_.emplace_back(p->value.rows, p->value.cols);
  }
}

// MCM_CONTRACT(deterministic): the global-norm reduction stays serial in
// param order; the per-param update is elementwise (params never alias), so
// the fan-out reorders no arithmetic and the step is bit-identical at any
// --nn-threads value.
void Adam::Step() {
  ++step_;
  double scale = 1.0;
  if (options_.clip_global_norm > 0.0) {
    double sq = 0.0;
    for (const Param* p : params_) {
      for (float g : p->grad.data) sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_global_norm) {
      scale = options_.clip_global_norm / norm;
    }
  }
  const double bias1 = 1.0 - std::pow(options_.beta1, step_);
  const double bias2 = 1.0 - std::pow(options_.beta2, step_);
  NnParallelFor(0, static_cast<std::int64_t>(params_.size()),
                [&](std::int64_t k) {
    Param& p = *params_[static_cast<std::size_t>(k)];
    Matrix& m = m_[static_cast<std::size_t>(k)];
    Matrix& v = v_[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < p.value.data.size(); ++i) {
      const double g = scale * p.grad.data[i];
      m.data[i] = static_cast<float>(options_.beta1 * m.data[i] +
                                     (1.0 - options_.beta1) * g);
      v.data[i] = static_cast<float>(options_.beta2 * v.data[i] +
                                     (1.0 - options_.beta2) * g * g);
      const double m_hat = m.data[i] / bias1;
      const double v_hat = v.data[i] / bias2;
      p.value.data[i] -= static_cast<float>(
          options_.lr * m_hat / (std::sqrt(v_hat) + options_.epsilon));
    }
  });
  ZeroGrad();
}

void Adam::ZeroGrad() {
  NnParallelFor(0, static_cast<std::int64_t>(params_.size()),
                [&](std::int64_t k) {
    params_[static_cast<std::size_t>(k)]->grad.Zero();
  });
}

Adam::State Adam::GetState() const {
  State state;
  state.step = step_;
  state.m = m_;
  state.v = v_;
  return state;
}

void Adam::SetState(const State& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size()) {
    throw std::runtime_error("Adam::SetState: moment count mismatch");
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const Param& p = *params_[k];
    if (state.m[k].rows != p.value.rows || state.m[k].cols != p.value.cols ||
        state.v[k].rows != p.value.rows || state.v[k].cols != p.value.cols) {
      throw std::runtime_error("Adam::SetState: moment shape mismatch for " +
                               p.name);
    }
  }
  step_ = state.step;
  m_ = state.m;
  v_ = state.v;
}

void SaveParams(const ParamRefs& params, std::ostream& os) {
  // max_digits10 guarantees exact float round-trips through text.
  os.precision(std::numeric_limits<float>::max_digits10);
  os << "mcm-checkpoint-v1 " << params.size() << "\n";
  for (const Param* p : params) {
    os << p->name << " " << p->value.rows << " " << p->value.cols << "\n";
    for (std::size_t i = 0; i < p->value.data.size(); ++i) {
      os << p->value.data[i] << (i + 1 == p->value.data.size() ? "\n" : " ");
    }
  }
}

void LoadParams(const ParamRefs& params, std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  if (magic != "mcm-checkpoint-v1" || count != params.size()) {
    throw std::runtime_error("LoadParams: bad header or parameter count");
  }
  for (Param* p : params) {
    std::string name;
    int rows = 0, cols = 0;
    is >> name >> rows >> cols;
    if (name != p->name || rows != p->value.rows || cols != p->value.cols) {
      throw std::runtime_error("LoadParams: mismatch for parameter " +
                               p->name);
    }
    for (float& x : p->value.data) {
      if (!(is >> x)) {
        throw std::runtime_error("LoadParams: truncated data for " + p->name);
      }
    }
  }
}

std::vector<Matrix> SnapshotParams(const ParamRefs& params) {
  std::vector<Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const Param* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void RestoreParams(const ParamRefs& params,
                   const std::vector<Matrix>& snapshot) {
  MCM_CHECK_EQ(params.size(), snapshot.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    MCM_CHECK(params[i]->value.SameShape(snapshot[i]));
    params[i]->value = snapshot[i];
  }
}

}  // namespace mcm
