#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "nn/arena.h"
#include "runtime/thread_pool.h"

namespace mcm {
namespace {

// ---- Blocking parameters ----------------------------------------------------
//
// All blocking decisions are pure functions of the operand shapes: micro-tile
// sizes are compile-time constants, the parallel cutover is a flop threshold,
// and parallel work is split into fixed-size panels/slabs.  Every output
// element is therefore produced by exactly one task with a fixed summation
// order, which keeps results bit-identical run-to-run and for any worker-pool
// size (including 1).  No fast-math anywhere: float sums are never
// reassociated behind our back, only by the explicit lane structure below.

// Register micro-tile, sized for the widest vector ISA this translation
// unit is compiled for (CMake builds it with -march=native when the host
// supports it; see src/nn/CMakeLists.txt and MCM_NATIVE_KERNELS).  The
// accumulator block `rows x cols` floats must fit the register file with
// room for the streamed b-row and the broadcast a-value:
//   AVX-512: 6x32 = 12 zmm accumulators (of 32)
//   AVX2+FMA: 6x16 = 12 ymm accumulators (of 16)
//   baseline SSE2: 4x8 = 8 xmm accumulators (of 16)
// Tile sizes are compile-time constants, so blocking -- and therefore every
// floating-point summation order -- is fixed per build.
#if defined(__AVX512F__)
constexpr int kMicroRows = 6;
constexpr int kMicroCols = 32;
constexpr int kDotLanes = 32;
#elif defined(__AVX2__) && defined(__FMA__)
constexpr int kMicroRows = 6;
constexpr int kMicroCols = 16;
constexpr int kDotLanes = 16;
#else
constexpr int kMicroRows = 4;
constexpr int kMicroCols = 8;
constexpr int kDotLanes = 8;
#endif
// Rows of `out` per parallel task (MatMul / MatMulTransB row split).
constexpr int kPanelRows = 64;
// Reduction rows per parallel slab (MatMulTransA k split); partial sums are
// combined serially in slab order.
constexpr int kSlabRows = 256;
// Minimum work (2*m*n*k flops) before going parallel; below this the fork
// overhead dominates.  Roughly a 128x128x128 product.
constexpr std::int64_t kParallelMinFlops = std::int64_t{1} << 22;

std::int64_t FlopCount(int m, int n, int k) {
  return 2 * static_cast<std::int64_t>(m) * n * k;
}

// Gives `out` the requested shape without zeroing (callers overwrite every
// element).  Retired storage goes back to the scratch arena.
void EnsureShape(Matrix& out, int rows, int cols) {
  if (out.rows == rows && out.cols == cols) return;
  ScratchArena::Release(std::move(out));
  out = ScratchArena::AcquireUninit(rows, cols);
}

// Stores a rows x cols accumulator tile into c.
inline void StoreTile(const float acc[kMicroRows][kMicroCols], float* c,
                      std::size_t ldc, int rows, int cols, bool accumulate) {
  for (int i = 0; i < rows; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (accumulate) {
      for (int j = 0; j < cols; ++j) crow[j] += acc[i][j];
    } else {
      for (int j = 0; j < cols; ++j) crow[j] = acc[i][j];
    }
  }
}

// ---- MatMul: out[i,j] = sum_k a[i,k] * b[k,j] -------------------------------

// One rows x cols tile (rows <= 4, cols <= 8) of a*b, streaming k with the
// accumulators in registers.  Per-element summation order is k-ascending,
// identical to the reference kernel.  `a` points at (i0, 0), `b` at (0, j0),
// `c` at (i0, j0).  When kFullTile is set the loop bounds are compile-time
// 4x8 so the compiler fully unrolls and vectorizes.
template <bool kFullTile>
void MatMulTile(const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c, std::size_t ldc, int kk, int rows,
                int cols, bool accumulate) {
  float acc[kMicroRows][kMicroCols] = {};
  const int r = kFullTile ? kMicroRows : rows;
  const int n = kFullTile ? kMicroCols : cols;
  for (int k = 0; k < kk; ++k) {
    const float* brow = b + static_cast<std::size_t>(k) * ldb;
    for (int i = 0; i < r; ++i) {
      const float av = a[static_cast<std::size_t>(i) * lda + k];
      for (int j = 0; j < n; ++j) acc[i][j] += av * brow[j];
    }
  }
  StoreTile(acc, c, ldc, r, n, accumulate);
}

void MatMulPanel(const Matrix& a, const Matrix& b, Matrix& out,
                 bool accumulate, int row_begin, int row_end) {
  const int kk = a.cols;
  const int n = b.cols;
  const auto lda = static_cast<std::size_t>(a.cols);
  const auto ldb = static_cast<std::size_t>(b.cols);
  const auto ldc = static_cast<std::size_t>(out.cols);
  for (int i = row_begin; i < row_end; i += kMicroRows) {
    const int rows = std::min(kMicroRows, row_end - i);
    for (int j = 0; j < n; j += kMicroCols) {
      const int cols = std::min(kMicroCols, n - j);
      const float* ap = a.data.data() + static_cast<std::size_t>(i) * lda;
      const float* bp = b.data.data() + j;
      float* cp = out.data.data() + static_cast<std::size_t>(i) * ldc + j;
      if (rows == kMicroRows && cols == kMicroCols) {
        MatMulTile<true>(ap, lda, bp, ldb, cp, ldc, kk, rows, cols,
                         accumulate);
      } else {
        MatMulTile<false>(ap, lda, bp, ldb, cp, ldc, kk, rows, cols,
                          accumulate);
      }
    }
  }
}

// ---- MatMulTransA: out[i,j] = sum_k a[k,i] * b[k,j] -------------------------

// One tile of a^T*b over the reduction range [k_begin, k_end).  `a` points
// at (0, i0), `b` at (0, j0), `c` at (i0, j0); both operand loads are
// contiguous (a[k, i0..] and b[k, j0..]).
template <bool kFullTile>
void MatMulTransATile(const float* a, std::size_t lda, const float* b,
                      std::size_t ldb, float* c, std::size_t ldc, int k_begin,
                      int k_end, int rows, int cols, bool accumulate) {
  float acc[kMicroRows][kMicroCols] = {};
  const int r = kFullTile ? kMicroRows : rows;
  const int n = kFullTile ? kMicroCols : cols;
  for (int k = k_begin; k < k_end; ++k) {
    const float* arow = a + static_cast<std::size_t>(k) * lda;
    const float* brow = b + static_cast<std::size_t>(k) * ldb;
    for (int i = 0; i < r; ++i) {
      const float av = arow[i];
      for (int j = 0; j < n; ++j) acc[i][j] += av * brow[j];
    }
  }
  StoreTile(acc, c, ldc, r, n, accumulate);
}

// Computes the full m x n output (or a k-slab partial of it) into raw
// storage `c` with leading dimension ldc.
void MatMulTransAPanel(const Matrix& a, const Matrix& b, float* c,
                       std::size_t ldc, bool accumulate, int k_begin,
                       int k_end) {
  const int m = a.cols;
  const int n = b.cols;
  const auto lda = static_cast<std::size_t>(a.cols);
  const auto ldb = static_cast<std::size_t>(b.cols);
  for (int i = 0; i < m; i += kMicroRows) {
    const int rows = std::min(kMicroRows, m - i);
    for (int j = 0; j < n; j += kMicroCols) {
      const int cols = std::min(kMicroCols, n - j);
      const float* ap = a.data.data() + i;
      const float* bp = b.data.data() + j;
      float* cp = c + static_cast<std::size_t>(i) * ldc + j;
      if (rows == kMicroRows && cols == kMicroCols) {
        MatMulTransATile<true>(ap, lda, bp, ldb, cp, ldc, k_begin, k_end,
                               rows, cols, accumulate);
      } else {
        MatMulTransATile<false>(ap, lda, bp, ldb, cp, ldc, k_begin, k_end,
                                rows, cols, accumulate);
      }
    }
  }
}

// ---- MatMulTransB: out[i,j] = dot(a.row(i), b.row(j)) -----------------------

// Multi-lane partial-sum dot product with a fixed pairwise combine order.
// The lane structure is the explicit reassociation the compiler is not
// allowed to do itself for float (no fast-math), and it is identical for
// every shape and thread count, so results are deterministic per build.
inline float DotLanes(const float* x, const float* y, int n) {
  float acc[kDotLanes] = {};
  int k = 0;
  for (; k + kDotLanes <= n; k += kDotLanes) {
    for (int l = 0; l < kDotLanes; ++l) acc[l] += x[k + l] * y[k + l];
  }
  float tail = 0.0f;
  for (; k < n; ++k) tail += x[k] * y[k];
  for (int width = kDotLanes / 2; width > 0; width /= 2) {
    for (int l = 0; l < width; ++l) acc[l] += acc[l + width];
  }
  return acc[0] + tail;
}

void MatMulTransBPanel(const Matrix& a, const Matrix& b, Matrix& out,
                       bool accumulate, int row_begin, int row_end) {
  const int kk = a.cols;
  const int n = b.rows;
  for (int i = row_begin; i < row_end; ++i) {
    const float* arow =
        a.data.data() + static_cast<std::size_t>(i) * a.cols;
    float* orow = out.data.data() + static_cast<std::size_t>(i) * out.cols;
    for (int j = 0; j < n; ++j) {
      const float* brow =
          b.data.data() + static_cast<std::size_t>(j) * b.cols;
      const float v = DotLanes(arow, brow, kk);
      orow[j] = accumulate ? orow[j] + v : v;
    }
  }
}

// Splits [0, rows) into fixed kPanelRows-row panels executed on the NN
// kernel pool.  Panel boundaries depend only on `rows`.
template <typename PanelFn>
void ParallelOverRowPanels(int rows, const PanelFn& panel) {
  const int num_panels = (rows + kPanelRows - 1) / kPanelRows;
  NnParallelFor(0, num_panels, [&](std::int64_t p) {
    const int begin = static_cast<int>(p) * kPanelRows;
    const int end = std::min(rows, begin + kPanelRows);
    panel(begin, end);
  });
}

}  // namespace

// MCM_CONTRACT(deterministic): fixed shape-only row panels; each output
// element is written by exactly one task in the serial summation order.
void MatMul(const Matrix& a, const Matrix& b, Matrix& out, bool accumulate) {
  MCM_CHECK_EQ(a.cols, b.rows);
  const bool fresh = !accumulate || out.rows != a.rows || out.cols != b.cols;
  if (fresh) EnsureShape(out, a.rows, b.cols);
  // A reallocated output has unspecified contents, so accumulate degrades to
  // a plain overwrite (same semantics as accumulating into zeros).
  const bool acc = accumulate && !fresh;
  if (FlopCount(a.rows, b.cols, a.cols) >= kParallelMinFlops &&
      a.rows > kPanelRows) {
    ParallelOverRowPanels(a.rows, [&](int begin, int end) {
      MatMulPanel(a, b, out, acc, begin, end);
    });
  } else {
    MatMulPanel(a, b, out, acc, 0, a.rows);
  }
}

// MCM_CONTRACT(deterministic): fixed k-slabs with a serial slab-order
// reduction of the partials.
void MatMulTransA(const Matrix& a, const Matrix& b, Matrix& out,
                  bool accumulate) {
  MCM_CHECK_EQ(a.rows, b.rows);
  const bool fresh = !accumulate || out.rows != a.cols || out.cols != b.cols;
  if (fresh) EnsureShape(out, a.cols, b.cols);
  const bool acc = accumulate && !fresh;
  const int m = a.cols;
  const int n = b.cols;
  const int kk = a.rows;
  // The output is small (m, n are hidden dimensions) while the reduction is
  // long (kk is the node count), so the parallel split is over fixed k-slabs
  // whose partials are reduced serially in slab order.
  if (FlopCount(m, n, kk) >= kParallelMinFlops && kk >= 2 * kSlabRows) {
    const int num_slabs = (kk + kSlabRows - 1) / kSlabRows;
    const std::size_t tile = static_cast<std::size_t>(m) * n;
    std::vector<float> partials =
        ScratchArena::AcquireBuffer(tile * static_cast<std::size_t>(num_slabs));
    NnParallelFor(0, num_slabs, [&](std::int64_t s) {
      const int k_begin = static_cast<int>(s) * kSlabRows;
      const int k_end = std::min(kk, k_begin + kSlabRows);
      MatMulTransAPanel(a, b, partials.data() + static_cast<std::size_t>(s) * tile,
                        static_cast<std::size_t>(n), /*accumulate=*/false,
                        k_begin, k_end);
    });
    // Ordered reduction: slab s is always added after slab s-1.
    float* dst = out.data.data();
    for (int s = 0; s < num_slabs; ++s) {
      const float* src = partials.data() + static_cast<std::size_t>(s) * tile;
      if (s == 0 && !acc) {
        std::copy(src, src + tile, dst);
      } else {
        for (std::size_t idx = 0; idx < tile; ++idx) dst[idx] += src[idx];
      }
    }
    ScratchArena::ReleaseBuffer(std::move(partials));
  } else {
    MatMulTransAPanel(a, b, out.data.data(), static_cast<std::size_t>(n), acc,
                      0, kk);
  }
}

// MCM_CONTRACT(deterministic): fixed shape-only row panels, as MatMul.
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix& out,
                  bool accumulate) {
  MCM_CHECK_EQ(a.cols, b.cols);
  const bool fresh = !accumulate || out.rows != a.rows || out.cols != b.rows;
  if (fresh) EnsureShape(out, a.rows, b.rows);
  const bool acc = accumulate && !fresh;
  if (FlopCount(a.rows, b.rows, a.cols) >= kParallelMinFlops &&
      a.rows > kPanelRows) {
    ParallelOverRowPanels(a.rows, [&](int begin, int end) {
      MatMulTransBPanel(a, b, out, acc, begin, end);
    });
  } else {
    MatMulTransBPanel(a, b, out, acc, 0, a.rows);
  }
}

}  // namespace mcm
