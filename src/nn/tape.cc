#include "nn/tape.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/arena.h"

namespace mcm {
namespace {

// Per-thread high-water mark of tape sizes, used to pre-reserve node storage
// so recording an episode never regrows the node vector.
std::size_t& TapeReserveHint() {
  thread_local std::size_t hint = 0;
  return hint;
}

void AccumulateInto(Matrix& dst, const Matrix& src) {
  MCM_CHECK(dst.SameShape(src));
  for (std::size_t i = 0; i < dst.data.size(); ++i) dst.data[i] += src.data[i];
}

// Row-wise stable log-softmax into `out` (same shape as logits).
void RowLogSoftmax(const Matrix& logits, Matrix& out) {
  out = ScratchArena::AcquireUninit(logits.rows, logits.cols);
  for (int i = 0; i < logits.rows; ++i) {
    const auto row = logits.row(i);
    float max_z = row[0];
    for (float z : row) max_z = std::max(max_z, z);
    double sum = 0.0;
    for (float z : row) sum += std::exp(static_cast<double>(z - max_z));
    const auto lse = static_cast<float>(max_z + std::log(sum));
    auto out_row = out.row(i);
    for (int j = 0; j < logits.cols; ++j) out_row[j] = row[j] - lse;
  }
}

}  // namespace

Tape::Tape() { nodes_.reserve(TapeReserveHint()); }

Tape::~Tape() {
  std::size_t& hint = TapeReserveHint();
  hint = std::max(hint, nodes_.size());
  for (TapeNode& node : nodes_) {
    ScratchArena::Release(std::move(node.value));
    ScratchArena::Release(std::move(node.grad));
  }
}

VarId Tape::Emplace(Matrix value) {
  TapeNode node;
  node.grad = ScratchArena::AcquireZeroed(value.rows, value.cols);
  node.value = std::move(value);
  nodes_.push_back(std::move(node));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::Constant(Matrix value) { return Emplace(std::move(value)); }

VarId Tape::Parameter(const Matrix* value, Matrix* grad) {
  MCM_CHECK(value != nullptr && grad != nullptr);
  MCM_CHECK(value->SameShape(*grad));
  const VarId id = Emplace(*value);
  nodes_[static_cast<std::size_t>(id)].external_grad = grad;
  return id;
}

VarId Tape::MatMulOp(VarId a, VarId b) {
  Matrix out;
  MatMul(value(a), value(b), out);
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id] {
    const Matrix& dout = grad(id);
    MatMulTransB(dout, value(b), mutable_grad(a), /*accumulate=*/true);
    MatMulTransA(value(a), dout, mutable_grad(b), /*accumulate=*/true);
  };
  return id;
}

VarId Tape::AddOp(VarId a, VarId b) {
  MCM_CHECK(value(a).SameShape(value(b)));
  Matrix out = ScratchArena::AcquireCopy(value(a));
  AccumulateInto(out, value(b));
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id] {
    AccumulateInto(mutable_grad(a), grad(id));
    AccumulateInto(mutable_grad(b), grad(id));
  };
  return id;
}

VarId Tape::AddRowBroadcast(VarId a, VarId bias) {
  const Matrix& av = value(a);
  const Matrix& bv = value(bias);
  MCM_CHECK_EQ(bv.rows, 1);
  MCM_CHECK_EQ(bv.cols, av.cols);
  Matrix out = ScratchArena::AcquireCopy(av);
  for (int i = 0; i < out.rows; ++i) {
    auto row = out.row(i);
    for (int j = 0; j < out.cols; ++j) row[j] += bv.at(0, j);
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, bias, id] {
    const Matrix& dout = grad(id);
    AccumulateInto(mutable_grad(a), dout);
    Matrix& dbias = mutable_grad(bias);
    for (int i = 0; i < dout.rows; ++i) {
      const auto row = dout.row(i);
      for (int j = 0; j < dout.cols; ++j) dbias.at(0, j) += row[j];
    }
  };
  return id;
}

VarId Tape::ReluOp(VarId a) {
  Matrix out = ScratchArena::AcquireCopy(value(a));
  for (float& x : out.data) x = std::max(x, 0.0f);
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, id] {
    const Matrix& dout = grad(id);
    const Matrix& av = value(a);
    Matrix& da = mutable_grad(a);
    for (std::size_t i = 0; i < dout.data.size(); ++i) {
      if (av.data[i] > 0.0f) da.data[i] += dout.data[i];
    }
  };
  return id;
}

VarId Tape::TanhOp(VarId a) {
  Matrix out = ScratchArena::AcquireCopy(value(a));
  for (float& x : out.data) x = std::tanh(x);
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, id] {
    const Matrix& dout = grad(id);
    const Matrix& y = value(id);
    Matrix& da = mutable_grad(a);
    for (std::size_t i = 0; i < dout.data.size(); ++i) {
      da.data[i] += dout.data[i] * (1.0f - y.data[i] * y.data[i]);
    }
  };
  return id;
}

VarId Tape::ConcatCols(VarId a, VarId b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  MCM_CHECK_EQ(av.rows, bv.rows);
  const int a_cols = av.cols;  // Read before Emplace invalidates references.
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols + bv.cols);
  for (int i = 0; i < av.rows; ++i) {
    auto row = out.row(i);
    const auto arow = av.row(i);
    const auto brow = bv.row(i);
    std::copy(arow.begin(), arow.end(), row.begin());
    std::copy(brow.begin(), brow.end(), row.begin() + av.cols);
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id, a_cols] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    Matrix& db = mutable_grad(b);
    for (int i = 0; i < dout.rows; ++i) {
      const auto drow = dout.row(i);
      auto da_row = da.row(i);
      auto db_row = db.row(i);
      for (int j = 0; j < a_cols; ++j) da_row[j] += drow[j];
      for (int j = 0; j < db.cols; ++j) db_row[j] += drow[a_cols + j];
    }
  };
  return id;
}

VarId Tape::NeighborMeanOp(VarId a, const NeighborLists* lists) {
  const Matrix& av = value(a);
  MCM_CHECK_EQ(lists->num_rows(), av.rows);
  Matrix out = ScratchArena::AcquireZeroed(av.rows, av.cols);
  for (int i = 0; i < av.rows; ++i) {
    const int begin = lists->offsets[static_cast<std::size_t>(i)];
    const int end = lists->offsets[static_cast<std::size_t>(i) + 1];
    if (begin == end) continue;
    auto row = out.row(i);
    for (int e = begin; e < end; ++e) {
      const auto src = av.row(lists->indices[static_cast<std::size_t>(e)]);
      for (int j = 0; j < av.cols; ++j) row[j] += src[j];
    }
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (int j = 0; j < av.cols; ++j) row[j] *= inv;
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, lists, id] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    for (int i = 0; i < dout.rows; ++i) {
      const int begin = lists->offsets[static_cast<std::size_t>(i)];
      const int end = lists->offsets[static_cast<std::size_t>(i) + 1];
      if (begin == end) continue;
      const float inv = 1.0f / static_cast<float>(end - begin);
      const auto drow = dout.row(i);
      for (int e = begin; e < end; ++e) {
        auto dst = da.row(lists->indices[static_cast<std::size_t>(e)]);
        for (int j = 0; j < dout.cols; ++j) dst[j] += inv * drow[j];
      }
    }
  };
  return id;
}

VarId Tape::MeanRowsOp(VarId a) {
  const Matrix& av = value(a);
  MCM_CHECK_GT(av.rows, 0);
  Matrix out = ScratchArena::AcquireZeroed(1, av.cols);
  for (int i = 0; i < av.rows; ++i) {
    const auto row = av.row(i);
    for (int j = 0; j < av.cols; ++j) out.at(0, j) += row[j];
  }
  const float inv = 1.0f / static_cast<float>(av.rows);
  for (float& x : out.data) x *= inv;
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, id, inv] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    for (int i = 0; i < da.rows; ++i) {
      auto dst = da.row(i);
      for (int j = 0; j < da.cols; ++j) dst[j] += inv * dout.at(0, j);
    }
  };
  return id;
}

VarId Tape::L2NormalizeRowsOp(VarId a, float epsilon) {
  const Matrix& av = value(a);
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols);
  std::vector<float> inv_norms(static_cast<std::size_t>(av.rows));
  for (int i = 0; i < av.rows; ++i) {
    const auto row = av.row(i);
    double sq = 0.0;
    for (float x : row) sq += static_cast<double>(x) * x;
    const auto inv = static_cast<float>(1.0 / std::sqrt(sq + epsilon));
    inv_norms[static_cast<std::size_t>(i)] = inv;
    auto orow = out.row(i);
    for (int j = 0; j < av.cols; ++j) orow[j] = row[j] * inv;
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward =
      [this, a, id, inv_norms = std::move(inv_norms)] {
        const Matrix& dout = grad(id);
        const Matrix& y = value(id);
        Matrix& da = mutable_grad(a);
        for (int i = 0; i < dout.rows; ++i) {
          const auto drow = dout.row(i);
          const auto yrow = y.row(i);
          auto dst = da.row(i);
          float dot = 0.0f;
          for (int j = 0; j < dout.cols; ++j) dot += drow[j] * yrow[j];
          const float inv = inv_norms[static_cast<std::size_t>(i)];
          for (int j = 0; j < dout.cols; ++j) {
            dst[j] += inv * (drow[j] - yrow[j] * dot);
          }
        }
      };
  return id;
}

VarId Tape::PpoLossOp(VarId logits, std::span<const int> actions,
                      double advantage, std::span<const float> old_logp,
                      double clip_epsilon, double entropy_coef) {
  const Matrix& z = value(logits);
  const int n = z.rows;
  MCM_CHECK_EQ(static_cast<int>(actions.size()), n);
  MCM_CHECK_EQ(static_cast<int>(old_logp.size()), n);

  Matrix logp;
  RowLogSoftmax(z, logp);
  double objective_sum = 0.0;
  double entropy_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto lp = logp.row(i);
    const double r = std::exp(
        static_cast<double>(lp[actions[i]] - old_logp[static_cast<std::size_t>(i)]));
    const double clipped =
        std::clamp(r, 1.0 - clip_epsilon, 1.0 + clip_epsilon);
    objective_sum += std::min(r * advantage, clipped * advantage);
    double h = 0.0;
    for (float l : lp) h -= std::exp(static_cast<double>(l)) * l;
    entropy_sum += h;
  }
  ScratchArena::Release(std::move(logp));
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(-(objective_sum / n) -
                                    entropy_coef * (entropy_sum / n));
  const VarId id = Emplace(std::move(out));

  std::vector<int> actions_copy(actions.begin(), actions.end());
  std::vector<float> old_copy(old_logp.begin(), old_logp.end());
  nodes_[static_cast<std::size_t>(id)].backward =
      [this, logits, id, advantage, clip_epsilon, entropy_coef,
       actions_copy = std::move(actions_copy),
       old_copy = std::move(old_copy)] {
        const float upstream = grad(id).at(0, 0);
        const Matrix& z = value(logits);
        const int n = z.rows;
        const int c = z.cols;
        Matrix logp;
        RowLogSoftmax(z, logp);
        Matrix& dz = mutable_grad(logits);
        const float scale = upstream / static_cast<float>(n);
        for (int i = 0; i < n; ++i) {
          const auto lp = logp.row(i);
          const int action = actions_copy[static_cast<std::size_t>(i)];
          const double r = std::exp(static_cast<double>(
              lp[action] - old_copy[static_cast<std::size_t>(i)]));
          // PPO ratio gradient: zero when the clip bound is the active min.
          const bool clip_active =
              (advantage > 0.0 && r > 1.0 + clip_epsilon) ||
              (advantage < 0.0 && r < 1.0 - clip_epsilon);
          const double g_r = clip_active ? 0.0 : advantage * r;
          double entropy = 0.0;
          for (int j = 0; j < c; ++j) {
            entropy -= std::exp(static_cast<double>(lp[j])) * lp[j];
          }
          auto dst = dz.row(i);
          for (int j = 0; j < c; ++j) {
            const double p = std::exp(static_cast<double>(lp[j]));
            // d(-obj)/dz_j = -g_r * (1[j==a] - p_j)
            double g = -g_r * ((j == action ? 1.0 : 0.0) - p);
            // d(-coef*H)/dz_j = coef * p_j * (log p_j + H)
            g += entropy_coef * p * (lp[j] + entropy);
            dst[j] += scale * static_cast<float>(g);
          }
        }
        ScratchArena::Release(std::move(logp));
      };
  return id;
}

VarId Tape::SquaredErrorOp(VarId pred, double target) {
  const Matrix& p = value(pred);
  MCM_CHECK_EQ(p.rows, 1);
  MCM_CHECK_EQ(p.cols, 1);
  const double diff = static_cast<double>(p.at(0, 0)) - target;
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(0.5 * diff * diff);
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, pred, id, diff] {
    mutable_grad(pred).at(0, 0) +=
        grad(id).at(0, 0) * static_cast<float>(diff);
  };
  return id;
}

VarId Tape::AddScaled(VarId a, double wa, VarId b, double wb) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  MCM_CHECK(av.SameShape(bv));
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols);
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    out.data[i] = static_cast<float>(wa) * av.data[i] +
                  static_cast<float>(wb) * bv.data[i];
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id, wa, wb] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    Matrix& db = mutable_grad(b);
    for (std::size_t i = 0; i < dout.data.size(); ++i) {
      da.data[i] += static_cast<float>(wa) * dout.data[i];
      db.data[i] += static_cast<float>(wb) * dout.data[i];
    }
  };
  return id;
}

void Tape::Backward(VarId loss) {
  MCM_CHECK_EQ(value(loss).rows, 1);
  MCM_CHECK_EQ(value(loss).cols, 1);
  mutable_grad(loss).at(0, 0) = 1.0f;
  for (std::size_t i = nodes_.size(); i > 0; --i) {
    TapeNode& node = nodes_[i - 1];
    if (node.backward) node.backward();
    if (node.external_grad != nullptr) {
      AccumulateInto(*node.external_grad, node.grad);
    }
  }
}

std::vector<float> Tape::RowLogProbs(const Matrix& logits,
                                     std::span<const int> actions) {
  Matrix logp;
  RowLogSoftmax(logits, logp);
  std::vector<float> out(static_cast<std::size_t>(logits.rows));
  for (int i = 0; i < logits.rows; ++i) {
    out[static_cast<std::size_t>(i)] = logp.at(i, actions[i]);
  }
  ScratchArena::Release(std::move(logp));
  return out;
}

Matrix Tape::RowSoftmax(const Matrix& logits) {
  Matrix logp;
  RowLogSoftmax(logits, logp);
  for (float& x : logp.data) x = std::exp(x);
  return logp;
}

}  // namespace mcm
