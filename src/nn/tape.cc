#include "nn/tape.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/arena.h"
#include "runtime/thread_pool.h"

namespace mcm {
namespace {

// Per-thread high-water mark of tape sizes, used to pre-reserve node storage
// so recording an episode never regrows the node vector.
std::size_t& TapeReserveHint() {
  thread_local std::size_t hint = 0;
  return hint;
}

// ---- Intra-op parallel decomposition ----------------------------------------
//
// Every parallel tape op splits its output into fixed-size blocks whose
// boundaries depend only on the operand shape (never on the thread count),
// and each output element is written by exactly one task with the same
// per-element summation order as the serial loop.  Results are therefore
// bit-identical at any --nn-threads value, including 1.  Small shapes stay
// inline: below the cutovers the fork overhead dominates the arithmetic.

// Elements per parallel task for flat elementwise ops.
constexpr std::size_t kElemsPerBlock = std::size_t{1} << 15;
// Rows per parallel task for row-structured ops.
constexpr int kRowsPerBlock = 64;
// Minimum output elements before an op goes parallel.
constexpr std::size_t kParallelMinElems = std::size_t{1} << 14;

// Runs fn(begin, end) over [0, n) in fixed kElemsPerBlock chunks.
template <typename Fn>
void ParallelOverElements(std::size_t n, const Fn& fn) {
  if (n < kParallelMinElems) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t blocks = (n + kElemsPerBlock - 1) / kElemsPerBlock;
  NnParallelFor(0, static_cast<std::int64_t>(blocks), [&](std::int64_t b) {
    const std::size_t begin = static_cast<std::size_t>(b) * kElemsPerBlock;
    fn(begin, std::min(n, begin + kElemsPerBlock));
  });
}

// Runs fn(row_begin, row_end) over [0, rows) in fixed kRowsPerBlock chunks.
template <typename Fn>
void ParallelOverRowBlocks(int rows, int cols, const Fn& fn) {
  if (static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) <
          kParallelMinElems ||
      rows <= kRowsPerBlock) {
    fn(0, rows);
    return;
  }
  const int blocks = (rows + kRowsPerBlock - 1) / kRowsPerBlock;
  NnParallelFor(0, blocks, [&](std::int64_t b) {
    const int begin = static_cast<int>(b) * kRowsPerBlock;
    fn(begin, std::min(rows, begin + kRowsPerBlock));
  });
}

void AccumulateInto(Matrix& dst, const Matrix& src) {
  MCM_CHECK(dst.SameShape(src));
  float* d = dst.data.data();
  const float* s = src.data.data();
  ParallelOverElements(dst.data.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) d[i] += s[i];
  });
}

// Row-wise stable log-softmax into `out` (same shape as logits).  Rows are
// independent, so the block split reorders no arithmetic.
void RowLogSoftmax(const Matrix& logits, Matrix& out) {
  out = ScratchArena::AcquireUninit(logits.rows, logits.cols);
  ParallelOverRowBlocks(logits.rows, logits.cols, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const auto row = logits.row(i);
      float max_z = row[0];
      for (float z : row) max_z = std::max(max_z, z);
      double sum = 0.0;
      for (float z : row) sum += std::exp(static_cast<double>(z - max_z));
      const auto lse = static_cast<float>(max_z + std::log(sum));
      auto out_row = out.row(i);
      for (int j = 0; j < logits.cols; ++j) out_row[j] = row[j] - lse;
    }
  });
}

}  // namespace

void NeighborLists::Finalize() {
  const int n = num_rows();
  MCM_CHECK_GE(n, 0) << "NeighborLists::Finalize: empty offsets";
  MCM_CHECK_EQ(offsets.front(), 0);
  for (int i = 0; i < n; ++i) {
    MCM_CHECK_LE(offsets[static_cast<std::size_t>(i)],
                 offsets[static_cast<std::size_t>(i) + 1])
        << "NeighborLists::Finalize: offsets not monotone at row " << i;
  }
  MCM_CHECK_EQ(static_cast<std::size_t>(offsets.back()), indices.size());
  for (const int j : indices) {
    MCM_CHECK(j >= 0 && j < n)
        << "NeighborLists::Finalize: neighbor index " << j << " out of range";
  }

  inv_degree.assign(static_cast<std::size_t>(n), 0.0f);
  for (int i = 0; i < n; ++i) {
    const int degree = offsets[static_cast<std::size_t>(i) + 1] -
                       offsets[static_cast<std::size_t>(i)];
    if (degree > 0) {
      inv_degree[static_cast<std::size_t>(i)] =
          1.0f / static_cast<float>(degree);
    }
  }

  // Stable counting sort of the transpose: reverse bucket j lists the
  // forward rows in ascending (row, edge-position) order -- exactly the
  // order the serial scatter visited j, which is what makes the backward
  // gather bit-identical to it.
  rev_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const int j : indices) ++rev_offsets[static_cast<std::size_t>(j) + 1];
  for (int j = 0; j < n; ++j) {
    rev_offsets[static_cast<std::size_t>(j) + 1] +=
        rev_offsets[static_cast<std::size_t>(j)];
  }
  rev_rows.resize(indices.size());
  std::vector<int> cursor(rev_offsets.begin(), rev_offsets.end() - 1);
  for (int i = 0; i < n; ++i) {
    for (int e = offsets[static_cast<std::size_t>(i)];
         e < offsets[static_cast<std::size_t>(i) + 1]; ++e) {
      const int j = indices[static_cast<std::size_t>(e)];
      rev_rows[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = i;
    }
  }
}

Tape::Tape() { nodes_.reserve(TapeReserveHint()); }

Tape::~Tape() {
  std::size_t& hint = TapeReserveHint();
  hint = std::max(hint, nodes_.size());
  for (TapeNode& node : nodes_) {
    ScratchArena::Release(std::move(node.value));
    ScratchArena::Release(std::move(node.grad));
  }
}

VarId Tape::Emplace(Matrix value) {
  TapeNode node;
  node.grad = ScratchArena::AcquireZeroed(value.rows, value.cols);
  node.value = std::move(value);
  nodes_.push_back(std::move(node));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::Constant(Matrix value) { return Emplace(std::move(value)); }

VarId Tape::Parameter(const Matrix* value, Matrix* grad) {
  MCM_CHECK(value != nullptr && grad != nullptr);
  MCM_CHECK(value->SameShape(*grad));
  const VarId id = Emplace(*value);
  nodes_[static_cast<std::size_t>(id)].external_grad = grad;
  return id;
}

VarId Tape::MatMulOp(VarId a, VarId b) {
  Matrix out;
  MatMul(value(a), value(b), out);
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id] {
    const Matrix& dout = grad(id);
    MatMulTransB(dout, value(b), mutable_grad(a), /*accumulate=*/true);
    MatMulTransA(value(a), dout, mutable_grad(b), /*accumulate=*/true);
  };
  return id;
}

VarId Tape::AddOp(VarId a, VarId b) {
  MCM_CHECK(value(a).SameShape(value(b)));
  Matrix out = ScratchArena::AcquireCopy(value(a));
  AccumulateInto(out, value(b));
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id] {
    AccumulateInto(mutable_grad(a), grad(id));
    AccumulateInto(mutable_grad(b), grad(id));
  };
  return id;
}

VarId Tape::AddRowBroadcast(VarId a, VarId bias) {
  const Matrix& av = value(a);
  const Matrix& bv = value(bias);
  MCM_CHECK_EQ(bv.rows, 1);
  MCM_CHECK_EQ(bv.cols, av.cols);
  Matrix out = ScratchArena::AcquireCopy(av);
  ParallelOverRowBlocks(out.rows, out.cols, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      auto row = out.row(i);
      for (int j = 0; j < out.cols; ++j) row[j] += bv.at(0, j);
    }
  });
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, bias, id] {
    const Matrix& dout = grad(id);
    AccumulateInto(mutable_grad(a), dout);
    // The bias gradient is a column reduction over rows; it stays serial so
    // the row-ascending summation order is fixed (the [1 x C] output is a
    // single cache line of work anyway).
    Matrix& dbias = mutable_grad(bias);
    for (int i = 0; i < dout.rows; ++i) {
      const auto row = dout.row(i);
      for (int j = 0; j < dout.cols; ++j) dbias.at(0, j) += row[j];
    }
  };
  return id;
}

VarId Tape::ReluOp(VarId a) {
  const Matrix& av = value(a);
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols);
  {
    const float* src = av.data.data();
    float* dst = out.data.data();
    ParallelOverElements(out.data.size(),
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             dst[i] = std::max(src[i], 0.0f);
                           }
                         });
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, id] {
    const Matrix& dout = grad(id);
    const Matrix& av = value(a);
    Matrix& da = mutable_grad(a);
    const float* d = dout.data.data();
    const float* x = av.data.data();
    float* g = da.data.data();
    ParallelOverElements(dout.data.size(),
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             if (x[i] > 0.0f) g[i] += d[i];
                           }
                         });
  };
  return id;
}

VarId Tape::TanhOp(VarId a) {
  const Matrix& av = value(a);
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols);
  {
    const float* src = av.data.data();
    float* dst = out.data.data();
    ParallelOverElements(out.data.size(),
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             dst[i] = std::tanh(src[i]);
                           }
                         });
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, id] {
    const Matrix& dout = grad(id);
    const Matrix& y = value(id);
    Matrix& da = mutable_grad(a);
    const float* d = dout.data.data();
    const float* yv = y.data.data();
    float* g = da.data.data();
    ParallelOverElements(dout.data.size(),
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             g[i] += d[i] * (1.0f - yv[i] * yv[i]);
                           }
                         });
  };
  return id;
}

VarId Tape::ConcatCols(VarId a, VarId b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  MCM_CHECK_EQ(av.rows, bv.rows);
  const int a_cols = av.cols;  // Read before Emplace invalidates references.
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols + bv.cols);
  ParallelOverRowBlocks(av.rows, out.cols, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      auto row = out.row(i);
      const auto arow = av.row(i);
      const auto brow = bv.row(i);
      std::copy(arow.begin(), arow.end(), row.begin());
      std::copy(brow.begin(), brow.end(), row.begin() + av.cols);
    }
  });
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id, a_cols] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    Matrix& db = mutable_grad(b);
    ParallelOverRowBlocks(dout.rows, dout.cols, [&](int row_begin, int row_end) {
      for (int i = row_begin; i < row_end; ++i) {
        const auto drow = dout.row(i);
        auto da_row = da.row(i);
        auto db_row = db.row(i);
        for (int j = 0; j < a_cols; ++j) da_row[j] += drow[j];
        for (int j = 0; j < db.cols; ++j) db_row[j] += drow[a_cols + j];
      }
    });
  };
  return id;
}

// MCM_CONTRACT(deterministic): both passes split over fixed row blocks; the
// backward gathers along the reverse CSR in the serial scatter's order, so
// gradients are bit-identical at any thread count.
VarId Tape::NeighborMeanOp(VarId a, const NeighborLists* lists) {
  const Matrix& av = value(a);
  MCM_CHECK(lists != nullptr);
  MCM_CHECK_EQ(lists->num_rows(), av.rows);
  // Record-time consistency checks: the backward closure only holds the raw
  // pointer, so malformed lists must fail here, not inside Backward().
  MCM_CHECK(lists->finalized())
      << "NeighborMeanOp: call NeighborLists::Finalize() before recording";
  MCM_CHECK_EQ(lists->offsets.front(), 0);
  MCM_CHECK_EQ(static_cast<std::size_t>(lists->offsets.back()),
               lists->indices.size());

  const int cols = av.cols;
  Matrix out = ScratchArena::AcquireUninit(av.rows, cols);
  ParallelOverRowBlocks(av.rows, cols, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const int begin = lists->offsets[static_cast<std::size_t>(i)];
      const int end = lists->offsets[static_cast<std::size_t>(i) + 1];
      auto row = out.row(i);
      std::fill(row.begin(), row.end(), 0.0f);
      if (begin == end) continue;
      for (int e = begin; e < end; ++e) {
        const auto src = av.row(lists->indices[static_cast<std::size_t>(e)]);
        for (int j = 0; j < cols; ++j) row[j] += src[j];
      }
      const float inv = lists->inv_degree[static_cast<std::size_t>(i)];
      for (int j = 0; j < cols; ++j) row[j] *= inv;
    }
  });
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, lists, id] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    const int cols = dout.cols;
    // Per-row gather over the transpose adjacency: row j of da is owned by
    // exactly one task, and its contributions arrive in the same
    // (row, edge-position) order the serial scatter used.
    ParallelOverRowBlocks(da.rows, cols, [&](int row_begin, int row_end) {
      for (int j = row_begin; j < row_end; ++j) {
        const int begin = lists->rev_offsets[static_cast<std::size_t>(j)];
        const int end = lists->rev_offsets[static_cast<std::size_t>(j) + 1];
        if (begin == end) continue;
        auto dst = da.row(j);
        for (int e = begin; e < end; ++e) {
          const int i = lists->rev_rows[static_cast<std::size_t>(e)];
          const float inv = lists->inv_degree[static_cast<std::size_t>(i)];
          const auto drow = dout.row(i);
          for (int c = 0; c < cols; ++c) dst[c] += inv * drow[c];
        }
      }
    });
  };
  return id;
}

VarId Tape::MeanRowsOp(VarId a) {
  const Matrix& av = value(a);
  MCM_CHECK_GT(av.rows, 0);
  // The [1 x C] output is a row-ordered reduction; it stays serial to keep
  // the summation order fixed (one streaming pass, cheap at any scale).
  Matrix out = ScratchArena::AcquireZeroed(1, av.cols);
  for (int i = 0; i < av.rows; ++i) {
    const auto row = av.row(i);
    for (int j = 0; j < av.cols; ++j) out.at(0, j) += row[j];
  }
  const float inv = 1.0f / static_cast<float>(av.rows);
  for (float& x : out.data) x *= inv;
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, id, inv] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    ParallelOverRowBlocks(da.rows, da.cols, [&](int row_begin, int row_end) {
      for (int i = row_begin; i < row_end; ++i) {
        auto dst = da.row(i);
        for (int j = 0; j < da.cols; ++j) dst[j] += inv * dout.at(0, j);
      }
    });
  };
  return id;
}

VarId Tape::L2NormalizeRowsOp(VarId a, float epsilon) {
  const Matrix& av = value(a);
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols);
  std::vector<float> inv_norms(static_cast<std::size_t>(av.rows));
  ParallelOverRowBlocks(av.rows, av.cols, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const auto row = av.row(i);
      double sq = 0.0;
      for (float x : row) sq += static_cast<double>(x) * x;
      const auto inv = static_cast<float>(1.0 / std::sqrt(sq + epsilon));
      inv_norms[static_cast<std::size_t>(i)] = inv;
      auto orow = out.row(i);
      for (int j = 0; j < av.cols; ++j) orow[j] = row[j] * inv;
    }
  });
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward =
      [this, a, id, inv_norms = std::move(inv_norms)] {
        const Matrix& dout = grad(id);
        const Matrix& y = value(id);
        Matrix& da = mutable_grad(a);
        ParallelOverRowBlocks(
            dout.rows, dout.cols, [&](int row_begin, int row_end) {
              for (int i = row_begin; i < row_end; ++i) {
                const auto drow = dout.row(i);
                const auto yrow = y.row(i);
                auto dst = da.row(i);
                float dot = 0.0f;
                for (int j = 0; j < dout.cols; ++j) dot += drow[j] * yrow[j];
                const float inv = inv_norms[static_cast<std::size_t>(i)];
                for (int j = 0; j < dout.cols; ++j) {
                  dst[j] += inv * (drow[j] - yrow[j] * dot);
                }
              }
            });
      };
  return id;
}

VarId Tape::PpoLossOp(VarId logits, std::span<const int> actions,
                      double advantage, std::span<const float> old_logp,
                      double clip_epsilon, double entropy_coef) {
  const Matrix& z = value(logits);
  const int n = z.rows;
  MCM_CHECK_EQ(static_cast<int>(actions.size()), n);
  MCM_CHECK_EQ(static_cast<int>(old_logp.size()), n);

  Matrix logp;
  RowLogSoftmax(z, logp);
  // The objective/entropy sums are row-ordered scalar reductions; they stay
  // serial so the accumulation order is fixed.
  double objective_sum = 0.0;
  double entropy_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto lp = logp.row(i);
    const double r = std::exp(
        static_cast<double>(lp[actions[i]] - old_logp[static_cast<std::size_t>(i)]));
    const double clipped =
        std::clamp(r, 1.0 - clip_epsilon, 1.0 + clip_epsilon);
    objective_sum += std::min(r * advantage, clipped * advantage);
    double h = 0.0;
    for (float l : lp) h -= std::exp(static_cast<double>(l)) * l;
    entropy_sum += h;
  }
  ScratchArena::Release(std::move(logp));
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(-(objective_sum / n) -
                                    entropy_coef * (entropy_sum / n));
  const VarId id = Emplace(std::move(out));

  std::vector<int> actions_copy(actions.begin(), actions.end());
  std::vector<float> old_copy(old_logp.begin(), old_logp.end());
  nodes_[static_cast<std::size_t>(id)].backward =
      [this, logits, id, advantage, clip_epsilon, entropy_coef,
       actions_copy = std::move(actions_copy),
       old_copy = std::move(old_copy)] {
        const float upstream = grad(id).at(0, 0);
        const Matrix& z = value(logits);
        const int n = z.rows;
        const int c = z.cols;
        Matrix logp;
        RowLogSoftmax(z, logp);
        Matrix& dz = mutable_grad(logits);
        const float scale = upstream / static_cast<float>(n);
        // Rows are independent (dz row i only reads logp row i), so the
        // block split reorders no arithmetic.
        ParallelOverRowBlocks(n, c, [&](int row_begin, int row_end) {
          for (int i = row_begin; i < row_end; ++i) {
            const auto lp = logp.row(i);
            const int action = actions_copy[static_cast<std::size_t>(i)];
            const double r = std::exp(static_cast<double>(
                lp[action] - old_copy[static_cast<std::size_t>(i)]));
            // PPO ratio gradient: zero when the clip bound is the active min.
            const bool clip_active =
                (advantage > 0.0 && r > 1.0 + clip_epsilon) ||
                (advantage < 0.0 && r < 1.0 - clip_epsilon);
            const double g_r = clip_active ? 0.0 : advantage * r;
            double entropy = 0.0;
            for (int j = 0; j < c; ++j) {
              entropy -= std::exp(static_cast<double>(lp[j])) * lp[j];
            }
            auto dst = dz.row(i);
            for (int j = 0; j < c; ++j) {
              const double p = std::exp(static_cast<double>(lp[j]));
              // d(-obj)/dz_j = -g_r * (1[j==a] - p_j)
              double g = -g_r * ((j == action ? 1.0 : 0.0) - p);
              // d(-coef*H)/dz_j = coef * p_j * (log p_j + H)
              g += entropy_coef * p * (lp[j] + entropy);
              dst[j] += scale * static_cast<float>(g);
            }
          }
        });
        ScratchArena::Release(std::move(logp));
      };
  return id;
}

VarId Tape::SquaredErrorOp(VarId pred, double target) {
  const Matrix& p = value(pred);
  MCM_CHECK_EQ(p.rows, 1);
  MCM_CHECK_EQ(p.cols, 1);
  const double diff = static_cast<double>(p.at(0, 0)) - target;
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(0.5 * diff * diff);
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, pred, id, diff] {
    mutable_grad(pred).at(0, 0) +=
        grad(id).at(0, 0) * static_cast<float>(diff);
  };
  return id;
}

VarId Tape::AddScaled(VarId a, double wa, VarId b, double wb) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  MCM_CHECK(av.SameShape(bv));
  Matrix out = ScratchArena::AcquireUninit(av.rows, av.cols);
  {
    const float* ap = av.data.data();
    const float* bp = bv.data.data();
    float* op = out.data.data();
    ParallelOverElements(out.data.size(),
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             op[i] = static_cast<float>(wa) * ap[i] +
                                     static_cast<float>(wb) * bp[i];
                           }
                         });
  }
  const VarId id = Emplace(std::move(out));
  nodes_[static_cast<std::size_t>(id)].backward = [this, a, b, id, wa, wb] {
    const Matrix& dout = grad(id);
    Matrix& da = mutable_grad(a);
    Matrix& db = mutable_grad(b);
    const float* d = dout.data.data();
    float* ga = da.data.data();
    float* gb = db.data.data();
    ParallelOverElements(dout.data.size(),
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             ga[i] += static_cast<float>(wa) * d[i];
                             gb[i] += static_cast<float>(wb) * d[i];
                           }
                         });
  };
  return id;
}

void Tape::Backward(VarId loss) {
  MCM_CHECK_EQ(value(loss).rows, 1);
  MCM_CHECK_EQ(value(loss).cols, 1);
  mutable_grad(loss).at(0, 0) = 1.0f;
  for (std::size_t i = nodes_.size(); i > 0; --i) {
    TapeNode& node = nodes_[i - 1];
    if (node.backward) node.backward();
    if (node.external_grad != nullptr) {
      AccumulateInto(*node.external_grad, node.grad);
    }
  }
}

std::vector<float> Tape::RowLogProbs(const Matrix& logits,
                                     std::span<const int> actions) {
  Matrix logp;
  RowLogSoftmax(logits, logp);
  std::vector<float> out(static_cast<std::size_t>(logits.rows));
  for (int i = 0; i < logits.rows; ++i) {
    out[static_cast<std::size_t>(i)] = logp.at(i, actions[i]);
  }
  ScratchArena::Release(std::move(logp));
  return out;
}

Matrix Tape::RowSoftmax(const Matrix& logits) {
  Matrix logp;
  RowLogSoftmax(logits, logp);
  for (float& x : logp.data) x = std::exp(x);
  return logp;
}

}  // namespace mcm
