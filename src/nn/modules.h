// Neural-network building blocks: parameters, linear layers, GraphSAGE, and
// multi-layer perceptrons, plus the Adam optimizer and checkpoint I/O.
//
// Modules own their parameters (value + gradient accumulator) and expose a
// `Params()` view used by the optimizer and the checkpoint code.  Forward
// passes record onto a caller-provided Tape.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "nn/matrix.h"
#include "nn/tape.h"

namespace mcm {

// A trainable tensor: value plus gradient accumulator.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param(std::string n, int rows, int cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}
};

using ParamRefs = std::vector<Param*>;

// y = x W + b.
class Linear {
 public:
  Linear(std::string name, int in_dim, int out_dim, Rng& rng);

  VarId Forward(Tape& tape, VarId x);
  ParamRefs Params();

  int in_dim() const { return weight_.value.rows; }
  int out_dim() const { return weight_.value.cols; }

 private:
  Param weight_;
  Param bias_;
};

// One GraphSAGE layer with the mean aggregator (Hamilton et al., 2017):
//   h'_v = act( W_self h_v + W_neigh mean_{u in N(v)} h_u + b ), then row
// L2-normalization.  N(v) is the union of predecessors and successors
// (dataflow direction carries no locality meaning for placement quality).
class GraphSageLayer {
 public:
  GraphSageLayer(std::string name, int in_dim, int out_dim, Rng& rng);

  VarId Forward(Tape& tape, VarId h, const NeighborLists* neighbors);
  ParamRefs Params();

 private:
  Param w_self_;
  Param w_neigh_;
  Param bias_;
};

// A stack of GraphSAGE layers: the paper's feature network (default 8
// layers of width 128; benches use smaller settings via RlConfig).
class GraphSageNetwork {
 public:
  GraphSageNetwork(int input_dim, int hidden_dim, int num_layers, Rng& rng);

  VarId Forward(Tape& tape, VarId features,
                const NeighborLists* neighbors);
  ParamRefs Params();

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  std::vector<GraphSageLayer> layers_;
};

// Feed-forward network with ReLU between layers, none after the last.
class Mlp {
 public:
  Mlp(std::string name, const std::vector<int>& dims, Rng& rng);

  VarId Forward(Tape& tape, VarId x);
  ParamRefs Params();

 private:
  std::vector<Linear> layers_;
};

// Builds the undirected neighbor lists (preds + succs) for a graph, in the
// CSR form NeighborMeanOp consumes.
NeighborLists BuildNeighborLists(const Graph& graph);

// Adam with optional gradient clipping by global norm.
class Adam {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double clip_global_norm = 5.0;  // <= 0 disables.
  };

  explicit Adam(ParamRefs params) : Adam(std::move(params), Options{}) {}
  Adam(ParamRefs params, Options options);

  // Applies one update from the accumulated gradients, then zeroes them.
  void Step();
  void ZeroGrad();

  std::int64_t steps() const { return step_; }

  // Full optimizer state, for checkpoint/resume.  Restoring a saved state
  // (with the same parameter set) continues the moment estimates and bias
  // correction exactly where they left off, which the bit-identical resume
  // contract requires.  SetState validates moment shapes against the
  // current parameters and throws std::runtime_error on mismatch.
  struct State {
    std::int64_t step = 0;
    std::vector<Matrix> m;
    std::vector<Matrix> v;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  ParamRefs params_;
  Options options_;
  std::int64_t step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

// Checkpointing: serializes parameter values (by name) to a stream.
// Throws std::runtime_error on malformed input or mismatched shapes.
void SaveParams(const ParamRefs& params, std::ostream& os);
void LoadParams(const ParamRefs& params, std::istream& is);
// Copies values between identically-shaped parameter sets (e.g. restoring
// a snapshot held in memory).
std::vector<Matrix> SnapshotParams(const ParamRefs& params);
void RestoreParams(const ParamRefs& params,
                   const std::vector<Matrix>& snapshot);

}  // namespace mcm
