// Define-by-run reverse-mode autodiff over dense matrices.
//
// Values are computed eagerly as ops are recorded; `Backward` replays the
// tape in reverse, accumulating gradients.  The op set is exactly what the
// paper's networks need: affine layers, ReLU/tanh, column concatenation,
// the GraphSAGE mean-neighbor aggregation, row/column reductions, and fused
// PPO / value losses with hand-derived gradients (verified against finite
// differences in tests/nn_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "nn/matrix.h"

namespace mcm {

// Compressed sparse neighbor lists for the GraphSAGE aggregation step.
//
// Lifetime contract: NeighborMeanOp's backward closure captures the raw
// `NeighborLists*` it was recorded with -- the lists must stay alive and
// unmodified until the tape they were recorded on is destroyed (in practice
// they live in GraphContext, which outlives every per-episode tape).
// Consistency of offsets/indices is MCM_CHECKed at op-record time, not at
// backward time.
struct NeighborLists {
  // CSR layout: neighbors of row i are indices[offsets[i] .. offsets[i+1]).
  std::vector<int> offsets;
  std::vector<int> indices;

  // Derived form built by Finalize(), consumed by NeighborMeanOp:
  //   * inv_degree[i] = 1 / |N(i)| (0 for isolated rows), hoisting the
  //     division out of both passes.
  //   * Reverse CSR (the transpose adjacency): the forward rows that
  //     aggregate node j are rev_rows[rev_offsets[j] .. rev_offsets[j+1]),
  //     stored in (row, edge-position) order.  The backward pass gathers
  //     along it, so the gradient scatter becomes a deterministic per-row
  //     reduction that parallelizes without atomics -- and, because the
  //     gather order equals the serial scatter order, produces bit-identical
  //     sums.
  std::vector<float> inv_degree;
  std::vector<int> rev_offsets;
  std::vector<int> rev_rows;

  int num_rows() const { return static_cast<int>(offsets.size()) - 1; }

  // Validates offsets/indices (MCM_CHECK on malformed input) and builds the
  // derived form above.  BuildNeighborLists returns finalized lists; call
  // this after filling offsets/indices by hand.  Must not race with readers:
  // finalize before sharing the lists across threads.
  void Finalize();
  bool finalized() const {
    return rev_offsets.size() == offsets.size() &&
           rev_rows.size() == indices.size() &&
           inv_degree.size() == static_cast<std::size_t>(num_rows());
  }
};

using VarId = int;

class Tape {
 public:
  // Construction pre-reserves node storage at this thread's high-water node
  // count, and destruction retires every node's value/gradient storage into
  // the per-thread ScratchArena -- the per-episode tape build/tear-down in
  // rollouts stops churning the allocator after the first episode.
  Tape();
  ~Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Leaf holding a *copy* of `value`; no gradient is exposed to the caller.
  VarId Constant(Matrix value);
  // Leaf bound to persistent external storage: gradients accumulate into
  // `*grad` (which must outlive the tape and match value's shape).
  VarId Parameter(const Matrix* value, Matrix* grad);

  const Matrix& value(VarId id) const { return nodes_[static_cast<std::size_t>(id)].value; }
  const Matrix& grad(VarId id) const { return nodes_[static_cast<std::size_t>(id)].grad; }

  // out = a @ b
  VarId MatMulOp(VarId a, VarId b);
  // out = a + b (same shape)
  VarId AddOp(VarId a, VarId b);
  // out[i,:] = a[i,:] + bias[0,:]
  VarId AddRowBroadcast(VarId a, VarId bias);
  // Elementwise nonlinearities.
  VarId ReluOp(VarId a);
  VarId TanhOp(VarId a);
  // out = [a | b] column-wise (same row count).
  VarId ConcatCols(VarId a, VarId b);
  // out[i,:] = mean over j in neighbors(i) of a[j,:]; zero row when a node
  // has no neighbors.  `lists` must be finalized (see NeighborLists), stay
  // alive, and stay unmodified until this tape is destroyed: the backward
  // closure holds the raw pointer.  Record-time MCM_CHECKs enforce shape and
  // offsets/indices consistency.
  VarId NeighborMeanOp(VarId a, const NeighborLists* lists);
  // out = mean over rows of a -> [1 x cols].
  VarId MeanRowsOp(VarId a);
  // Row-wise L2 normalization (GraphSAGE normalizes embeddings per layer).
  VarId L2NormalizeRowsOp(VarId a, float epsilon = 1e-6f);

  // Fused PPO clipped-surrogate + entropy objective over per-node actions.
  //   logits:     [N x C] policy outputs.
  //   actions:    chosen chip per node.
  //   advantage:  shared scalar advantage for this sample.
  //   old_logp:   per-node log-prob under the behavior policy.
  // Returns scalar loss:
  //   -(1/N) sum_i min(r_i A, clip(r_i, 1-eps, 1+eps) A)
  //   - entropy_coef * (1/N) sum_i H(p_i).
  VarId PpoLossOp(VarId logits, std::span<const int> actions,
                  double advantage, std::span<const float> old_logp,
                  double clip_epsilon, double entropy_coef);

  // Fused 0.5 * (pred - target)^2 for a [1 x 1] prediction.
  VarId SquaredErrorOp(VarId pred, double target);

  // Weighted sum of scalar losses -> scalar.
  VarId AddScaled(VarId a, double wa, VarId b, double wb);

  // Runs reverse accumulation from scalar `loss` (seed gradient 1).
  // Parameter leaves accumulate into their external grad matrices.
  void Backward(VarId loss);

  // Per-row log-softmax of a recorded value (no gradient); used to snapshot
  // behavior-policy log-probs when sampling rollouts.
  static std::vector<float> RowLogProbs(const Matrix& logits,
                                        std::span<const int> actions);
  // Row-wise softmax (no gradient), for turning logits into the probability
  // matrix P handed to the constraint solver.
  static Matrix RowSoftmax(const Matrix& logits);

  std::size_t size() const { return nodes_.size(); }

 private:
  struct TapeNode {
    Matrix value;
    Matrix grad;
    // Accumulates into upstream grads; empty for leaves.
    std::function<void()> backward;
    // For Parameter leaves.
    Matrix* external_grad = nullptr;
  };

  VarId Emplace(Matrix value);
  Matrix& mutable_grad(VarId id) {
    return nodes_[static_cast<std::size_t>(id)].grad;
  }

  std::vector<TapeNode> nodes_;
};

}  // namespace mcm
