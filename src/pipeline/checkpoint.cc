#include "pipeline/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <type_traits>

#include "common/rng.h"
#include "telemetry/metrics.h"

namespace mcm {
namespace {

constexpr char kMagic[8] = {'M', 'C', 'M', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;

// FNV-1a over the payload; catches truncation and bit rot, not tampering.
std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Append/consume helpers for the little-endian payload buffer.  The reader
// throws on underrun so a truncated file can never yield a silently
// partial state.
template <typename T>
void Append(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&value);
  out.append(p, sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  T Take() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) {
      throw std::runtime_error("pretrain state: truncated payload");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void TakeFloats(std::vector<float>& out, std::size_t count) {
    const std::size_t bytes = count * sizeof(float);
    if (pos_ + bytes > bytes_.size()) {
      throw std::runtime_error("pretrain state: truncated payload");
    }
    out.resize(count);
    std::memcpy(out.data(), bytes_.data() + pos_, bytes);
    pos_ += bytes;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

void AppendMatrix(std::string& out, const Matrix& m) {
  Append(out, static_cast<std::int32_t>(m.rows));
  Append(out, static_cast<std::int32_t>(m.cols));
  out.append(reinterpret_cast<const char*>(m.data.data()),
             m.data.size() * sizeof(float));
}

Matrix TakeMatrix(Reader& reader) {
  const auto rows = reader.Take<std::int32_t>();
  const auto cols = reader.Take<std::int32_t>();
  if (rows < 0 || cols < 0 || (rows > 0 && cols > 1 << 24)) {
    throw std::runtime_error("pretrain state: bad matrix shape");
  }
  Matrix m(rows, cols);
  reader.TakeFloats(m.data,
                    static_cast<std::size_t>(rows) *
                        static_cast<std::size_t>(cols));
  return m;
}

void AppendMatrices(std::string& out, const std::vector<Matrix>& ms) {
  Append(out, static_cast<std::uint32_t>(ms.size()));
  for (const Matrix& m : ms) AppendMatrix(out, m);
}

std::vector<Matrix> TakeMatrices(Reader& reader) {
  const auto count = reader.Take<std::uint32_t>();
  std::vector<Matrix> ms;
  ms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ms.push_back(TakeMatrix(reader));
  return ms;
}

std::string EncodePayload(const PretrainState& state) {
  std::string out;
  Append(out, state.iteration);
  Append(out, state.samples_seen);
  Append(out, state.next_checkpoint_at);
  Append(out, state.task_index);
  for (const std::uint64_t word : state.rng_state) Append(out, word);
  AppendMatrices(out, state.params);
  Append(out, state.adam.step);
  AppendMatrices(out, state.adam.m);
  AppendMatrices(out, state.adam.v);
  Append(out, static_cast<std::uint32_t>(state.emitted.size()));
  for (const Checkpoint& checkpoint : state.emitted) {
    Append(out, static_cast<std::int32_t>(checkpoint.id));
    Append(out, static_cast<std::int32_t>(checkpoint.samples_seen));
    Append(out, static_cast<std::uint8_t>(checkpoint.validated ? 1 : 0));
    Append(out, checkpoint.zeroshot_score);
    Append(out, checkpoint.finetune_score);
    AppendMatrices(out, checkpoint.params);
  }
  return out;
}

PretrainState DecodePayload(const std::string& payload) {
  Reader reader(payload);
  PretrainState state;
  state.iteration = reader.Take<std::int64_t>();
  state.samples_seen = reader.Take<std::int64_t>();
  state.next_checkpoint_at = reader.Take<std::int64_t>();
  state.task_index = reader.Take<std::uint64_t>();
  for (std::uint64_t& word : state.rng_state) {
    word = reader.Take<std::uint64_t>();
  }
  state.params = TakeMatrices(reader);
  state.adam.step = reader.Take<std::int64_t>();
  state.adam.m = TakeMatrices(reader);
  state.adam.v = TakeMatrices(reader);
  const auto emitted = reader.Take<std::uint32_t>();
  state.emitted.reserve(emitted);
  for (std::uint32_t i = 0; i < emitted; ++i) {
    Checkpoint checkpoint;
    checkpoint.id = reader.Take<std::int32_t>();
    checkpoint.samples_seen = reader.Take<std::int32_t>();
    checkpoint.validated = reader.Take<std::uint8_t>() != 0;
    checkpoint.zeroshot_score = reader.Take<double>();
    checkpoint.finetune_score = reader.Take<double>();
    checkpoint.params = TakeMatrices(reader);
    state.emitted.push_back(std::move(checkpoint));
  }
  if (!reader.AtEnd()) {
    throw std::runtime_error("pretrain state: trailing bytes in payload");
  }
  return state;
}

}  // namespace

std::uint64_t PretrainConfigFingerprint(const PretrainConfig& config) {
  const std::uint64_t fields[] = {
      static_cast<std::uint64_t>(config.rl.num_chips),
      static_cast<std::uint64_t>(config.rl.gnn_layers),
      static_cast<std::uint64_t>(config.rl.hidden_dim),
      static_cast<std::uint64_t>(config.rl.policy_layers),
      static_cast<std::uint64_t>(config.rl.decode_iterations),
      static_cast<std::uint64_t>(config.rl.rollouts_per_update),
      static_cast<std::uint64_t>(config.rl.minibatches),
      static_cast<std::uint64_t>(config.rl.epochs),
      static_cast<std::uint64_t>(config.rl.solver_mode),
      config.rl.seed,
      static_cast<std::uint64_t>(config.total_samples),
      static_cast<std::uint64_t>(config.num_checkpoints),
      config.seed,
  };
  return HashSpan(fields);
}

std::string PretrainStatePath(const std::string& checkpoint_dir) {
  return (std::filesystem::path(checkpoint_dir) / "pretrain_state.bin")
      .string();
}

// MCM_CONTRACT(deterministic): checkpoint bytes are replay-compared across
// resume boundaries; the payload may not embed clocks or hash order.
void SavePretrainState(const PretrainState& state,
                       const PretrainConfig& config,
                       const std::string& checkpoint_dir) {
  static telemetry::Counter& saves =
      telemetry::Counter::Get("pipeline/state_saves");
  std::filesystem::create_directories(checkpoint_dir);
  const std::string payload = EncodePayload(state);
  const std::uint64_t checksum = Fnv1a(payload);
  const std::string path = PretrainStatePath(checkpoint_dir);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("SavePretrainState: cannot open " + tmp_path);
    }
    out.write(kMagic, sizeof(kMagic));
    const std::uint32_t version = kFormatVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t fingerprint = PretrainConfigFingerprint(config);
    out.write(reinterpret_cast<const char*>(&fingerprint),
              sizeof(fingerprint));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    if (!out) {
      throw std::runtime_error("SavePretrainState: write failed for " +
                               tmp_path);
    }
  }
  // Atomic publish: a kill between write and rename leaves the previous
  // state file untouched; a kill mid-write leaves only the tmp file.
  std::filesystem::rename(tmp_path, path);
  saves.Add();
}

std::optional<PretrainState> LoadPretrainState(
    const PretrainConfig& config, const std::string& checkpoint_dir) {
  const std::string path = PretrainStatePath(checkpoint_dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  static telemetry::Counter& loads =
      telemetry::Counter::Get("pipeline/state_loads");

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("LoadPretrainState: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kFormatVersion) {
    throw std::runtime_error("LoadPretrainState: unsupported version in " +
                             path);
  }
  std::uint64_t fingerprint = 0;
  in.read(reinterpret_cast<char*>(&fingerprint), sizeof(fingerprint));
  if (!in || fingerprint != PretrainConfigFingerprint(config)) {
    throw std::runtime_error(
        "LoadPretrainState: configuration fingerprint mismatch in " + path +
        " (resuming requires the same model shape, budgets, and seed)");
  }
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in) {
    throw std::runtime_error("LoadPretrainState: truncated header in " +
                             path);
  }
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (Fnv1a(payload) != checksum) {
    throw std::runtime_error("LoadPretrainState: checksum mismatch in " +
                             path);
  }
  PretrainState state = DecodePayload(payload);
  loads.Add();
  return state;
}

}  // namespace mcm
