// Versioned binary checkpoints for the pre-training loop.
//
// A pretrain *state* file captures everything PretrainPipeline::Train needs
// to continue as if it had never stopped: policy/value weights, Adam
// moments, the trainer's RNG stream, the curriculum position (iteration,
// samples seen, round-robin task index), and the checkpoints emitted so
// far.  The contract is bit-identity: a run killed at any iteration and
// resumed from its latest state file produces exactly the same final
// weights, emitted checkpoints, and validation scores as an uninterrupted
// run with the same configuration and seed (tests/faults_test.cc,
// docs/OPERATIONS.md).
//
// File format (little-endian, see checkpoint.cc):
//   8-byte magic "MCMCKPT1", u32 format version, u64 config fingerprint,
//   u64 FNV-1a checksum of the payload, then the payload (curriculum
//   scalars, RNG words, parameter/moment matrices, emitted checkpoints).
// Writes are atomic (tmp file + rename), so a kill mid-save leaves the
// previous state intact.  Loads verify magic, version, checksum, and the
// fingerprint of the loading run's configuration, and throw
// std::runtime_error on any mismatch -- resuming under a different
// configuration would silently break the bit-identity contract.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/modules.h"
#include "pipeline/pretrain.h"

namespace mcm {

// Complete training-loop state between iterations.
struct PretrainState {
  std::int64_t iteration = 0;
  std::int64_t samples_seen = 0;
  std::int64_t next_checkpoint_at = 0;
  std::uint64_t task_index = 0;  // Round-robin cursor over graph tasks.
  std::array<std::uint64_t, 4> rng_state{};  // Trainer sampling stream.
  std::vector<Matrix> params;    // Policy/value weights.
  Adam::State adam;              // Optimizer step + moment estimates.
  std::vector<Checkpoint> emitted;  // Checkpoints produced so far.
};

// Stable hash of the configuration fields that shape the training
// trajectory (network shape, PPO budgets, seed).  Stored in the state file
// and revalidated on load.
std::uint64_t PretrainConfigFingerprint(const PretrainConfig& config);

// The state file inside a checkpoint directory.
std::string PretrainStatePath(const std::string& checkpoint_dir);

// Atomically writes `state` into `checkpoint_dir` (created if missing).
// Throws std::runtime_error on I/O failure.
void SavePretrainState(const PretrainState& state,
                       const PretrainConfig& config,
                       const std::string& checkpoint_dir);

// Loads the state file from `checkpoint_dir`.  Returns nullopt when no
// state file exists (fresh start); throws std::runtime_error when the file
// exists but is corrupt, truncated, from an incompatible format version,
// or fingerprint-mismatched against `config`.
std::optional<PretrainState> LoadPretrainState(
    const PretrainConfig& config, const std::string& checkpoint_dir);

}  // namespace mcm
