// The paper's pre-training pipeline (Section 4.3, Figure 4).
//
// Training phase: a training worker iterates the training graphs, running
// PPO against the (cheap) analytical cost model and periodically snapshotting
// the policy weights as checkpoints.  A validation worker scores each
// checkpoint on the validation graphs -- zero-shot and after a short
// fine-tune -- and picks the best one.
//
// Deployment phase: the chosen checkpoint warm-starts the policy on an
// unseen graph, either zero-shot (inference only) or with fine-tuning,
// typically against the expensive real-hardware evaluator.
#pragma once

#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "nn/modules.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"

namespace mcm {

struct PretrainConfig {
  RlConfig rl;
  // Paper budgets: 20,000 pre-training samples, 200 checkpoints.
  int total_samples = 20000;
  int num_checkpoints = 200;
  // Validation-worker budgets per graph per checkpoint.
  int validation_zeroshot_samples = 10;
  int validation_finetune_samples = 40;
  // Scoring only every k-th checkpoint keeps the validation worker's cost
  // manageable at quick scale (1 = score all, the paper's setting).
  int validate_every = 1;
  std::uint64_t seed = 20220301;

  // Checkpoint/resume (pipeline/checkpoint.h, docs/OPERATIONS.md).  When
  // `checkpoint_dir` is set, Train() atomically saves its complete state
  // (weights, Adam moments, RNG stream, curriculum position, emitted
  // checkpoints) there every `checkpoint_every` iterations (0 = only at
  // the very end) and on completion.  With `resume` set, Train() first
  // restores the directory's state file if one exists and continues
  // bit-identically to an uninterrupted run; a missing state file means a
  // fresh start, while an incompatible one (different shape/budget/seed)
  // throws.
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  bool resume = false;
  // Stop training after this many iterations (0 = run to completion),
  // saving state first when a checkpoint_dir is set.  A deterministic
  // interruption lever: tests and the kill-and-resume walkthrough use it
  // to cut a run at an exact point.  Early-stopped runs do not append the
  // final-weights checkpoint -- that happens only at full completion.
  int stop_after_iterations = 0;
};

struct Checkpoint {
  int id = -1;
  int samples_seen = 0;
  std::vector<Matrix> params;
  double zeroshot_score = 0.0;
  double finetune_score = 0.0;
  bool validated = false;
};

// Everything needed to run episodes on one graph: context, environment, and
// the cached heuristic baseline.
struct GraphTask {
  const Graph* graph = nullptr;
  std::unique_ptr<GraphContext> context;
  std::unique_ptr<PartitionEnv> env;
  double baseline_runtime_s = 0.0;
};

// Builds GraphTasks (contexts + baselines) for a set of graphs against a
// cost model.  Graphs whose heuristic baseline fails to evaluate (it never
// does for the analytical model) are skipped with a warning.  `fallback`
// (optional, not owned) is handed to each task's environment as the
// degradation model for permanently failing evaluations (see
// faults/faults.h); it must outlive the returned tasks.
std::vector<GraphTask> BuildGraphTasks(const std::vector<Graph>& graphs,
                                       CostModel& model, int num_chips,
                                       std::uint64_t seed,
                                       CostModel* fallback = nullptr);

class PretrainPipeline {
 public:
  // `fallback_model` (optional, not owned) is the graceful-degradation
  // evaluator used when `reward_model` keeps failing transiently --
  // typically the analytical model backing up hwsim.  Both models must
  // outlive the pipeline.
  PretrainPipeline(PretrainConfig config, CostModel& reward_model,
                   CostModel* fallback_model = nullptr);

  // Training phase: PPO over the training graphs (round-robin), emitting
  // `num_checkpoints` evenly spaced parameter snapshots.
  std::vector<Checkpoint> Train(const std::vector<Graph>& train_graphs);

  // Validation phase: scores checkpoints on the validation graphs and
  // returns the index of the best one (by fine-tune score, the deployment
  // mode the paper ends up recommending).
  int Validate(std::vector<Checkpoint>& checkpoints,
               const std::vector<Graph>& validation_graphs);

  // Warm-starts `policy` from a checkpoint.
  static void Restore(PolicyNetwork& policy, const Checkpoint& checkpoint);

  // Disk persistence: a checkpoint file records the id, samples seen, and
  // parameter payload; loading validates shapes against `config.rl`.
  // Throws std::runtime_error on I/O or format errors.
  static void SaveCheckpointFile(const Checkpoint& checkpoint,
                                 const RlConfig& config,
                                 const std::string& path);
  static Checkpoint LoadCheckpointFile(const RlConfig& config,
                                       const std::string& path);

  PolicyNetwork& policy() { return policy_; }
  const PretrainConfig& config() const { return config_; }

  // Serving/deployment convenience: loads a checkpoint file written by
  // SaveCheckpointFile and warm-starts `policy` from it, validating the
  // payload against the policy's configuration (shape mismatches, corrupt
  // or truncated files throw std::runtime_error).  The partition service
  // uses this to boot its zero-shot/fine-tune policy.
  static void WarmStartFromFile(PolicyNetwork& policy,
                                const std::string& path);

 private:
  PretrainConfig config_;
  CostModel* reward_model_;
  CostModel* fallback_model_;
  PolicyNetwork policy_;
};

}  // namespace mcm
