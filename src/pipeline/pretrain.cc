#include "pipeline/pretrain.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "common/logging.h"
#include "common/stats.h"
#include "pipeline/checkpoint.h"
#include "runtime/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

constexpr double kCheckpointSecondsBounds[] = {0.1, 0.5, 1.0,  5.0,
                                               15.0, 60.0, 300.0};

}  // namespace

std::vector<GraphTask> BuildGraphTasks(const std::vector<Graph>& graphs,
                                       CostModel& model, int num_chips,
                                       std::uint64_t seed,
                                       CostModel* fallback) {
  // Fan-out: context construction (feature extraction + solver setup) and
  // the heuristic baseline are independent per graph.  Each task gets a
  // substream of `seed`; baselines repair through the task's own solver.
  std::vector<GraphTask> built(graphs.size());
  std::vector<char> valid(graphs.size(), 0);
  ParallelFor(0, static_cast<std::int64_t>(graphs.size()),
              [&](std::int64_t gi) {
                const Graph& graph = graphs[static_cast<std::size_t>(gi)];
                GraphTask& task = built[static_cast<std::size_t>(gi)];
                task.graph = &graph;
                task.context = std::make_unique<GraphContext>(graph, num_chips);
                Rng rng(HashCombine(seed, static_cast<std::uint64_t>(gi)));
                BaselineResult baseline = ComputeHeuristicBaseline(
                    graph, model, task.context->solver(), rng, fallback);
                if (!baseline.eval.valid) return;
                task.baseline_runtime_s = baseline.eval.runtime_s;
                task.env = std::make_unique<PartitionEnv>(
                    graph, model, task.baseline_runtime_s,
                    PartitionEnv::Objective::kThroughput,
                    /*eval_cache_capacity=*/-1, fallback);
                valid[static_cast<std::size_t>(gi)] = 1;
              });
  std::vector<GraphTask> tasks;
  tasks.reserve(graphs.size());
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    if (!valid[gi]) {
      MCM_LOG(kWarning) << "skipping graph " << graphs[gi].name()
                        << ": heuristic baseline invalid";
      continue;
    }
    tasks.push_back(std::move(built[gi]));
  }
  return tasks;
}

PretrainPipeline::PretrainPipeline(PretrainConfig config,
                                   CostModel& reward_model,
                                   CostModel* fallback_model)
    : config_(config),
      reward_model_(&reward_model),
      fallback_model_(fallback_model),
      policy_(config.rl) {}

std::vector<Checkpoint> PretrainPipeline::Train(
    const std::vector<Graph>& train_graphs) {
  MCM_TRACE_SPAN("pipeline/train");
  static telemetry::Counter& checkpoint_count =
      telemetry::Counter::Get("pipeline/checkpoints");
  static telemetry::Histogram& checkpoint_seconds = telemetry::Histogram::Get(
      "pipeline/checkpoint_train_s", kCheckpointSecondsBounds);
  std::vector<GraphTask> tasks = BuildGraphTasks(
      train_graphs, *reward_model_, config_.rl.num_chips,
      HashCombine(config_.seed, 0x7261696eULL), fallback_model_);
  MCM_CHECK(!tasks.empty());

  PpoTrainer trainer(policy_, Rng(HashCombine(config_.seed, 1)));
  std::vector<Checkpoint> checkpoints;
  checkpoints.reserve(static_cast<std::size_t>(config_.num_checkpoints));
  const int samples_per_checkpoint =
      std::max(1, config_.total_samples / config_.num_checkpoints);

  int samples_seen = 0;
  int next_checkpoint_at = samples_per_checkpoint;
  std::size_t task_index = 0;
  std::int64_t iteration = 0;

  if (config_.resume && !config_.checkpoint_dir.empty()) {
    if (auto state = LoadPretrainState(config_, config_.checkpoint_dir)) {
      static telemetry::Counter& resumes =
          telemetry::Counter::Get("pipeline/resumes");
      RestoreParams(policy_.Params(), state->params);
      trainer.optimizer().SetState(state->adam);
      trainer.rng().SetState(state->rng_state);
      iteration = state->iteration;
      samples_seen = static_cast<int>(state->samples_seen);
      next_checkpoint_at = static_cast<int>(state->next_checkpoint_at);
      task_index = static_cast<std::size_t>(state->task_index);
      checkpoints = std::move(state->emitted);
      resumes.Add();
      MCM_LOG(kInfo) << "resumed pretraining at iteration " << iteration
                     << " (" << samples_seen << " samples)";
    }
  }

  // Snapshot of everything the next iteration depends on; saving it and
  // restoring later continues the run bit-identically.
  const auto save_state = [&]() {
    if (config_.checkpoint_dir.empty()) return;
    PretrainState state;
    state.iteration = iteration;
    state.samples_seen = samples_seen;
    state.next_checkpoint_at = next_checkpoint_at;
    state.task_index = static_cast<std::uint64_t>(task_index);
    state.rng_state = trainer.rng().GetState();
    state.params = SnapshotParams(policy_.Params());
    state.adam = trainer.optimizer().GetState();
    state.emitted = checkpoints;
    SavePretrainState(state, config_, config_.checkpoint_dir);
  };

  double checkpoint_start = telemetry::MonotonicSeconds();
  while (samples_seen < config_.total_samples) {
    if (config_.stop_after_iterations > 0 &&
        iteration >= config_.stop_after_iterations) {
      save_state();
      return checkpoints;
    }
    GraphTask& task = tasks[task_index];
    task_index = (task_index + 1) % tasks.size();
    const PpoTrainer::IterationResult result =
        trainer.Iterate(*task.context, *task.env);
    samples_seen += static_cast<int>(result.rewards.size());
    ++iteration;
    if (samples_seen >= next_checkpoint_at &&
        static_cast<int>(checkpoints.size()) < config_.num_checkpoints) {
      Checkpoint checkpoint;
      checkpoint.id = static_cast<int>(checkpoints.size());
      checkpoint.samples_seen = samples_seen;
      checkpoint.params = SnapshotParams(policy_.Params());
      checkpoints.push_back(std::move(checkpoint));
      next_checkpoint_at += samples_per_checkpoint;
      const double now = telemetry::MonotonicSeconds();
      checkpoint_count.Add();
      checkpoint_seconds.Observe(now - checkpoint_start);
      checkpoint_start = now;
    }
    if (config_.checkpoint_every > 0 &&
        iteration % config_.checkpoint_every == 0) {
      save_state();
    }
  }
  // Always keep the final weights as the last checkpoint.
  if (checkpoints.empty() ||
      checkpoints.back().samples_seen < samples_seen) {
    Checkpoint checkpoint;
    checkpoint.id = static_cast<int>(checkpoints.size());
    checkpoint.samples_seen = samples_seen;
    checkpoint.params = SnapshotParams(policy_.Params());
    checkpoints.push_back(std::move(checkpoint));
  }
  save_state();
  return checkpoints;
}

int PretrainPipeline::Validate(std::vector<Checkpoint>& checkpoints,
                               const std::vector<Graph>& validation_graphs) {
  MCM_TRACE_SPAN("pipeline/validate");
  MCM_CHECK(!checkpoints.empty());
  std::vector<GraphTask> tasks = BuildGraphTasks(
      validation_graphs, *reward_model_, config_.rl.num_chips,
      HashCombine(config_.seed, 0x76616cULL), fallback_model_);
  MCM_CHECK(!tasks.empty());

  // The validation worker is a pure fan-out: every (checkpoint, graph) cell
  // is independent -- a fresh probe policy restored from the checkpoint, a
  // deterministic per-checkpoint seed, and a private environment (reward
  // anchoring depends only on the task's immutable baseline).  Cells run in
  // parallel; the per-checkpoint score reduction happens serially in
  // (checkpoint, graph) order so means are bit-identical to the sequential
  // loop for any thread count.
  std::vector<std::size_t> scored;  // Checkpoint indices to validate.
  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    // Score every validate_every-th checkpoint, and always the last.
    if (k % static_cast<std::size_t>(std::max(1, config_.validate_every)) !=
            0 &&
        k + 1 != checkpoints.size()) {
      continue;
    }
    scored.push_back(k);
  }

  struct Cell {
    std::size_t checkpoint_index;
    std::size_t task_index;
    double zeroshot = 0.0;
    double finetune = 0.0;
  };
  std::vector<Cell> cells;
  cells.reserve(scored.size() * tasks.size());
  for (std::size_t k : scored) {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      cells.push_back(Cell{k, t});
    }
  }

  static telemetry::Counter& cells_validated =
      telemetry::Counter::Get("pipeline/validate_cells");
  ParallelFor(0, static_cast<std::int64_t>(cells.size()),
              [&](std::int64_t i) {
                MCM_TRACE_SPAN("pipeline/validate_cell");
                cells_validated.Add();
                Cell& cell = cells[static_cast<std::size_t>(i)];
                const std::size_t k = cell.checkpoint_index;
                const Checkpoint& checkpoint = checkpoints[k];
                GraphTask& task = tasks[cell.task_index];
                // Zero-shot: sample through the solver, no updates.
                {
                  PolicyNetwork probe(config_.rl);
                  Restore(probe, checkpoint);
                  PpoTrainer probe_trainer(
                      probe, Rng(HashCombine(config_.seed, 100 + k)));
                  PartitionEnv env = *task.env;  // Private incumbent/counters.
                  const auto result = probe_trainer.EvaluateOnly(
                      *task.context, env,
                      config_.validation_zeroshot_samples);
                  cell.zeroshot = result.best_reward;
                }
                // Fine-tune: a short PPO run warm-started from the
                // checkpoint.
                {
                  PolicyNetwork probe(config_.rl);
                  Restore(probe, checkpoint);
                  PpoTrainer probe_trainer(
                      probe, Rng(HashCombine(config_.seed, 200 + k)));
                  PartitionEnv env = *task.env;
                  int samples = 0;
                  double best = 0.0;
                  while (samples < config_.validation_finetune_samples) {
                    const auto result =
                        probe_trainer.Iterate(*task.context, env);
                    samples += static_cast<int>(result.rewards.size());
                    best = std::max(best, result.best_reward);
                  }
                  cell.finetune = best;
                }
              });

  int best_index = 0;
  double best_score = -1.0;
  std::size_t cell_index = 0;
  for (std::size_t k : scored) {
    Checkpoint& checkpoint = checkpoints[k];
    RunningStats zeroshot_scores;
    RunningStats finetune_scores;
    for (std::size_t t = 0; t < tasks.size(); ++t, ++cell_index) {
      zeroshot_scores.Add(cells[cell_index].zeroshot);
      finetune_scores.Add(cells[cell_index].finetune);
    }
    checkpoint.zeroshot_score = zeroshot_scores.Mean();
    checkpoint.finetune_score = finetune_scores.Mean();
    checkpoint.validated = true;
    if (checkpoint.finetune_score > best_score) {
      best_score = checkpoint.finetune_score;
      best_index = static_cast<int>(k);
    }
  }
  return best_index;
}

void PretrainPipeline::Restore(PolicyNetwork& policy,
                               const Checkpoint& checkpoint) {
  RestoreParams(policy.Params(), checkpoint.params);
}

void PretrainPipeline::SaveCheckpointFile(const Checkpoint& checkpoint,
                                          const RlConfig& config,
                                          const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveCheckpointFile: cannot open " + path);
  }
  out << "mcm-policy-checkpoint-v1 " << checkpoint.id << " "
      << checkpoint.samples_seen << "\n";
  // Route the payload through a policy instance so parameter names/shapes
  // are recorded in the standard SaveParams format.
  PolicyNetwork staging(config);
  RestoreParams(staging.Params(), checkpoint.params);
  SaveParams(staging.Params(), out);
  if (!out) {
    throw std::runtime_error("SaveCheckpointFile: write failed for " + path);
  }
}

Checkpoint PretrainPipeline::LoadCheckpointFile(const RlConfig& config,
                                                const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadCheckpointFile: cannot open " + path);
  }
  std::string magic;
  Checkpoint checkpoint;
  in >> magic >> checkpoint.id >> checkpoint.samples_seen;
  if (magic != "mcm-policy-checkpoint-v1") {
    throw std::runtime_error("LoadCheckpointFile: bad header in " + path);
  }
  PolicyNetwork staging(config);
  LoadParams(staging.Params(), in);
  checkpoint.params = SnapshotParams(staging.Params());
  return checkpoint;
}

void PretrainPipeline::WarmStartFromFile(PolicyNetwork& policy,
                                         const std::string& path) {
  const Checkpoint checkpoint = LoadCheckpointFile(policy.config(), path);
  Restore(policy, checkpoint);
}

}  // namespace mcm
