#include "faults/faults.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/env.h"
#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

// Uniform [0, 1) from a 64-bit hash (same mapping Rng::UniformDouble uses).
double HashToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
}

}  // namespace

FaultConfig FaultConfig::FromEnv() {
  FaultConfig config;
  config.rate = GetEnvDouble("MCMPART_FAULT_RATE", 0.0, 0.0, 1.0);
  config.seed = static_cast<std::uint64_t>(
      GetEnvInt("MCMPART_FAULT_SEED",
                static_cast<std::int64_t>(config.seed)));
  const auto kinds = GetEnv("MCMPART_FAULT_KINDS");
  if (kinds) {
    config.enable_timeout = false;
    config.enable_spurious_invalid = false;
    config.enable_nan_cost = false;
    std::stringstream ss(*kinds);
    std::string kind;
    while (std::getline(ss, kind, ',')) {
      if (kind == "timeout") config.enable_timeout = true;
      else if (kind == "invalid") config.enable_spurious_invalid = true;
      else if (kind == "nan") config.enable_nan_cost = true;
      else if (!kind.empty()) {
        MCM_LOG(kWarning) << "MCMPART_FAULT_KINDS: unknown kind \"" << kind
                          << "\" (expected timeout, invalid, or nan)";
      }
    }
  }
  return config;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {}

bool FaultInjector::Sample(std::uint64_t key, FaultKind* kind) const {
  if (config_.rate <= 0.0 || !config_.AnyKindEnabled()) return false;
  const std::uint64_t draw = HashCombine(config_.seed, key);
  if (HashToUnit(draw) >= config_.rate) return false;
  // Pick uniformly among the enabled kinds with an independent hash so the
  // fire/no-fire decision and the kind are uncorrelated.
  FaultKind enabled[3];
  int n = 0;
  if (config_.enable_timeout) enabled[n++] = FaultKind::kTimeout;
  if (config_.enable_spurious_invalid) {
    enabled[n++] = FaultKind::kSpuriousInvalid;
  }
  if (config_.enable_nan_cost) enabled[n++] = FaultKind::kNanCost;
  const std::uint64_t pick = HashCombine(draw, 0x6b696e64ULL);
  *kind = enabled[pick % static_cast<std::uint64_t>(n)];
  return true;
}

bool FaultInjector::Next(std::uint64_t key, FaultKind* kind) {
  std::uint32_t attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[key]++;
  }
  if (!Sample(HashCombine(key, attempt), kind)) return false;
  static telemetry::Counter& injected =
      telemetry::Counter::Get("faults/injected");
  static telemetry::Counter& injected_timeout =
      telemetry::Counter::Get("faults/injected_timeout");
  static telemetry::Counter& injected_invalid =
      telemetry::Counter::Get("faults/injected_invalid");
  static telemetry::Counter& injected_nan =
      telemetry::Counter::Get("faults/injected_nan");
  injected.Add();
  switch (*kind) {
    case FaultKind::kTimeout: injected_timeout.Add(); break;
    case FaultKind::kSpuriousInvalid: injected_invalid.Add(); break;
    case FaultKind::kNanCost: injected_nan.Add(); break;
  }
  return true;
}

FaultInjector* GlobalFaultInjector() {
  // Configured once from the environment; rate 0 (the default) yields a
  // null injector so fault-free runs pay nothing on the evaluation path.
  static FaultInjector* const injector = []() -> FaultInjector* {
    const FaultConfig config = FaultConfig::FromEnv();
    if (config.rate <= 0.0 || !config.AnyKindEnabled()) return nullptr;
    MCM_LOG(kInfo) << "fault injection enabled: rate=" << config.rate;
    return new FaultInjector(config);
  }();
  return injector;
}

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy policy;
  policy.max_retries =
      static_cast<int>(GetEnvInt("MCMPART_EVAL_RETRIES", 4, 0, 100));
  policy.initial_backoff_s =
      GetEnvDouble("MCMPART_EVAL_BACKOFF_MS", 1.0, 0.0, 60000.0) / 1e3;
  policy.deadline_s =
      GetEnvDouble("MCMPART_EVAL_DEADLINE_MS", 2000.0, 0.0, 3600000.0) / 1e3;
  return policy;
}

// MCM_CONTRACT(deterministic): backoff schedules replay identically for a
// given (key, attempt) -- the jitter below is hash-derived, never sampled.
double RetryPolicy::BackoffSeconds(std::uint64_t key, int attempt) const {
  if (initial_backoff_s <= 0.0 || attempt <= 0) return 0.0;
  const double base = std::min(
      max_backoff_s, initial_backoff_s * std::exp2(attempt - 1));
  // Deterministic jitter in [0.5, 1.5): repeated runs back off identically,
  // but concurrent retries of different evaluations desynchronize.
  const double jitter =
      0.5 + HashToUnit(HashCombine(key, static_cast<std::uint64_t>(attempt)));
  return base * jitter;
}

std::uint64_t EvalKey(const Graph& graph, const Partition& partition) {
  std::uint64_t h = HashCombine(0x65766b65794d434dULL,
                                static_cast<std::uint64_t>(graph.NumNodes()));
  for (std::size_t i = 0; i < partition.assignment.size(); ++i) {
    h = HashCombine(
        h, static_cast<std::uint64_t>(partition.assignment[i] + 1) *
                   0x9e3779b97f4a7c15ULL +
               i);
  }
  return h;
}

ResilientCostModel::ResilientCostModel(CostModel* primary, CostModel* fallback,
                                       RetryPolicy policy)
    : primary_(primary), fallback_(fallback), policy_(policy) {}

EvalResult ResilientCostModel::Evaluate(const Graph& graph,
                                        const Partition& partition) {
  EvalResult result = primary_->Evaluate(graph, partition);
  if (!IsTransientEvalFailure(result)) return result;

  static telemetry::Counter& retries = telemetry::Counter::Get("faults/retries");
  static telemetry::Counter& recovered =
      telemetry::Counter::Get("faults/recovered");
  static telemetry::Counter& exhausted =
      telemetry::Counter::Get("faults/retry_exhausted");
  static telemetry::Counter& degraded =
      telemetry::Counter::Get("faults/degraded_evals");

  // The clock is only consulted once something has already failed, and it
  // only decides whether to *stop retrying* -- the EvalResult bytes that a
  // deterministic caller consumes never depend on it (a blown deadline
  // yields the same Invalid result as exhausted retries).  That is why the
  // two MonotonicSeconds edges below are sanitized for mcm-nondet-reach.
  const std::uint64_t key = EvalKey(graph, partition);
  const bool has_deadline = policy_.deadline_s > 0.0;
  const double start_s =
      has_deadline ? telemetry::MonotonicSeconds() : 0.0;  // NOLINT(mcm-nondet-reach)
  for (int attempt = 1; attempt <= policy_.max_retries; ++attempt) {
    const double backoff_s = policy_.BackoffSeconds(key, attempt);
    if (has_deadline &&
        telemetry::MonotonicSeconds() + backoff_s - start_s >  // NOLINT(mcm-nondet-reach)
            policy_.deadline_s) {
      break;  // Sleeping again would blow the per-evaluation deadline.
    }
    SleepSeconds(backoff_s);
    retries.Add();
    result = primary_->Evaluate(graph, partition);
    if (!IsTransientEvalFailure(result)) {
      recovered.Add();
      return result;
    }
  }
  exhausted.Add();
  if (fallback_ != nullptr) {
    const EvalResult fb = fallback_->Evaluate(graph, partition);
    if (!IsTransientEvalFailure(fb)) {
      degraded.Add();
      return fb;
    }
  }
  // No usable fallback: sanitize so a NaN cost never reaches a reward.
  return EvalResult::Invalid(EvalFailure::kEvaluatorError);
}

}  // namespace mcm
