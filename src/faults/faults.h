// Fault injection, retry/backoff, and graceful degradation for hardware
// evaluations.
//
// A real measurement harness occasionally times out, reports a spurious
// rejection, or returns a corrupted (NaN) cost.  This library makes those
// failure modes reproducible and survivable:
//
//   * FaultInjector -- a deterministic, hash-seeded fault source.  Whether
//     evaluation attempt (key, attempt#) fails is a pure function of
//     (seed, key, attempt#), so a faulty run is exactly repeatable at any
//     thread count.  Enabled via MCMPART_FAULT_RATE / MCMPART_FAULT_KINDS /
//     MCMPART_FAULT_SEED; HardwareSim consults the process-global injector.
//   * RetryPolicy -- exponential backoff with deterministic hash-based
//     jitter and a per-evaluation deadline (MCMPART_EVAL_RETRIES,
//     MCMPART_EVAL_BACKOFF_MS, MCMPART_EVAL_DEADLINE_MS).
//   * ResilientCostModel -- wraps a primary CostModel with the retry loop;
//     on retry exhaustion it degrades to an optional fallback model (the
//     analytical cost model in practice) or sanitizes the failure to a
//     plain invalid result so NaNs never reach a reward.
//
// Telemetry counters (see docs/OPERATIONS.md for the troubleshooting map):
//   faults/injected, faults/injected_{timeout,invalid,nan}, faults/retries,
//   faults/recovered, faults/retry_exhausted, faults/degraded_evals.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "costmodel/cost_model.h"

namespace mcm {

// The transient failure modes the injector can produce.
enum class FaultKind {
  kTimeout,          // Evaluation exceeds its deadline.
  kSpuriousInvalid,  // Platform falsely reports the partition invalid.
  kNanCost,          // Measurement returns a non-finite runtime.
};

struct FaultConfig {
  double rate = 0.0;      // Per-attempt fault probability in [0, 1].
  std::uint64_t seed = 0x6d636d2d666c74ULL;  // Hash seed for fault draws.
  bool enable_timeout = true;
  bool enable_spurious_invalid = true;
  bool enable_nan_cost = true;

  bool AnyKindEnabled() const {
    return enable_timeout || enable_spurious_invalid || enable_nan_cost;
  }

  // Reads MCMPART_FAULT_RATE (clamped to [0, 1]), MCMPART_FAULT_KINDS
  // (comma-separated subset of "timeout,invalid,nan"; default all), and
  // MCMPART_FAULT_SEED.
  static FaultConfig FromEnv();
};

// Deterministic fault source.  `Sample` is a pure function of
// (config.seed, key): two processes with the same configuration agree on
// every draw regardless of thread count or call order.  `Next` layers a
// per-key attempt counter on top so that retries of the same evaluation see
// fresh draws (attempt i of key k draws Sample(HashCombine(k, i))).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  // Pure draw: should attempt `key` fault, and if so, how?  Returns true
  // and sets *kind when a fault fires.
  bool Sample(std::uint64_t key, FaultKind* kind) const;

  // Stateful draw: like Sample, but keyed on (key, attempt#) where the
  // attempt number increments per call with the same key.  Thread-safe.
  bool Next(std::uint64_t key, FaultKind* kind);

  const FaultConfig& config() const { return config_; }

 private:
  const FaultConfig config_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::uint32_t> attempts_;
};

// The process-global injector configured from the environment, or nullptr
// when MCMPART_FAULT_RATE is 0/unset (the default: zero overhead, no clock
// reads, no locks on the evaluation path).
FaultInjector* GlobalFaultInjector();

// Exponential backoff with deterministic jitter and an optional deadline.
struct RetryPolicy {
  int max_retries = 4;           // Extra attempts after the first.
  double initial_backoff_s = 1e-3;
  double max_backoff_s = 0.25;   // Cap for the exponential schedule.
  double deadline_s = 2.0;       // Per-evaluation wall budget; 0 disables.

  // Reads MCMPART_EVAL_RETRIES (clamped to [0, 100]),
  // MCMPART_EVAL_BACKOFF_MS (clamped to [0, 60000]), and
  // MCMPART_EVAL_DEADLINE_MS (clamped to [0, 3600000]; 0 disables).
  static RetryPolicy FromEnv();

  // Backoff before retry `attempt` (1-based) of evaluation `key`:
  // initial * 2^(attempt-1), capped at max_backoff_s, scaled by a
  // deterministic jitter factor in [0.5, 1.5) hashed from (key, attempt).
  double BackoffSeconds(std::uint64_t key, int attempt) const;
};

// CostModel decorator adding retry-with-backoff and graceful degradation.
//
// Evaluate runs the primary model; on a transient failure (timeout,
// evaluator error, non-finite cost) it backs off and retries up to
// max_retries times within the deadline.  If every attempt fails it falls
// back to the `fallback` model when one is provided (counted in
// faults/degraded_evals), else returns Invalid(kEvaluatorError) -- a NaN
// cost never escapes to callers.
//
// Thread safety: matches the CostModel contract.  Evaluate keeps no state;
// sleeping and counter bumps are the only side effects.  The happy path
// (first attempt succeeds) reads no clock and takes no lock beyond what the
// wrapped models do, so fault-free runs stay on the deterministic fast
// path.
class ResilientCostModel final : public CostModel {
 public:
  // Neither pointer is owned; both must outlive this model.  `fallback`
  // may be null (degradation then sanitizes to an invalid result).
  ResilientCostModel(CostModel* primary, CostModel* fallback,
                     RetryPolicy policy);

  EvalResult Evaluate(const Graph& graph, const Partition& partition) override;
  std::string name() const override { return "resilient(" + primary_->name() + ")"; }

  // Retry/degradation only reshapes *transient* failures, and an analytical
  // primary never produces one (faults are injected inside hwsim), so this
  // wrapper evaluates exactly like its primary whenever the primary is
  // analytical.
  const AnalyticalCostModel* AsAnalytical() const override {
    return primary_->AsAnalytical();
  }

  const RetryPolicy& policy() const { return policy_; }
  CostModel* primary() const { return primary_; }
  CostModel* fallback() const { return fallback_; }

 private:
  CostModel* const primary_;
  CostModel* const fallback_;
  const RetryPolicy policy_;
};

// Stable 64-bit identity of an evaluation request, used as the fault/jitter
// key so injection is a function of what is being evaluated, not of when.
std::uint64_t EvalKey(const Graph& graph, const Partition& partition);

}  // namespace mcm
