#include "hwsim/hardware_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "faults/faults.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

constexpr double kPeakMemFractionBounds[] = {0.25, 0.5, 0.75, 0.9,
                                             1.0,  1.25, 2.0};

// Deterministic measurement noise for a (graph, partition) pair: the same
// candidate always "measures" the same runtime, but near-identical
// candidates measure slightly differently -- like repeated runs on a real
// but deterministic-enough system.
double NoiseFactor(const Graph& graph, const Partition& partition,
                   double stddev, std::uint64_t seed) {
  if (stddev <= 0.0) return 1.0;
  std::uint64_t h = HashCombine(seed, static_cast<std::uint64_t>(
                                          graph.NumNodes()));
  for (std::size_t i = 0; i < partition.assignment.size(); ++i) {
    h = HashCombine(h, static_cast<std::uint64_t>(
                           partition.assignment[i] + 1) *
                           0x9e3779b97f4a7c15ULL +
                           i);
  }
  Rng rng(h);
  return std::exp(stddev * rng.Normal());
}

}  // namespace

HardwareSim::Report HardwareSim::Simulate(const Graph& graph,
                                          const Partition& partition) const {
  MCM_TRACE_SPAN("hwsim/simulate");
  static telemetry::Counter& simulations =
      telemetry::Counter::Get("hwsim/simulations");
  static telemetry::Counter& static_invalid =
      telemetry::Counter::Get("hwsim/static_invalid");
  simulations.Add();

  Report report;
  report.statically_valid = IsStaticallyValid(graph, partition);
  if (!report.statically_valid) {
    static_invalid.Add();
    return report;
  }

  const McmConfig& mcm = options_.mcm;
  const int num_chips = partition.num_chips;
  report.chips.assign(static_cast<std::size_t>(num_chips), ChipReport{});
  report.link_bytes.assign(
      num_chips > 0 ? static_cast<std::size_t>(num_chips - 1) : 0, 0.0);

  // ---- Per-chip local schedules (global topological order restricted to
  // each chip), used for both the memory model and compute accounting.
  const std::vector<int> topo = graph.TopologicalOrder();
  std::vector<std::vector<int>> schedule(static_cast<std::size_t>(num_chips));
  // Position of each node within its chip's schedule.
  std::vector<int> local_pos(static_cast<std::size_t>(graph.NumNodes()), -1);
  for (int u : topo) {
    const int chip = partition.chip(u);
    local_pos[static_cast<std::size_t>(u)] =
        static_cast<int>(schedule[static_cast<std::size_t>(chip)].size());
    schedule[static_cast<std::size_t>(chip)].push_back(u);
  }

  // ---- Memory model: on each chip, an output buffer is live from its
  // producer's schedule slot until its last local consumer has run; a
  // buffer with remote consumers additionally stays live one slot past the
  // producer (egress staging).  Remote inputs are staged on the consumer
  // chip from slot 0 of the consumer (conservative: the transfer may arrive
  // any time before it is needed) until its last local consumer.
  for (int chip = 0; chip < num_chips; ++chip) {
    const auto& nodes = schedule[static_cast<std::size_t>(chip)];
    ChipReport& chip_report = report.chips[static_cast<std::size_t>(chip)];
    chip_report.num_nodes = static_cast<int>(nodes.size());
    if (nodes.empty()) continue;
    const int slots = static_cast<int>(nodes.size());
    // alloc_delta[s] accumulates byte deltas applied entering slot s.
    std::vector<double> alloc_delta(static_cast<std::size_t>(slots) + 1, 0.0);

    for (int s = 0; s < slots; ++s) {
      const Node& node = graph.node(nodes[static_cast<std::size_t>(s)]);
      chip_report.param_bytes += node.param_bytes;

      // The node's own output buffer.
      int last_use = s;  // At minimum live during its own slot.
      bool has_remote_consumer = false;
      for (int succ : graph.Successors(node.id)) {
        if (partition.chip(succ) == chip) {
          last_use = std::max(last_use,
                              local_pos[static_cast<std::size_t>(succ)]);
        } else {
          has_remote_consumer = true;
        }
      }
      if (has_remote_consumer) last_use = std::max(last_use, s + 1);
      alloc_delta[static_cast<std::size_t>(s)] += node.output_bytes;
      const int free_slot = std::min(last_use + 1, slots);
      alloc_delta[static_cast<std::size_t>(free_slot)] -= node.output_bytes;

      // Ingress buffers for remote predecessors (counted once per remote
      // producer: the staged copy serves all local consumers).
      for (int pred : graph.Predecessors(node.id)) {
        const int pred_chip = partition.chip(pred);
        if (pred_chip == chip) continue;
        // Attribute the staged buffer at the first local consumer of pred.
        bool first_local_consumer = true;
        for (int sibling : graph.Successors(pred)) {
          if (partition.chip(sibling) == chip &&
              local_pos[static_cast<std::size_t>(sibling)] <
                  local_pos[static_cast<std::size_t>(node.id)]) {
            first_local_consumer = false;
            break;
          }
        }
        if (!first_local_consumer) continue;
        int last_local = s;
        for (int sibling : graph.Successors(pred)) {
          if (partition.chip(sibling) == chip) {
            last_local = std::max(
                last_local, local_pos[static_cast<std::size_t>(sibling)]);
          }
        }
        const Node& producer = graph.node(pred);
        alloc_delta[0] += producer.output_bytes;
        const int ingress_free = std::min(last_local + 1, slots);
        alloc_delta[static_cast<std::size_t>(ingress_free)] -=
            producer.output_bytes;
      }
    }
    double live = chip_report.param_bytes;
    double peak = live;
    for (int s = 0; s < slots; ++s) {
      live += alloc_delta[static_cast<std::size_t>(s)];
      peak = std::max(peak, live);
    }
    chip_report.peak_memory_bytes = peak;
    if (peak > mcm.sram_bytes_per_chip && !report.oom) {
      report.oom = true;
      report.first_oom_chip = chip;
    }
  }
  {
    static telemetry::Counter& oom_rejections =
        telemetry::Counter::Get("hwsim/oom_rejections");
    static telemetry::Gauge& max_peak =
        telemetry::Gauge::Get("hwsim/max_chip_peak_memory_bytes");
    static telemetry::Histogram& peak_fraction = telemetry::Histogram::Get(
        "hwsim/chip_peak_memory_fraction", kPeakMemFractionBounds);
    double worst_peak = 0.0;
    for (const ChipReport& chip_report : report.chips) {
      worst_peak = std::max(worst_peak, chip_report.peak_memory_bytes);
    }
    // SetMax commutes, so the gauge stays deterministic under ParallelFor.
    max_peak.SetMax(worst_peak);
    peak_fraction.Observe(worst_peak / mcm.sram_bytes_per_chip);
    if (report.oom) {
      oom_rejections.Add();
      return report;
    }
  }

  // ---- Performance model.
  // Compute: roofline-style utilization from arithmetic intensity.
  const double knee = options_.intensity_knee_flops_per_byte;
  for (int chip = 0; chip < num_chips; ++chip) {
    ChipReport& chip_report = report.chips[static_cast<std::size_t>(chip)];
    for (int u : schedule[static_cast<std::size_t>(chip)]) {
      const Node& node = graph.node(u);
      if (node.compute_flops <= 0.0) continue;
      double moved_bytes = node.output_bytes;
      for (int pred : graph.Predecessors(u)) {
        moved_bytes += graph.node(pred).output_bytes;
      }
      const double intensity =
          node.compute_flops / std::max(moved_bytes, 1.0);
      const double utilization =
          mcm.effective_utilization * intensity / (intensity + knee);
      chip_report.compute_s +=
          node.compute_flops / (mcm.chip_flops_per_s * utilization);
    }
    // Memory-pressure spill penalty near the SRAM limit.
    const double usage =
        chip_report.peak_memory_bytes / mcm.sram_bytes_per_chip;
    if (usage > options_.mem_pressure_threshold) {
      const double over = (usage - options_.mem_pressure_threshold) /
                          (1.0 - options_.mem_pressure_threshold);
      chip_report.compute_s *= 1.0 + options_.mem_pressure_penalty * over;
    }
  }

  // Transfers: one per (producer, remote consumer chip); endpoint time on
  // both chips plus occupancy of every ring link along the route.
  for (const Node& node : graph.nodes()) {
    const int src_chip = partition.chip(node.id);
    std::uint64_t remote = 0;
    for (int succ : graph.Successors(node.id)) {
      const int dst_chip = partition.chip(succ);
      if (dst_chip != src_chip) remote |= 1ULL << dst_chip;
    }
    while (remote != 0) {
      const int dst_chip = __builtin_ctzll(remote);
      remote &= remote - 1;
      const double wire_s =
          node.output_bytes / mcm.link_bandwidth_bytes_per_s +
          mcm.link_latency_s;
      report.chips[static_cast<std::size_t>(src_chip)].transfer_s += wire_s;
      report.chips[static_cast<std::size_t>(dst_chip)].transfer_s += wire_s;
      for (int link = src_chip; link < dst_chip; ++link) {
        report.link_bytes[static_cast<std::size_t>(link)] += node.output_bytes;
      }
    }
  }

  // Steady-state pipeline interval: the slowest chip or the most congested
  // ring link.  Latency is the pipeline fill: the sum of stage times.
  double bottleneck = 0.0;
  double fill = 0.0;
  for (const ChipReport& chip_report : report.chips) {
    bottleneck = std::max(bottleneck,
                          chip_report.compute_s + chip_report.transfer_s);
    fill += chip_report.compute_s + chip_report.transfer_s;
  }
  for (double bytes : report.link_bytes) {
    const double link_s = bytes / mcm.link_bandwidth_bytes_per_s;
    report.bottleneck_link_s = std::max(report.bottleneck_link_s, link_s);
  }
  if (report.bottleneck_link_s > bottleneck) {
    // Link contention, not any chip's compute, sets the pipeline interval.
    static telemetry::Counter& link_bound =
        telemetry::Counter::Get("hwsim/link_bound_evals");
    link_bound.Add();
  }
  bottleneck = std::max(bottleneck, report.bottleneck_link_s);

  const double noise = NoiseFactor(graph, partition, options_.noise_stddev,
                                   options_.noise_seed);
  report.runtime_s = bottleneck * noise;
  report.latency_s = fill * noise;
  return report;
}

EvalResult HardwareSim::Evaluate(const Graph& graph,
                                 const Partition& partition) {
  // Injected faults model the measurement platform (not the simulator):
  // they fire before simulation, deterministically per (candidate, attempt),
  // and only when MCMPART_FAULT_RATE is set.  Retry/degradation lives in
  // ResilientCostModel (faults/faults.h), not here.
  if (FaultInjector* injector = GlobalFaultInjector()) {
    FaultKind kind;
    if (injector->Next(EvalKey(graph, partition), &kind)) {
      switch (kind) {
        case FaultKind::kTimeout:
          return EvalResult::Invalid(EvalFailure::kTimeout);
        case FaultKind::kSpuriousInvalid:
          return EvalResult::Invalid(EvalFailure::kEvaluatorError);
        case FaultKind::kNanCost: {
          EvalResult corrupted = EvalResult::Valid(1.0);
          corrupted.runtime_s = std::numeric_limits<double>::quiet_NaN();
          corrupted.throughput = corrupted.runtime_s;
          corrupted.latency_s = corrupted.runtime_s;
          return corrupted;
        }
      }
    }
  }
  const Report report = Simulate(graph, partition);
  if (!report.statically_valid) {
    return EvalResult::Invalid(EvalFailure::kStaticConstraint);
  }
  if (report.oom) return EvalResult::Invalid(EvalFailure::kOutOfMemory);
  return EvalResult::Valid(report.runtime_s, report.latency_s);
}

}  // namespace mcm
