// Simulated multi-chip TPU package: the reproduction's stand-in for the
// paper's real 36-die hardware.
//
// The simulator exercises every behaviour the paper needs from hardware:
//
//  * Dynamic constraint H(G, f): each chiplet has a fixed SRAM budget that
//    must hold resident weights plus peak live activations under the chip's
//    local schedule.  Exceeding it is an out-of-memory failure -- a
//    partition that passed all static constraints can still be invalid,
//    exactly the ~13.5% hardware-invalid rate of Figure 7.
//
//  * A richer performance model than the analytical one: per-op achievable
//    utilization depends on arithmetic intensity, cross-chip transfers pay
//    a fixed per-transfer overhead, multi-hop transfers occupy every ring
//    link they traverse (the analytical model only counts endpoint bytes),
//    and chips near their memory limit pay a spill penalty.  This produces
//    the strong-but-imperfect correlation with the analytical model
//    (Pearson ~0.9) that the paper's calibration study reports.
//
//  * Deterministic "measurement" noise keyed on (graph, partition), so the
//    same partition always measures the same but distinct partitions with
//    equal analytical cost measure differently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace mcm {

class HardwareSim final : public CostModel {
 public:
  struct Options {
    McmConfig mcm;
    // Multiplicative measurement noise (lognormal sigma); 0 disables.
    double noise_stddev = 0.03;
    // Memory-pressure spill model: above `threshold` x SRAM the chip's
    // compute time scales by up to 1 + `penalty` at 100% usage.
    double mem_pressure_threshold = 0.80;
    double mem_pressure_penalty = 1.5;
    // Arithmetic-intensity roofline knee (flops per byte moved): ops below
    // the knee are bandwidth-bound and reach proportionally lower compute
    // utilization.  The analytical model assumes a flat utilization, which
    // is the main source of its prediction error.
    double intensity_knee_flops_per_byte = 16.0;
    std::uint64_t noise_seed = 0x8c5f1d3a2e94b7c6ULL;
  };

  HardwareSim() : HardwareSim(Options{}) {}
  explicit HardwareSim(Options options) : options_(options) {}

  // Detailed simulation outcome, exposed for tests, examples, and the
  // calibration bench.
  struct ChipReport {
    double compute_s = 0.0;        // Compute incl. utilization effects.
    double transfer_s = 0.0;       // Endpoint (ingress+egress) time.
    double peak_memory_bytes = 0.0;
    double param_bytes = 0.0;
    int num_nodes = 0;
  };
  struct Report {
    bool statically_valid = false;
    bool oom = false;
    int first_oom_chip = -1;
    double runtime_s = 0.0;  // Bottleneck interval including noise.
    double latency_s = 0.0;  // End-to-end pipeline fill including noise.
    double bottleneck_link_s = 0.0;
    std::vector<ChipReport> chips;
    std::vector<double> link_bytes;  // Traffic per ring link d -> d+1.
  };

  Report Simulate(const Graph& graph, const Partition& partition) const;

  // CostModel interface: wraps Simulate into valid/invalid + throughput.
  EvalResult Evaluate(const Graph& graph, const Partition& partition) override;
  std::string name() const override { return "hwsim"; }

  const Options& options() const { return options_; }

 private:
  const Options options_;
};

}  // namespace mcm
