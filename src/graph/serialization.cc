// Text serialization for Graph.
//
// Format (line oriented, '#' comments allowed):
//   graph <name-with-no-spaces-or-quoted>
//   nodes <N>
//   node <id> <op-int> <flops> <output_bytes> <param_bytes> <name...>
//   edges <M>
//   edge <src> <dst>
//   end
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/graph.h"

namespace mcm {
namespace {

[[noreturn]] void ParseError(const std::string& what, const std::string& line) {
  throw std::runtime_error("Graph::Deserialize: " + what + " at line: '" +
                           line + "'");
}

// Reads the next non-empty, non-comment line; returns false at EOF.
bool NextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void Graph::Serialize(std::ostream& os) const {
  // Exact double round-trips through text.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "graph " << (name_.empty() ? "unnamed" : name_) << "\n";
  os << "nodes " << NumNodes() << "\n";
  for (const Node& n : nodes_) {
    os << "node " << n.id << " " << static_cast<int>(n.op) << " "
       << n.compute_flops << " " << n.output_bytes << " " << n.param_bytes
       << " " << (n.name.empty() ? "unnamed" : n.name) << "\n";
  }
  os << "edges " << NumEdges() << "\n";
  for (const Edge& e : edges_) {
    os << "edge " << e.src << " " << e.dst << "\n";
  }
  os << "end\n";
}

Graph Graph::Deserialize(std::istream& is) {
  std::string line;
  if (!NextLine(is, line)) ParseError("empty input", "");
  std::istringstream header(line);
  std::string keyword, name;
  header >> keyword >> name;
  if (keyword != "graph") ParseError("expected 'graph'", line);
  Graph g(name);

  if (!NextLine(is, line)) ParseError("missing 'nodes'", "");
  std::istringstream nodes_hdr(line);
  int num_nodes = -1;
  nodes_hdr >> keyword >> num_nodes;
  if (keyword != "nodes" || num_nodes < 0) ParseError("expected 'nodes N'", line);

  for (int i = 0; i < num_nodes; ++i) {
    if (!NextLine(is, line)) ParseError("truncated node list", "");
    std::istringstream node_line(line);
    int id = -1, op_int = -1;
    double flops = 0.0, out_bytes = 0.0, param_bytes = 0.0;
    std::string node_name;
    node_line >> keyword >> id >> op_int >> flops >> out_bytes >> param_bytes >>
        node_name;
    if (keyword != "node" || id != i) ParseError("bad node record", line);
    if (op_int < 0 || op_int >= kNumOpTypes) ParseError("bad op type", line);
    g.AddNode(static_cast<OpType>(op_int), node_name, flops, out_bytes,
              param_bytes);
  }

  if (!NextLine(is, line)) ParseError("missing 'edges'", "");
  std::istringstream edges_hdr(line);
  int num_edges = -1;
  edges_hdr >> keyword >> num_edges;
  if (keyword != "edges" || num_edges < 0) ParseError("expected 'edges M'", line);

  for (int i = 0; i < num_edges; ++i) {
    if (!NextLine(is, line)) ParseError("truncated edge list", "");
    std::istringstream edge_line(line);
    int src = -1, dst = -1;
    edge_line >> keyword >> src >> dst;
    if (keyword != "edge" || src < 0 || dst < 0 || src >= num_nodes ||
        dst >= num_nodes) {
      ParseError("bad edge record", line);
    }
    g.AddEdge(src, dst);
  }

  if (!NextLine(is, line) || line.rfind("end", 0) != 0) {
    ParseError("missing 'end'", line);
  }
  return g;
}

}  // namespace mcm
