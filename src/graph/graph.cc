#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <queue>
#include <sstream>

#include "common/logging.h"

namespace mcm {

std::uint64_t NextGraphUid() {
  // Starts at 1 so 0 stays available as "no graph bound" in cache keys.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string_view OpTypeName(OpType op) {
  switch (op) {
    case OpType::kInput: return "Input";
    case OpType::kConstant: return "Constant";
    case OpType::kConv2d: return "Conv2d";
    case OpType::kDepthwiseConv2d: return "DepthwiseConv2d";
    case OpType::kMatMul: return "MatMul";
    case OpType::kAdd: return "Add";
    case OpType::kMul: return "Mul";
    case OpType::kRelu: return "Relu";
    case OpType::kGelu: return "Gelu";
    case OpType::kTanh: return "Tanh";
    case OpType::kSigmoid: return "Sigmoid";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kMaxPool: return "MaxPool";
    case OpType::kAvgPool: return "AvgPool";
    case OpType::kBatchNorm: return "BatchNorm";
    case OpType::kLayerNorm: return "LayerNorm";
    case OpType::kConcat: return "Concat";
    case OpType::kSplit: return "Split";
    case OpType::kEmbedding: return "Embedding";
    case OpType::kReshape: return "Reshape";
    case OpType::kTranspose: return "Transpose";
    case OpType::kReduce: return "Reduce";
    case OpType::kOutput: return "Output";
  }
  return "Unknown";
}

int Graph::AddNode(OpType op, std::string name, double compute_flops,
                   double output_bytes, double param_bytes) {
  const int id = NumNodes();
  nodes_.push_back(Node{id, op, std::move(name), compute_flops, output_bytes,
                        param_bytes});
  succs_.emplace_back();
  preds_.emplace_back();
  uid_ = NextGraphUid();
  return id;
}

void Graph::AddEdge(int src, int dst) {
  MCM_CHECK_GE(src, 0);
  MCM_CHECK_GE(dst, 0);
  MCM_CHECK_LT(src, NumNodes());
  MCM_CHECK_LT(dst, NumNodes());
  MCM_CHECK_NE(src, dst) << "self-edge on node " << src;
  if (HasEdge(src, dst)) return;
  edges_.push_back(Edge{src, dst});
  succs_[static_cast<size_t>(src)].push_back(dst);
  preds_[static_cast<size_t>(dst)].push_back(src);
  uid_ = NextGraphUid();
}

bool Graph::HasEdge(int src, int dst) const {
  const auto& out = succs_[static_cast<size_t>(src)];
  return std::find(out.begin(), out.end(), dst) != out.end();
}

double Graph::TotalFlops() const {
  double total = 0.0;
  for (const Node& n : nodes_) total += n.compute_flops;
  return total;
}

double Graph::TotalParamBytes() const {
  double total = 0.0;
  for (const Node& n : nodes_) total += n.param_bytes;
  return total;
}

double Graph::TotalOutputBytes() const {
  double total = 0.0;
  for (const Node& n : nodes_) total += n.output_bytes;
  return total;
}

std::vector<int> Graph::TopologicalOrder() const {
  std::vector<int> indeg(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    indeg[i] = InDegree(static_cast<int>(i));
  }
  // Min-heap over ready node ids keeps the order deterministic.
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) ready.push(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const int u = ready.top();
    ready.pop();
    order.push_back(u);
    for (int v : Successors(u)) {
      if (--indeg[static_cast<size_t>(v)] == 0) ready.push(v);
    }
  }
  MCM_CHECK_EQ(order.size(), nodes_.size()) << "graph has a cycle";
  return order;
}

std::vector<int> Graph::Depths() const {
  std::vector<int> depth(nodes_.size(), 0);
  for (int u : TopologicalOrder()) {
    for (int v : Successors(u)) {
      depth[static_cast<size_t>(v)] =
          std::max(depth[static_cast<size_t>(v)], depth[static_cast<size_t>(u)] + 1);
    }
  }
  return depth;
}

int Graph::CriticalPathLength() const {
  const std::vector<int> depth = Depths();
  int best = 0;
  for (int d : depth) best = std::max(best, d);
  return best;
}

bool Graph::IsAcyclic() const {
  std::vector<int> indeg(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    indeg[i] = InDegree(static_cast<int>(i));
  }
  std::vector<int> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  size_t visited = 0;
  while (!ready.empty()) {
    const int u = ready.back();
    ready.pop_back();
    ++visited;
    for (int v : Successors(u)) {
      if (--indeg[static_cast<size_t>(v)] == 0) ready.push_back(v);
    }
  }
  return visited == nodes_.size();
}

std::string Graph::Validate() const {
  for (const Node& n : nodes_) {
    if (n.compute_flops < 0.0 || n.output_bytes < 0.0 || n.param_bytes < 0.0) {
      std::ostringstream os;
      os << "node " << n.id << " (" << n.name << ") has negative resources";
      return os.str();
    }
  }
  if (!IsAcyclic()) return "graph contains a cycle";
  return "";
}

void Graph::WriteDot(std::ostream& os) const {
  os << "digraph \"" << name_ << "\" {\n";
  for (const Node& n : nodes_) {
    os << "  n" << n.id << " [label=\"" << n.name << "\\n"
       << OpTypeName(n.op) << "\"];\n";
  }
  for (const Edge& e : edges_) {
    os << "  n" << e.src << " -> n" << e.dst << ";\n";
  }
  os << "}\n";
}

}  // namespace mcm
