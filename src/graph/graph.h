// Computation-graph representation of an ML workload.
//
// A `Graph` is the directed acyclic graph G = (V, E) of Section 3 of the
// paper: vertices are tensor operations annotated with the resources the
// cost models need (compute FLOPs, output-tensor bytes, resident parameter
// bytes), and edges are data dependencies.  The multi-chip partitioning
// problem maps V onto the chip set D = {0..C-1}.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mcm {

// Operation kinds found in the production-style model corpus.  The exact
// set matters only for (a) per-op cost shaping in the generators and
// (b) the one-hot slice of the GNN node features.
enum class OpType : std::uint8_t {
  kInput = 0,
  kConstant,
  kConv2d,
  kDepthwiseConv2d,
  kMatMul,
  kAdd,
  kMul,
  kRelu,
  kGelu,
  kTanh,
  kSigmoid,
  kSoftmax,
  kMaxPool,
  kAvgPool,
  kBatchNorm,
  kLayerNorm,
  kConcat,
  kSplit,
  kEmbedding,
  kReshape,
  kTranspose,
  kReduce,
  kOutput,
};

inline constexpr int kNumOpTypes = static_cast<int>(OpType::kOutput) + 1;

std::string_view OpTypeName(OpType op);

// One tensor operation.  Plain data: resource annotations have no invariant
// beyond non-negativity, which `Graph::Validate` checks.
struct Node {
  int id = -1;
  OpType op = OpType::kInput;
  std::string name;
  double compute_flops = 0.0;  // Arithmetic work of the op.
  double output_bytes = 0.0;   // Size of the produced tensor.
  double param_bytes = 0.0;    // Weights resident on the op's chip.
};

struct Edge {
  int src = -1;
  int dst = -1;
  friend bool operator==(const Edge&, const Edge&) = default;
};

// Process-unique id for graph-content versioning; every call returns a
// fresh value.  See Graph::uid().
std::uint64_t NextGraphUid();

// A DAG of operations.  Node ids are dense [0, NumNodes()).  Construction is
// append-only (AddNode/AddEdge); analyses (topological order, depths,
// validation) are computed on demand.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Content-version tag for caches keyed on a graph (eval memo cache,
  // embedding cache, delta evaluators).  Every mutation entry point
  // (AddNode, AddEdge, mutable_node) assigns a fresh process-unique value,
  // so two graphs observed with equal uids have identical evaluation-
  // relevant content.  Copies keep the uid (their content is identical);
  // set_name does not bump it (no evaluation depends on the name).
  std::uint64_t uid() const { return uid_; }

  // Appends a node and returns its id.
  int AddNode(OpType op, std::string name, double compute_flops,
              double output_bytes, double param_bytes = 0.0);

  // Adds a dependency edge src -> dst.  Duplicate edges are ignored.
  // Requires both ids valid and src != dst.
  void AddEdge(int src, int dst);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& mutable_node(int id) {
    uid_ = NextGraphUid();  // The caller may write through the reference.
    return nodes_[static_cast<size_t>(id)];
  }
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const Edge> edges() const { return edges_; }

  std::span<const int> Successors(int id) const {
    return succs_[static_cast<size_t>(id)];
  }
  std::span<const int> Predecessors(int id) const {
    return preds_[static_cast<size_t>(id)];
  }
  bool HasEdge(int src, int dst) const;

  int InDegree(int id) const {
    return static_cast<int>(preds_[static_cast<size_t>(id)].size());
  }
  int OutDegree(int id) const {
    return static_cast<int>(succs_[static_cast<size_t>(id)].size());
  }

  // Aggregate resource totals over all nodes.
  double TotalFlops() const;
  double TotalParamBytes() const;
  double TotalOutputBytes() const;

  // A topological order of node ids (Kahn's algorithm, deterministic:
  // smallest-id-first among ready nodes).  Requires IsAcyclic().
  std::vector<int> TopologicalOrder() const;

  // Longest-path depth of each node from any source (sources have depth 0).
  std::vector<int> Depths() const;

  // Length of the longest path in the DAG, in edges; 0 for edgeless graphs.
  int CriticalPathLength() const;

  bool IsAcyclic() const;

  // Checks structural sanity: acyclicity, non-negative resources, ids dense.
  // Returns an empty string when valid, else a description of the problem.
  std::string Validate() const;

  // Graphviz DOT rendering, for debugging and documentation.
  void WriteDot(std::ostream& os) const;

  // Line-oriented text serialization (stable across versions; see
  // serialization.cc for the format).
  void Serialize(std::ostream& os) const;
  static Graph Deserialize(std::istream& is);  // Throws on parse errors.

 private:
  std::string name_;
  std::uint64_t uid_ = NextGraphUid();
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> succs_;
  std::vector<std::vector<int>> preds_;
};

}  // namespace mcm
