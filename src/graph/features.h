// Node feature extraction for the GraphSAGE feature network.
//
// Each node is encoded as a fixed-width float vector: a one-hot of its op
// type plus log-scaled resource annotations and structural features
// (degrees, topological depth fraction).  Features are normalized per graph
// so the policy transfers across graphs with very different absolute scales
// (the key to the paper's pre-training generalization).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace mcm {

// One-hot op type + {log flops, log output bytes, log param bytes,
// in-degree, out-degree, depth fraction}.
inline constexpr int kNumScalarFeatures = 6;
inline constexpr int kNodeFeatureDim = kNumOpTypes + kNumScalarFeatures;

// Row-major [NumNodes x kNodeFeatureDim] feature matrix.
std::vector<float> ExtractNodeFeatures(const Graph& graph);

}  // namespace mcm
