#include "graph/features.h"

#include <algorithm>
#include <cmath>

namespace mcm {
namespace {

// log1p compressed and scaled to roughly [0, 1] for resource magnitudes that
// span many orders of magnitude (a Gelu over 2 M values vs a 4 GFLOP MatMul).
float LogScale(double value, double max_value) {
  if (max_value <= 0.0) return 0.0;
  return static_cast<float>(std::log1p(value) / std::log1p(max_value));
}

}  // namespace

std::vector<float> ExtractNodeFeatures(const Graph& graph) {
  const int n = graph.NumNodes();
  std::vector<float> features(static_cast<std::size_t>(n) * kNodeFeatureDim,
                              0.0f);
  if (n == 0) return features;

  double max_flops = 0.0, max_out = 0.0, max_params = 0.0;
  int max_in = 1, max_out_deg = 1;
  for (const Node& node : graph.nodes()) {
    max_flops = std::max(max_flops, node.compute_flops);
    max_out = std::max(max_out, node.output_bytes);
    max_params = std::max(max_params, node.param_bytes);
    max_in = std::max(max_in, graph.InDegree(node.id));
    max_out_deg = std::max(max_out_deg, graph.OutDegree(node.id));
  }
  const std::vector<int> depths = graph.Depths();
  const int max_depth = std::max(1, graph.CriticalPathLength());

  for (const Node& node : graph.nodes()) {
    float* row = &features[static_cast<std::size_t>(node.id) * kNodeFeatureDim];
    row[static_cast<int>(node.op)] = 1.0f;
    float* scalars = row + kNumOpTypes;
    scalars[0] = LogScale(node.compute_flops, max_flops);
    scalars[1] = LogScale(node.output_bytes, max_out);
    scalars[2] = LogScale(node.param_bytes, max_params);
    scalars[3] = static_cast<float>(graph.InDegree(node.id)) /
                 static_cast<float>(max_in);
    scalars[4] = static_cast<float>(graph.OutDegree(node.id)) /
                 static_cast<float>(max_out_deg);
    scalars[5] = static_cast<float>(depths[static_cast<std::size_t>(node.id)]) /
                 static_cast<float>(max_depth);
  }
  return features;
}

}  // namespace mcm
