#include "graph/generators.h"

#include <cmath>
#include <initializer_list>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace mcm {
namespace {

double ActBytes(double values) { return values * kActivationBytesPerValue; }
double WeightBytes(double params) { return params * kWeightBytesPerValue; }

// Thin builder: creates nodes and wires predecessor edges in one call.
class Builder {
 public:
  explicit Builder(std::string name) : graph_(std::move(name)) {}

  int Op(OpType op, const std::string& name, double flops, double out_values,
         double params, std::initializer_list<int> preds) {
    const int id = graph_.AddNode(op, name, flops, ActBytes(out_values),
                                  WeightBytes(params));
    for (int p : preds) graph_.AddEdge(p, id);
    return id;
  }

  int Op(OpType op, const std::string& name, double flops, double out_values,
         double params, const std::vector<int>& preds) {
    const int id = graph_.AddNode(op, name, flops, ActBytes(out_values),
                                  WeightBytes(params));
    for (int p : preds) graph_.AddEdge(p, id);
    return id;
  }

  Graph Finish() && { return std::move(graph_); }
  int NumNodes() const { return graph_.NumNodes(); }

 private:
  Graph graph_;
};

// Appends a dense layer (MatMul + bias Add + optional activation); returns
// the id of the last node.  `in` and `out` are vector widths; `batch` scales
// both FLOPs and activation sizes (sequence length for recurrent models).
int DenseLayer(Builder& b, const std::string& prefix, int input_node,
               double batch, double in, double out, OpType activation) {
  const int mm = b.Op(OpType::kMatMul, prefix + "/matmul", 2.0 * batch * in * out,
                      batch * out, in * out, {input_node});
  const int bias =
      b.Op(OpType::kAdd, prefix + "/bias", batch * out, batch * out, out, {mm});
  if (activation == OpType::kOutput) return bias;  // Sentinel: no activation.
  return b.Op(activation, prefix + "/act", batch * out, batch * out, 0.0,
              {bias});
}

// Appends Conv2d + BatchNorm + Relu; returns the Relu id.
int ConvBnRelu(Builder& b, const std::string& prefix, int input_node, int h,
               int w, int cin, int cout, int kernel, int stride = 1) {
  const int oh = h / stride;
  const int ow = w / stride;
  const double out_values = static_cast<double>(oh) * ow * cout;
  const double flops =
      2.0 * oh * ow * static_cast<double>(cout) * cin * kernel * kernel;
  const double params = static_cast<double>(cin) * cout * kernel * kernel;
  const int conv = b.Op(OpType::kConv2d, prefix + "/conv", flops, out_values,
                        params, {input_node});
  const int bn = b.Op(OpType::kBatchNorm, prefix + "/bn", 4.0 * out_values,
                      out_values, 4.0 * cout, {conv});
  return b.Op(OpType::kRelu, prefix + "/relu", out_values, out_values, 0.0,
              {bn});
}

}  // namespace

Graph MakeMlp(const std::string& name, int input_dim,
              const std::vector<int>& hidden_dims, int output_dim) {
  MCM_CHECK_GT(input_dim, 0);
  MCM_CHECK_GT(output_dim, 0);
  Builder b(name);
  int cur = b.Op(OpType::kInput, "input", 0.0, input_dim, 0.0, {});
  double in = input_dim;
  for (std::size_t i = 0; i < hidden_dims.size(); ++i) {
    const double out = hidden_dims[i];
    cur = DenseLayer(b, "fc" + std::to_string(i), cur, 1.0, in, out,
                     OpType::kRelu);
    in = out;
  }
  cur = DenseLayer(b, "logits", cur, 1.0, in, output_dim, OpType::kOutput);
  cur = b.Op(OpType::kSoftmax, "softmax", 5.0 * output_dim, output_dim, 0.0,
             {cur});
  b.Op(OpType::kOutput, "output", 0.0, output_dim, 0.0, {cur});
  return std::move(b).Finish();
}

Graph MakeCnn(const std::string& name, const CnnConfig& config) {
  Builder b(name);
  int h = config.image_size;
  int w = config.image_size;
  int channels = config.in_channels;
  int cur = b.Op(OpType::kInput, "image", 0.0,
                 static_cast<double>(h) * w * channels, 0.0, {});
  int next_channels = config.base_channels;
  for (int stage = 0; stage < config.num_stages; ++stage) {
    for (int block = 0; block < config.blocks_per_stage; ++block) {
      const std::string prefix =
          "s" + std::to_string(stage) + "b" + std::to_string(block);
      cur = ConvBnRelu(b, prefix, cur, h, w, channels, next_channels, 3);
      channels = next_channels;
    }
    const double pooled = static_cast<double>(h / 2) * (w / 2) * channels;
    cur = b.Op(OpType::kMaxPool, "s" + std::to_string(stage) + "/pool",
               static_cast<double>(h) * w * channels, pooled, 0.0, {cur});
    h /= 2;
    w /= 2;
    next_channels *= 2;
  }
  const double feat_values = static_cast<double>(h) * w * channels;
  cur = b.Op(OpType::kAvgPool, "gap", feat_values, channels, 0.0, {cur});
  cur = b.Op(OpType::kReshape, "flatten", 0.0, channels, 0.0, {cur});
  cur = DenseLayer(b, "fc", cur, 1.0, channels, config.fc_dim, OpType::kRelu);
  cur = DenseLayer(b, "logits", cur, 1.0, config.fc_dim, config.num_classes,
                   OpType::kOutput);
  cur = b.Op(OpType::kSoftmax, "softmax", 5.0 * config.num_classes,
             config.num_classes, 0.0, {cur});
  b.Op(OpType::kOutput, "output", 0.0, config.num_classes, 0.0, {cur});
  return std::move(b).Finish();
}

Graph MakeResNet(const std::string& name, const ResNetConfig& config) {
  Builder b(name);
  int h = config.image_size / 2;
  int w = config.image_size / 2;
  int channels = config.base_channels;
  int cur = b.Op(OpType::kInput, "image", 0.0,
                 static_cast<double>(config.image_size) * config.image_size * 3,
                 0.0, {});
  cur = ConvBnRelu(b, "stem", cur, config.image_size, config.image_size, 3,
                   channels, 7, 2);
  for (int stage = 0; stage < config.num_stages; ++stage) {
    const int out_channels = config.base_channels << stage;
    for (int block = 0; block < config.blocks_per_stage; ++block) {
      const std::string prefix =
          "s" + std::to_string(stage) + "b" + std::to_string(block);
      const int stride = (block == 0 && stage > 0) ? 2 : 1;
      int skip = cur;
      if (stride != 1 || channels != out_channels) {
        // Projection shortcut.
        const int oh = h / stride, ow = w / stride;
        skip = b.Op(OpType::kConv2d, prefix + "/proj",
                    2.0 * oh * ow * static_cast<double>(out_channels) * channels,
                    static_cast<double>(oh) * ow * out_channels,
                    static_cast<double>(channels) * out_channels, {cur});
      }
      cur = ConvBnRelu(b, prefix + "/a", cur, h, w, channels, out_channels, 3,
                       stride);
      h /= stride;
      w /= stride;
      // Second conv of the block, pre-activation of the residual Add.
      const double out_values = static_cast<double>(h) * w * out_channels;
      const int conv2 =
          b.Op(OpType::kConv2d, prefix + "/b/conv",
               2.0 * h * w * static_cast<double>(out_channels) * out_channels * 9,
               out_values, static_cast<double>(out_channels) * out_channels * 9,
               {cur});
      const int bn2 = b.Op(OpType::kBatchNorm, prefix + "/b/bn",
                           4.0 * out_values, out_values, 4.0 * out_channels,
                           {conv2});
      const int add = b.Op(OpType::kAdd, prefix + "/residual", out_values,
                           out_values, 0.0, {bn2, skip});
      cur = b.Op(OpType::kRelu, prefix + "/relu", out_values, out_values, 0.0,
                 {add});
      channels = out_channels;
    }
  }
  cur = b.Op(OpType::kAvgPool, "gap", static_cast<double>(h) * w * channels,
             channels, 0.0, {cur});
  cur = DenseLayer(b, "logits", cur, 1.0, channels, config.num_classes,
                   OpType::kOutput);
  cur = b.Op(OpType::kSoftmax, "softmax", 5.0 * config.num_classes,
             config.num_classes, 0.0, {cur});
  b.Op(OpType::kOutput, "output", 0.0, config.num_classes, 0.0, {cur});
  return std::move(b).Finish();
}

Graph MakeInception(const std::string& name, const InceptionConfig& config) {
  Builder b(name);
  int h = config.image_size / 2;
  int w = config.image_size / 2;
  int channels = config.base_channels;
  int cur = b.Op(OpType::kInput, "image", 0.0,
                 static_cast<double>(config.image_size) * config.image_size * 3,
                 0.0, {});
  cur = ConvBnRelu(b, "stem", cur, config.image_size, config.image_size, 3,
                   channels, 7, 2);
  for (int m = 0; m < config.num_modules; ++m) {
    const std::string prefix = "mod" + std::to_string(m);
    const int branch_channels = channels / 2;
    const double branch_values = static_cast<double>(h) * w * branch_channels;
    // 1x1 branch.
    const int b1 = ConvBnRelu(b, prefix + "/b1", cur, h, w, channels,
                              branch_channels, 1);
    // 1x1 -> 3x3 branch.
    int b2 = ConvBnRelu(b, prefix + "/b2a", cur, h, w, channels,
                        branch_channels, 1);
    b2 = ConvBnRelu(b, prefix + "/b2b", b2, h, w, branch_channels,
                    branch_channels, 3);
    // 1x1 -> 5x5 branch.
    int b3 = ConvBnRelu(b, prefix + "/b3a", cur, h, w, channels,
                        branch_channels, 1);
    b3 = ConvBnRelu(b, prefix + "/b3b", b3, h, w, branch_channels,
                    branch_channels, 5);
    // pool -> 1x1 branch.
    int b4 = b.Op(OpType::kMaxPool, prefix + "/b4pool",
                  static_cast<double>(h) * w * channels,
                  static_cast<double>(h) * w * channels, 0.0, {cur});
    b4 = ConvBnRelu(b, prefix + "/b4", b4, h, w, channels, branch_channels, 1);
    cur = b.Op(OpType::kConcat, prefix + "/concat", 0.0, 4.0 * branch_values,
               0.0, {b1, b2, b3, b4});
    channels = 4 * branch_channels;
    if (m % 2 == 1) {
      cur = b.Op(OpType::kMaxPool, prefix + "/down",
                 static_cast<double>(h) * w * channels,
                 static_cast<double>(h / 2) * (w / 2) * channels, 0.0, {cur});
      h /= 2;
      w /= 2;
    }
  }
  cur = b.Op(OpType::kAvgPool, "gap", static_cast<double>(h) * w * channels,
             channels, 0.0, {cur});
  cur = DenseLayer(b, "logits", cur, 1.0, channels, config.num_classes,
                   OpType::kOutput);
  cur = b.Op(OpType::kSoftmax, "softmax", 5.0 * config.num_classes,
             config.num_classes, 0.0, {cur});
  b.Op(OpType::kOutput, "output", 0.0, config.num_classes, 0.0, {cur});
  return std::move(b).Finish();
}

Graph MakeRnn(const std::string& name, int time_steps, int input_dim,
              int hidden_dim, int output_dim) {
  MCM_CHECK_GT(time_steps, 0);
  Builder b(name);
  int h = b.Op(OpType::kConstant, "h0", 0.0, hidden_dim, 0.0, {});
  for (int t = 0; t < time_steps; ++t) {
    const std::string prefix = "t" + std::to_string(t);
    const int x = b.Op(OpType::kInput, prefix + "/x", 0.0, input_dim, 0.0, {});
    const int wx = b.Op(OpType::kMatMul, prefix + "/wx",
                        2.0 * input_dim * hidden_dim, hidden_dim,
                        static_cast<double>(input_dim) * hidden_dim, {x});
    const int uh = b.Op(OpType::kMatMul, prefix + "/uh",
                        2.0 * hidden_dim * hidden_dim, hidden_dim,
                        static_cast<double>(hidden_dim) * hidden_dim, {h});
    const int sum = b.Op(OpType::kAdd, prefix + "/sum", hidden_dim, hidden_dim,
                         hidden_dim, {wx, uh});
    h = b.Op(OpType::kTanh, prefix + "/tanh", hidden_dim, hidden_dim, 0.0,
             {sum});
  }
  int cur = DenseLayer(b, "logits", h, 1.0, hidden_dim, output_dim,
                       OpType::kOutput);
  cur = b.Op(OpType::kSoftmax, "softmax", 5.0 * output_dim, output_dim, 0.0,
             {cur});
  b.Op(OpType::kOutput, "output", 0.0, output_dim, 0.0, {cur});
  return std::move(b).Finish();
}

namespace {

// One LSTM step; returns {h, c} node ids.  Gates use a fused input-and-
// recurrent MatMul per gate plus bias and nonlinearity.
std::pair<int, int> LstmStep(Builder& b, const std::string& prefix, int x,
                             int h_prev, int c_prev, int input_dim,
                             int hidden_dim) {
  const double gate_params =
      static_cast<double>(input_dim + hidden_dim) * hidden_dim;
  const double gate_flops = 2.0 * (input_dim + hidden_dim) * hidden_dim;
  auto gate = [&](const std::string& gate_name, OpType act) {
    const int mm = b.Op(OpType::kMatMul, prefix + "/" + gate_name + "/mm",
                        gate_flops, hidden_dim, gate_params, {x, h_prev});
    const int bias = b.Op(OpType::kAdd, prefix + "/" + gate_name + "/bias",
                          hidden_dim, hidden_dim, hidden_dim, {mm});
    return b.Op(act, prefix + "/" + gate_name + "/act", hidden_dim, hidden_dim,
                0.0, {bias});
  };
  const int i = gate("i", OpType::kSigmoid);
  const int f = gate("f", OpType::kSigmoid);
  const int g = gate("g", OpType::kTanh);
  const int o = gate("o", OpType::kSigmoid);
  const int fc = b.Op(OpType::kMul, prefix + "/f*c", hidden_dim, hidden_dim,
                      0.0, {f, c_prev});
  const int ig = b.Op(OpType::kMul, prefix + "/i*g", hidden_dim, hidden_dim,
                      0.0, {i, g});
  const int c = b.Op(OpType::kAdd, prefix + "/c", hidden_dim, hidden_dim, 0.0,
                     {fc, ig});
  const int tanh_c = b.Op(OpType::kTanh, prefix + "/tanh_c", hidden_dim,
                          hidden_dim, 0.0, {c});
  const int h = b.Op(OpType::kMul, prefix + "/h", hidden_dim, hidden_dim, 0.0,
                     {o, tanh_c});
  return {h, c};
}

}  // namespace

Graph MakeLstm(const std::string& name, int time_steps, int input_dim,
               int hidden_dim, int output_dim) {
  MCM_CHECK_GT(time_steps, 0);
  Builder b(name);
  int h = b.Op(OpType::kConstant, "h0", 0.0, hidden_dim, 0.0, {});
  int c = b.Op(OpType::kConstant, "c0", 0.0, hidden_dim, 0.0, {});
  for (int t = 0; t < time_steps; ++t) {
    const std::string prefix = "t" + std::to_string(t);
    const int x = b.Op(OpType::kInput, prefix + "/x", 0.0, input_dim, 0.0, {});
    std::tie(h, c) = LstmStep(b, prefix, x, h, c, input_dim, hidden_dim);
  }
  int cur = DenseLayer(b, "logits", h, 1.0, hidden_dim, output_dim,
                       OpType::kOutput);
  cur = b.Op(OpType::kSoftmax, "softmax", 5.0 * output_dim, output_dim, 0.0,
             {cur});
  b.Op(OpType::kOutput, "output", 0.0, output_dim, 0.0, {cur});
  return std::move(b).Finish();
}

Graph MakeSeq2Seq(const std::string& name, int encoder_steps,
                  int decoder_steps, int input_dim, int hidden_dim,
                  int vocab_dim) {
  Builder b(name);
  int h = b.Op(OpType::kConstant, "enc/h0", 0.0, hidden_dim, 0.0, {});
  int c = b.Op(OpType::kConstant, "enc/c0", 0.0, hidden_dim, 0.0, {});
  for (int t = 0; t < encoder_steps; ++t) {
    const std::string prefix = "enc/t" + std::to_string(t);
    const int x = b.Op(OpType::kInput, prefix + "/x", 0.0, input_dim, 0.0, {});
    std::tie(h, c) = LstmStep(b, prefix, x, h, c, input_dim, hidden_dim);
  }
  // Decoder consumes the encoder's final state; each step also emits logits.
  for (int t = 0; t < decoder_steps; ++t) {
    const std::string prefix = "dec/t" + std::to_string(t);
    const int x = b.Op(OpType::kInput, prefix + "/y", 0.0, input_dim, 0.0, {});
    std::tie(h, c) = LstmStep(b, prefix, x, h, c, input_dim, hidden_dim);
    const int logits = DenseLayer(b, prefix + "/proj", h, 1.0, hidden_dim,
                                  vocab_dim, OpType::kOutput);
    const int sm = b.Op(OpType::kSoftmax, prefix + "/softmax", 5.0 * vocab_dim,
                        vocab_dim, 0.0, {logits});
    b.Op(OpType::kOutput, prefix + "/out", 0.0, vocab_dim, 0.0, {sm});
  }
  return std::move(b).Finish();
}

namespace {

// One transformer encoder layer; returns the id of the final LayerNorm.
//
// The attention-mask bias is materialized as a per-layer Constant rather
// than a graph-wide broadcast: a single mask node feeding all layers would
// have consumers on many chips, which the NoC triangle constraint (Eq. 4)
// forbids -- production compilers rematerialize such values per use site.
//
// Node budget: 9 (QKV proj) + 1 (mask) + 16*4 (per-head attention)
// + 1 (concat) + 5 (output proj + dropout + residual + LN)
// + 8 (FFN + dropout) = 88 nodes.
int TransformerLayer(Builder& b, const std::string& prefix, int input_node,
                     const TransformerConfig& cfg) {
  const double seq = cfg.seq_len;
  const double hidden = cfg.hidden_dim;
  const double head_dim = hidden / cfg.num_heads;
  const double proj_flops = 2.0 * seq * hidden * hidden;
  const double proj_params = hidden * hidden;
  const double seq_hidden = seq * hidden;

  auto projection = [&](const std::string& what) {
    const int mm = b.Op(OpType::kMatMul, prefix + "/" + what + "/mm",
                        proj_flops, seq_hidden, proj_params, {input_node});
    const int bias = b.Op(OpType::kAdd, prefix + "/" + what + "/bias",
                          seq_hidden, seq_hidden, hidden, {mm});
    return b.Op(OpType::kReshape, prefix + "/" + what + "/heads", 0.0,
                seq_hidden, 0.0, {bias});
  };
  const int q = projection("q");
  const int k = projection("k");
  const int v = projection("v");
  const int mask = b.Op(OpType::kConstant, prefix + "/mask", 0.0, seq * seq,
                        0.0, {});

  std::vector<int> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(cfg.num_heads));
  for (int head = 0; head < cfg.num_heads; ++head) {
    const std::string hp = prefix + "/h" + std::to_string(head);
    const int scores =
        b.Op(OpType::kMatMul, hp + "/qk", 2.0 * seq * seq * head_dim,
             seq * seq, 0.0, {q, k});
    const int scaled = b.Op(OpType::kMul, hp + "/scale", seq * seq, seq * seq,
                            0.0, {scores});
    const int probs = b.Op(OpType::kSoftmax, hp + "/softmax", 5.0 * seq * seq,
                           seq * seq, 0.0, {scaled, mask});
    head_outputs.push_back(b.Op(OpType::kMatMul, hp + "/av",
                                2.0 * seq * seq * head_dim, seq * head_dim,
                                0.0, {probs, v}));
  }
  const int concat = b.Op(OpType::kConcat, prefix + "/concat", 0.0, seq_hidden,
                          0.0, head_outputs);
  const int out_mm = b.Op(OpType::kMatMul, prefix + "/out/mm", proj_flops,
                          seq_hidden, proj_params, {concat});
  const int out_bias = b.Op(OpType::kAdd, prefix + "/out/bias", seq_hidden,
                            seq_hidden, hidden, {out_mm});
  const int attn_drop = b.Op(OpType::kMul, prefix + "/attn/dropout",
                             seq_hidden, seq_hidden, 0.0, {out_bias});
  const int attn_res = b.Op(OpType::kAdd, prefix + "/attn/residual",
                            seq_hidden, seq_hidden, 0.0,
                            {attn_drop, input_node});
  const int attn_ln = b.Op(OpType::kLayerNorm, prefix + "/attn/ln",
                           8.0 * seq_hidden, seq_hidden, 2.0 * hidden,
                           {attn_res});

  const double ffn = cfg.ffn_dim;
  const int ffn_mm1 = b.Op(OpType::kMatMul, prefix + "/ffn/mm1",
                           2.0 * seq * hidden * ffn, seq * ffn, hidden * ffn,
                           {attn_ln});
  const int ffn_b1 = b.Op(OpType::kAdd, prefix + "/ffn/bias1", seq * ffn,
                          seq * ffn, ffn, {ffn_mm1});
  const int gelu = b.Op(OpType::kGelu, prefix + "/ffn/gelu", 8.0 * seq * ffn,
                        seq * ffn, 0.0, {ffn_b1});
  const int ffn_mm2 = b.Op(OpType::kMatMul, prefix + "/ffn/mm2",
                           2.0 * seq * ffn * hidden, seq_hidden, ffn * hidden,
                           {gelu});
  const int ffn_b2 = b.Op(OpType::kAdd, prefix + "/ffn/bias2", seq_hidden,
                          seq_hidden, hidden, {ffn_mm2});
  const int ffn_drop = b.Op(OpType::kMul, prefix + "/ffn/dropout", seq_hidden,
                            seq_hidden, 0.0, {ffn_b2});
  const int ffn_res = b.Op(OpType::kAdd, prefix + "/ffn/residual", seq_hidden,
                           seq_hidden, 0.0, {ffn_drop, attn_ln});
  return b.Op(OpType::kLayerNorm, prefix + "/ffn/ln", 8.0 * seq_hidden,
              seq_hidden, 2.0 * hidden, {ffn_res});
}

}  // namespace

Graph MakeTransformerEncoder(const std::string& name,
                             const TransformerConfig& cfg) {
  Builder b(name);
  const double seq = cfg.seq_len;
  const double hidden = cfg.hidden_dim;
  const double seq_hidden = seq * hidden;

  // Embedding section: 8 nodes.
  const int ids = b.Op(OpType::kInput, "input_ids", 0.0, seq, 0.0, {});
  const int seg_ids = b.Op(OpType::kInput, "segment_ids", 0.0, seq, 0.0, {});
  const int tok_emb =
      b.Op(OpType::kEmbedding, "embeddings/token", seq_hidden, seq_hidden,
           static_cast<double>(cfg.vocab_size) * hidden, {ids});
  const int seg_emb = b.Op(OpType::kEmbedding, "embeddings/segment",
                           seq_hidden, seq_hidden, 2.0 * hidden, {seg_ids});
  const int pos_emb = b.Op(OpType::kConstant, "embeddings/position", 0.0,
                           seq_hidden, seq * hidden, {});
  const int sum1 = b.Op(OpType::kAdd, "embeddings/add_segment", seq_hidden,
                        seq_hidden, 0.0, {tok_emb, seg_emb});
  const int sum2 = b.Op(OpType::kAdd, "embeddings/add_position", seq_hidden,
                        seq_hidden, 0.0, {sum1, pos_emb});
  int cur = b.Op(OpType::kLayerNorm, "embeddings/ln", 8.0 * seq_hidden,
                 seq_hidden, 2.0 * hidden, {sum2});

  for (int layer = 0; layer < cfg.num_layers; ++layer) {
    cur = TransformerLayer(b, "layer" + std::to_string(layer), cur, cfg);
  }

  // Pooler head (4 nodes): first-token slice -> dense tanh.
  const int cls = b.Op(OpType::kSplit, "pooler/cls", 0.0, hidden, 0.0, {cur});
  const int pool_mm = b.Op(OpType::kMatMul, "pooler/mm", 2.0 * hidden * hidden,
                           hidden, hidden * hidden, {cls});
  const int pool_bias = b.Op(OpType::kAdd, "pooler/bias", hidden, hidden,
                             hidden, {pool_mm});
  const int pooled =
      b.Op(OpType::kTanh, "pooler/tanh", hidden, hidden, 0.0, {pool_bias});
  // Classifier head (4 nodes): NSP-style binary classifier.
  const int cls_mm = b.Op(OpType::kMatMul, "classifier/mm", 2.0 * hidden * 2.0,
                          2.0, hidden * 2.0, {pooled});
  const int cls_bias =
      b.Op(OpType::kAdd, "classifier/bias", 2.0, 2.0, 2.0, {cls_mm});
  const int cls_sm = b.Op(OpType::kSoftmax, "classifier/softmax", 10.0, 2.0,
                          0.0, {cls_bias});
  b.Op(OpType::kOutput, "classifier/output", 0.0, 2.0, 0.0, {cls_sm});
  // MLM head (10 nodes), operating on the ~15% masked positions only (76 of
  // 512 tokens), as production BERT does; the vocabulary projection ties the
  // token-embedding weights, so it contributes FLOPs but no additional
  // parameters.
  const double masked = std::floor(0.15 * seq);
  const int mlm_gather = b.Op(OpType::kSplit, "mlm/gather", 0.0,
                              masked * hidden, 0.0, {cur});
  const int mlm_reshape = b.Op(OpType::kReshape, "mlm/reshape", 0.0,
                               masked * hidden, 0.0, {mlm_gather});
  const int mlm_mm = b.Op(OpType::kMatMul, "mlm/transform/mm",
                          2.0 * masked * hidden * hidden, masked * hidden,
                          hidden * hidden, {mlm_reshape});
  const double masked_hidden = masked * hidden;
  const int mlm_bias = b.Op(OpType::kAdd, "mlm/transform/bias", masked_hidden,
                            masked_hidden, hidden, {mlm_mm});
  const int mlm_gelu = b.Op(OpType::kGelu, "mlm/transform/gelu",
                            8.0 * masked_hidden, masked_hidden, 0.0,
                            {mlm_bias});
  const int mlm_ln = b.Op(OpType::kLayerNorm, "mlm/transform/ln",
                          8.0 * masked_hidden, masked_hidden, 2.0 * hidden,
                          {mlm_gelu});
  const int vocab_mm = b.Op(OpType::kMatMul, "mlm/vocab/mm",
                            2.0 * masked * hidden * cfg.vocab_size,
                            masked * cfg.vocab_size, 0.0, {mlm_ln});
  const int vocab_bias = b.Op(OpType::kAdd, "mlm/vocab/bias",
                              masked * cfg.vocab_size,
                              masked * cfg.vocab_size, cfg.vocab_size,
                              {vocab_mm});
  const int mlm_sm = b.Op(OpType::kSoftmax, "mlm/softmax",
                          5.0 * masked * cfg.vocab_size,
                          masked * cfg.vocab_size, 0.0, {vocab_bias});
  b.Op(OpType::kOutput, "mlm/output", 0.0, masked * cfg.vocab_size, 0.0,
       {mlm_sm});

  return std::move(b).Finish();
}

Graph MakeBert() {
  Graph g = MakeTransformerEncoder("bert", TransformerConfig{});
  // The paper's BERT graph: exactly 2138 nodes.  The decomposition above is
  // sized to produce this count; a regression here means the layer structure
  // changed.
  MCM_CHECK_EQ(g.NumNodes(), 2138);
  return g;
}

std::vector<Graph> MakeCorpus(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> corpus;
  corpus.reserve(87);
  // 87 graphs spread over 7 attention-free families, mirroring the paper's
  // CNN/RNN-heavy production mix.
  auto index_name = [](const char* family, int i) {
    return std::string(family) + "_" + std::to_string(i);
  };
  // 16 MLPs.
  for (int i = 0; i < 16; ++i) {
    const int depth = static_cast<int>(rng.UniformInt(3, 12));
    std::vector<int> dims;
    for (int d = 0; d < depth; ++d) {
      dims.push_back(static_cast<int>(rng.UniformInt(3, 11)) * 64);
    }
    corpus.push_back(MakeMlp(index_name("mlp", i),
                             static_cast<int>(rng.UniformInt(2, 9)) * 64, dims,
                             static_cast<int>(rng.UniformInt(10, 1000))));
  }
  // 16 plain CNNs.
  for (int i = 0; i < 16; ++i) {
    CnnConfig cfg;
    cfg.image_size = 32 << rng.UniformInt(0, 2);  // 32/64/128.
    cfg.base_channels = 16 << rng.UniformInt(0, 2);
    cfg.num_stages = static_cast<int>(rng.UniformInt(2, 4));
    cfg.blocks_per_stage = static_cast<int>(rng.UniformInt(1, 3));
    cfg.fc_dim = static_cast<int>(rng.UniformInt(4, 9)) * 64;
    cfg.num_classes = static_cast<int>(rng.UniformInt(10, 1000));
    corpus.push_back(MakeCnn(index_name("cnn", i), cfg));
  }
  // 14 ResNets.
  for (int i = 0; i < 14; ++i) {
    ResNetConfig cfg;
    cfg.image_size = 64 << rng.UniformInt(0, 2);
    cfg.base_channels = 16 << rng.UniformInt(0, 2);
    cfg.num_stages = static_cast<int>(rng.UniformInt(2, 4));
    cfg.blocks_per_stage = static_cast<int>(rng.UniformInt(1, 3));
    cfg.num_classes = static_cast<int>(rng.UniformInt(10, 1000));
    corpus.push_back(MakeResNet(index_name("resnet", i), cfg));
  }
  // 11 Inception-style models.
  for (int i = 0; i < 11; ++i) {
    InceptionConfig cfg;
    cfg.image_size = 64 << rng.UniformInt(0, 2);
    cfg.base_channels = 32 << rng.UniformInt(0, 2);
    cfg.num_modules = static_cast<int>(rng.UniformInt(2, 6));
    cfg.num_classes = static_cast<int>(rng.UniformInt(10, 1000));
    corpus.push_back(MakeInception(index_name("inception", i), cfg));
  }
  // 12 RNNs.
  for (int i = 0; i < 12; ++i) {
    corpus.push_back(MakeRnn(index_name("rnn", i),
                             static_cast<int>(rng.UniformInt(8, 40)),
                             static_cast<int>(rng.UniformInt(1, 5)) * 64,
                             static_cast<int>(rng.UniformInt(2, 9)) * 64,
                             static_cast<int>(rng.UniformInt(10, 1000))));
  }
  // 10 LSTMs.
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(MakeLstm(index_name("lstm", i),
                              static_cast<int>(rng.UniformInt(4, 20)),
                              static_cast<int>(rng.UniformInt(1, 5)) * 64,
                              static_cast<int>(rng.UniformInt(2, 9)) * 64,
                              static_cast<int>(rng.UniformInt(10, 1000))));
  }
  // 8 seq2seq models.
  for (int i = 0; i < 8; ++i) {
    corpus.push_back(MakeSeq2Seq(index_name("seq2seq", i),
                                 static_cast<int>(rng.UniformInt(4, 12)),
                                 static_cast<int>(rng.UniformInt(4, 12)),
                                 static_cast<int>(rng.UniformInt(1, 5)) * 64,
                                 static_cast<int>(rng.UniformInt(2, 9)) * 64,
                                 static_cast<int>(rng.UniformInt(100, 2000))));
  }
  MCM_CHECK_EQ(corpus.size(), 87u);
  return corpus;
}

DatasetSplit SplitCorpus(std::vector<Graph> corpus, std::uint64_t seed) {
  MCM_CHECK_EQ(corpus.size(), 87u);
  Rng rng(HashCombine(seed, 0x51ab7be5d2c3f4e6ULL));
  std::vector<std::size_t> order(corpus.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  DatasetSplit split;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    Graph& g = corpus[order[rank]];
    if (rank < 66) {
      split.train.push_back(std::move(g));
    } else if (rank < 71) {
      split.validation.push_back(std::move(g));
    } else {
      split.test.push_back(std::move(g));
    }
  }
  return split;
}

}  // namespace mcm
