// Generators for production-style ML computation graphs.
//
// The paper pre-trains on 87 proprietary CNN/RNN/NLP graphs ("tens to
// hundreds of nodes", no attention) and deploys on BERT (2138 nodes, ~340 M
// parameters / ~600 MB).  These generators reproduce that corpus
// synthetically: each family emits the op-level dataflow of a model class
// with realistic FLOP / tensor-byte / parameter-byte annotations, and the
// corpus builder reproduces the paper's 66/5/16 train/validation/test split.
//
// All generators are deterministic in their arguments (and seed, where one
// is taken), so experiments are exactly reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mcm {

// Bytes per value for activations and for weights.  Edge-TPU-style mixed
// quantization: int8 activations, ~14-bit effective weight storage, matching
// the paper's "340 M parameters (600 MB)" for BERT.
inline constexpr double kActivationBytesPerValue = 1.0;
inline constexpr double kWeightBytesPerValue = 1.76;

// --- Feed-forward / vision families ---------------------------------------

// Plain MLP: Input -> [MatMul, Add, Relu] x hidden_dims -> MatMul -> Softmax.
Graph MakeMlp(const std::string& name, int input_dim,
              const std::vector<int>& hidden_dims, int output_dim);

// VGG-style convolutional chain: stages of [Conv, BatchNorm, Relu] blocks
// followed by pooling, then an MLP head.
struct CnnConfig {
  int image_size = 224;
  int in_channels = 3;
  int base_channels = 32;
  int num_stages = 4;
  int blocks_per_stage = 2;
  int fc_dim = 512;
  int num_classes = 100;
};
Graph MakeCnn(const std::string& name, const CnnConfig& config);

// ResNet-style model: stages of residual blocks (two conv-bn-relu branches
// plus a skip Add), strided downsampling between stages.
struct ResNetConfig {
  int image_size = 224;
  int base_channels = 32;
  int num_stages = 3;
  int blocks_per_stage = 2;
  int num_classes = 100;
};
Graph MakeResNet(const std::string& name, const ResNetConfig& config);

// Inception-style model: repeated modules of parallel 1x1/3x3/5x5/pool
// branches merged by Concat.
struct InceptionConfig {
  int image_size = 224;
  int base_channels = 32;
  int num_modules = 4;
  int num_classes = 100;
};
Graph MakeInception(const std::string& name, const InceptionConfig& config);

// --- Recurrent families ----------------------------------------------------

// Vanilla RNN unrolled over time: per step h = tanh(W x + U h + b).
Graph MakeRnn(const std::string& name, int time_steps, int input_dim,
              int hidden_dim, int output_dim);

// LSTM unrolled over time (gates decomposed into matmul/add/sigmoid/tanh/mul
// ops, ~12 nodes per step).
Graph MakeLstm(const std::string& name, int time_steps, int input_dim,
               int hidden_dim, int output_dim);

// Attention-free seq2seq: LSTM encoder feeding an LSTM decoder through the
// final hidden state, with a projection head per decoder step.
Graph MakeSeq2Seq(const std::string& name, int encoder_steps,
                  int decoder_steps, int input_dim, int hidden_dim,
                  int vocab_dim);

// --- Transformers (deployment target; absent from the corpus) --------------

struct TransformerConfig {
  int num_layers = 24;
  int hidden_dim = 1024;
  int num_heads = 16;
  int ffn_dim = 4096;
  int seq_len = 512;
  int vocab_size = 30522;
};

// Transformer encoder with op-level attention decomposition.
Graph MakeTransformerEncoder(const std::string& name,
                             const TransformerConfig& config);

// The paper's deployment workload: BERT with exactly 2138 nodes and ~340 M
// parameters (~600 MB at the mixed quantization above).
Graph MakeBert();

// --- Corpus ----------------------------------------------------------------

// The synthetic stand-in for the paper's 87 production graphs: a seeded mix
// of MLP / CNN / ResNet / Inception / RNN / LSTM / seq2seq models with tens
// to hundreds of nodes each and no attention.
std::vector<Graph> MakeCorpus(std::uint64_t seed = 87);

// The paper's random split of the corpus: 66 train / 5 validation / 16 test.
struct DatasetSplit {
  std::vector<Graph> train;
  std::vector<Graph> validation;
  std::vector<Graph> test;
};
DatasetSplit SplitCorpus(std::vector<Graph> corpus, std::uint64_t seed = 87);

}  // namespace mcm
