// Partition types and validation of the paper's static MCM constraints.
//
// A partition is the mapping f : V -> D of Section 3.  Validity against the
// hardware requires (Equation 5):
//   (2) acyclic dataflow:   f(u) <= f(v) for every edge (u, v)     [1D ring]
//   (3) no skipping chips:  used chips form a prefix {0..K-1}
//   (4) chip triangle:      a direct inter-chip dependency (a, b) cannot
//                           coexist with an indirect chip path a ~> b
// plus the dynamic constraint H(G, f) that only the compiler backend /
// hardware (here: hwsim) can evaluate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mcm {

// Maximum chips representable by the solver's 64-bit domain bitsets; the
// paper's package has 36.
inline constexpr int kMaxChips = 64;

// A (possibly invalid) chip assignment for every node of a graph.
struct Partition {
  // assignment[node] in [0, num_chips), or -1 for "unassigned".
  std::vector<int> assignment;
  int num_chips = 0;

  static Partition Empty(int num_nodes, int num_chips) {
    Partition p;
    p.assignment.assign(static_cast<std::size_t>(num_nodes), -1);
    p.num_chips = num_chips;
    return p;
  }

  int chip(int node) const {
    return assignment[static_cast<std::size_t>(node)];
  }
  bool Complete() const;
  // Highest chip id in use plus one (0 when nothing is assigned).
  int NumChipsUsed() const;

  friend bool operator==(const Partition&, const Partition&) = default;
};

// Which constraint a partition violates (kNone == statically valid).
enum class Violation {
  kNone = 0,
  kIncomplete,       // Some node unassigned or chip id out of range.
  kAcyclicDataflow,  // Equation (2).
  kSkippedChip,      // Equation (3).
  kTriangle,         // Equation (4).
};

std::string_view ViolationName(Violation violation);

// Individual constraint checks.  All require a complete partition.
bool CheckAcyclicDataflow(const Graph& graph, const Partition& partition);
bool CheckNoSkippedChips(const Graph& graph, const Partition& partition);
bool CheckTriangleDependency(const Graph& graph, const Partition& partition);

// Full static validation; returns the first violated constraint.
Violation ValidateStatic(const Graph& graph, const Partition& partition);
inline bool IsStaticallyValid(const Graph& graph, const Partition& p) {
  return ValidateStatic(graph, p) == Violation::kNone;
}

// The chip-level dependency graph: adjacency[a] is the bitset of chips b
// with a direct dependency a -> b induced by some cross-chip edge.
// Unassigned nodes are ignored, so this is usable mid-construction.
std::vector<std::uint64_t> ChipDependencyAdjacency(const Graph& graph,
                                                   const Partition& partition);

// Longest path lengths (in edges) between all chip pairs of the chip
// dependency graph; delta[a][b] < 0 means unreachable.  This is the paper's
// \delta(d0, d1).  Requires the chip graph to be acyclic, which Eq. (2)
// guarantees for monotone partitions.
std::vector<std::vector<int>> ChipLongestPaths(
    const std::vector<std::uint64_t>& adjacency, int num_chips);

// Resource usage per chip under a partition.
struct ChipLoad {
  double compute_flops = 0.0;
  double param_bytes = 0.0;
  // Bytes entering/leaving the chip over cross-chip edges.  An output tensor
  // consumed by k distinct remote chips is sent k times (the ring has no
  // multicast).
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  int num_nodes = 0;
};

std::vector<ChipLoad> ComputeChipLoads(const Graph& graph,
                                       const Partition& partition);

// Summary metrics for reporting and for shaping heuristics.
struct PartitionMetrics {
  int chips_used = 0;
  double max_chip_flops = 0.0;
  double mean_chip_flops = 0.0;
  double compute_imbalance = 0.0;  // max/mean over *used* chips; >= 1.
  double total_cut_bytes = 0.0;    // Sum of bytes crossing chips.
  int cut_edges = 0;
};

PartitionMetrics ComputePartitionMetrics(const Graph& graph,
                                         const Partition& partition);

// Human-readable multi-line report of a partition: validity, summary
// metrics, and a per-chip table (nodes, GFLOPs, weight MB, cut traffic).
// Used by the CLI and examples.
std::string DescribePartition(const Graph& graph, const Partition& partition);

// Plain-text persistence of an assignment ("node chip" lines).  Load
// validates node coverage and chip range; throws std::runtime_error.
void SavePartition(const Partition& partition, std::ostream& os);
Partition LoadPartition(int num_nodes, int num_chips, std::istream& is);

}  // namespace mcm
