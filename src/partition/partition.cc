#include "partition/partition.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace mcm {

bool Partition::Complete() const {
  for (int chip : assignment) {
    if (chip < 0 || chip >= num_chips) return false;
  }
  return true;
}

int Partition::NumChipsUsed() const {
  int max_chip = -1;
  for (int chip : assignment) max_chip = std::max(max_chip, chip);
  return max_chip + 1;
}

std::string_view ViolationName(Violation violation) {
  switch (violation) {
    case Violation::kNone: return "none";
    case Violation::kIncomplete: return "incomplete";
    case Violation::kAcyclicDataflow: return "acyclic-dataflow";
    case Violation::kSkippedChip: return "skipped-chip";
    case Violation::kTriangle: return "triangle-dependency";
  }
  return "?";
}

bool CheckAcyclicDataflow(const Graph& graph, const Partition& partition) {
  for (const Edge& e : graph.edges()) {
    if (partition.chip(e.src) > partition.chip(e.dst)) return false;
  }
  return true;
}

bool CheckNoSkippedChips(const Graph& graph, const Partition& partition) {
  (void)graph;
  std::vector<bool> used(static_cast<std::size_t>(partition.num_chips), false);
  int max_chip = -1;
  for (int chip : partition.assignment) {
    used[static_cast<std::size_t>(chip)] = true;
    max_chip = std::max(max_chip, chip);
  }
  for (int d = 0; d < max_chip; ++d) {
    if (!used[static_cast<std::size_t>(d)]) return false;
  }
  return true;
}

std::vector<std::uint64_t> ChipDependencyAdjacency(
    const Graph& graph, const Partition& partition) {
  MCM_CHECK_LE(partition.num_chips, kMaxChips);
  std::vector<std::uint64_t> adjacency(
      static_cast<std::size_t>(partition.num_chips), 0);
  for (const Edge& e : graph.edges()) {
    const int a = partition.chip(e.src);
    const int b = partition.chip(e.dst);
    if (a < 0 || b < 0 || a == b) continue;
    adjacency[static_cast<std::size_t>(a)] |= 1ULL << b;
  }
  return adjacency;
}

std::vector<std::vector<int>> ChipLongestPaths(
    const std::vector<std::uint64_t>& adjacency, int num_chips) {
  // With monotone partitions every chip edge goes low -> high, so processing
  // intermediate chips in decreasing order is a valid reverse-topological
  // sweep: longest(a, b) = 1 + max over successors s of a of longest(s, b).
  std::vector<std::vector<int>> delta(
      static_cast<std::size_t>(num_chips),
      std::vector<int>(static_cast<std::size_t>(num_chips), -1));
  for (int a = num_chips - 1; a >= 0; --a) {
    for (int s = a + 1; s < num_chips; ++s) {
      if (!(adjacency[static_cast<std::size_t>(a)] & (1ULL << s))) continue;
      auto& row = delta[static_cast<std::size_t>(a)];
      const auto& succ_row = delta[static_cast<std::size_t>(s)];
      row[static_cast<std::size_t>(s)] = std::max(row[static_cast<std::size_t>(s)], 1);
      for (int b = s + 1; b < num_chips; ++b) {
        if (succ_row[static_cast<std::size_t>(b)] >= 0) {
          row[static_cast<std::size_t>(b)] =
              std::max(row[static_cast<std::size_t>(b)],
                       1 + succ_row[static_cast<std::size_t>(b)]);
        }
      }
    }
  }
  return delta;
}

bool CheckTriangleDependency(const Graph& graph, const Partition& partition) {
  const auto adjacency = ChipDependencyAdjacency(graph, partition);
  const auto delta = ChipLongestPaths(adjacency, partition.num_chips);
  // Every direct chip dependency must have longest path exactly 1.
  for (int a = 0; a < partition.num_chips; ++a) {
    std::uint64_t row = adjacency[static_cast<std::size_t>(a)];
    while (row != 0) {
      const int b = __builtin_ctzll(row);
      row &= row - 1;
      if (delta[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] != 1) {
        return false;
      }
    }
  }
  return true;
}

Violation ValidateStatic(const Graph& graph, const Partition& partition) {
  MCM_CHECK_EQ(static_cast<int>(partition.assignment.size()),
               graph.NumNodes());
  if (!partition.Complete()) return Violation::kIncomplete;
  if (!CheckAcyclicDataflow(graph, partition)) {
    return Violation::kAcyclicDataflow;
  }
  if (!CheckNoSkippedChips(graph, partition)) return Violation::kSkippedChip;
  if (!CheckTriangleDependency(graph, partition)) return Violation::kTriangle;
  return Violation::kNone;
}

std::vector<ChipLoad> ComputeChipLoads(const Graph& graph,
                                       const Partition& partition) {
  std::vector<ChipLoad> loads(static_cast<std::size_t>(partition.num_chips));
  for (const Node& node : graph.nodes()) {
    const int chip = partition.chip(node.id);
    if (chip < 0) continue;
    ChipLoad& load = loads[static_cast<std::size_t>(chip)];
    load.compute_flops += node.compute_flops;
    load.param_bytes += node.param_bytes;
    load.num_nodes += 1;
  }
  // Cross-chip traffic: one transfer per (producer, remote consumer chip).
  for (const Node& node : graph.nodes()) {
    const int src_chip = partition.chip(node.id);
    if (src_chip < 0) continue;
    std::uint64_t remote_chips = 0;
    for (int succ : graph.Successors(node.id)) {
      const int dst_chip = partition.chip(succ);
      if (dst_chip >= 0 && dst_chip != src_chip) {
        remote_chips |= 1ULL << dst_chip;
      }
    }
    while (remote_chips != 0) {
      const int dst_chip = __builtin_ctzll(remote_chips);
      remote_chips &= remote_chips - 1;
      loads[static_cast<std::size_t>(src_chip)].bytes_out += node.output_bytes;
      loads[static_cast<std::size_t>(dst_chip)].bytes_in += node.output_bytes;
    }
  }
  return loads;
}

PartitionMetrics ComputePartitionMetrics(const Graph& graph,
                                         const Partition& partition) {
  const auto loads = ComputeChipLoads(graph, partition);
  PartitionMetrics metrics;
  double total_flops = 0.0;
  for (const ChipLoad& load : loads) {
    if (load.num_nodes == 0) continue;
    ++metrics.chips_used;
    total_flops += load.compute_flops;
    metrics.max_chip_flops = std::max(metrics.max_chip_flops,
                                      load.compute_flops);
    metrics.total_cut_bytes += load.bytes_out;
  }
  if (metrics.chips_used > 0) {
    metrics.mean_chip_flops = total_flops / metrics.chips_used;
  }
  if (metrics.mean_chip_flops > 0.0) {
    metrics.compute_imbalance =
        metrics.max_chip_flops / metrics.mean_chip_flops;
  }
  for (const Edge& e : graph.edges()) {
    if (partition.chip(e.src) != partition.chip(e.dst)) ++metrics.cut_edges;
  }
  return metrics;
}

std::string DescribePartition(const Graph& graph,
                              const Partition& partition) {
  std::ostringstream os;
  const Violation violation = ValidateStatic(graph, partition);
  os << "partition of '" << graph.name() << "' (" << graph.NumNodes()
     << " nodes) over " << partition.num_chips << " chips\n";
  os << "static validity: " << ViolationName(violation) << "\n";
  const PartitionMetrics metrics = ComputePartitionMetrics(graph, partition);
  os << "chips used: " << metrics.chips_used
     << ", compute imbalance: " << metrics.compute_imbalance
     << "x, cut edges: " << metrics.cut_edges << " ("
     << metrics.total_cut_bytes / 1e6 << " MB)\n";
  os << "chip  nodes     GFLOPs  weightMB    in-MB   out-MB\n";
  const auto loads = ComputeChipLoads(graph, partition);
  for (int chip = 0; chip < partition.num_chips; ++chip) {
    const ChipLoad& load = loads[static_cast<std::size_t>(chip)];
    if (load.num_nodes == 0) continue;
    char line[128];
    std::snprintf(line, sizeof(line), "%4d  %5d  %9.3f  %8.2f  %7.2f  %7.2f\n",
                  chip, load.num_nodes, load.compute_flops / 1e9,
                  load.param_bytes / 1e6, load.bytes_in / 1e6,
                  load.bytes_out / 1e6);
    os << line;
  }
  return os.str();
}

void SavePartition(const Partition& partition, std::ostream& os) {
  os << "mcm-partition-v1 " << partition.assignment.size() << " "
     << partition.num_chips << "\n";
  for (std::size_t u = 0; u < partition.assignment.size(); ++u) {
    os << u << " " << partition.assignment[u] << "\n";
  }
}

Partition LoadPartition(int num_nodes, int num_chips, std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  int chips = 0;
  is >> magic >> count >> chips;
  if (magic != "mcm-partition-v1" ||
      count != static_cast<std::size_t>(num_nodes) || chips != num_chips) {
    throw std::runtime_error("LoadPartition: header mismatch");
  }
  Partition partition = Partition::Empty(num_nodes, num_chips);
  for (int k = 0; k < num_nodes; ++k) {
    int node = -1, chip = -1;
    if (!(is >> node >> chip) || node < 0 || node >= num_nodes || chip < 0 ||
        chip >= num_chips) {
      throw std::runtime_error("LoadPartition: bad record");
    }
    partition.assignment[static_cast<std::size_t>(node)] = chip;
  }
  if (!partition.Complete()) {
    throw std::runtime_error("LoadPartition: nodes missing an assignment");
  }
  return partition;
}

}  // namespace mcm
