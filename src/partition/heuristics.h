// O(N) compiler-heuristic partitioners.
//
// These are the paper's "compiler heuristics, such as a greedy algorithm and
// a random partition": fast, single-pass baselines that the learned and
// search-based methods are normalized against (Figures 5 and 6 report
// *throughput improvement over a compiler heuristic*).
//
// The heuristics emit topologically-contiguous interval candidates, which
// satisfy the acyclic-dataflow and no-skip constraints by construction but
// may still violate the NoC triangle constraint (e.g. a residual edge that
// spans a whole chip interval); callers repair candidates with the
// constraint solver's FIX mode, exactly as the paper's pipeline repairs RL
// proposals.
#pragma once

#include "common/rng.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace mcm {

// Splits a topological order into `num_chips` intervals with equal *node
// counts* (the naive production baseline: it ignores per-op cost entirely).
// Uses min(num_chips, N) chips.
Partition GreedyContiguousByCount(const Graph& graph, int num_chips);

// Splits a topological order into intervals of roughly equal *compute
// FLOPs* (greedy sweep: advance to the next chip once the running interval
// reaches the remaining-average load).  A stronger heuristic used in
// ablations.
Partition GreedyContiguousByCost(const Graph& graph, int num_chips);

// Splits a topological order into intervals of roughly equal *parameter
// bytes* (the production-compiler-style greedy: SRAM capacity is the
// binding constraint on MCM chiplets, so the packer balances weight
// footprint and is blind to compute -- the paper's baseline behaves this
// way).  Nodes without parameters share the interval of their neighbors.
Partition GreedyContiguousByParams(const Graph& graph, int num_chips);

// Random contiguous partition: K ~ U[1, min(num_chips, N)] intervals with
// uniformly random cut points over a topological order.
Partition RandomContiguousPartition(const Graph& graph, int num_chips,
                                    Rng& rng);

}  // namespace mcm
