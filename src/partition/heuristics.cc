#include "partition/heuristics.h"

#include <algorithm>

#include "common/logging.h"

namespace mcm {
namespace {

// Assigns `order` to chips by interval cut points: nodes order[cuts[d-1]..
// cuts[d]) go to chip d.
Partition FromCuts(const Graph& graph, int num_chips,
                   const std::vector<int>& order,
                   const std::vector<int>& cuts) {
  Partition partition = Partition::Empty(graph.NumNodes(), num_chips);
  int begin = 0;
  for (std::size_t d = 0; d < cuts.size(); ++d) {
    for (int i = begin; i < cuts[d]; ++i) {
      partition.assignment[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
          static_cast<int>(d);
    }
    begin = cuts[d];
  }
  return partition;
}

}  // namespace

Partition GreedyContiguousByCount(const Graph& graph, int num_chips) {
  MCM_CHECK_GT(num_chips, 0);
  const int n = graph.NumNodes();
  const int chips = std::min(num_chips, std::max(n, 1));
  const std::vector<int> order = graph.TopologicalOrder();
  std::vector<int> cuts;
  cuts.reserve(static_cast<std::size_t>(chips));
  for (int d = 1; d <= chips; ++d) {
    cuts.push_back(static_cast<int>(
        (static_cast<long long>(n) * d) / chips));
  }
  return FromCuts(graph, num_chips, order, cuts);
}

Partition GreedyContiguousByCost(const Graph& graph, int num_chips) {
  MCM_CHECK_GT(num_chips, 0);
  const int n = graph.NumNodes();
  const int chips = std::min(num_chips, std::max(n, 1));
  const std::vector<int> order = graph.TopologicalOrder();
  Partition partition = Partition::Empty(n, num_chips);

  double remaining = graph.TotalFlops();
  int chip = 0;
  double chip_load = 0.0;
  int chip_nodes = 0;
  for (int i = 0; i < n; ++i) {
    const Node& node = graph.node(order[static_cast<std::size_t>(i)]);
    const int chips_left = chips - chip;
    const double target = remaining / chips_left;
    // Advance once this chip has its fair share -- but never leave a later
    // chip without nodes (at least one node per remaining chip), and always
    // place at least one node per chip.
    const int nodes_left = n - i;
    if (chip_nodes > 0 && chip < chips - 1 &&
        (chip_load >= target || nodes_left <= chips - chip - 1)) {
      ++chip;
      chip_load = 0.0;
      chip_nodes = 0;
    }
    partition.assignment[static_cast<std::size_t>(node.id)] = chip;
    chip_load += node.compute_flops;
    remaining -= node.compute_flops;
    ++chip_nodes;
  }
  return partition;
}

namespace {

// Shared greedy sweep over a topological order balancing `weight`.
Partition GreedySweep(const Graph& graph, int num_chips,
                      double (*weight)(const Node&)) {
  const int n = graph.NumNodes();
  const int chips = std::min(num_chips, std::max(n, 1));
  const std::vector<int> order = graph.TopologicalOrder();
  Partition partition = Partition::Empty(n, num_chips);

  double remaining = 0.0;
  for (const Node& node : graph.nodes()) remaining += weight(node);
  int chip = 0;
  double chip_load = 0.0;
  int chip_nodes = 0;
  for (int i = 0; i < n; ++i) {
    const Node& node = graph.node(order[static_cast<std::size_t>(i)]);
    const int chips_left = chips - chip;
    const double target = remaining / chips_left;
    const int nodes_left = n - i;
    if (chip_nodes > 0 && chip < chips - 1 &&
        (chip_load >= target || nodes_left <= chips - chip - 1)) {
      ++chip;
      chip_load = 0.0;
      chip_nodes = 0;
    }
    partition.assignment[static_cast<std::size_t>(node.id)] = chip;
    chip_load += weight(node);
    remaining -= weight(node);
    ++chip_nodes;
  }
  return partition;
}

}  // namespace

Partition GreedyContiguousByParams(const Graph& graph, int num_chips) {
  MCM_CHECK_GT(num_chips, 0);
  return GreedySweep(graph, num_chips,
                     [](const Node& node) { return node.param_bytes; });
}

Partition RandomContiguousPartition(const Graph& graph, int num_chips,
                                    Rng& rng) {
  MCM_CHECK_GT(num_chips, 0);
  const int n = graph.NumNodes();
  const int max_chips = std::min(num_chips, std::max(n, 1));
  const int k = static_cast<int>(rng.UniformInt(1, max_chips));
  const std::vector<int> order = graph.TopologicalOrder();
  // k-1 distinct interior cut points, plus the final cut at n.
  std::vector<int> interior(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) interior[static_cast<std::size_t>(i)] = i + 1;
  rng.Shuffle(interior);
  std::vector<int> cuts(interior.begin(), interior.begin() + (k - 1));
  cuts.push_back(n);
  std::sort(cuts.begin(), cuts.end());
  return FromCuts(graph, num_chips, order, cuts);
}

}  // namespace mcm
