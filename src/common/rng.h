// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library (graph generators, the constraint
// solver's sampling modes, search strategies, network initialization, PPO
// rollouts, the hardware simulator's noise) draws from an explicitly seeded
// `Rng` so that a run is a pure function of its seeds.  We use xoshiro256++
// seeded through splitmix64, which is fast, has a 2^256-1 period, and passes
// BigCrush -- more than adequate for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mcm {

// splitmix64 step; used for seeding and for stateless hashing-style draws.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x3243f6a8885a308dULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). Requires n > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  // Standard normal via Box-Muller (no cached second value; simple and
  // stateless with respect to the caller).
  double Normal();

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Samples an index from a (not necessarily normalized) non-negative weight
  // vector. Requires at least one strictly positive weight.
  std::size_t SampleDiscrete(std::span<const double> weights);

  // Samples an index from a restricted support: only positions whose bit is
  // set in `mask` (a 64-bit domain bitset) are eligible.  Falls back to a
  // uniform draw over the mask when all eligible weights are zero.
  std::size_t SampleDiscreteMasked(std::span<const double> weights,
                                   std::uint64_t mask);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // A fresh generator deterministically derived from this one's stream;
  // used to give each worker/graph/episode an independent substream.
  Rng Fork() { return Rng(Next()); }

  // Raw generator state, for checkpoint/resume.  Restoring a saved state
  // resumes the stream exactly where it left off, which is what makes a
  // resumed pretraining run bit-identical to an uninterrupted one.
  std::array<std::uint64_t, 4> GetState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void SetState(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

// Stateless 64-bit mix of several values; used for reproducible per-entity
// noise in the hardware simulator (same partition => same "measured" time).
std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b);
std::uint64_t HashSpan(std::span<const std::uint64_t> values,
                       std::uint64_t seed = 0x5bf03635dd1e3a51ULL);

}  // namespace mcm
