// Minimal leveled logging and check macros.
//
// The library proper signals contract violations with MCM_CHECK (aborting
// with a message -- programming errors) and reports recoverable conditions
// through return values; exceptions are reserved for I/O and parse errors.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mcm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

// Stream collector so call sites can write `MCM_LOG(kInfo) << "x=" << x;`.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mcm

// The level test runs before the LogStream exists, so a dropped message
// never constructs the ostringstream or formats its << arguments.
#define MCM_LOG(level)                                              \
  if (::mcm::LogLevel::level < ::mcm::GetLogLevel()) {              \
  } else /* NOLINT */                                               \
    ::mcm::internal::LogStream(::mcm::LogLevel::level, __FILE__, __LINE__)

#define MCM_CHECK(cond)                                             \
  if (cond) {                                                       \
  } else /* NOLINT */                                               \
    ::mcm::internal::CheckStream(__FILE__, __LINE__, #cond)

#define MCM_CHECK_EQ(a, b) MCM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define MCM_CHECK_NE(a, b) MCM_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define MCM_CHECK_LT(a, b) MCM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define MCM_CHECK_LE(a, b) MCM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define MCM_CHECK_GT(a, b) MCM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define MCM_CHECK_GE(a, b) MCM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
