#include "common/env.h"

#include <cstdlib>

#include "common/logging.h"

namespace mcm {

std::optional<std::string> GetEnv(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback) {
  const auto value = GetEnv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    MCM_LOG(kWarning) << name << "=\"" << *value
                      << "\" is not an integer; using " << fallback;
    return fallback;
  }
  return parsed;
}

double GetEnvDouble(const std::string& name, double fallback) {
  const auto value = GetEnv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    MCM_LOG(kWarning) << name << "=\"" << *value
                      << "\" is not a number; using " << fallback;
    return fallback;
  }
  return parsed;
}

std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback,
                       std::int64_t lo, std::int64_t hi) {
  const std::int64_t parsed = GetEnvInt(name, fallback);
  if (parsed < lo || parsed > hi) {
    const std::int64_t clamped = parsed < lo ? lo : hi;
    MCM_LOG(kWarning) << name << "=" << parsed << " is outside [" << lo
                      << ", " << hi << "]; clamping to " << clamped;
    return clamped;
  }
  return parsed;
}

double GetEnvDouble(const std::string& name, double fallback, double lo,
                    double hi) {
  const double parsed = GetEnvDouble(name, fallback);
  if (!(parsed >= lo && parsed <= hi)) {  // Also catches NaN.
    const double clamped = parsed < lo ? lo : hi;
    MCM_LOG(kWarning) << name << "=" << parsed << " is outside [" << lo
                      << ", " << hi << "]; clamping to " << clamped;
    return clamped;
  }
  return parsed;
}

BenchScale GetBenchScale() {
  const auto value = GetEnv("MCM_BENCH_SCALE");
  if (value && *value == "full") return BenchScale::kFull;
  return BenchScale::kQuick;
}

std::int64_t ScaledInt(const std::string& override_name, std::int64_t quick,
                       std::int64_t full) {
  const std::int64_t base =
      GetBenchScale() == BenchScale::kFull ? full : quick;
  return GetEnvInt(override_name, base);
}

}  // namespace mcm
