// Small statistics toolkit used across benches and the pre-training pipeline:
// summary statistics, geometric means (the paper reports geomean throughput
// improvements over the 16-graph test set), Pearson correlation (Figure 7's
// calibration study), and streaming accumulators for reward normalization.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mcm {

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // Population variance.
double Stddev(std::span<const double> xs);

// Geometric mean; requires all inputs strictly positive.
double Geomean(std::span<const double> xs);

// Pearson correlation coefficient; returns 0 when either side is constant.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

// p in [0, 1]; linear interpolation between order statistics.
double Percentile(std::vector<double> xs, double p);

// Welford streaming mean/variance; used for reward normalization in PPO and
// for the paper's "mean and standard deviation over 5 runs" reporting.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t Count() const { return count_; }
  double Mean() const { return count_ ? mean_ : 0.0; }
  double Variance() const { return count_ > 1 ? m2_ / count_ : 0.0; }
  double SampleVariance() const {
    return count_ > 1 ? m2_ / (count_ - 1) : 0.0;
  }
  double Stddev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average, used as a simple reward baseline option.
class Ema {
 public:
  explicit Ema(double decay) : decay_(decay) {}
  void Add(double x) {
    value_ = initialized_ ? decay_ * value_ + (1.0 - decay_) * x : x;
    initialized_ = true;
  }
  bool Initialized() const { return initialized_; }
  double Value() const { return value_; }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace mcm
