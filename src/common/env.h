// Environment-variable driven experiment scaling.
//
// Benches default to a reduced scale that reproduces the paper's qualitative
// shapes on a single core in minutes; `MCM_BENCH_SCALE=full` switches every
// bench to the paper's budgets (thousands of samples, 36 chips, 8x128
// GraphSAGE).  Individual knobs can also be overridden directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mcm {

// Returns the value of `name`, or nullopt when unset/empty.
std::optional<std::string> GetEnv(const std::string& name);

// Typed helpers with a default when unset or unparsable.
std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback);
double GetEnvDouble(const std::string& name, double fallback);

// Range-checked overloads: parse as above, then clamp the result into
// [lo, hi] with a warning when the parsed value falls outside.  Knobs where
// a negative or absurd value would silently misconfigure a subsystem
// (thread counts, cache sizes, retry/backoff/deadline budgets) must use
// these -- a bare negative would otherwise be treated as valid.
std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback,
                       std::int64_t lo, std::int64_t hi);
double GetEnvDouble(const std::string& name, double fallback, double lo,
                    double hi);

enum class BenchScale { kQuick, kFull };

// Reads MCM_BENCH_SCALE ("quick" default, "full" for paper budgets).
BenchScale GetBenchScale();

// Convenience: picks `quick` or `full` by the current scale, allowing an
// `MCM_<name>` integer override on top.
std::int64_t ScaledInt(const std::string& override_name, std::int64_t quick,
                       std::int64_t full);

}  // namespace mcm
