#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mcm {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double Stddev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ += delta * static_cast<double>(other.count_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

}  // namespace mcm
