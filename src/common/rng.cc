#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mcm {

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::Normal() {
  // Box-Muller; guard against log(0).
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::SampleDiscrete(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

std::size_t Rng::SampleDiscreteMasked(std::span<const double> weights,
                                      std::uint64_t mask) {
  assert(mask != 0);
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size() && i < 64; ++i) {
    if (mask & (1ULL << i)) total += weights[i];
  }
  if (total <= 0.0) {
    // All eligible weights are zero: uniform over the mask.
    const int bits = __builtin_popcountll(mask);
    std::uint64_t k = UniformInt(static_cast<std::uint64_t>(bits));
    for (std::size_t i = 0; i < 64; ++i) {
      if (mask & (1ULL << i)) {
        if (k == 0) return i;
        --k;
      }
    }
  }
  double r = UniformDouble() * total;
  std::size_t last = 0;
  for (std::size_t i = 0; i < weights.size() && i < 64; ++i) {
    if (!(mask & (1ULL << i))) continue;
    last = i;
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return last;
}

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(state);
}

std::uint64_t HashSpan(std::span<const std::uint64_t> values,
                       std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint64_t v : values) h = HashCombine(h, v);
  return h;
}

}  // namespace mcm
