#include "solver/cp_solver.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace mcm {

CpSolver::CpSolver(const Graph& graph, int num_chips, Options options)
    : graph_(graph), num_chips_(num_chips), options_(options) {
  MCM_CHECK_GT(num_chips, 0);
  MCM_CHECK_LE(num_chips, kMaxChips);
  MCM_CHECK(graph.IsAcyclic()) << "graph must be a DAG";
  Reset();
}

void CpSolver::Reset() {
  const auto n = static_cast<std::size_t>(graph_.NumNodes());
  domains_.assign(n, FullDomain(num_chips_));
  trail_.clear();
  level_starts_.clear();
  decisions_.clear();
  queue_.clear();
  in_queue_.assign(n, 0);
  newly_fixed_.clear();
  support_.assign(static_cast<std::size_t>(num_chips_),
                  static_cast<int>(n));
  fixed_count_.assign(static_cast<std::size_t>(num_chips_), 0);
  if (num_chips_ == 1) fixed_count_[0] = static_cast<int>(n);
  support_zero_pending_ = false;
  support_one_pending_ = false;
  fixed_adj_.assign(static_cast<std::size_t>(num_chips_), 0);
  solve_start_propagations_ = stats_.propagations;
  // The wall-clock deadline is an opt-in escape hatch that no in-tree
  // caller enables; deterministic callers (the serving path) bound work
  // with propagation_budget instead, so these clock edges are sanitized.
  solve_deadline_at_s_ =
      options_.deadline_s > 0.0
          ? telemetry::MonotonicSeconds() + options_.deadline_s  // NOLINT(mcm-nondet-reach)
          : 0.0;
}

bool CpSolver::BudgetExhausted() const {
  if (options_.propagation_budget > 0 &&
      stats_.propagations - solve_start_propagations_ >=
          options_.propagation_budget) {
    return true;
  }
  if (solve_deadline_at_s_ > 0.0 &&
      telemetry::MonotonicSeconds() > solve_deadline_at_s_) {  // NOLINT(mcm-nondet-reach)
    return true;
  }
  return false;
}

bool CpSolver::Narrow(int node, ChipDomain new_domain) {
  ChipDomain& domain = domains_[static_cast<std::size_t>(node)];
  const ChipDomain old_domain = domain;
  new_domain &= old_domain;
  if (new_domain == old_domain) return true;
  if (new_domain == 0) return false;  // Wipeout; state left unchanged.
  trail_.push_back(TrailEntry{node, old_domain});
  domain = new_domain;
  ++stats_.propagations;

  ChipDomain removed = old_domain & ~new_domain;
  while (removed != 0) {
    const int chip = __builtin_ctzll(removed);
    removed &= removed - 1;
    const int count = --support_[static_cast<std::size_t>(chip)];
    if (count == 0) support_zero_pending_ = true;
    if (count == 1) support_one_pending_ = true;
  }

  if (!in_queue_[static_cast<std::size_t>(node)]) {
    in_queue_[static_cast<std::size_t>(node)] = 1;
    queue_.push_back(node);
  }
  if (DomainSize(new_domain) == 1) {
    newly_fixed_.push_back(node);
    ++fixed_count_[static_cast<std::size_t>(DomainMin(new_domain))];
  }
  return true;
}

bool CpSolver::PropagateEdges(int node) {
  const ChipDomain domain = GetDomain(node);
  const ChipDomain ge_min = MaskFrom(DomainMin(domain));
  const ChipDomain le_max = MaskUpTo(DomainMax(domain));
  for (int succ : graph_.Successors(node)) {
    if (!Narrow(succ, GetDomain(succ) & ge_min)) return false;
  }
  for (int pred : graph_.Predecessors(node)) {
    if (!Narrow(pred, GetDomain(pred) & le_max)) return false;
  }
  return true;
}

bool CpSolver::PropagateNoSkip() {
  const int n = graph_.NumNodes();
  if (support_zero_pending_) {
    support_zero_pending_ = false;
    // A chip with no remaining supporter can never be used, so no chip above
    // it can be used either (Eq. 3): cap every domain below the first hole.
    int cap = num_chips_;
    for (int d = 0; d < num_chips_; ++d) {
      if (support_[static_cast<std::size_t>(d)] == 0) {
        cap = d;
        break;
      }
    }
    if (cap < num_chips_) {
      const ChipDomain mask = cap == 0 ? 0 : FullDomain(cap);
      if (mask == 0) {
        ++stats_.fail_noskip;
        return false;  // No usable chip at all.
      }
      for (int u = 0; u < n; ++u) {
        if (!Narrow(u, GetDomain(u) & mask)) {
          ++stats_.fail_noskip;
          return false;
        }
      }
    }
  }
  // Pigeonhole pruning: a node may sit on chip c only if at least c *other*
  // nodes can sit strictly below c (Eq. 3 forces chips 0..c-1 to be
  // non-empty).  Let A(c) = #nodes with DomainMin < c; chip c is allowed for
  // node u iff A(c) - [DomainMin(u) < c] >= c.  This is a sound (though not
  // Hall-complete) counting rule that catches infeasible high placements at
  // the decision that caused them instead of via deep backtracking.
  {
    min_hist_.assign(static_cast<std::size_t>(num_chips_) + 1, 0);
    for (int u = 0; u < n; ++u) {
      ++min_hist_[static_cast<std::size_t>(DomainMin(GetDomain(u)))];
    }
    ChipDomain m0 = 0;  // Chips c with A(c) >= c.
    ChipDomain m1 = 0;  // Chips c with A(c) >= c + 1.
    int below = 0;      // A(c): nodes with min < c.
    for (int c = 0; c < num_chips_; ++c) {
      if (below >= c) m0 |= 1ULL << c;
      if (below >= c + 1) m1 |= 1ULL << c;
      below += min_hist_[static_cast<std::size_t>(c)];
    }
    for (int u = 0; u < n; ++u) {
      const ChipDomain domain = GetDomain(u);
      const int min_u = DomainMin(domain);
      ChipDomain allowed = m1 & MaskFrom(min_u + 1);
      if (DomainContains(m0, min_u)) allowed |= 1ULL << min_u;
      if (min_u > 0) allowed |= MaskUpTo(min_u - 1);  // Not in domain anyway.
      if (!Narrow(u, domain & allowed)) {
        ++stats_.fail_pigeonhole;
        return false;
      }
    }
  }
  if (support_one_pending_) {
    support_one_pending_ = false;
    // Chips strictly below some node's minimum chip are definitely used; if
    // such a chip has a single possible supporter, that node must take it.
    int required_prefix = 0;
    for (int u = 0; u < n; ++u) {
      required_prefix = std::max(required_prefix, DomainMin(GetDomain(u)));
    }
    for (int d = 0; d < required_prefix; ++d) {
      if (support_[static_cast<std::size_t>(d)] != 1) continue;
      for (int u = 0; u < n; ++u) {
        if (DomainContains(GetDomain(u), d)) {
          if (!IsFixed(u) && !Narrow(u, 1ULL << d)) {
            ++stats_.fail_noskip;
            return false;
          }
          break;
        }
      }
    }
  }
  return true;
}

void CpSolver::RebuildFixedChipGraph() {
  std::fill(fixed_adj_.begin(), fixed_adj_.end(), 0);
  for (const Edge& e : graph_.edges()) {
    if (!IsFixed(e.src) || !IsFixed(e.dst)) continue;
    const int a = FixedValue(e.src);
    const int b = FixedValue(e.dst);
    if (a != b) fixed_adj_[static_cast<std::size_t>(a)] |= 1ULL << b;
  }
  delta_ = ChipLongestPaths(fixed_adj_, num_chips_);
}

bool CpSolver::PropagateTriangle() {
  newly_fixed_.clear();
  RebuildFixedChipGraph();
  // Every direct dependency between fixed chips must have longest path 1.
  for (int a = 0; a < num_chips_; ++a) {
    ChipDomain row = fixed_adj_[static_cast<std::size_t>(a)];
    while (row != 0) {
      const int b = __builtin_ctzll(row);
      row &= row - 1;
      if (delta_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] !=
          1) {
        ++stats_.fail_triangle;
        return false;
      }
    }
  }
  if (!options_.prune_triangle_domains) return true;

  // Bits strictly between two chips.
  auto between = [](int a, int b) -> ChipDomain {
    return b > a + 1 ? (MaskFrom(a + 1) & MaskUpTo(b - 1)) : 0;
  };
  ChipDomain used_mask = 0;
  if (options_.assume_connected_used_chips) {
    for (int d = 0; d < num_chips_; ++d) {
      if (fixed_count_[static_cast<std::size_t>(d)] > 0) used_mask |= 1ULL << d;
    }
    // Under the connectivity assumption, a used chip strictly inside the
    // span of an existing direct dependency will eventually complete an
    // indirect path that violates Eq. 4: fail now, and keep span interiors
    // out of every unfixed domain.
    ChipDomain span_mask = 0;
    for (int a = 0; a < num_chips_; ++a) {
      ChipDomain row = fixed_adj_[static_cast<std::size_t>(a)];
      while (row != 0) {
        const int b = __builtin_ctzll(row);
        row &= row - 1;
        span_mask |= between(a, b);
      }
    }
    if ((span_mask & used_mask) != 0) {
      ++stats_.fail_triangle;
      return false;
    }
    if (span_mask != 0) {
      for (int u = 0; u < graph_.NumNodes(); ++u) {
        if (!Narrow(u, GetDomain(u) & ~span_mask)) {
          ++stats_.fail_triangle;
          return false;
        }
      }
    }
  }

  // Global forward checking against the *current* fixed chip graph: a graph
  // edge between a node fixed on chip a and an unfixed node may only create
  // a chip edge (a, b) that keeps every direct dependency at longest path 1.
  // Since the fixed chip graph only grows, any chip edge that violates the
  // property now also violates it in every completion -- pruning it is
  // sound.  We precompute, per chip, the set of legal target/source chips
  // with bitset algebra, then sweep all graph edges with a fixed endpoint.
  const int c = num_chips_;
  const ChipDomain full = FullDomain(c);
  // reach_from[x]: chips with a path from x; reach_to[x]: chips reaching x;
  // radj[y]: direct chip predecessors of y.
  reach_from_.assign(static_cast<std::size_t>(c), 0);
  reach_to_.assign(static_cast<std::size_t>(c), 0);
  radj_.assign(static_cast<std::size_t>(c), 0);
  for (int a = 0; a < c; ++a) {
    for (int b = a + 1; b < c; ++b) {
      if (delta_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] >=
          1) {
        reach_from_[static_cast<std::size_t>(a)] |= 1ULL << b;
        reach_to_[static_cast<std::size_t>(b)] |= 1ULL << a;
      }
    }
    ChipDomain row = fixed_adj_[static_cast<std::size_t>(a)];
    while (row != 0) {
      const int b = __builtin_ctzll(row);
      row &= row - 1;
      radj_[static_cast<std::size_t>(b)] |= 1ULL << a;
    }
  }
  allowed_succ_.assign(static_cast<std::size_t>(c), full);
  allowed_pred_.assign(static_cast<std::size_t>(c), full);
  for (int a = 0; a < c; ++a) {
    // Successor masks: adding chip edge (a, b) must not (i) shortcut an
    // existing indirect path a ~> b, nor (ii) create an indirect path
    // x ~> a -> b ~> y alongside any existing direct edge (x, y) with
    // x in {a} u reach_to(a) and y in {b} u reach_from(b).
    ChipDomain danger_succs = fixed_adj_[static_cast<std::size_t>(a)];
    ChipDomain upstream = reach_to_[static_cast<std::size_t>(a)];
    while (upstream != 0) {
      const int x = __builtin_ctzll(upstream);
      upstream &= upstream - 1;
      danger_succs |= fixed_adj_[static_cast<std::size_t>(x)];
    }
    ChipDomain forbidden = 0;
    for (int b = a + 1; b < c; ++b) {
      const bool shortcut =
          delta_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] >= 2;
      const bool used_between = (used_mask & between(a, b)) != 0;
      const ChipDomain downstream =
          reach_from_[static_cast<std::size_t>(b)] | (1ULL << b);
      if (shortcut || used_between || (downstream & danger_succs) != 0) {
        forbidden |= 1ULL << b;
      }
    }
    // Duplicating an existing direct edge changes nothing; same-chip and
    // upstream-chip placements create no edge from a.
    allowed_succ_[static_cast<std::size_t>(a)] =
        (full & ~forbidden) | fixed_adj_[static_cast<std::size_t>(a)] |
        (1ULL << a);

    // Predecessor masks, mirrored: adding chip edge (b, a) for b < a.
    ChipDomain danger_preds = radj_[static_cast<std::size_t>(a)];
    ChipDomain downstream_of_a = reach_from_[static_cast<std::size_t>(a)];
    while (downstream_of_a != 0) {
      const int y = __builtin_ctzll(downstream_of_a);
      downstream_of_a &= downstream_of_a - 1;
      danger_preds |= radj_[static_cast<std::size_t>(y)];
    }
    forbidden = 0;
    for (int b = 0; b < a; ++b) {
      const bool shortcut =
          delta_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] >= 2;
      const bool used_between = (used_mask & between(b, a)) != 0;
      const ChipDomain upstream_of_b =
          reach_to_[static_cast<std::size_t>(b)] | (1ULL << b);
      if (shortcut || used_between || (upstream_of_b & danger_preds) != 0) {
        forbidden |= 1ULL << b;
      }
    }
    allowed_pred_[static_cast<std::size_t>(a)] =
        (full & ~forbidden) | radj_[static_cast<std::size_t>(a)] | (1ULL << a);
  }

  // Sweep every edge, constraining each endpoint by the union of legal
  // targets over the *whole domain* of the other endpoint (the fixed case
  // is the singleton-domain special case).  This catches conflicts between
  // two still-open variables -- e.g. a graph input pinned low while its
  // consumer's chain context forces it high -- at the decision that created
  // them rather than through deep backtracking.
  for (const Edge& e : graph_.edges()) {
    const ChipDomain src_domain = GetDomain(e.src);
    const ChipDomain dst_domain = GetDomain(e.dst);
    if (DomainSize(src_domain) <= 4) {
      ChipDomain allowed = 0;
      ChipDomain bits = src_domain;
      while (bits != 0) {
        const int a = __builtin_ctzll(bits);
        bits &= bits - 1;
        allowed |= allowed_succ_[static_cast<std::size_t>(a)];
      }
      if (!Narrow(e.dst, dst_domain & allowed)) {
        ++stats_.fail_triangle;
        return false;
      }
    }
    if (DomainSize(dst_domain) <= 4) {
      ChipDomain allowed = 0;
      ChipDomain bits = dst_domain;
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        allowed |= allowed_pred_[static_cast<std::size_t>(b)];
      }
      if (!Narrow(e.src, GetDomain(e.src) & allowed)) {
        ++stats_.fail_triangle;
        return false;
      }
    }
  }
  return true;
}

bool CpSolver::Propagate() {
  while (true) {
    while (!queue_.empty()) {
      const int node = queue_.back();
      queue_.pop_back();
      in_queue_[static_cast<std::size_t>(node)] = 0;
      if (!PropagateEdges(node)) {
        ++stats_.fail_edge;
        return false;
      }
    }
    if (!PropagateNoSkip()) return false;  // Attributed inside.
    if (!queue_.empty()) continue;
    if (!newly_fixed_.empty()) {
      if (!PropagateTriangle()) return false;
      continue;  // Pruning may have re-populated the queue or fixed nodes.
    }
    return true;
  }
}

CpSolver::Decision CpSolver::PopLevel() {
  MCM_CHECK(!level_starts_.empty());
  const std::size_t start = level_starts_.back();
  level_starts_.pop_back();
  for (std::size_t i = trail_.size(); i > start; --i) {
    const TrailEntry& entry = trail_[i - 1];
    ChipDomain& domain = domains_[static_cast<std::size_t>(entry.node)];
    if (DomainSize(domain) == 1 && DomainSize(entry.old_domain) > 1) {
      --fixed_count_[static_cast<std::size_t>(DomainMin(domain))];
    }
    ChipDomain restored = entry.old_domain & ~domain;
    while (restored != 0) {
      const int chip = __builtin_ctzll(restored);
      restored &= restored - 1;
      ++support_[static_cast<std::size_t>(chip)];
    }
    domain = entry.old_domain;
  }
  trail_.resize(start);
  Decision decision = decisions_.back();
  decisions_.pop_back();
  ++stats_.backtracks;
  return decision;
}

void CpSolver::ClearPropagationState() {
  for (int node : queue_) in_queue_[static_cast<std::size_t>(node)] = 0;
  queue_.clear();
  newly_fixed_.clear();
  support_zero_pending_ = false;
  support_one_pending_ = false;
}

int CpSolver::SetDomain(int node, ChipDomain domain) {
  MCM_CHECK_GE(node, 0);
  MCM_CHECK_LT(node, num_nodes());
  if (BudgetExhausted()) return kBudgetExhausted;
  level_starts_.push_back(trail_.size());
  decisions_.push_back(Decision{node, domain});

  const ChipDomain target = GetDomain(node) & domain;
  if (target == 0) ++stats_.fail_decision;
  const bool ok = target != 0 && Narrow(node, target) && Propagate();
  if (ok) {
    ++stats_.decisions;
    return NumDecisions();
  }

  // Failure: undo levels, excluding each failed attempt so it is not
  // retried, until the exclusion propagates cleanly.
  while (true) {
    ++stats_.failures;
    ClearPropagationState();
    const Decision failed = PopLevel();
    const ChipDomain remaining =
        GetDomain(failed.node) & ~failed.attempted;
    if (remaining != 0 && Narrow(failed.node, remaining) && Propagate()) {
      return NumDecisions();
    }
    if (decisions_.empty()) {
      ClearPropagationState();
      return -1;  // Root infeasible.
    }
  }
}

int CpSolver::MaxFixedChip() const {
  int max_chip = -1;
  for (ChipDomain domain : domains_) {
    if (DomainSize(domain) == 1) {
      max_chip = std::max(max_chip, DomainMin(domain));
    }
  }
  return max_chip;
}

ChipDomain CpSolver::UnderQuotaMask(int quota) const {
  ChipDomain mask = 0;
  for (int d = 0; d < num_chips_; ++d) {
    if (fixed_count_[static_cast<std::size_t>(d)] < quota) mask |= 1ULL << d;
  }
  return mask;
}

int CpSolver::NumFixedNodes() const {
  int total = 0;
  for (int count : fixed_count_) total += count;
  return total;
}

bool CpSolver::AllFixed() const {
  for (ChipDomain domain : domains_) {
    if (DomainSize(domain) != 1) return false;
  }
  return true;
}

Partition CpSolver::ExtractPartition() const {
  Partition partition = Partition::Empty(num_nodes(), num_chips_);
  for (int u = 0; u < num_nodes(); ++u) {
    if (IsFixed(u)) {
      partition.assignment[static_cast<std::size_t>(u)] = FixedValue(u);
    }
  }
  return partition;
}

}  // namespace mcm
