#include "solver/modes.h"
#include <limits>
#include <algorithm>

#include <numeric>

#include "common/env.h"
#include "common/logging.h"
#include "costmodel/delta_eval.h"
#include "partition/heuristics.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

// Telemetry is write-only: recording reads no RNG and never feeds back into
// the solve, so results stay bit-identical with telemetry on or off.
void RecordSolveTelemetry(const CpSolver::Stats& before,
                          const CpSolver::Stats& after,
                          const SolveResult& result) {
  static telemetry::Counter& propagations =
      telemetry::Counter::Get("solver/propagations");
  static telemetry::Counter& backtracks =
      telemetry::Counter::Get("solver/backtracks");
  static telemetry::Counter& set_domain_calls =
      telemetry::Counter::Get("solver/set_domain_calls");
  static telemetry::Counter& failures =
      telemetry::Counter::Get("solver/solve_failures");
  propagations.Add(after.propagations - before.propagations);
  backtracks.Add(after.backtracks - before.backtracks);
  set_domain_calls.Add(result.set_domain_calls);
  if (!result.success) failures.Add();
}

// Defensive ceiling on solver work: a solve that exceeds this many SetDomain
// calls per node (heavy thrashing) is reported as a failure rather than
// looping.  MCMPART_SOLVER_BUDGET overrides the default of 30; read once so
// every solve in a process sees the same budget.
std::int64_t SetDomainCallsPerNode() {
  static const std::int64_t budget =
      GetEnvInt("MCMPART_SOLVER_BUDGET", 30, 1, 1000000);
  return budget;
}

// The degradation ladder's last rungs: the greedy contiguous heuristic, or
// the always-valid single-chip partition when even greedy violates a
// constraint.  Returned (success=true, degraded=true) when every restart
// attempt exhausted its budget, so callers never see an aborted solve.
SolveResult DegradedFallback(const CpSolver& solver, const Graph& graph) {
  static telemetry::Counter& degraded_solves =
      telemetry::Counter::Get("solver/degraded_solves");
  SolveResult result;
  Partition greedy = GreedyContiguousByCount(graph, solver.num_chips());
  if (!IsStaticallyValid(graph, greedy)) {
    greedy = Partition::Empty(graph.NumNodes(), solver.num_chips());
    std::fill(greedy.assignment.begin(), greedy.assignment.end(), 0);
  }
  result.partition = std::move(greedy);
  result.success = true;
  result.degraded = true;
  degraded_solves.Add();
  return result;
}

// Value-selection policy shared by the solve drivers.  Two soft rules shape
// where a sampled chip lands, each dropped if it would empty the choice set:
//   1. Open chips in order (chips <= MaxFixedChip()+1): opening a chip
//      before all lower chips are in use leaves holes that are usually
//      unfillable, and the failure surfaces only hundreds of decisions
//      later.
//   2. Avoid overfull chips (fewer than ~2x the fair share of nodes):
//      otherwise unbiased sampling parks the entire tail of the graph on
//      the last opened chip.
// Neither rule excludes any *solution* -- they only bias which one sampling
// walks toward; the returned mask is always a non-empty subset of `domain`.
// `pace_scale` stretches the per-chip node target for one whole solve: at
// 1.0 the frontier reaches the last chip together with the last node; below
// 1.0 it arrives early (tail-heavy partitions, possibly overflowing chip
// memory on the target); above 1.0 it never gets there (fewer chips used).
// Drawing the scale once per solve is what gives SAMPLE-mode exploration its
// variance -- without it every sample is node-count balanced and best-of-N
// search curves stay flat.
ChipDomain PreferredValues(const CpSolver& solver, ChipDomain domain,
                           double pace_scale) {
  const int num_chips = solver.num_chips();
  const int per_chip = std::max(
      1, static_cast<int>(pace_scale *
                          ((solver.num_nodes() + num_chips - 1) / num_chips)));
  // Pacing: chip k opens only once ~k * per_chip nodes are placed.
  const int pace_limit = solver.NumFixedNodes() / per_chip + 1;
  const int window_top =
      std::min({solver.MaxFixedChip() + 1, pace_limit, num_chips - 1});
  const ChipDomain open_window = MaskUpTo(window_top);
  const int quota = 2 * per_chip + 1;
  const ChipDomain under_quota = solver.UnderQuotaMask(quota);
  if ((domain & open_window & under_quota) != 0) {
    return domain & open_window & under_quota;
  }
  if ((domain & open_window) != 0) return domain & open_window;
  return domain;
}

// Per-solve pacing draw; see PreferredValues.
double DrawPaceScale(Rng& rng) { return rng.UniformDouble(0.92, 1.7); }

}  // namespace

ProbMatrix ProbMatrix::Uniform(int num_nodes, int num_chips) {
  ProbMatrix probs;
  probs.num_nodes = num_nodes;
  probs.num_chips = num_chips;
  probs.data.assign(
      static_cast<std::size_t>(num_nodes) * static_cast<std::size_t>(num_chips),
      1.0 / num_chips);
  return probs;
}

std::vector<int> RandomNodeOrder(int num_nodes, Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(num_nodes));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  return order;
}

std::vector<int> TopologicalNodeOrder(const Graph& graph) {
  return graph.TopologicalOrder();
}

std::vector<int> RandomTopologicalOrder(const Graph& graph, Rng& rng) {
  const int n = graph.NumNodes();
  std::vector<int> indegree(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int u = 0; u < n; ++u) {
    indegree[static_cast<std::size_t>(u)] = graph.InDegree(u);
    if (indegree[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const std::size_t pick = rng.UniformInt(ready.size());
    const int u = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (int v : graph.Successors(u)) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  MCM_CHECK_EQ(static_cast<int>(order.size()), n);
  return order;
}

std::vector<int> AlapRandomTopologicalOrder(const Graph& graph, Rng& rng) {
  const int n = graph.NumNodes();
  // ALAP level: sinks at their ASAP depth; everything else as late as its
  // earliest consumer allows.
  const std::vector<int> asap = graph.Depths();
  std::vector<int> alap(static_cast<std::size_t>(n), 0);
  const std::vector<int> topo = graph.TopologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int u = *it;
    if (graph.OutDegree(u) == 0) {
      alap[static_cast<std::size_t>(u)] = asap[static_cast<std::size_t>(u)];
      continue;
    }
    int level = std::numeric_limits<int>::max();
    for (int succ : graph.Successors(u)) {
      level = std::min(level, alap[static_cast<std::size_t>(succ)] - 1);
    }
    alap[static_cast<std::size_t>(u)] = level;
  }
  // Decision keys: (level, deferred, random).  Non-source nodes are ordered
  // by ALAP level (a topological order, randomized within levels).  Source
  // nodes (constants / graph inputs) are *deferred until after their
  // earliest consumers*: a source carries no dataflow constraint of its
  // own, so deciding it first means sampling it nearly unconstrained and
  // discovering the conflict (typically against the NoC triangle rule) only
  // when its consumers are fixed.  Decided after them, propagation has
  // already pinned its feasible chips.  The emitted order is therefore not
  // strictly a linear extension -- the solver does not require one.
  struct DecisionKey {
    long long key;
    int node;
  };
  std::vector<DecisionKey> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    int level = alap[static_cast<std::size_t>(u)];
    long long deferred = 0;
    if (graph.InDegree(u) == 0 && graph.OutDegree(u) > 0) {
      int first_consumer = std::numeric_limits<int>::max();
      for (int succ : graph.Successors(u)) {
        first_consumer =
            std::min(first_consumer, alap[static_cast<std::size_t>(succ)]);
      }
      level = first_consumer;
      deferred = 1;
    }
    keys.push_back(
        DecisionKey{(static_cast<long long>(level) << 1) | deferred, u});
  }
  // Shuffle first so equal keys land in random relative order, then
  // stable-sort by key.
  rng.Shuffle(keys);
  std::stable_sort(keys.begin(), keys.end(),
                   [](const DecisionKey& a, const DecisionKey& b) {
                     return a.key < b.key;
                   });
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (const DecisionKey& k : keys) order.push_back(k.node);
  MCM_CHECK_EQ(static_cast<int>(order.size()), n);
  return order;
}

namespace {

SolveResult SolveSampleImpl(CpSolver& solver, std::span<const int> order,
                            const ProbMatrix& probs, Rng& rng) {
  const int n = solver.num_nodes();
  MCM_CHECK_EQ(static_cast<int>(order.size()), n);
  MCM_CHECK_EQ(probs.num_nodes, n);
  MCM_CHECK_EQ(probs.num_chips, solver.num_chips());
  solver.Reset();

  SolveResult result;
  const std::int64_t budget = SetDomainCallsPerNode() * n;
  const double pace_scale = DrawPaceScale(rng);
  int i = 0;
  while (i < n) {
    const int u = order[static_cast<std::size_t>(i)];
    const ChipDomain domain = solver.GetDomain(u);
    // The soft exploration preference applies only when the policy actually
    // has mass there; a confident policy (concentrated row) overrides it.
    ChipDomain mask = PreferredValues(solver, domain, pace_scale);
    if (mask != domain) {
      const auto row = probs.row(u);
      double preferred_mass = 0.0, domain_mass = 0.0;
      for (int chip = 0; chip < solver.num_chips(); ++chip) {
        if (DomainContains(domain, chip)) {
          domain_mass += row[static_cast<std::size_t>(chip)];
          if (DomainContains(mask, chip)) {
            preferred_mass += row[static_cast<std::size_t>(chip)];
          }
        }
      }
      if (preferred_mass < 0.01 * domain_mass) mask = domain;
    }
    const int chip = static_cast<int>(
        rng.SampleDiscreteMasked(probs.row(u), mask));
    i = solver.SetDomain(u, 1ULL << chip);
    ++result.set_domain_calls;
    if (i < 0 || result.set_domain_calls > budget) return result;
  }
  MCM_CHECK(solver.AllFixed());
  result.partition = solver.ExtractPartition();
  result.success = true;
  return result;
}

SolveResult SolveFixImpl(CpSolver& solver, std::span<const int> order,
                         const Partition& candidate, Rng& rng) {
  const int n = solver.num_nodes();
  MCM_CHECK_EQ(static_cast<int>(order.size()), n);
  MCM_CHECK_EQ(static_cast<int>(candidate.assignment.size()), n);
  solver.Reset();

  SolveResult result;
  const std::int64_t budget = SetDomainCallsPerNode() * n;
  const double pace_scale = DrawPaceScale(rng);
  int i = 0;
  while (i < 2 * n) {
    const int u = order[static_cast<std::size_t>(i % n)];
    const ChipDomain domain = solver.GetDomain(u);
    if (i < n) {
      const int wanted = candidate.chip(u);
      // The candidate value must lie in the solver's domain (Algorithm 2's
      // test) *and* within the open-chip window: CP-SAT's stronger
      // propagation would have pruned frontier-incoherent values from the
      // domain itself, while this solver's weaker propagation only discovers
      // them through backtracking -- a candidate that scatters nodes over
      // unopened chips (an untrained policy does) would otherwise thrash
      // the solve.  Coherent candidates pass the window test everywhere.
      const ChipDomain window =
          MaskUpTo(std::min(solver.MaxFixedChip() + 1,
                            solver.num_chips() - 1));
      if (wanted >= 0 && wanted < solver.num_chips() &&
          DomainContains(domain & window, wanted)) {
        i = solver.SetDomain(u, 1ULL << wanted);
      } else {
        // Leave the node open; this still counts as a decision step.
        i = solver.SetDomain(u, domain);
      }
    } else {
      ChipDomain bits = PreferredValues(solver, domain, pace_scale);
      const int pick = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(DomainSize(bits))));
      for (int skip = 0; skip < pick; ++skip) bits &= bits - 1;
      i = solver.SetDomain(u, 1ULL << __builtin_ctzll(bits));
    }
    ++result.set_domain_calls;
    if (i < 0 || result.set_domain_calls > budget) return result;
  }
  MCM_CHECK(solver.AllFixed());
  result.partition = solver.ExtractPartition();
  result.success = true;
  for (int u = 0; u < n; ++u) {
    if (result.partition.chip(u) == candidate.chip(u)) ++result.nodes_kept;
  }
  return result;
}

}  // namespace

SolveResult SolveSample(CpSolver& solver, std::span<const int> order,
                        const ProbMatrix& probs, Rng& rng) {
  MCM_TRACE_SPAN("solver/sample");
  static telemetry::Counter& sample_solves =
      telemetry::Counter::Get("solver/sample_solves");
  const CpSolver::Stats before = solver.stats();
  const SolveResult result = SolveSampleImpl(solver, order, probs, rng);
  sample_solves.Add();
  RecordSolveTelemetry(before, solver.stats(), result);
  return result;
}

SolveResult SolveFix(CpSolver& solver, std::span<const int> order,
                     const Partition& candidate, Rng& rng) {
  MCM_TRACE_SPAN("solver/fix");
  static telemetry::Counter& fix_solves =
      telemetry::Counter::Get("solver/fix_solves");
  static telemetry::Counter& already_feasible =
      telemetry::Counter::Get("solver/fix_already_feasible");
  static telemetry::Counter& repaired =
      telemetry::Counter::Get("solver/fix_repaired");
  const CpSolver::Stats before = solver.stats();
  const SolveResult result = SolveFixImpl(solver, order, candidate, rng);
  fix_solves.Add();
  RecordSolveTelemetry(before, solver.stats(), result);
  if (result.success) {
    // A repair that keeps every node is the Algorithm 2 fast path: the
    // policy's proposal was already feasible.
    if (result.nodes_kept == solver.num_nodes()) {
      already_feasible.Add();
    } else {
      repaired.Add();
    }
  }
  return result;
}

SolveResult SolveSampleWithRestarts(CpSolver& solver, const Graph& graph,
                                    const ProbMatrix& probs, Rng& rng,
                                    int max_attempts) {
  SolveResult result;
  std::int64_t total_calls = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::vector<int> order = AlapRandomTopologicalOrder(graph, rng);
    result = SolveSample(solver, order, probs, rng);
    total_calls += result.set_domain_calls;
    if (result.success) break;
  }
  if (!result.success) result = DegradedFallback(solver, graph);
  result.set_domain_calls = total_calls;
  return result;
}

SolveResult SolveFixWithRestarts(CpSolver& solver, const Graph& graph,
                                 const Partition& candidate, Rng& rng,
                                 int max_attempts) {
  SolveResult result;
  std::int64_t total_calls = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::vector<int> order = AlapRandomTopologicalOrder(graph, rng);
    result = SolveFix(solver, order, candidate, rng);
    total_calls += result.set_domain_calls;
    if (result.success) break;
  }
  if (!result.success) {
    result = DegradedFallback(solver, graph);
    for (int u = 0; u < solver.num_nodes(); ++u) {
      if (result.partition.chip(u) == candidate.chip(u)) ++result.nodes_kept;
    }
  }
  result.set_domain_calls = total_calls;
  return result;
}

Partition ProbeSingleNodeMoves(
    const Graph& graph, const Partition& start, double start_score,
    const std::function<double(const Partition&)>& score, int budget,
    Rng& rng, ProbeStats* stats) {
  MCM_TRACE_SPAN("solver/probe");
  static telemetry::Counter& probe_proposals =
      telemetry::Counter::Get("solver/probe_proposals");
  static telemetry::Counter& probe_accepted =
      telemetry::Counter::Get("solver/probe_accepted");
  ProbeStats local;
  ProbeStats& out = stats != nullptr ? *stats : local;
  const int n = graph.NumNodes();
  const int c = start.num_chips;
  if (budget <= 0 || n < 1 || c < 2 || c > kMaxChips || !start.Complete()) {
    return start;
  }
  // Incremental validity screen; its partition() carries the incumbent.
  DeltaEvaluator filter(graph, McmConfig{});
  filter.Rebase(start);
  double current = start_score;
  for (int k = 0; k < budget; ++k) {
    ++out.proposals;
    probe_proposals.Add();
    const int node = static_cast<int>(rng.UniformInt(
        static_cast<std::uint64_t>(n)));
    int chip = static_cast<int>(rng.UniformInt(
        static_cast<std::uint64_t>(c - 1)));
    if (chip >= filter.partition().chip(node)) ++chip;
    filter.Apply(node, chip);
    if (!filter.StaticallyValid()) {
      filter.Undo();
      continue;
    }
    ++out.statically_valid;
    const double candidate_score = score(filter.partition());
    if (candidate_score > current) {
      ++out.accepted;
      probe_accepted.Add();
      current = candidate_score;
      filter.CommitBase();
    } else {
      filter.Undo();
    }
  }
  return filter.partition();
}

}  // namespace mcm
