// The paper's two solver driving strategies (Algorithms 1 and 2).
//
// Both walk a node order, asking the solver for the current valid domain of
// each node and committing one chip choice at a time; the solver propagates
// and backtracks internally (SetDomain returns the new decision index).
//
//   SAMPLE: each node's chip is sampled from the policy's probability row
//           restricted to the current valid domain.
//   FIX:    the candidate partition y is kept wherever it is valid; nodes
//           whose candidate is invalid are left open in a first pass and
//           assigned uniformly at random from their remaining domains in a
//           second pass.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "partition/partition.h"
#include "solver/cp_solver.h"

namespace mcm {

// Row-major [num_nodes x num_chips] probability matrix P; rows need not be
// normalized (sampling normalizes over the valid domain anyway).
struct ProbMatrix {
  int num_nodes = 0;
  int num_chips = 0;
  std::vector<double> data;

  static ProbMatrix Uniform(int num_nodes, int num_chips);

  std::span<const double> row(int node) const {
    return std::span<const double>(data)
        .subspan(static_cast<std::size_t>(node) * num_chips,
                 static_cast<std::size_t>(num_chips));
  }
  std::span<double> row(int node) {
    return std::span<double>(data).subspan(
        static_cast<std::size_t>(node) * num_chips,
        static_cast<std::size_t>(num_chips));
  }
};

struct SolveResult {
  bool success = false;
  Partition partition;
  // For FIX mode: how many nodes kept the candidate's assignment.
  int nodes_kept = 0;
  // SetDomain invocations this solve (a proxy for solver effort).
  std::int64_t set_domain_calls = 0;
  // True when every solve attempt exhausted its budget and the partition is
  // the greedy-heuristic fallback (statically valid, but no CP search went
  // into it).  Only the WithRestarts entry points degrade; success is true.
  bool degraded = false;
};

// Node-order strategies.  The paper defaults to a fresh random order per
// solve "to explore a larger decision space".
std::vector<int> RandomNodeOrder(int num_nodes, Rng& rng);
std::vector<int> TopologicalNodeOrder(const Graph& graph);

// A uniformly-random-ish linear extension of the DAG (Kahn's algorithm with
// random tie-breaking).  This is the recommended default order: it keeps
// the paper's fresh-random-order exploration while guaranteeing that a
// node's predecessors are assigned first, which turns the triangle
// constraint into forward checking (violations surface at the decision
// that caused them instead of via deep backtracking).
std::vector<int> RandomTopologicalOrder(const Graph& graph, Rng& rng);

// As-late-as-possible randomized topological order: among ready nodes, one
// with the smallest ALAP level is picked uniformly at random.  This keeps a
// node (in particular a constant / graph input) undecided until just before
// its consumers, by which time propagation has narrowed its domain -- a
// plain random linear extension decides such nodes first, when they are
// nearly unconstrained, and the resulting conflicts only surface hundreds
// of decisions later (catastrophic backtracking on BERT-sized graphs).
// This is the default order used by the search strategies and the RL loop.
std::vector<int> AlapRandomTopologicalOrder(const Graph& graph, Rng& rng);

// Algorithm 1: SAMPLE mode.  Resets the solver, then assigns nodes in
// `order`, sampling each chip from `probs` restricted to the live domain.
SolveResult SolveSample(CpSolver& solver, std::span<const int> order,
                        const ProbMatrix& probs, Rng& rng);

// Algorithm 2: FIX mode.  Resets the solver, keeps valid candidate
// assignments in pass one, randomizes the remainder in pass two.
SolveResult SolveFix(CpSolver& solver, std::span<const int> order,
                     const Partition& candidate, Rng& rng);

// Restarting variants (the recommended entry points): each attempt uses a
// fresh ALAP-random order and a bounded SetDomain budget (30 calls per node
// by default; MCMPART_SOLVER_BUDGET overrides); chronic thrashing on one
// order is usually cheap to escape on another -- the same reasoning behind
// CP-SAT's aggressive restart policy.  When every attempt exhausts its
// budget, the result *degrades* instead of failing: the greedy contiguous
// heuristic (partition/heuristics.h), or the always-valid single-chip
// partition if even that is invalid, is returned with success=true and
// degraded=true (counted in solver/degraded_solves).  Callers therefore
// always receive a statically valid partition.
SolveResult SolveSampleWithRestarts(CpSolver& solver, const Graph& graph,
                                    const ProbMatrix& probs, Rng& rng,
                                    int max_attempts = 6);
SolveResult SolveFixWithRestarts(CpSolver& solver, const Graph& graph,
                                 const Partition& candidate, Rng& rng,
                                 int max_attempts = 6);

struct ProbeStats {
  int proposals = 0;         // Single-node moves drawn.
  int statically_valid = 0;  // Moves that passed the incremental screen.
  int accepted = 0;          // Moves that improved the score.
};

// Greedy single-node-move refinement of a (statically valid, complete)
// solver result: draws `budget` random (node, other-chip) moves, screens
// each for static validity with an incremental DeltaEvaluator
// (costmodel/delta_eval.h) -- so a rejected neighbor costs O(degree(node)),
// not a full walk -- and keeps a move only when `score` strictly improves
// on the incumbent (`start_score` must be score(start)).  Deterministic for
// a given rng state.  Returns the refined partition (== start when nothing
// improved); every returned partition is statically valid.  The service's
// solver mode probes each baseline this way before responding.  Counters:
// solver/probe_proposals, solver/probe_accepted.
Partition ProbeSingleNodeMoves(
    const Graph& graph, const Partition& start, double start_score,
    const std::function<double(const Partition&)>& score, int budget,
    Rng& rng, ProbeStats* stats = nullptr);

}  // namespace mcm
