// Constraint-programming solver for the multi-chip partitioning constraints.
//
// This is the reproduction's stand-in for CP-SAT, implementing exactly the
// interface the paper's Algorithms 1 and 2 use: the solver owns one variable
// y_i per node with a chip-set *domain*, callers query domains with
// `GetDomain` and commit choices with `SetDomain`, and each `SetDomain` runs
// *constraint propagation* that recursively prunes other domains.  When a
// choice wipes out some domain, the solver *backtracks*: it undoes trailing
// decisions (excluding the failed values so they are not retried) and
// returns the new decision index, which can be lower than before -- the
// paper's `i = S.set_domain(u, {y'_u})`.
//
// Enforced constraints (Section 3):
//   Eq. (2) acyclic dataflow  -- bounds propagation over every edge.
//   Eq. (3) no skipping chips -- chip-support counting with prefix forcing.
//   Eq. (4) triangle          -- incremental chip-dependency-graph check on
//                                every newly fixed node plus domain pruning
//                                of its neighbors.
//
// Because assigning every node to chip 0 satisfies all static constraints,
// the problem is always satisfiable and drivers always terminate.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"

namespace mcm {

// Bitset of chips [0, num_chips).
using ChipDomain = std::uint64_t;

constexpr ChipDomain FullDomain(int num_chips) {
  return num_chips >= 64 ? ~0ULL : (1ULL << num_chips) - 1;
}
constexpr int DomainMin(ChipDomain d) { return __builtin_ctzll(d); }
constexpr int DomainMax(ChipDomain d) { return 63 - __builtin_clzll(d); }
constexpr int DomainSize(ChipDomain d) { return __builtin_popcountll(d); }
constexpr bool DomainContains(ChipDomain d, int chip) {
  return (d >> chip) & 1ULL;
}
// Bits >= chip.
constexpr ChipDomain MaskFrom(int chip) {
  return chip >= 64 ? 0 : ~0ULL << chip;
}
// Bits <= chip.
constexpr ChipDomain MaskUpTo(int chip) {
  return chip >= 63 ? ~0ULL : (1ULL << (chip + 1)) - 1;
}

class CpSolver {
 public:
  struct Options {
    // Enable domain pruning from the triangle constraint (the full check on
    // fixed nodes always runs; pruning is a search-speed optimization).
    bool prune_triangle_domains = true;
    // Strengthens the triangle pruning by assuming that chips already
    // holding fixed nodes will end up path-connected in the chip dependency
    // graph, which holds for connected dataflow graphs.  A direct chip edge
    // (a, b) is then forbidden whenever some used chip lies strictly
    // between a and b -- this caps structures like transformer residual
    // windows at the decision that would overrun them, instead of a
    // thousand decisions later.  Slightly incomplete (it excludes exotic
    // solutions that interpose a never-connected chip inside a dependency
    // span) but essential for tractable sampling on deep graphs.
    bool assume_connected_used_chips = true;
    // Work budget per solve attempt: when > 0, a SetDomain call issued after
    // the solve (since the last Reset) has accumulated this many propagation
    // events fails with kBudgetExhausted instead of searching on.  Drivers
    // treat that like any failure and degrade to the greedy heuristic (see
    // modes.cc), so a pathological instance costs bounded work instead of
    // aborting the run.  0 = unlimited (the default).
    std::int64_t propagation_budget = 0;
    // Wall-clock deadline per solve attempt in seconds, measured from
    // Reset(); 0 disables (the default).  Unlike propagation_budget this
    // reads the monotonic clock, so exceeding it makes the *solve effort*
    // machine-dependent -- results stay valid but are no longer bit-
    // reproducible across machines.  Use the propagation budget when the
    // determinism contract matters.
    double deadline_s = 0.0;
  };

  // SetDomain return value when the solve attempt exceeded its
  // propagation_budget or deadline_s (distinct from -1, root infeasible).
  static constexpr int kBudgetExhausted = -2;

  struct Stats {
    std::int64_t decisions = 0;       // Successful SetDomain commits.
    std::int64_t failures = 0;        // Propagation wipeouts.
    std::int64_t backtracks = 0;      // Decision levels undone.
    std::int64_t propagations = 0;    // Domain-narrowing events.
    // Failure attribution (which propagator detected the wipeout).
    std::int64_t fail_edge = 0;
    std::int64_t fail_noskip = 0;
    std::int64_t fail_pigeonhole = 0;
    std::int64_t fail_triangle = 0;
    std::int64_t fail_decision = 0;   // Empty intersection at SetDomain.
  };

  CpSolver(const Graph& graph, int num_chips)
      : CpSolver(graph, num_chips, Options{}) {}
  CpSolver(const Graph& graph, int num_chips, Options options);

  CpSolver(const CpSolver&) = delete;
  CpSolver& operator=(const CpSolver&) = delete;

  // Discards all decisions and restores the root state (with root-level
  // propagation applied).
  void Reset();

  int num_nodes() const { return static_cast<int>(domains_.size()); }
  int num_chips() const { return num_chips_; }
  const Stats& stats() const { return stats_; }

  // The paper's get_domain: current valid chips for `node`.
  ChipDomain GetDomain(int node) const {
    return domains_[static_cast<std::size_t>(node)];
  }

  bool IsFixed(int node) const { return DomainSize(GetDomain(node)) == 1; }
  int FixedValue(int node) const { return DomainMin(GetDomain(node)); }

  // Highest chip any currently-fixed node occupies, or -1 when none is
  // fixed.  Drivers use this for the open-chips-in-order value-selection
  // rule (sample chips <= MaxFixedChip()+1 when possible), which avoids
  // opening a chip before all lower chips are used -- holes are usually
  // unfillable and their infeasibility surfaces only hundreds of decisions
  // later.
  int MaxFixedChip() const;

  // Chips currently holding fewer than `quota` fixed nodes.  Drivers use
  // this as a soft load-balancing preference so that unbiased sampling does
  // not dump the whole tail of the graph onto the last opened chip.
  ChipDomain UnderQuotaMask(int quota) const;

  // Total number of fixed nodes (by decision or propagation).
  int NumFixedNodes() const;

  // The paper's set_domain: restricts `node`'s domain to `domain` (the
  // intersection with the current domain is used), runs propagation, and
  // returns the new decision count.  On failure the attempted values are
  // excluded and earlier decisions are undone as needed, so the returned
  // index may be smaller than the index before the call.  Returns -1 only
  // if the root becomes infeasible (impossible for this constraint system
  // unless the caller excluded chip 0 everywhere).
  int SetDomain(int node, ChipDomain domain);

  int NumDecisions() const { return static_cast<int>(decisions_.size()); }

  // True when every variable is fixed; `ExtractPartition` then returns the
  // solution, which is guaranteed statically valid.
  bool AllFixed() const;
  Partition ExtractPartition() const;

 private:
  struct TrailEntry {
    int node;
    ChipDomain old_domain;
  };
  struct Decision {
    int node;
    ChipDomain attempted;  // The mask passed to SetDomain.
  };

  // Narrows a domain, recording the old value on the trail and enqueueing
  // the node for propagation.  Returns false on wipeout.
  bool Narrow(int node, ChipDomain new_domain);

  // Runs the propagation queue to fixpoint.  Returns false on failure.
  bool Propagate();

  bool PropagateEdges(int node);
  bool PropagateNoSkip();
  // Full validity check of the fixed-node chip graph plus neighbor-domain
  // pruning; run when nodes became fixed since the last call.
  bool PropagateTriangle();

  // Undoes the top decision level.  Returns the decision that was undone.
  Decision PopLevel();

  // Drops queued-but-unprocessed propagation work after a failure.
  void ClearPropagationState();

  // Computes the longest-path matrix of the chip graph induced by *fixed*
  // cross-chip edges into delta_ and adjacency into fixed_adj_.
  void RebuildFixedChipGraph();

  // True when the current solve attempt has exhausted its propagation or
  // wall-clock budget (see Options); checked at every SetDomain.
  bool BudgetExhausted() const;

  const Graph& graph_;
  const int num_chips_;
  const Options options_;
  Stats stats_;

  // Budget bookkeeping for the current solve attempt (reset by Reset()).
  std::int64_t solve_start_propagations_ = 0;
  double solve_deadline_at_s_ = 0.0;  // Absolute MonotonicSeconds; 0 = off.

  std::vector<ChipDomain> domains_;
  std::vector<TrailEntry> trail_;
  std::vector<std::size_t> level_starts_;
  std::vector<Decision> decisions_;

  // Propagation worklist.
  std::vector<int> queue_;
  std::vector<char> in_queue_;
  std::vector<int> newly_fixed_;

  // Number of nodes whose domain contains each chip, plus dirty flags set by
  // Narrow when some chip's support dropped to 0 / 1.
  std::vector<int> support_;
  // Number of nodes currently fixed on each chip (maintained through the
  // trail), feeding the connected-used-chips strengthening.
  std::vector<int> fixed_count_;
  bool support_zero_pending_ = false;
  bool support_one_pending_ = false;

  // Scratch for the triangle check and its global forward-checking masks.
  std::vector<std::uint64_t> fixed_adj_;
  std::vector<std::vector<int>> delta_;
  std::vector<ChipDomain> reach_from_;
  std::vector<ChipDomain> reach_to_;
  std::vector<ChipDomain> radj_;
  std::vector<ChipDomain> allowed_succ_;
  std::vector<ChipDomain> allowed_pred_;

  // Scratch histogram of domain minima for the pigeonhole rule.
  std::vector<int> min_hist_;
};

}  // namespace mcm
