// Search strategies over the partition space, all sharing the constraint
// solver and cost model exactly as in the paper's Section 5.1:
//
//   * RandomSearch    -- fixed uniform P, solver in SAMPLE mode.
//   * SimulatedAnnealing -- perturbs a probability distribution, SAMPLE
//                        mode solves, Metropolis acceptance on the reward.
//   * RlSearch        -- PPO training from scratch (or from a pre-trained
//                        checkpoint: zero-shot / fine-tuning).
//   * NoSolverRlSearch -- the paper's "RL without constraint solver"
//                        ablation: candidates go straight to evaluation and
//                        invalid ones earn zero reward.
//
// Every strategy emits a SearchTrace: the reward of each evaluated sample
// in order, from which benches derive best-so-far curves (Figures 5/6) and
// samples-to-threshold tables (Tables 2/3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"

namespace mcm {

struct SearchTrace {
  std::string strategy;
  // rewards[k] = throughput improvement of the k-th evaluated sample
  // (0 for invalid samples).
  std::vector<double> rewards;

  // Best reward among the first `samples` entries (0 if none).
  double BestWithin(std::size_t samples) const;
  // Running best-so-far curve.
  std::vector<double> BestSoFar() const;
  // First sample index (1-based) reaching `threshold`, or nullopt.
  std::optional<std::size_t> SamplesToReach(double threshold) const;
};

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  // Runs `budget` evaluations on (context, env) and returns the trace.
  virtual SearchTrace Run(GraphContext& context, PartitionEnv& env,
                          int budget) = 0;
  virtual std::string name() const = 0;
};

// Uniform distribution + SAMPLE-mode solver.
class RandomSearch final : public SearchStrategy {
 public:
  explicit RandomSearch(Rng rng) : rng_(rng) {}
  SearchTrace Run(GraphContext& context, PartitionEnv& env,
                  int budget) override;
  std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

// Simulated annealing over the probability-distribution space.
class SimulatedAnnealing final : public SearchStrategy {
 public:
  struct Options {
    // Fraction of nodes whose distribution is re-randomized per proposal.
    double perturb_fraction = 0.05;
    double initial_temperature = 0.2;
    double final_temperature = 0.01;
    // Sharpness of the random re-randomized rows (Dirichlet-ish).
    double concentration = 0.5;
  };

  SimulatedAnnealing(Rng rng, Options options)
      : rng_(rng), options_(options) {}
  explicit SimulatedAnnealing(Rng rng)
      : SimulatedAnnealing(rng, Options{}) {}

  SearchTrace Run(GraphContext& context, PartitionEnv& env,
                  int budget) override;
  std::string name() const override { return "SA"; }

 private:
  Rng rng_;
  Options options_;
};

// Single-node-move local search in partition space -- the mutation-heavy
// workload the incremental evaluator (costmodel/delta_eval.h) serves.  Each
// proposal moves one node to a random other chip; an incremental
// DeltaEvaluator screens the move for static validity in O(degree(node)),
// so invalid neighbors never pay a full-graph walk or an evaluation, and
// valid neighbors go through the environment with Metropolis acceptance on
// a geometric temperature schedule.  Complements SimulatedAnnealing, which
// anneals the solver's *probability distribution*; HillClimb anneals the
// partition itself.
class HillClimbSearch final : public SearchStrategy {
 public:
  struct Options {
    double initial_temperature = 0.05;
    double final_temperature = 1e-3;
  };

  HillClimbSearch(Rng rng, Options options) : rng_(rng), options_(options) {}
  explicit HillClimbSearch(Rng rng) : HillClimbSearch(rng, Options{}) {}

  SearchTrace Run(GraphContext& context, PartitionEnv& env,
                  int budget) override;
  std::string name() const override { return "HillClimb"; }

 private:
  Rng rng_;
  Options options_;
};

// RL with the constraint solver.  Wraps PpoTrainer; when constructed with a
// pre-trained policy the same class serves fine-tuning, and EvaluateOnly
// (via `zero_shot`) serves zero-shot deployment.
class RlSearch final : public SearchStrategy {
 public:
  // `policy` is borrowed and is updated in place unless zero_shot.
  RlSearch(PolicyNetwork& policy, Rng rng, bool zero_shot = false,
           std::string label = "RL")
      : trainer_(policy, rng), zero_shot_(zero_shot), label_(std::move(label)) {}

  SearchTrace Run(GraphContext& context, PartitionEnv& env,
                  int budget) override;
  std::string name() const override { return label_; }

 private:
  PpoTrainer trainer_;
  bool zero_shot_;
  std::string label_;
};

// Ablation: RL sampling straight into evaluation, no solver correction.
// Statically invalid candidates earn zero reward (the paper reports this
// baseline never finds a valid partition).
class NoSolverRlSearch final : public SearchStrategy {
 public:
  NoSolverRlSearch(PolicyNetwork& policy, Rng rng)
      : policy_(&policy), trainer_(policy, rng), rng_(rng) {}

  SearchTrace Run(GraphContext& context, PartitionEnv& env,
                  int budget) override;
  std::string name() const override { return "RL-NoSolver"; }

 private:
  PolicyNetwork* policy_;
  PpoTrainer trainer_;
  Rng rng_;
};

}  // namespace mcm
