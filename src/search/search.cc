#include "search/search.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "costmodel/delta_eval.h"
#include "runtime/thread_pool.h"
#include "solver/modes.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {

double SearchTrace::BestWithin(std::size_t samples) const {
  double best = 0.0;
  const std::size_t limit = std::min(samples, rewards.size());
  for (std::size_t i = 0; i < limit; ++i) best = std::max(best, rewards[i]);
  return best;
}

std::vector<double> SearchTrace::BestSoFar() const {
  std::vector<double> curve;
  curve.reserve(rewards.size());
  double best = 0.0;
  for (double r : rewards) {
    best = std::max(best, r);
    curve.push_back(best);
  }
  return curve;
}

std::optional<std::size_t> SearchTrace::SamplesToReach(
    double threshold) const {
  double best = 0.0;
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    best = std::max(best, rewards[i]);
    if (best >= threshold) return i + 1;
  }
  return std::nullopt;
}

SearchTrace RandomSearch::Run(GraphContext& context, PartitionEnv& env,
                              int budget) {
  MCM_TRACE_SPAN("search/random");
  static telemetry::Counter& samples =
      telemetry::Counter::Get("search/random_samples");
  samples.Add(budget);
  SearchTrace trace;
  trace.strategy = name();
  const ProbMatrix uniform = ProbMatrix::Uniform(
      context.num_nodes(), context.solver().num_chips());
  // Candidates are independent draws: batch-solve and batch-evaluate them in
  // parallel (per-sample RNG substream + private solver per task), then
  // commit to the environment serially in sample order so the incumbent and
  // the trace are bit-identical for any thread count.
  const std::uint64_t base_seed = rng_.Next();
  std::vector<Partition> partitions(static_cast<std::size_t>(budget));
  std::vector<char> success(static_cast<std::size_t>(budget), 0);
  std::vector<EvalResult> evals(static_cast<std::size_t>(budget));
  std::vector<double> scores(static_cast<std::size_t>(budget), 0.0);
  ParallelFor(0, budget, [&](std::int64_t k) {
    Rng task_rng(HashCombine(base_seed, static_cast<std::uint64_t>(k)));
    CpSolver solver(context.graph(), context.solver().num_chips());
    SolveResult solved =
        SolveSampleWithRestarts(solver, context.graph(), uniform, task_rng);
    if (!solved.success) return;
    scores[static_cast<std::size_t>(k)] = env.Score(
        solved.partition, &evals[static_cast<std::size_t>(k)]);
    partitions[static_cast<std::size_t>(k)] = std::move(solved.partition);
    success[static_cast<std::size_t>(k)] = 1;
  });
  trace.rewards.reserve(static_cast<std::size_t>(budget));
  for (int k = 0; k < budget; ++k) {
    if (success[static_cast<std::size_t>(k)]) {
      env.CommitScore(partitions[static_cast<std::size_t>(k)],
                      evals[static_cast<std::size_t>(k)],
                      scores[static_cast<std::size_t>(k)]);
      trace.rewards.push_back(scores[static_cast<std::size_t>(k)]);
    } else {
      trace.rewards.push_back(0.0);
    }
  }
  return trace;
}

namespace {

// Draws a random categorical distribution; smaller `concentration` gives
// sharper rows (Dirichlet(concentration) via normalized Gamma would be the
// textbook draw; an exponential-power approximation suffices here).
void RandomizeRow(std::span<double> row, double concentration, Rng& rng) {
  double total = 0.0;
  for (double& w : row) {
    const double u = std::max(rng.UniformDouble(), 1e-12);
    w = std::pow(-std::log(u), 1.0 / std::max(concentration, 1e-3));
    total += w;
  }
  for (double& w : row) w /= total;
}

}  // namespace

SearchTrace SimulatedAnnealing::Run(GraphContext& context, PartitionEnv& env,
                                    int budget) {
  MCM_TRACE_SPAN("search/sa");
  static telemetry::Counter& proposals =
      telemetry::Counter::Get("search/sa_proposals");
  proposals.Add(budget);
  SearchTrace trace;
  trace.strategy = name();
  const int n = context.num_nodes();
  const int c = context.solver().num_chips();

  ProbMatrix current = ProbMatrix::Uniform(n, c);
  double current_reward = 0.0;
  {
    const SolveResult solved = SolveSampleWithRestarts(
        context.solver(), context.graph(), current, rng_);
    current_reward = solved.success ? env.Reward(solved.partition) : 0.0;
    trace.rewards.push_back(current_reward);
  }

  const int perturb_nodes = std::max(
      1, static_cast<int>(options_.perturb_fraction * n));
  for (int k = 1; k < budget; ++k) {
    // Geometric temperature schedule.
    const double progress = static_cast<double>(k) / std::max(budget - 1, 1);
    const double temperature =
        options_.initial_temperature *
        std::pow(options_.final_temperature / options_.initial_temperature,
                 progress);

    ProbMatrix proposal = current;
    for (int j = 0; j < perturb_nodes; ++j) {
      const int node = static_cast<int>(rng_.UniformInt(
          static_cast<std::uint64_t>(n)));
      RandomizeRow(proposal.row(node), options_.concentration, rng_);
    }
    const SolveResult solved = SolveSampleWithRestarts(
        context.solver(), context.graph(), proposal, rng_);
    const double reward =
        solved.success ? env.Reward(solved.partition) : 0.0;
    trace.rewards.push_back(reward);

    const double delta = reward - current_reward;
    if (delta >= 0.0 ||
        rng_.UniformDouble() < std::exp(delta / std::max(temperature, 1e-9))) {
      current = std::move(proposal);
      current_reward = reward;
    }
  }
  return trace;
}

SearchTrace HillClimbSearch::Run(GraphContext& context, PartitionEnv& env,
                                 int budget) {
  MCM_TRACE_SPAN("search/hillclimb");
  static telemetry::Counter& proposals =
      telemetry::Counter::Get("search/hillclimb_proposals");
  proposals.Add(budget);
  SearchTrace trace;
  trace.strategy = name();
  const int n = context.num_nodes();
  const int c = context.solver().num_chips();

  // Seed the incumbent from the SAMPLE-mode solver under a uniform
  // distribution, like RandomSearch's draws.
  const ProbMatrix uniform = ProbMatrix::Uniform(n, c);
  const SolveResult solved = SolveSampleWithRestarts(
      context.solver(), context.graph(), uniform, rng_);
  MCM_CHECK(solved.success) << "solver could not seed a valid partition";
  double current_reward = env.Reward(solved.partition);
  trace.rewards.push_back(current_reward);
  if (c < 2 || n < 1) {
    // No alternative chip to move a node to: the incumbent is the search.
    for (int k = 1; k < budget; ++k) trace.rewards.push_back(current_reward);
    return trace;
  }

  // The incremental screen; its partition() doubles as the incumbent.
  DeltaEvaluator filter(context.graph(), McmConfig{});
  filter.Rebase(solved.partition);
  for (int k = 1; k < budget; ++k) {
    // Geometric temperature schedule, as in SimulatedAnnealing.
    const double progress = static_cast<double>(k) / std::max(budget - 1, 1);
    const double temperature =
        options_.initial_temperature *
        std::pow(options_.final_temperature / options_.initial_temperature,
                 progress);

    const int node = static_cast<int>(rng_.UniformInt(
        static_cast<std::uint64_t>(n)));
    int chip = static_cast<int>(rng_.UniformInt(
        static_cast<std::uint64_t>(c - 1)));
    if (chip >= filter.partition().chip(node)) ++chip;
    filter.Apply(node, chip);
    if (!filter.StaticallyValid()) {
      filter.Undo();
      trace.rewards.push_back(0.0);
      continue;
    }
    const double reward = env.Reward(filter.partition());
    trace.rewards.push_back(reward);

    const double delta = reward - current_reward;
    if (delta >= 0.0 ||
        rng_.UniformDouble() < std::exp(delta / std::max(temperature, 1e-9))) {
      filter.CommitBase();
      current_reward = reward;
    } else {
      filter.Undo();
    }
  }
  return trace;
}

SearchTrace RlSearch::Run(GraphContext& context, PartitionEnv& env,
                          int budget) {
  MCM_TRACE_SPAN("search/rl");
  SearchTrace trace;
  trace.strategy = name();
  const int per_update = trainer_.policy().config().rollouts_per_update;
  while (static_cast<int>(trace.rewards.size()) < budget) {
    const int remaining = budget - static_cast<int>(trace.rewards.size());
    PpoTrainer::IterationResult result;
    if (zero_shot_ || remaining < per_update) {
      result = trainer_.EvaluateOnly(context, env,
                                     std::min(per_update, remaining));
    } else {
      result = trainer_.Iterate(context, env);
    }
    trace.rewards.insert(trace.rewards.end(), result.rewards.begin(),
                         result.rewards.end());
  }
  if (static_cast<int>(trace.rewards.size()) > budget) {
    trace.rewards.resize(static_cast<std::size_t>(budget));
  }
  return trace;
}

SearchTrace NoSolverRlSearch::Run(GraphContext& context, PartitionEnv& env,
                                  int budget) {
  // The borrowed policy may be configured with a solver mode; this ablation
  // forces kNone through a scoped override on a copy of the config inside
  // the trainer's collection loop -- the policy object itself carries the
  // mode, so we require it to be pre-configured with kNone.
  MCM_CHECK(policy_->config().solver_mode == RlConfig::SolverMode::kNone)
      << "NoSolverRlSearch requires a policy configured with "
         "SolverMode::kNone";
  MCM_TRACE_SPAN("search/rl_no_solver");
  SearchTrace trace;
  trace.strategy = name();
  const int per_update = policy_->config().rollouts_per_update;
  while (static_cast<int>(trace.rewards.size()) < budget) {
    const int remaining = budget - static_cast<int>(trace.rewards.size());
    PpoTrainer::IterationResult result;
    if (remaining < per_update) {
      result = trainer_.EvaluateOnly(context, env, remaining);
    } else {
      result = trainer_.Iterate(context, env);
    }
    trace.rewards.insert(trace.rewards.end(), result.rewards.begin(),
                         result.rewards.end());
  }
  if (static_cast<int>(trace.rewards.size()) > budget) {
    trace.rewards.resize(static_cast<std::size_t>(budget));
  }
  return trace;
}

}  // namespace mcm
