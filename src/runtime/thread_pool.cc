#include "runtime/thread_pool.h"

#include <algorithm>

#include "common/env.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

constexpr double kQueueWaitMicrosBounds[] = {1.0,    10.0,    100.0,  1000.0,
                                             10000.0, 100000.0, 1000000.0};

telemetry::Counter& TasksSubmitted() {
  static telemetry::Counter& counter =
      telemetry::Counter::Get("runtime/tasks_submitted");
  return counter;
}

telemetry::Counter& TasksExecuted() {
  static telemetry::Counter& counter =
      telemetry::Counter::Get("runtime/tasks_executed");
  return counter;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  TasksSubmitted().Add();
  if (workers_.empty()) {
    // No background workers: run inline so submitted work still happens.
    fn();
    TasksExecuted().Add();
    return;
  }
  // Submit is coarse (once per helper per ParallelFor, once per TaskGroup
  // task), so a clock read here stays off the per-iteration hot path.  The
  // timestamps feed only the queue-wait histogram -- no task result depends
  // on them -- so the two clock edges are sanitized for mcm-nondet-reach.
  static telemetry::Histogram& queue_wait = telemetry::Histogram::Get(
      "runtime/queue_wait_us", kQueueWaitMicrosBounds);
  const double enqueued_s = telemetry::MonotonicSeconds();  // NOLINT(mcm-nondet-reach)
  auto job = [fn = std::move(fn), enqueued_s] {
    queue_wait.Observe(
        (telemetry::MonotonicSeconds() - enqueued_s) * 1e6);  // NOLINT(mcm-nondet-reach)
    fn();
    TasksExecuted().Add();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

namespace {

// Shared state of one ParallelFor call.  Heap-allocated and reference-counted
// so that helper jobs which start only after the loop already finished (the
// queue can lag) still find valid memory; they see next >= end and return
// without touching `fn`, which is why borrowing the caller's function
// reference is safe: it is only dereferenced for claimed indices, and the
// caller cannot return before every claimed index completed.
struct ForState {
  std::atomic<std::int64_t> next{0};
  std::int64_t end = 0;
  std::int64_t total = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  std::int64_t completed = 0;       // Guarded by mu.
  std::exception_ptr first_error;   // Guarded by mu.
};

void DrainFor(const std::shared_ptr<ForState>& state) {
  for (;;) {
    const std::int64_t i =
        state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->end) return;
    if (!state->cancelled.load(std::memory_order_relaxed)) {
      try {
        (*state->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
        state->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(state->mu);
    if (++state->completed == state->total) state->done_cv.notify_all();
  }
}

}  // namespace

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  static telemetry::Counter& parallel_fors =
      telemetry::Counter::Get("runtime/parallel_fors");
  static telemetry::Counter& parallel_iterations =
      telemetry::Counter::Get("runtime/parallel_iterations");
  parallel_fors.Add();
  parallel_iterations.Add(n);
  if (num_threads_ <= 1 || n == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->total = n;
  state->fn = &fn;

  const std::int64_t helpers =
      std::min<std::int64_t>(num_threads_ - 1, n - 1);
  for (std::int64_t h = 0; h < helpers; ++h) {
    Submit([state] { DrainFor(state); });
  }
  DrainFor(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&] { return state->completed == state->total; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

// ---- Process-default pool ---------------------------------------------------

namespace {

std::mutex g_default_mu;
int g_default_threads = 0;  // 0 = not yet resolved.  mcmlint: guarded-by(g_default_mu)
std::unique_ptr<ThreadPool> g_default_pool;  // mcmlint: guarded-by(g_default_mu)
int g_nn_threads = -1;  // -1 = not yet resolved, 0 = inherit.  mcmlint: guarded-by(g_default_mu)
std::unique_ptr<ThreadPool> g_nn_pool;  // mcmlint: guarded-by(g_default_mu)

int ResolveThreadCount() {
  // 0 = "use hardware concurrency"; negatives are clamped with a warning.
  const std::int64_t from_env = GetEnvInt("MCMPART_THREADS", 0, 0, 4096);
  if (from_env >= 1) return static_cast<int>(from_env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Both called with g_default_mu held.
int DefaultThreadCountLocked() {
  if (g_default_threads == 0) g_default_threads = ResolveThreadCount();
  return g_default_threads;
}

int NnThreadCountLocked() {
  if (g_nn_threads == -1) {
    // 0 = "inherit the default thread count"; negatives clamp with a warning.
    g_nn_threads =
        static_cast<int>(GetEnvInt("MCMPART_NN_THREADS", 0, 0, 4096));
  }
  return g_nn_threads >= 1 ? g_nn_threads : DefaultThreadCountLocked();
}

}  // namespace

int DefaultThreadCount() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  return DefaultThreadCountLocked();
}

void SetDefaultThreadCount(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  num_threads = std::max(1, num_threads);
  if (num_threads == g_default_threads && g_default_pool != nullptr) return;
  g_default_threads = num_threads;
  g_default_pool.reset();  // Rebuilt at the next DefaultPool() call.
  // An inheriting NN pool was sized off the old default; rebuild it too.
  if (g_nn_threads <= 0) g_nn_pool.reset();
}

ThreadPool& DefaultPool() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default_pool == nullptr) {
    g_default_pool = std::make_unique<ThreadPool>(DefaultThreadCountLocked());
  }
  return *g_default_pool;
}

void ParallelFor(std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn) {
  DefaultPool().ParallelFor(begin, end, fn);
}

int NnThreadCount() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  return NnThreadCountLocked();
}

void SetNnThreadCount(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  const int want = std::max(0, num_threads);
  if (want == g_nn_threads) return;
  g_nn_threads = want;
  g_nn_pool.reset();  // Rebuilt (if still needed) at the next NnPool() call.
}

ThreadPool& NnPool() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  const int want = NnThreadCountLocked();
  if (want == DefaultThreadCountLocked()) {
    // Common case (inherit, or an override equal to the default): alias the
    // default pool so the process runs one worker set, not two.
    if (g_default_pool == nullptr) {
      g_default_pool = std::make_unique<ThreadPool>(DefaultThreadCountLocked());
    }
    return *g_default_pool;
  }
  if (g_nn_pool == nullptr || g_nn_pool->num_threads() != want) {
    g_nn_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_nn_pool;
}

void NnParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn) {
  NnPool().ParallelFor(begin, end, fn);
}

// ---- Task groups ------------------------------------------------------------

struct TaskGroup::State {
  std::mutex mu;
  std::condition_variable done_cv;
  std::deque<std::function<void()>> queue;  // Guarded by mu.
  std::int64_t unfinished = 0;              // Guarded by mu.
  std::exception_ptr first_error;           // Guarded by mu.

  // Pops and runs one queued task; returns false when the queue is empty.
  bool RunOne() {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (queue.empty()) return false;
      task = std::move(queue.front());
      queue.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    if (--unfinished == 0) done_cv.notify_all();
    return true;
  }
};

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(&pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Destruction joins but cannot report; call Wait() to observe errors.
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push_back(std::move(fn));
    ++state_->unfinished;
  }
  // One runner per task keeps the invariant that every queued task has a
  // dedicated claimant even if Wait() is never reached; a runner finding an
  // empty queue (the task was executed by Wait() or another runner) returns.
  std::shared_ptr<State> state = state_;
  pool_->Submit([state] { state->RunOne(); });
}

void TaskGroup::Wait() {
  while (state_->RunOne()) {
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [&] { return state_->unfinished == 0; });
  if (state_->first_error) {
    std::exception_ptr error = state_->first_error;
    state_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace mcm
