// Fixed-size worker pool with a parallel-for and a task-group API.
//
// This is the execution substrate for the embarrassingly parallel hot paths
// (PPO rollout collection, pre-training validation fan-out, random-search
// batches).  Three properties drive the design:
//
//  * Caller participation.  A pool of `num_threads` owns `num_threads - 1`
//    background workers; the thread that enters ParallelFor / TaskGroup::Wait
//    executes tasks itself.  Progress therefore never depends on a worker
//    being free, so nested parallel sections (a ParallelFor inside a task of
//    an outer ParallelFor) cannot deadlock -- the inner caller simply runs
//    its own iterations when every worker is busy.
//
//  * Determinism contract.  The pool schedules *when and where* tasks run,
//    never *what they compute*: every parallel call site derives one private
//    `Rng(HashCombine(base_seed, task_index))` per task, writes results into
//    a slot indexed by task_index, and performs all stateful reduction
//    (incumbent tracking, running statistics, parameter updates) serially in
//    task order after the join.  Results are bit-identical for any thread
//    count, including 1.
//
//  * Exception safety.  The first exception thrown by a task is captured and
//    rethrown on the calling thread after all in-flight tasks finish;
//    remaining unstarted iterations are skipped.
//
// `MCMPART_THREADS` (or `--threads N` on the CLI/benches) sets the default
// pool size; unset, the pool matches the hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcm {

class ThreadPool {
 public:
  // `num_threads` is the total parallelism of a parallel section (caller +
  // background workers); values < 1 are clamped to 1 (fully inline, no
  // threads spawned).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues `fn` for asynchronous execution on a background worker.  Fire
  // and forget; use TaskGroup to wait on a set of submitted tasks.
  void Submit(std::function<void()> fn);

  // Runs fn(i) for every i in [begin, end) across the pool (the calling
  // thread participates) and blocks until all iterations finished.  Safe to
  // call from inside another ParallelFor task.  Rethrows the first task
  // exception after the join.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn);

 private:
  void WorkerLoop();

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// ---- Process-default pool ---------------------------------------------------

// The default parallelism: MCMPART_THREADS when set to a positive integer,
// otherwise std::thread::hardware_concurrency() (>= 1).
int DefaultThreadCount();

// Overrides the default parallelism (the CLI's --threads).  Takes effect on
// the next DefaultPool() call; must not be invoked while parallel work is
// running on the default pool.
void SetDefaultThreadCount(int num_threads);

// Lazily constructed process-wide pool of DefaultThreadCount() threads.
ThreadPool& DefaultPool();

// ParallelFor on the default pool.
void ParallelFor(std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn);

// ---- NN kernel pool ---------------------------------------------------------
//
// The nn/ kernels (GEMM panels, tape ops, Adam) run their intra-op
// parallelism on a separately tunable knob: MCMPART_NN_THREADS or
// `--nn-threads N` on the CLI/benches.  Unset (or set to 0) it inherits the
// runtime thread count, in which case NnPool() aliases DefaultPool() and no
// extra threads exist.  A distinct value builds a dedicated pool, letting
// deployments pin kernel parallelism (say, to 1 under heavy inter-op rollout
// fan-out) without touching the rollout/search pool.  Per the determinism
// contract, every value produces bit-identical results.

// The resolved NN parallelism: the explicit override when set (>= 1),
// otherwise DefaultThreadCount().
int NnThreadCount();

// Overrides the NN parallelism (the CLI's --nn-threads).  Values <= 0 reset
// to "inherit the default thread count".  As with SetDefaultThreadCount,
// must not race with parallel work running on the NN pool.
void SetNnThreadCount(int num_threads);

// Pool serving the NN kernels: DefaultPool() when the resolved count matches
// the default count, else a lazily (re)built dedicated pool.
ThreadPool& NnPool();

// ParallelFor on the NN pool.
void NnParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn);

// ---- Task groups ------------------------------------------------------------

// A set of heterogeneous tasks joined with Wait().  Tasks may run on pool
// workers or on the waiting thread (caller participation, as above).
class TaskGroup {
 public:
  TaskGroup() : TaskGroup(DefaultPool()) {}
  explicit TaskGroup(ThreadPool& pool);
  // Joins outstanding tasks; exceptions still pending at destruction are
  // swallowed (call Wait() to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);

  // Blocks until every task submitted so far finished, executing queued
  // tasks on the calling thread as long as any remain.  Rethrows the first
  // task exception.  The group is reusable after Wait() returns.
  void Wait();

 private:
  struct State;

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

}  // namespace mcm
