// The partition service daemon (`mcmpart serve`).
//
// One event-loop thread owns every socket: it accepts connections on a Unix
// domain socket, reads newline-delimited JSON requests, admits them to the
// bounded AdmissionQueue (rejecting with a retry-after hint when full), and
// writes responses back.  Execution happens off the loop: `executors`
// long-running tasks on a server-owned runtime ThreadPool pop request
// groups from the queue, micro-batch them (batcher.h), run them on the
// process-default runtime pool, and hand finished responses back to the
// loop through a mutex-protected outbox plus a self-pipe wake-up.  Sockets
// are therefore only ever touched by the loop thread; executors never
// block the loop and the loop never blocks on execution.
//
// Graceful drain: Shutdown() (or SIGTERM/SIGINT via InstallSignalHandlers,
// whose handlers only set an atomic flag and write one byte to the wake
// pipe) makes the loop stop accepting connections and reading requests,
// close the admission queue, wait for the executors to finish every
// admitted request, flush all pending responses, and return from Run().
// No admitted request is ever dropped; requests finished after the
// shutdown signal are counted in service/drained.  When a report path is
// configured, a telemetry RunReport (uptime, totals, full metrics
// snapshot) is written as the final act of Run().
//
// Determinism: the daemon adds no decision points of its own -- every
// response is produced by ExecutePartitionRequest (handler.h), a pure
// function of the request, so a served placement is bit-identical to the
// same request run through the offline CLI regardless of batching,
// caching, concurrency, or load.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "service/admission.h"
#include "service/handler.h"
#include "service/placement_cache.h"
#include "service/protocol.h"

namespace mcm::service {

struct ServerConfig {
  std::string socket_path;
  int queue_depth = 0;      // <= 0: DefaultServiceQueueDepth().
  int cache_capacity = -1;  // < 0: DefaultPlacementCacheCapacity().
  int executors = 2;        // Concurrent batch executors, clamped to >= 1.
  int max_batch = 8;        // Micro-batch size cap, clamped to >= 1.
  std::string report_path;  // RunReport written on drain; empty = none.
};

class Server {
 public:
  // `warm_start` (optional, not owned) is the pre-trained policy served to
  // zeroshot/finetune requests; it must outlive the server.
  explicit Server(ServerConfig config,
                  const ServingPolicy* warm_start = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and listens on config.socket_path (unlinking a stale socket
  // file first) and creates the wake pipe.  Throws std::runtime_error on
  // socket errors.  Separate from Run() so callers can start a client as
  // soon as Start() returns.
  void Start();

  // The event loop.  Returns once a shutdown was requested and the drain
  // completed.  Call Start() first.
  void Run();

  // Requests a graceful drain.  Thread-safe and async-signal-unsafe-free
  // callers only (tests, the CLI); signal handlers go through
  // InstallSignalHandlers instead.
  void Shutdown();

  // Routes SIGTERM/SIGINT to Shutdown() for the process-wide server
  // instance (at most one server may install handlers at a time).
  void InstallSignalHandlers();

  const ServerConfig& config() const { return config_; }
  PlacementCache* cache() { return cache_.get(); }

 private:
  struct Connection {
    int fd = -1;
    std::int64_t id = -1;
    std::string read_buffer;
    std::string write_buffer;
    std::int64_t inflight = 0;  // Admitted, response not yet buffered.
    bool peer_closed = false;   // EOF on read; close after flush + drain.
  };

  struct Outcome {
    std::int64_t connection_id = -1;
    double admitted_s = 0.0;
    PartitionResponse response;
  };

  void ExecutorLoop();
  void Deliver(const std::vector<QueuedRequest>& batch,
               std::vector<PartitionResponse> responses);
  void WakeLoop();
  void DrainOutbox();
  void HandleReadable(Connection& conn);
  void HandleLine(Connection& conn, const std::string& line);
  void QueueResponse(Connection& conn, const PartitionResponse& response);
  void FlushWrites(Connection& conn);
  void AcceptConnections();
  void CloseConnection(std::int64_t id);
  void BeginShutdown();
  void WriteReport(double started_s);

  ServerConfig config_;
  const ServingPolicy* warm_start_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<PlacementCache> cache_;  // Null when capacity is 0.
  std::unique_ptr<ThreadPool> exec_pool_;
  std::unique_ptr<TaskGroup> executors_;

  std::mutex outbox_mu_;
  std::deque<Outcome> outbox_;  // mcmlint: guarded-by(outbox_mu_)

  // Event-loop-thread state (never touched by executors).
  std::map<std::int64_t, Connection> connections_;
  std::int64_t next_connection_id_ = 1;
  std::int64_t next_sequence_ = 0;
  std::int64_t inflight_total_ = 0;
  bool draining_ = false;
  std::int64_t completed_ = 0;
  std::int64_t drained_ = 0;
};

// Blocking client for the offline CLI's `request` command and tests: one
// connection, newline-delimited JSON, synchronous or pipelined use.
class ServiceClient {
 public:
  // Connects to the daemon; throws std::runtime_error on failure.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // One synchronous round-trip.
  PartitionResponse Call(const PartitionRequest& request);

  // Pipelined halves of Call(): Send never waits for the response;
  // ReadResponse blocks for the next response line.  Both throw
  // std::runtime_error on I/O errors or daemon disconnect.
  void Send(const PartitionRequest& request);
  PartitionResponse ReadResponse();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mcm::service
