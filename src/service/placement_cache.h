// Content-addressed placement cache for the partition service.
//
// Sits *above* the per-request eval/embedding caches: a hit returns the
// complete response (assignment + cost breakdown) of an earlier identical
// request without rebuilding the graph, context, or policy and without a
// single cost-model evaluation.  Keys are RequestCacheKey(request) -- the
// graph's content hash plus every placement-shaping field -- and the full
// key string is compared on lookup, so hash collisions can never alias two
// different requests.  Because request execution is a deterministic
// function of exactly those fields (the serving determinism contract,
// docs/ARCHITECTURE.md), a hit is bit-identical to a fresh execution.
//
// Eviction is strict LRU.  Thread-safe: the server's batch executors probe
// and fill concurrently.  Capacity comes from MCMPART_SERVICE_CACHE
// (entries; 0 disables) unless the server overrides it.
//
// Telemetry: service/cache_hits, service/cache_misses,
// service/cache_evictions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/protocol.h"

namespace mcm::service {

// MCMPART_SERVICE_CACHE (entries, clamped to [0, 1<<20]), default 256;
// 0 disables caching.
int DefaultPlacementCacheCapacity();

class PlacementCache {
 public:
  explicit PlacementCache(std::size_t capacity);

  // Returns true and fills *response when `key` is cached (marking the
  // response as cached and re-stamping the caller's correlation id).
  bool Lookup(const std::string& key, const std::string& request_id,
              PartitionResponse* response);

  // Inserts a successful response under `key`.  Failed responses are never
  // cached -- a transient overload or fault must not be replayed.
  void Insert(const std::string& key, const PartitionResponse& response);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::int64_t hits() const;
  std::int64_t misses() const;

 private:
  using Entry = std::pair<std::string, PartitionResponse>;
  using LruList = std::list<Entry>;  // Front = most recently used.

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> index_;
  std::int64_t hits_ = 0;    // Guarded by mu_.
  std::int64_t misses_ = 0;  // Guarded by mu_.
};

}  // namespace mcm::service
