// Admission control for the partition service: a bounded MPMC request
// queue with reject-on-full backpressure.
//
// The event loop pushes parsed requests; batch executors pop groups of
// them.  When the queue is at depth, TryPush refuses and the caller sends
// the client a reject-with-retry-after response instead of queueing
// unbounded work -- overload sheds load at the front door rather than
// growing latency without bound.  Closing the queue (graceful drain) stops
// admissions immediately while letting poppers empty what was already
// admitted; PopBatch returns an empty batch exactly once the queue is both
// closed and empty.
//
// Telemetry: service/admitted, service/rejected.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "service/protocol.h"

namespace mcm::service {

// MCMPART_SERVICE_QUEUE_DEPTH (clamped to [1, 65536]), default 128.
int DefaultServiceQueueDepth();

// One admitted request, tagged with where its response must go, its global
// admission order, and its admission timestamp (which feeds the service
// latency histogram; responses are matched to clients by correlation id
// and may complete out of admission order across executors).
struct QueuedRequest {
  PartitionRequest request;
  std::int64_t connection_id = -1;
  std::int64_t sequence = 0;       // Global admission sequence number.
  double admitted_s = 0.0;         // MonotonicSeconds() at admission.
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t depth);

  // Admits `item` unless the queue is full or closed.  Never blocks.
  bool TryPush(QueuedRequest item);

  // Pops up to `max_batch` requests in admission order, blocking while the
  // queue is empty and open.  Returns an empty vector only when the queue
  // is closed and fully drained (the executor's stop signal).
  std::vector<QueuedRequest> PopBatch(std::size_t max_batch);

  // Stops admissions and wakes blocked poppers; already-admitted requests
  // still drain through PopBatch.
  void Close();

  std::size_t depth() const { return depth_; }
  std::size_t size() const;
  bool closed() const;

  // Backpressure hint for rejected clients: an estimate of how long the
  // queue needs to make room, derived from the depth and the executor
  // parallelism (a deterministic function of configuration, not of load).
  std::int64_t RetryAfterMs(int executors) const;

 private:
  const std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> queue_;
  bool closed_ = false;
};

}  // namespace mcm::service
