#include "service/handler.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "costmodel/cost_model.h"
#include "hwsim/hardware_sim.h"
#include "rl/env.h"
#include "search/search.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm::service {
namespace {

// The retry/backoff budget for one request: the environment-configured
// policy, with its deadline capped at the request's own deadline.
RetryPolicy RequestRetryPolicy(const PartitionRequest& request) {
  RetryPolicy policy = RetryPolicy::FromEnv();
  if (request.deadline_ms > 0) {
    const double deadline_s =
        static_cast<double>(request.deadline_ms) / 1000.0;
    policy.deadline_s = policy.deadline_s > 0.0
                            ? std::min(policy.deadline_s, deadline_s)
                            : deadline_s;
  }
  return policy;
}

// Deadline -> deterministic CP-solver work budget (0 = unlimited).
CpSolver::Options RequestSolverOptions(const PartitionRequest& request) {
  CpSolver::Options options;
  if (request.deadline_ms > 0) {
    options.propagation_budget = std::max<std::int64_t>(
        request.deadline_ms * kSolverPropagationsPerMs, 10000);
  }
  return options;
}

PartitionResponse Execute(const PartitionRequest& request,
                          const ServingPolicy* warm_start) {
  PartitionResponse response;
  response.id = request.id;

  if (request.chips < 1 || request.chips > kMaxChips) {
    return MakeErrorResponse(
        request.id, "chips out of range [1, " + std::to_string(kMaxChips) + "]");
  }
  if (request.budget < 0 || request.budget > 1000000) {
    return MakeErrorResponse(request.id, "budget out of range [0, 1000000]");
  }

  std::istringstream graph_stream(request.graph_text);
  const Graph graph = Graph::Deserialize(graph_stream);

  AnalyticalCostModel analytical{McmConfig{}};
  std::unique_ptr<HardwareSim> hwsim;
  CostModel* model = &analytical;
  CostModel* fallback = nullptr;
  if (request.model == "hwsim") {
    hwsim = std::make_unique<HardwareSim>();
    model = hwsim.get();
    fallback = &analytical;  // Graceful degradation target.
  } else if (request.model != "analytical") {
    return MakeErrorResponse(request.id, "unknown model: " + request.model);
  }

  PartitionEnv::Objective objective;
  if (request.objective == "throughput") {
    objective = PartitionEnv::Objective::kThroughput;
  } else if (request.objective == "latency") {
    objective = PartitionEnv::Objective::kLatency;
  } else {
    return MakeErrorResponse(request.id,
                             "unknown objective: " + request.objective);
  }

  const RetryPolicy retry_policy = RequestRetryPolicy(request);
  GraphContext context(graph, request.chips, RequestSolverOptions(request));
  Rng rng(request.seed);
  const BaselineResult baseline = ComputeHeuristicBaseline(
      graph, *model, context.solver(), rng, fallback, &retry_policy);
  if (!baseline.eval.valid) {
    return MakeErrorResponse(request.id,
                             "heuristic baseline invalid on this model");
  }
  const double anchor = objective == PartitionEnv::Objective::kLatency
                            ? baseline.eval.latency_s
                            : baseline.eval.runtime_s;
  PartitionEnv env(graph, *model, anchor, objective, /*eval_cache_capacity=*/-1,
                   fallback, &retry_policy);

  if (request.mode == RequestMode::kSolver) {
    // Compiler-pass mode: the solver-repaired greedy heuristic, refined by
    // greedy single-node-move probing when the request carries a budget.
    // Improvements land in the env's incumbent, which the response reads.
    const double base_reward = env.Reward(baseline.partition);
    if (request.budget > 0) {
      Rng probe_rng(request.seed + 3);
      ProbeSingleNodeMoves(
          graph, baseline.partition, base_reward,
          [&env](const Partition& p) { return env.Reward(p); },
          request.budget, probe_rng);
    }
  } else {
    std::unique_ptr<SearchStrategy> search;
    std::unique_ptr<PolicyNetwork> policy;  // Owns the RL policy when used.
    if (request.mode == RequestMode::kSearch) {
      if (request.method == "random") {
        search = std::make_unique<RandomSearch>(Rng(request.seed + 1));
      } else if (request.method == "sa") {
        search = std::make_unique<SimulatedAnnealing>(Rng(request.seed + 1));
      } else if (request.method == "hillclimb") {
        search = std::make_unique<HillClimbSearch>(Rng(request.seed + 1));
      } else {
        return MakeErrorResponse(request.id,
                                 "unknown method: " + request.method);
      }
    } else {
      // Zero-shot / fine-tune.  Warm-start weights apply when their package
      // size matches the request; otherwise the policy starts fresh from
      // the seed-derived initialization, exactly like the offline CLI
      // without --checkpoint.
      const bool warm = warm_start != nullptr &&
                        warm_start->config.num_chips == request.chips;
      RlConfig config = warm ? warm_start->config : RlConfig::Quick();
      config.num_chips = request.chips;
      config.seed = request.seed + 2;
      policy = std::make_unique<PolicyNetwork>(config);
      if (warm) PretrainPipeline::Restore(*policy, warm_start->checkpoint);
      const bool zero_shot = request.mode == RequestMode::kZeroShot;
      search = std::make_unique<RlSearch>(*policy, Rng(request.seed + 1),
                                          zero_shot);
    }
    search->Run(context, env, request.budget);
  }

  const Partition& best =
      env.has_best() ? env.best_partition() : baseline.partition;
  EvalResult best_eval;
  const double improvement = env.Score(best, &best_eval);

  response.ok = true;
  response.assignment = best.assignment;
  response.num_chips = request.chips;
  response.improvement = improvement;
  response.runtime_s = best_eval.runtime_s;
  response.latency_s = best_eval.latency_s;
  response.throughput = best_eval.throughput;
  response.baseline_runtime_s = anchor;
  return response;
}

}  // namespace

ServingPolicy ServingPolicy::FromFile(const RlConfig& config,
                                      const std::string& path) {
  ServingPolicy warm;
  warm.config = config;
  warm.checkpoint = PretrainPipeline::LoadCheckpointFile(config, path);
  return warm;
}

RlConfig CheckpointShapeConfig(const std::string& shape, int num_chips) {
  RlConfig config;
  if (shape == "quick") {
    config = RlConfig::Quick();
  } else if (shape == "pretrain") {
    // Must mirror the configuration RunPretrain builds in mcmpart_cli.cc.
    config.gnn_layers = 2;
    config.hidden_dim = 16;
    config.rollouts_per_update = 6;
    config.epochs = 2;
    config.minibatches = 2;
  } else {
    throw std::runtime_error("unknown checkpoint shape: " + shape +
                             " (expected quick or pretrain)");
  }
  config.num_chips = num_chips;
  return config;
}

// MCM_CONTRACT(deterministic): the serving path's replay guarantee -- the
// same request against the same policy yields the same placement.
PartitionResponse ExecutePartitionRequest(const PartitionRequest& request,
                                          const ServingPolicy* warm_start) {
  static telemetry::Counter& executed =
      telemetry::Counter::Get("service/executed");
  MCM_TRACE_SPAN("service/execute");
  try {
    PartitionResponse response = Execute(request, warm_start);
    executed.Add();
    return response;
  } catch (const std::exception& e) {
    executed.Add();
    return MakeErrorResponse(request.id, e.what());
  }
}

}  // namespace mcm::service
