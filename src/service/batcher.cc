#include "service/batcher.h"

#include <unordered_map>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm::service {
namespace {

constexpr double kBatchSizeBounds[] = {1, 2, 4, 8, 16, 32, 64};

}  // namespace

bool CoalescableMode(RequestMode mode) {
  return mode == RequestMode::kZeroShot || mode == RequestMode::kSolver;
}

std::string BatchCompatibilityKey(const PartitionRequest& request) {
  std::string key = RequestModeName(request.mode);
  key += '|';
  key += request.model;
  key += '|';
  key += request.objective;
  key += '|';
  key += std::to_string(request.chips);
  return key;
}

std::vector<std::vector<QueuedRequest>> FormBatches(
    std::vector<QueuedRequest> items, std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  std::vector<std::vector<QueuedRequest>> batches;
  std::string open_key;  // Compatibility key of the batch being grown.
  for (QueuedRequest& item : items) {
    const bool coalescable = CoalescableMode(item.request.mode);
    const std::string key =
        coalescable ? BatchCompatibilityKey(item.request) : std::string();
    const bool extend = coalescable && !batches.empty() && !open_key.empty() &&
                        key == open_key && batches.back().size() < max_batch;
    if (extend) {
      batches.back().push_back(std::move(item));
    } else {
      batches.emplace_back();
      batches.back().push_back(std::move(item));
      open_key = key;  // Empty for non-coalescable singletons.
    }
  }
  return batches;
}

MicroBatcher::MicroBatcher(ThreadPool& pool, PlacementCache* cache,
                           const ServingPolicy* warm_start)
    : pool_(&pool), cache_(cache), warm_start_(warm_start) {}

std::vector<PartitionResponse> MicroBatcher::ExecuteBatch(
    const std::vector<QueuedRequest>& batch) {
  static telemetry::Counter& batches =
      telemetry::Counter::Get("service/batches");
  static telemetry::Histogram& batch_sizes =
      telemetry::Histogram::Get("service/batch_size", kBatchSizeBounds);
  MCM_TRACE_SPAN("service/batch");
  batches.Add();
  batch_sizes.Observe(static_cast<double>(batch.size()));

  std::vector<PartitionResponse> responses(batch.size());
  // Index of the unique execution each batch slot resolves to, or -1 when
  // the slot was answered from the cache.
  std::vector<std::int64_t> resolve(batch.size(), -1);
  std::vector<std::size_t> unique;  // Batch indices that actually execute.
  std::unordered_map<std::string, std::size_t> first_seen;
  std::vector<std::string> keys(batch.size());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PartitionRequest& request = batch[i].request;
    keys[i] = RequestCacheKey(request);
    if (cache_ != nullptr &&
        cache_->Lookup(keys[i], request.id, &responses[i])) {
      continue;  // Served from cache; resolve[i] stays -1.
    }
    const auto [it, inserted] = first_seen.emplace(keys[i], unique.size());
    if (inserted) unique.push_back(i);
    resolve[i] = static_cast<std::int64_t>(it->second);
  }

  std::vector<PartitionResponse> executed(unique.size());
  if (!unique.empty()) {
    pool_->ParallelFor(0, static_cast<std::int64_t>(unique.size()),
                       [&](std::int64_t u) {
                         const std::size_t i =
                             unique[static_cast<std::size_t>(u)];
                         executed[static_cast<std::size_t>(u)] =
                             ExecutePartitionRequest(batch[i].request,
                                                     warm_start_);
                       });
  }

  // Serial commit in admission order: copy results to duplicates and fill
  // the cache deterministically.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (resolve[i] < 0) continue;  // Cache hit.
    responses[i] = executed[static_cast<std::size_t>(resolve[i])];
    responses[i].id = batch[i].request.id;
    responses[i].batch_size = static_cast<int>(batch.size());
    if (cache_ != nullptr) cache_->Insert(keys[i], responses[i]);
  }
  return responses;
}

}  // namespace mcm::service
