// Wire protocol of the partition service: newline-delimited JSON.
//
// Each request is one JSON object on one line; each response is one JSON
// object on one line.  The graph travels inline as the text produced by
// Graph::Serialize (JSON-escaped), so a request is self-contained: the
// daemon never touches the filesystem on behalf of a client.
//
// Request fields (all optional except "graph"):
//   {"id": "r1", "mode": "zeroshot|finetune|search|solver",
//    "method": "random|sa",            // search mode only
//    "model": "analytical|hwsim", "objective": "throughput|latency",
//    "graph": "graph mlp\nnodes 4\n...", "chips": 8, "budget": 40,
//    "seed": 1, "deadline_ms": 0}
//
// Response fields:
//   {"id": "r1", "ok": true, "assignment": [0,0,1,...], "num_chips": 8,
//    "improvement": 1.31, "runtime_s": ..., "latency_s": ...,
//    "throughput": ..., "baseline_runtime_s": ..., "cached": false,
//    "batch_size": 1}
// or, on failure / admission rejection:
//   {"id": "r1", "ok": false, "error": "queue full", "retry_after_ms": 40}
//
// The JSON subset implemented here (JsonValue) covers exactly what the
// protocol needs -- objects, arrays, strings, finite numbers, booleans,
// null -- with deterministic (sorted-key) serialization so encoded messages
// are stable byte-for-byte across runs and platforms.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcm::service {

// ---- Minimal JSON ----------------------------------------------------------

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool(bool fallback = false) const;
  double AsNumber(double fallback = 0.0) const;
  const std::string& AsString() const;  // Empty string when not a string.

  std::vector<JsonValue>& array() { return array_; }
  const std::vector<JsonValue>& array() const { return array_; }
  // std::map: deterministic iteration order for serialization.
  std::map<std::string, JsonValue>& object() { return object_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Member lookup; returns a shared null value when absent or not an object.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const;

  // Compact single-line serialization with sorted object keys.
  std::string Dump() const;

  // Parses one JSON document.  Returns false (and fills *error) on malformed
  // input or trailing garbage.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// ---- Requests --------------------------------------------------------------

// How a request wants its placement produced.  Mirrors the offline CLI:
// every mode has an exact `mcmpart partition` spelling (see handler.h), and
// a served placement is bit-identical to that offline run.
enum class RequestMode {
  kZeroShot,  // Pre-trained policy, greedy decode, no parameter updates.
  kFinetune,  // Policy warm-started then fine-tuned on this graph (PPO).
  kSearch,    // Classic search: "random" or "sa" per `method`.
  kSolver,    // Solver-repaired greedy heuristic only (compiler-pass mode).
};

const char* RequestModeName(RequestMode mode);
bool ParseRequestMode(const std::string& name, RequestMode* mode);

struct PartitionRequest {
  std::string id;  // Client-chosen correlation id, echoed in the response.
  RequestMode mode = RequestMode::kSolver;
  std::string method = "random";      // kSearch only: random | sa.
  std::string model = "analytical";   // analytical | hwsim.
  std::string objective = "throughput";  // throughput | latency.
  std::string graph_text;             // Graph::Serialize output.
  int chips = 8;
  int budget = 40;       // Evaluation budget for search/finetune/zeroshot.
  std::uint64_t seed = 1;
  // Soft per-request deadline.  0 = no deadline.  Caps the evaluation
  // retry/backoff budget (ResilientCostModel) and derives a deterministic
  // CP-solver propagation budget; see handler.cc.
  std::int64_t deadline_ms = 0;

  friend bool operator==(const PartitionRequest&,
                         const PartitionRequest&) = default;
};

// Serializes to one line (no trailing newline).
std::string EncodeRequest(const PartitionRequest& request);
// Parses one request line.  On failure returns false and fills *error.
bool ParseRequest(const std::string& line, PartitionRequest* request,
                  std::string* error);

// ---- Responses -------------------------------------------------------------

struct PartitionResponse {
  std::string id;
  bool ok = false;
  std::string error;            // Set when !ok.
  std::int64_t retry_after_ms = 0;  // Set on admission rejection.

  std::vector<int> assignment;  // Per-node chip ids.
  int num_chips = 0;
  double improvement = 0.0;     // Over the heuristic baseline (>= 0).
  double runtime_s = 0.0;
  double latency_s = 0.0;
  double throughput = 0.0;
  double baseline_runtime_s = 0.0;
  bool cached = false;          // Served from the placement cache.
  int batch_size = 1;           // Size of the executed micro-batch.

  friend bool operator==(const PartitionResponse&,
                         const PartitionResponse&) = default;
};

std::string EncodeResponse(const PartitionResponse& response);
bool ParseResponse(const std::string& line, PartitionResponse* response,
                   std::string* error);

// Convenience constructors.
PartitionResponse MakeErrorResponse(const std::string& id,
                                    const std::string& error,
                                    std::int64_t retry_after_ms = 0);

// ---- Fingerprinting --------------------------------------------------------

// Content address of a request for the placement cache: a stable 64-bit
// FNV-1a hash of the graph text combined with every field that shapes the
// resulting placement (mode, method, model, objective, chips, budget, seed,
// deadline).  The correlation id is deliberately excluded.
std::uint64_t RequestFingerprint(const PartitionRequest& request);

// The full cache key: fingerprint plus the discriminating fields spelled
// out, so hash collisions cannot alias two different requests.
std::string RequestCacheKey(const PartitionRequest& request);

}  // namespace mcm::service
