#include "service/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mcm::service {
namespace {

const JsonValue& NullValue() {
  static const JsonValue null_value;
  return null_value;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; encode as null.
    out += "null";
    return;
  }
  // Integers (the common case: ids, counts, chips) print exactly; other
  // values round-trip through max-precision shortest-ish formatting.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void DumpValue(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull: out += "null"; return;
    case JsonValue::Type::kBool: out += v.AsBool() ? "true" : "false"; return;
    case JsonValue::Type::kNumber: AppendNumber(out, v.AsNumber()); return;
    case JsonValue::Type::kString: AppendEscaped(out, v.AsString()); return;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.array()) {
        if (!first) out.push_back(',');
        first = false;
        DumpValue(item, out);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.object()) {
        if (!first) out.push_back(',');
        first = false;
        AppendEscaped(out, key);
        out.push_back(':');
        DumpValue(value, out);
      }
      out.push_back('}');
      return;
    }
  }
}

// Recursive-descent parser over `text`; fails with a position-tagged error.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 32;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The protocol only ever escapes control bytes; encode the code
          // point as UTF-8 for completeness.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    try {
      std::size_t used = 0;
      const std::string token = text_.substr(start, pos_ - start);
      const double v = std::stod(token, &used);
      if (used != token.size()) return Fail("bad number");
      *out = JsonValue::Number(v);
      return true;
    } catch (const std::exception&) {
      return Fail("bad number");
    }
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!Literal("null", 4)) return false;
      *out = JsonValue();
      return true;
    }
    if (c == 't') {
      if (!Literal("true", 4)) return false;
      *out = JsonValue::Bool(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false", 5)) return false;
      *out = JsonValue::Bool(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = JsonValue::String(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos_;
      *out = JsonValue::Array();
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!ParseValue(&item, depth + 1)) return false;
        out->array().push_back(std::move(item));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      *out = JsonValue::Object();
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) return false;
        out->object()[std::move(key)] = std::move(value);
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    return ParseNumber(out);
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

std::uint64_t Fnv1a(const std::string& bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

// ---- JsonValue -------------------------------------------------------------

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::AsBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double JsonValue::AsNumber(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

const std::string& JsonValue::AsString() const { return string_; }

const JsonValue& JsonValue::Get(const std::string& key) const {
  if (type_ != Type::kObject) return NullValue();
  const auto it = object_.find(key);
  return it == object_.end() ? NullValue() : it->second;
}

bool JsonValue::Has(const std::string& key) const {
  return type_ == Type::kObject && object_.find(key) != object_.end();
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, out);
  return out;
}

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

// ---- Requests --------------------------------------------------------------

const char* RequestModeName(RequestMode mode) {
  switch (mode) {
    case RequestMode::kZeroShot: return "zeroshot";
    case RequestMode::kFinetune: return "finetune";
    case RequestMode::kSearch: return "search";
    case RequestMode::kSolver: return "solver";
  }
  return "solver";
}

bool ParseRequestMode(const std::string& name, RequestMode* mode) {
  if (name == "zeroshot") *mode = RequestMode::kZeroShot;
  else if (name == "finetune") *mode = RequestMode::kFinetune;
  else if (name == "search") *mode = RequestMode::kSearch;
  else if (name == "solver") *mode = RequestMode::kSolver;
  else return false;
  return true;
}

// MCM_CONTRACT(deterministic): wire encodings must be byte-identical for
// identical inputs (clients hash them for dedup/caching).
std::string EncodeRequest(const PartitionRequest& request) {
  JsonValue v = JsonValue::Object();
  auto& o = v.object();
  if (!request.id.empty()) o["id"] = JsonValue::String(request.id);
  o["mode"] = JsonValue::String(RequestModeName(request.mode));
  o["method"] = JsonValue::String(request.method);
  o["model"] = JsonValue::String(request.model);
  o["objective"] = JsonValue::String(request.objective);
  o["graph"] = JsonValue::String(request.graph_text);
  o["chips"] = JsonValue::Number(request.chips);
  o["budget"] = JsonValue::Number(request.budget);
  o["seed"] = JsonValue::Number(static_cast<double>(request.seed));
  if (request.deadline_ms > 0) {
    o["deadline_ms"] = JsonValue::Number(static_cast<double>(request.deadline_ms));
  }
  return v.Dump();
}

bool ParseRequest(const std::string& line, PartitionRequest* request,
                  std::string* error) {
  JsonValue v;
  if (!JsonValue::Parse(line, &v, error)) return false;
  if (v.type() != JsonValue::Type::kObject) {
    if (error != nullptr) *error = "request is not a JSON object";
    return false;
  }
  PartitionRequest r;
  r.id = v.Get("id").AsString();
  if (v.Has("mode") && !ParseRequestMode(v.Get("mode").AsString(), &r.mode)) {
    if (error != nullptr) *error = "unknown mode: " + v.Get("mode").AsString();
    return false;
  }
  if (v.Has("method")) r.method = v.Get("method").AsString();
  if (v.Has("model")) r.model = v.Get("model").AsString();
  if (v.Has("objective")) r.objective = v.Get("objective").AsString();
  r.graph_text = v.Get("graph").AsString();
  if (r.graph_text.empty()) {
    if (error != nullptr) *error = "missing graph";
    return false;
  }
  r.chips = static_cast<int>(v.Get("chips").AsNumber(r.chips));
  r.budget = static_cast<int>(v.Get("budget").AsNumber(r.budget));
  const double seed = v.Get("seed").AsNumber(static_cast<double>(r.seed));
  r.seed = seed < 0.0 ? 1 : static_cast<std::uint64_t>(seed);
  r.deadline_ms = static_cast<std::int64_t>(v.Get("deadline_ms").AsNumber(0.0));
  if (r.deadline_ms < 0) r.deadline_ms = 0;
  *request = std::move(r);
  return true;
}

// ---- Responses -------------------------------------------------------------

// MCM_CONTRACT(deterministic): response bytes for a given outcome are part
// of the replay contract (integration tests diff whole transcripts).
std::string EncodeResponse(const PartitionResponse& response) {
  JsonValue v = JsonValue::Object();
  auto& o = v.object();
  if (!response.id.empty()) o["id"] = JsonValue::String(response.id);
  o["ok"] = JsonValue::Bool(response.ok);
  if (!response.ok) {
    o["error"] = JsonValue::String(response.error);
    if (response.retry_after_ms > 0) {
      o["retry_after_ms"] =
          JsonValue::Number(static_cast<double>(response.retry_after_ms));
    }
    return v.Dump();
  }
  JsonValue assignment = JsonValue::Array();
  assignment.array().reserve(response.assignment.size());
  for (const int chip : response.assignment) {
    assignment.array().push_back(JsonValue::Number(chip));
  }
  o["assignment"] = std::move(assignment);
  o["num_chips"] = JsonValue::Number(response.num_chips);
  o["improvement"] = JsonValue::Number(response.improvement);
  o["runtime_s"] = JsonValue::Number(response.runtime_s);
  o["latency_s"] = JsonValue::Number(response.latency_s);
  o["throughput"] = JsonValue::Number(response.throughput);
  o["baseline_runtime_s"] = JsonValue::Number(response.baseline_runtime_s);
  o["cached"] = JsonValue::Bool(response.cached);
  o["batch_size"] = JsonValue::Number(response.batch_size);
  return v.Dump();
}

bool ParseResponse(const std::string& line, PartitionResponse* response,
                   std::string* error) {
  JsonValue v;
  if (!JsonValue::Parse(line, &v, error)) return false;
  if (v.type() != JsonValue::Type::kObject) {
    if (error != nullptr) *error = "response is not a JSON object";
    return false;
  }
  PartitionResponse r;
  r.id = v.Get("id").AsString();
  r.ok = v.Get("ok").AsBool(false);
  r.error = v.Get("error").AsString();
  r.retry_after_ms =
      static_cast<std::int64_t>(v.Get("retry_after_ms").AsNumber(0.0));
  const JsonValue& assignment = v.Get("assignment");
  r.assignment.reserve(assignment.array().size());
  for (const JsonValue& chip : assignment.array()) {
    r.assignment.push_back(static_cast<int>(chip.AsNumber(-1.0)));
  }
  r.num_chips = static_cast<int>(v.Get("num_chips").AsNumber(0.0));
  r.improvement = v.Get("improvement").AsNumber(0.0);
  r.runtime_s = v.Get("runtime_s").AsNumber(0.0);
  r.latency_s = v.Get("latency_s").AsNumber(0.0);
  r.throughput = v.Get("throughput").AsNumber(0.0);
  r.baseline_runtime_s = v.Get("baseline_runtime_s").AsNumber(0.0);
  r.cached = v.Get("cached").AsBool(false);
  r.batch_size = static_cast<int>(v.Get("batch_size").AsNumber(1.0));
  *response = std::move(r);
  return true;
}

PartitionResponse MakeErrorResponse(const std::string& id,
                                    const std::string& error,
                                    std::int64_t retry_after_ms) {
  PartitionResponse response;
  response.id = id;
  response.ok = false;
  response.error = error;
  response.retry_after_ms = retry_after_ms;
  return response;
}

// ---- Fingerprinting --------------------------------------------------------

std::uint64_t RequestFingerprint(const PartitionRequest& request) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(request.graph_text, h);
  h = Fnv1a(RequestCacheKey(request), h);
  return h;
}

std::string RequestCacheKey(const PartitionRequest& request) {
  std::uint64_t graph_hash = 0xcbf29ce484222325ULL;
  graph_hash = Fnv1a(request.graph_text, graph_hash);
  std::ostringstream key;
  key << std::hex << graph_hash << std::dec << '|'
      << RequestModeName(request.mode) << '|' << request.method << '|'
      << request.model << '|' << request.objective << '|' << request.chips
      << '|' << request.budget << '|' << request.seed << '|'
      << request.deadline_ms;
  return key.str();
}

}  // namespace mcm::service
