#include "service/admission.h"

#include <algorithm>

#include "common/env.h"
#include "telemetry/metrics.h"

namespace mcm::service {

int DefaultServiceQueueDepth() {
  static const std::int64_t depth =
      GetEnvInt("MCMPART_SERVICE_QUEUE_DEPTH", 128, 1, 65536);
  return static_cast<int>(depth);
}

AdmissionQueue::AdmissionQueue(std::size_t depth)
    : depth_(std::max<std::size_t>(depth, 1)) {}

bool AdmissionQueue::TryPush(QueuedRequest item) {
  static telemetry::Counter& admitted =
      telemetry::Counter::Get("service/admitted");
  static telemetry::Counter& rejected =
      telemetry::Counter::Get("service/rejected");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= depth_) {
      rejected.Add();
      return false;
    }
    queue_.push_back(std::move(item));
  }
  admitted.Add();
  cv_.notify_one();
  return true;
}

std::vector<QueuedRequest> AdmissionQueue::PopBatch(std::size_t max_batch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  std::vector<QueuedRequest> batch;
  const std::size_t take =
      std::min(std::max<std::size_t>(max_batch, 1), queue_.size());
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;  // Empty only when closed and drained.
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::int64_t AdmissionQueue::RetryAfterMs(int executors) const {
  // One queue's worth of work spread over the executors, at a nominal
  // 10 ms per request: a coarse, configuration-only hint (clients treat it
  // as advisory, not a promise of free capacity).
  const int lanes = std::max(executors, 1);
  const std::int64_t hint =
      static_cast<std::int64_t>(depth_) * 10 / lanes;
  return std::clamp<std::int64_t>(hint, 10, 5000);
}

}  // namespace mcm::service
