#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "costmodel/delta_eval.h"
#include "service/batcher.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace mcm::service {
namespace {

constexpr double kLatencyBoundsS[] = {0.001, 0.005, 0.02,  0.05, 0.1,
                                      0.25,  0.5,   1.0,   2.5,  5.0,
                                      10.0,  30.0,  60.0};

// Signal-handler state: the handler may only touch lock-free atomics and
// make one async-signal-safe write() to the wake pipe.
std::atomic<bool> g_shutdown_requested{false};
std::atomic<int> g_signal_wake_fd{-1};

// MCM_CONTRACT(signal-safe): runs in signal context; mcmlint's
// handler-safety rule proves nothing reachable from here allocates, locks,
// or blocks.
void HandleShutdownSignal(int /*signum*/) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe already guarantees a pending wake-up; ignore the result.
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("service: fcntl(O_NONBLOCK) failed");
  }
}

}  // namespace

Server::Server(ServerConfig config, const ServingPolicy* warm_start)
    : config_(std::move(config)), warm_start_(warm_start) {
  if (config_.queue_depth <= 0) config_.queue_depth = DefaultServiceQueueDepth();
  if (config_.cache_capacity < 0) {
    config_.cache_capacity = DefaultPlacementCacheCapacity();
  }
  config_.executors = std::max(config_.executors, 1);
  config_.max_batch = std::max(config_.max_batch, 1);
  queue_ = std::make_unique<AdmissionQueue>(
      static_cast<std::size_t>(config_.queue_depth));
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<PlacementCache>(
        static_cast<std::size_t>(config_.cache_capacity));
  }
}

Server::~Server() {
  // Executors must be gone before the queue/outbox they reference.
  if (executors_ != nullptr) {
    queue_->Close();
    executors_->Wait();
  }
  executors_.reset();
  exec_pool_.reset();
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) {
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
    close(wake_write_fd_);
  }
  if (!config_.socket_path.empty()) unlink(config_.socket_path.c_str());
}

void Server::Start() {
  if (config_.socket_path.empty()) {
    throw std::runtime_error("service: empty socket path");
  }
  sockaddr_un addr{};
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("service: socket path too long: " +
                             config_.socket_path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("service: socket() failed");
  unlink(config_.socket_path.c_str());  // Remove a stale socket file.
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    throw std::runtime_error("service: bind(" + config_.socket_path +
                             ") failed: " + std::strerror(errno));
  }
  if (listen(listen_fd_, 128) < 0) {
    throw std::runtime_error("service: listen() failed");
  }
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) throw std::runtime_error("service: pipe() failed");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  exec_pool_ = std::make_unique<ThreadPool>(config_.executors + 1);
  executors_ = std::make_unique<TaskGroup>(*exec_pool_);
  for (int i = 0; i < config_.executors; ++i) {
    executors_->Run([this] { ExecutorLoop(); });
  }
  MCM_LOG(kInfo) << "service: listening on " << config_.socket_path << " ("
                << config_.executors << " executors, queue depth "
                << config_.queue_depth << ", cache "
                << config_.cache_capacity << ")";
}

void Server::InstallSignalHandlers() {
  g_signal_wake_fd.store(wake_write_fd_, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = &HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

void Server::Shutdown() {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  WakeLoop();
}

// MCM_CONTRACT(signal-safe): the SIGTERM drain path's wake primitive --
// one async-signal-safe write(), nothing else.
void Server::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = write(wake_write_fd_, &byte, 1);
}

void Server::ExecutorLoop() {
  MicroBatcher batcher(DefaultPool(), cache_.get(), warm_start_);
  while (true) {
    std::vector<QueuedRequest> group =
        queue_->PopBatch(static_cast<std::size_t>(config_.max_batch));
    if (group.empty()) return;  // Closed and drained.
    for (auto& batch : FormBatches(
             std::move(group), static_cast<std::size_t>(config_.max_batch))) {
      std::vector<PartitionResponse> responses = batcher.ExecuteBatch(batch);
      Deliver(batch, std::move(responses));
    }
  }
}

void Server::Deliver(const std::vector<QueuedRequest>& batch,
                     std::vector<PartitionResponse> responses) {
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      outbox_.push_back(Outcome{batch[i].connection_id, batch[i].admitted_s,
                                std::move(responses[i])});
    }
  }
  WakeLoop();
}

void Server::DrainOutbox() {
  static telemetry::Histogram& latency =
      telemetry::Histogram::Get("service/latency_s", kLatencyBoundsS);
  static telemetry::Counter& completed =
      telemetry::Counter::Get("service/completed");
  static telemetry::Counter& drained =
      telemetry::Counter::Get("service/drained");
  std::deque<Outcome> ready;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    ready.swap(outbox_);
  }
  for (Outcome& outcome : ready) {
    latency.Observe(telemetry::MonotonicSeconds() - outcome.admitted_s);
    completed.Add();
    ++completed_;
    if (draining_) {
      drained.Add();
      ++drained_;
    }
    --inflight_total_;
    auto it = connections_.find(outcome.connection_id);
    if (it == connections_.end()) continue;  // Client went away.
    --it->second.inflight;
    QueueResponse(it->second, outcome.response);
    FlushWrites(it->second);
  }
}

void Server::QueueResponse(Connection& conn,
                           const PartitionResponse& response) {
  conn.write_buffer += EncodeResponse(response);
  conn.write_buffer += '\n';
}

void Server::FlushWrites(Connection& conn) {
  while (!conn.write_buffer.empty()) {
    const ssize_t n = write(conn.fd, conn.write_buffer.data(),
                            conn.write_buffer.size());
    if (n > 0) {
      conn.write_buffer.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Write error: the peer is gone.  Drop buffered output; in-flight
    // requests still execute (results are simply discarded on delivery).
    conn.write_buffer.clear();
    conn.peer_closed = true;
    return;
  }
}

void Server::HandleLine(Connection& conn, const std::string& line) {
  static telemetry::Counter& received =
      telemetry::Counter::Get("service/requests");
  static telemetry::Counter& protocol_errors =
      telemetry::Counter::Get("service/protocol_errors");
  if (line.empty()) return;
  received.Add();
  PartitionRequest request;
  std::string error;
  if (!ParseRequest(line, &request, &error)) {
    protocol_errors.Add();
    QueueResponse(conn, MakeErrorResponse(request.id, "bad request: " + error));
    return;
  }
  QueuedRequest item;
  item.request = std::move(request);
  item.connection_id = conn.id;
  item.sequence = next_sequence_++;
  item.admitted_s = telemetry::MonotonicSeconds();
  const std::string id = item.request.id;
  if (draining_ || !queue_->TryPush(std::move(item))) {
    QueueResponse(conn,
                  MakeErrorResponse(id,
                                    draining_ ? "draining" : "queue full",
                                    queue_->RetryAfterMs(config_.executors)));
    return;
  }
  ++conn.inflight;
  ++inflight_total_;
}

void Server::HandleReadable(Connection& conn) {
  char chunk[4096];
  while (true) {
    const ssize_t n = read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.read_buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.peer_closed = true;  // EOF or hard error.
    break;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = conn.read_buffer.find('\n', start);
    if (newline == std::string::npos) break;
    HandleLine(conn, conn.read_buffer.substr(start, newline - start));
    start = newline + 1;
  }
  conn.read_buffer.erase(0, start);
  FlushWrites(conn);
}

void Server::AcceptConnections() {
  static telemetry::Counter& accepted =
      telemetry::Counter::Get("service/connections");
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or a transient accept error): done.
    SetNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    conn.id = next_connection_id_++;
    connections_.emplace(conn.id, std::move(conn));
    accepted.Add();
  }
}

void Server::CloseConnection(std::int64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  close(it->second.fd);
  connections_.erase(it);
}

void Server::BeginShutdown() {
  if (draining_) return;
  draining_ = true;
  MCM_LOG(kInfo) << "service: draining (" << inflight_total_
                << " requests in flight)";
  if (listen_fd_ >= 0) {
    // Clients already sitting in the listen backlog completed connect();
    // accept them now so their requests get explicit "draining" rejections
    // below instead of a bare EOF.
    AcceptConnections();
    close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_->Close();
  // Final read pass: a Unix-socket write completes into our receive buffer,
  // so every request a client sent before the drain began is readable right
  // now.  Consume and reject them (HandleLine sees draining_) instead of
  // leaving pipelined clients blocked on responses that would never come;
  // after this pass the loop stops polling for reads.
  for (auto& [id, conn] : connections_) {
    if (!conn.peer_closed) HandleReadable(conn);
  }
}

void Server::Run() {
  MCM_CHECK(listen_fd_ >= 0 || draining_);
  const double started_s = telemetry::MonotonicSeconds();

  while (true) {
    if (g_shutdown_requested.load(std::memory_order_relaxed)) BeginShutdown();

    DrainOutbox();

    // Close connections whose peer is gone once nothing is pending on them.
    std::vector<std::int64_t> closable;
    for (auto& [id, conn] : connections_) {
      if (conn.peer_closed && conn.inflight == 0) closable.push_back(id);
    }
    for (const std::int64_t id : closable) CloseConnection(id);

    if (draining_) {
      // Drain is complete when every admitted request has been delivered
      // and every response byte flushed (or its connection abandoned).
      bool flushed = inflight_total_ == 0;
      for (auto& [id, conn] : connections_) {
        if (!conn.write_buffer.empty()) flushed = false;
      }
      if (flushed) break;
    }

    std::vector<pollfd> fds;
    std::vector<std::int64_t> fd_conn;  // Connection id per pollfd slot.
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(-1);
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(-1);
    }
    for (auto& [id, conn] : connections_) {
      short events = 0;
      if (!draining_ && !conn.peer_closed) events |= POLLIN;
      if (!conn.write_buffer.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int n = poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (n < 0 && errno != EINTR) {
      MCM_LOG(kWarning) << "service: poll failed: " << std::strerror(errno);
    }
    if (n <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char sink[256];
      while (read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      auto it = connections_.find(fd_conn[i]);
      if (it == connections_.end()) continue;
      if ((fds[i].revents & POLLOUT) != 0) FlushWrites(it->second);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        HandleReadable(it->second);
      }
    }
  }

  // Executors are idle (queue closed and empty once inflight hit zero);
  // join them, then emit the report.
  executors_->Wait();
  executors_.reset();
  exec_pool_.reset();
  MCM_LOG(kInfo) << "service: drained cleanly (" << completed_
                << " completed, " << drained_ << " during drain)";
  WriteReport(started_s);
}

void Server::WriteReport(double started_s) {
  if (config_.report_path.empty()) return;
  telemetry::RunReport report("service");
  report.AddPhaseSeconds("serve", telemetry::MonotonicSeconds() - started_s);
  report.SetValue("completed", static_cast<double>(completed_));
  report.SetValue("drained", static_cast<double>(drained_));
  report.SetValue("queue_depth", static_cast<double>(config_.queue_depth));
  report.SetValue("executors", static_cast<double>(config_.executors));
  report.SetValue("max_batch", static_cast<double>(config_.max_batch));
  // Counters land in the report's metrics snapshot automatically; the
  // derived fast-path hit rate is mirrored as a headline value so operators
  // see it next to the eval-cache hit counters.
  report.SetValue("delta_eval/fast_fraction", DeltaEvalFastFraction());
  report.SetString("socket", config_.socket_path);
  report.Write(config_.report_path);
}

// ---- ServiceClient ----------------------------------------------------------

ServiceClient::ServiceClient(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("service client: bad socket path");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("service client: socket() failed");
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd_);
    fd_ = -1;
    throw std::runtime_error("service client: connect(" + socket_path +
                             ") failed: " + std::strerror(errno));
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) close(fd_);
}

void ServiceClient::Send(const PartitionRequest& request) {
  std::string line = EncodeRequest(request);
  line += '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = write(fd_, line.data() + sent, line.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("service client: write failed");
    sent += static_cast<std::size_t>(n);
  }
}

PartitionResponse ServiceClient::ReadResponse() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      PartitionResponse response;
      std::string error;
      if (!ParseResponse(line, &response, &error)) {
        throw std::runtime_error("service client: bad response: " + error);
      }
      return response;
    }
    char chunk[4096];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("service client: daemon closed connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

PartitionResponse ServiceClient::Call(const PartitionRequest& request) {
  Send(request);
  return ReadResponse();
}

}  // namespace mcm::service
