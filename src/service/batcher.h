// Micro-batching for the partition service.
//
// An executor pops a group of admitted requests (AdmissionQueue::PopBatch)
// and hands it to ExecuteBatch, which serves it in three steps:
//
//   1. Cache probe -- requests whose RequestCacheKey is already in the
//      placement cache are answered immediately, without touching a graph,
//      policy, or cost model.
//   2. Dedup -- among the misses, requests with identical cache keys are
//      collapsed to one execution; duplicates receive copies of the one
//      result (re-stamped with their own correlation id).
//   3. Batched execution -- the unique misses run through
//      ExecutePartitionRequest concurrently on the runtime pool
//      (ParallelFor), so the GraphSAGE embedding and policy forward passes
//      of compatible zero-shot requests overlap on the pool's lanes instead
//      of queueing behind each other.
//
// Determinism: ExecutePartitionRequest is a pure function of the request,
// so execution order and batch composition cannot change any response bit
// (only `batch_size`, which is diagnostic and excluded from bit-identity
// and cache equality -- the cache stores it normalized).  Cache fills
// happen serially in admission order after the parallel section.
//
// FormBatches groups a drained queue into micro-batches: compatible
// zero-shot/solver requests (same shape key) coalesce up to `max_batch`;
// heavier modes (search, fine-tune) stay singletons so one long request
// cannot delay a batch of cheap ones. Admission order is preserved within
// and across batches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "service/admission.h"
#include "service/handler.h"
#include "service/placement_cache.h"
#include "service/protocol.h"

namespace mcm::service {

// True for modes cheap enough to coalesce (zeroshot, solver): their cost is
// dominated by forward passes / a single solve, so batching them wins.
bool CoalescableMode(RequestMode mode);

// Shape key for coalescing: requests with equal keys may share a
// micro-batch.  Batches are *not* required to be shape-uniform for
// correctness (each request is executed independently); the key just keeps
// batches homogeneous so their per-item cost is similar.
std::string BatchCompatibilityKey(const PartitionRequest& request);

// Splits `items` (admission order) into micro-batches of at most
// `max_batch`, coalescing runs of compatible requests.
std::vector<std::vector<QueuedRequest>> FormBatches(
    std::vector<QueuedRequest> items, std::size_t max_batch);

class MicroBatcher {
 public:
  // `cache` may be null (caching disabled); `warm_start` may be null (no
  // serving checkpoint).  Neither is owned; both must outlive the batcher.
  MicroBatcher(ThreadPool& pool, PlacementCache* cache,
               const ServingPolicy* warm_start);

  // Serves one batch; responses are aligned index-for-index with `batch`.
  std::vector<PartitionResponse> ExecuteBatch(
      const std::vector<QueuedRequest>& batch);

 private:
  ThreadPool* pool_;
  PlacementCache* cache_;
  const ServingPolicy* warm_start_;
};

}  // namespace mcm::service
