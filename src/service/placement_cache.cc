#include "service/placement_cache.h"

#include "common/env.h"
#include "telemetry/metrics.h"

namespace mcm::service {

int DefaultPlacementCacheCapacity() {
  static const std::int64_t capacity =
      GetEnvInt("MCMPART_SERVICE_CACHE", 256, 0, 1 << 20);
  return static_cast<int>(capacity);
}

PlacementCache::PlacementCache(std::size_t capacity) : capacity_(capacity) {}

bool PlacementCache::Lookup(const std::string& key,
                            const std::string& request_id,
                            PartitionResponse* response) {
  static telemetry::Counter& hit_counter =
      telemetry::Counter::Get("service/cache_hits");
  static telemetry::Counter& miss_counter =
      telemetry::Counter::Get("service/cache_misses");
  if (capacity_ == 0) {
    miss_counter.Add();
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->first != key) {
    ++misses_;
    miss_counter.Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
  *response = it->second->second;
  response->id = request_id;
  response->cached = true;
  ++hits_;
  hit_counter.Add();
  return true;
}

void PlacementCache::Insert(const std::string& key,
                            const PartitionResponse& response) {
  static telemetry::Counter& evictions =
      telemetry::Counter::Get("service/cache_evictions");
  if (capacity_ == 0 || !response.ok) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic execution means a re-insert carries the same payload;
    // just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  PartitionResponse stored = response;
  stored.id.clear();       // Correlation ids are per-request.
  stored.cached = false;   // Lookup() re-marks served copies.
  stored.batch_size = 1;   // Batch shape is an execution detail.
  lru_.emplace_front(key, std::move(stored));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions.Add();
  }
}

std::size_t PlacementCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t PlacementCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t PlacementCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace mcm::service
