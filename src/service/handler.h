// Request execution: one PartitionRequest in, one PartitionResponse out.
//
// This is the single implementation behind both the offline CLI
// (`mcmpart partition`) and the daemon (`mcmpart serve`), which is what
// makes the serving determinism contract hold *by construction*: a served
// placement is bit-identical to the same request run offline, because both
// paths execute this exact function with the same inputs.
//
// Execution is a deterministic, side-effect-free function of the request
// (plus the optional warm-start weights): every random stream derives from
// `request.seed` exactly as the CLI derives its streams from `--seed`, all
// state (graph context, cost models, environment, policy) is private to the
// call, and telemetry is write-only.  Many requests may therefore execute
// concurrently -- batched, cached, or rerun -- without changing a single
// output bit.
//
// Per-request deadlines (`deadline_ms`) are wired into the two budgeted
// subsystems:
//   * ResilientCostModel -- the retry/backoff deadline is capped at the
//     request deadline, so a faulty evaluator degrades to the fallback
//     model instead of eating the budget of queued requests.
//   * CP solver -- the deadline derives a *propagation budget*
//     (kSolverPropagationsPerMs events per millisecond).  A work budget,
//     unlike a wall-clock solver deadline, keeps the solve bit-reproducible
//     across machines; exhausting it degrades to the greedy heuristic
//     (solver/degraded_solves), never into a failure.
#pragma once

#include <string>

#include "pipeline/pretrain.h"
#include "rl/policy.h"
#include "service/protocol.h"

namespace mcm::service {

// Deterministic deadline->solver-budget conversion (see header comment).
inline constexpr std::int64_t kSolverPropagationsPerMs = 2000;

// Warm-start weights for zeroshot/finetune requests, loaded once at serve
// time.  Each request copies the parameters into a private policy instance,
// so requests can never observe each other's fine-tuning updates.
struct ServingPolicy {
  RlConfig config;        // Network shape the checkpoint was written with.
  Checkpoint checkpoint;  // Parameter payload.

  // Loads a checkpoint file written by PretrainPipeline::SaveCheckpointFile.
  // Throws std::runtime_error on I/O, format, or shape errors.
  static ServingPolicy FromFile(const RlConfig& config,
                                const std::string& path);
};

// The network shapes the in-repo checkpoint producers use, selectable as
// `--checkpoint-shape` on the CLI: "quick" is RlConfig::Quick() (what
// `mcmpart partition --method rl` trains), "pretrain" is the scaled-down
// shape `mcmpart pretrain` snapshots.  `num_chips` overrides the package
// size in either.
RlConfig CheckpointShapeConfig(const std::string& shape, int num_chips);

// Executes `request` end to end: parse graph, heuristic baseline, then the
// mode's strategy (see RequestMode).  Never throws -- failures come back as
// ok=false responses.  `warm_start` may be null (zeroshot/finetune then
// start from a fresh seed-derived policy, matching the offline CLI without
// --checkpoint).
PartitionResponse ExecutePartitionRequest(const PartitionRequest& request,
                                          const ServingPolicy* warm_start);

}  // namespace mcm::service
