// Memoization cache in front of the cost models.
//
// Search and PPO repeatedly re-evaluate partitions they have already scored:
// simulated annealing revisits neighbors, the solver maps many candidates to
// the same corrected partition, and fine-tuning re-scores incumbents.  Both
// bundled models are pure functions of (graph, partition) -- that is the
// CostModel::Evaluate contract, and hwsim's measurement noise is a stateless
// hash -- so their results can be memoized without changing any number a
// run produces: a hit is bit-identical to a fresh evaluation.
//
// Keying: entries are looked up by (graph uid, model name, per-node chip
// assignment) -- the graph uid (see Graph::uid) versions the graph content
// and the model name separates models, so one cache instance shared across
// graphs or models can never serve a stale or foreign result.  Each entry
// stores the full key, which is compared on lookup, so hash collisions can
// never return a wrong result either.  Eviction is strict LRU.
//
// Thread safety: lookups/inserts take an internal mutex; the (expensive)
// model evaluation on a miss runs outside the lock.  Hit/miss/eviction
// counts are exposed per instance and mirrored into the telemetry registry
// ("costmodel/eval_cache_*").
//
// Capacity: PartitionEnv consults DefaultEvalCacheCapacity(), which reads
// the MCMPART_EVAL_CACHE environment variable (entries; 0 disables) and can
// be overridden programmatically (the CLI/bench `--eval-cache` flag).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "costmodel/cost_model.h"

namespace mcm {

// Default capacity resolution: programmatic override (SetDefault...) if set,
// else MCMPART_EVAL_CACHE, else 1024.  0 disables caching.
int DefaultEvalCacheCapacity();
// Overrides the default (negative clears the override).
void SetDefaultEvalCacheCapacity(int capacity);

class EvalCache {
 public:
  explicit EvalCache(std::size_t capacity);

  // Returns model.Evaluate(graph, partition), served from the cache when
  // this exact assignment was evaluated before.  Thread-safe.
  EvalResult Evaluate(const Graph& graph, CostModel& model,
                      const Partition& partition);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::uint64_t graph_uid = 0;
    std::string model_name;
    std::vector<int> assignment;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  using Entry = std::pair<Key, EvalResult>;
  using LruList = std::list<Entry>;  // Front = most recently used.

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace mcm
