// Reference oracle for DeltaEvaluator (see delta_eval.h): the same
// interface implemented the obviously-correct way -- Apply mutates a stored
// assignment and every query runs a fresh full computation.  The fuzz test
// in tests/costmodel_test.cc drives both implementations through identical
// Apply/Undo sequences and requires bit-identical results, the same
// fast-vs-reference pattern matrix_reference.cc uses for the GEMM kernels.
#include "costmodel/delta_eval.h"

#include "common/logging.h"

namespace mcm {

DeltaEvaluatorReference::DeltaEvaluatorReference(const Graph& graph,
                                                McmConfig config)
    : graph_(&graph), model_(config) {}

void DeltaEvaluatorReference::Rebase(const Partition& base) {
  MCM_CHECK_EQ(static_cast<int>(base.assignment.size()), graph_->NumNodes());
  MCM_CHECK_GE(base.num_chips, 1);
  MCM_CHECK_LE(base.num_chips, kMaxChips);
  MCM_CHECK(base.Complete()) << "delta evaluation needs a complete partition";
  partition_ = base;
  undo_.clear();
}

void DeltaEvaluatorReference::Apply(int node, int to_chip) {
  MCM_CHECK_GE(node, 0);
  MCM_CHECK_LT(node, graph_->NumNodes());
  MCM_CHECK_GE(to_chip, 0);
  MCM_CHECK_LT(to_chip, partition_.num_chips);
  undo_.emplace_back(node, partition_.chip(node));
  partition_.assignment[static_cast<std::size_t>(node)] = to_chip;
}

void DeltaEvaluatorReference::Undo() {
  MCM_CHECK(!undo_.empty()) << "Undo without a matching Apply";
  const auto [node, prev] = undo_.back();
  undo_.pop_back();
  partition_.assignment[static_cast<std::size_t>(node)] = prev;
}

bool DeltaEvaluatorReference::StaticallyValid() const {
  return IsStaticallyValid(*graph_, partition_);
}

EvalResult DeltaEvaluatorReference::Score() const {
  return model_.Evaluate(*graph_, partition_);
}

int DeltaEvaluatorReference::FirstChipOverMemory(double limit_bytes) const {
  const auto loads = ComputeChipLoads(*graph_, partition_);
  for (int c = 0; c < partition_.num_chips; ++c) {
    if (loads[static_cast<std::size_t>(c)].param_bytes > limit_bytes) {
      return c;
    }
  }
  return -1;
}

}  // namespace mcm
