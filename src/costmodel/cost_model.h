// Cost-model interface and the paper's analytical cost model.
//
// The RL reward, the search baselines, and the pre-training pipeline all
// evaluate candidate partitions through this interface.  Two implementations
// exist:
//   * AnalyticalCostModel (this file) -- the paper's fast pre-training
//     reward: per-chip latency of all nodes assigned to the chip, runtime =
//     max over chips (the pipeline bottleneck), throughput = 1 / runtime.
//     It never rejects a statically valid partition (no dynamic constraint).
//   * HardwareSim (hwsim/) -- the "real hardware" substitute: cycle-level
//     pipeline simulation with SRAM allocation; enforces H(G, f).
#pragma once

#include <memory>
#include <string>

#include "graph/graph.h"
#include "partition/partition.h"

namespace mcm {

class AnalyticalCostModel;

// Why an evaluation failed (mirrors the paper's invalid-sample taxonomy,
// plus the transient platform failures a real measurement harness sees).
enum class EvalFailure {
  kNone = 0,
  kStaticConstraint,  // Violates Eq. (2)/(3)/(4); checked by every model.
  kOutOfMemory,       // Dynamic constraint H: some chip exceeds its SRAM.
  kTimeout,           // Evaluation exceeded its deadline; retryable.
  kEvaluatorError,    // Platform reported a bogus measurement; retryable.
};

struct EvalResult {
  bool valid = false;
  EvalFailure failure = EvalFailure::kNone;
  // Pipeline interval of the bottleneck chip, in seconds; the reciprocal of
  // throughput.  Meaningful only when valid.
  double runtime_s = 0.0;
  // Samples/sec at steady state (1 / runtime_s).
  double throughput = 0.0;
  // End-to-end latency of a single sample through the pipeline (fill time:
  // the sum of per-chip stage times rather than their max).  The paper's
  // Section 5.1 notes the framework "can easily re-target a latency
  // metric"; PartitionEnv::Objective::kLatency optimizes this value.
  double latency_s = 0.0;

  static EvalResult Invalid(EvalFailure why) {
    EvalResult r;
    r.failure = why;
    return r;
  }
  static EvalResult Valid(double runtime_s, double latency_s = 0.0) {
    EvalResult r;
    r.valid = true;
    r.runtime_s = runtime_s;
    r.throughput = runtime_s > 0.0 ? 1.0 / runtime_s : 0.0;
    r.latency_s = latency_s > 0.0 ? latency_s : runtime_s;
    return r;
  }
};

// Transient failures are worth retrying; deterministic rejections
// (static/memory constraints) are not.  A "valid" result carrying a
// non-finite cost is also transient: it models a corrupted measurement.
bool IsTransientEvalFailure(const EvalResult& result);

// Physical parameters of the MCM package (Section 3: a 36-chiplet package,
// tens of MBs of SRAM per chiplet, tens of GB/s uni-directional links).
struct McmConfig {
  int num_chips = 36;
  double chip_flops_per_s = 2e12;      // Per-chiplet peak compute.
  double sram_bytes_per_chip = 64e6;   // Per-chiplet SRAM.
  double link_bandwidth_bytes_per_s = 25e9;
  double link_latency_s = 1e-6;        // Per-transfer fixed overhead.
  // Fraction of peak compute reachable by low-arithmetic-intensity ops.
  double effective_utilization = 0.6;
};

// Abstract evaluator of (graph, partition) -> throughput.
class CostModel {
 public:
  virtual ~CostModel() = default;

  // Evaluates a candidate partition.  Implementations must reject
  // statically invalid partitions (returning kStaticConstraint) so that the
  // "RL without constraint solver" baseline observes zero reward exactly as
  // in the paper.
  //
  // Thread safety: Evaluate is called concurrently from the parallel
  // rollout/validation paths (see runtime/thread_pool.h), so
  // implementations must be stateless with respect to Evaluate -- pure
  // functions of (graph, partition) and construction-time options.  Both
  // bundled models (analytical, hwsim) satisfy this; hwsim's measurement
  // noise is a stateless hash of (graph, partition).
  virtual EvalResult Evaluate(const Graph& graph,
                              const Partition& partition) = 0;

  virtual std::string name() const = 0;

  // The analytical core of this model, when evaluating through it is
  // equivalent to evaluating through the model itself -- the hook the
  // incremental evaluator (costmodel/delta_eval.h) uses to decide whether
  // its fast path is available.  Models whose results can diverge from a
  // plain analytical evaluation (hwsim, and any wrapper around it) return
  // nullptr; wrappers that only add retry behavior forward to the wrapped
  // model.
  virtual const AnalyticalCostModel* AsAnalytical() const { return nullptr; }
};

// The paper's analytical model: latency(chip) = compute time of its nodes
// plus ingress/egress transfer time of its cut edges; runtime = max latency
// over used chips.
class AnalyticalCostModel final : public CostModel {
 public:
  explicit AnalyticalCostModel(McmConfig config) : config_(config) {}

  EvalResult Evaluate(const Graph& graph, const Partition& partition) override;
  std::string name() const override { return "analytical"; }
  const AnalyticalCostModel* AsAnalytical() const override { return this; }

  const McmConfig& config() const { return config_; }

 private:
  const McmConfig config_;
};

}  // namespace mcm
