// Incremental (delta) evaluation of the analytical cost model.
//
// Mutation-heavy consumers -- simulated annealing and hill-climbing
// neighborhoods, solver move probing, RL fine-tuning -- re-score partitions
// that differ from an already-scored incumbent by one or a few node moves,
// yet a full CostModel::Evaluate walks every node and edge each time.
// DeltaEvaluator materializes per-chip aggregates (compute time inputs,
// ingress/egress transfer bytes, resident parameter bytes, cut-edge-pair
// counts) once per base partition and then updates them under
// Apply(node, to_chip) / Undo() in O(degree(node) + size of touched chips),
// including incremental re-checks of the static constraints (Eq. 2-4) so
// invalid neighbors are rejected without any full walk.
//
// The bit-identical contract (non-negotiable): a delta Score() equals a
// fresh AnalyticalCostModel::Evaluate to the last bit.  Floating-point
// aggregates are never patched with += / -= deltas, which would drift;
// instead every touched chip is *re-summed from its member node list in the
// exact canonical accumulation order ComputeChipLoads uses* (node-id order;
// one ingress contribution per distinct remote producer, in producer-id
// order).  Re-summing makes the state path-independent -- any Apply
// sequence reaching assignment A yields the same bits as Rebase(A) -- so
// Undo is simply the reverse Apply, with no aggregate snapshots.  The
// contract is enforced by a randomized fuzz against the full model and
// against DeltaEvaluatorReference (the trivially-correct oracle below,
// mirroring the matrix_reference.cc pattern).
//
// DeltaScorer adapts the evaluator to the CostModel interface by diffing
// each requested partition against its current base; DeltaScorerPool leases
// one scorer per in-flight evaluation so the stateless-Evaluate threading
// contract holds.  Models without an analytical core (hwsim, injected-fault
// wrappers around it) fall back to a full evaluation transparently.
//
// Gate: PartitionEnv consults DefaultDeltaEvalEnabled(), which reads
// MCMPART_DELTA_EVAL (default on) and can be overridden programmatically
// (the CLI/bench `--delta-eval` flag).  Telemetry counters:
// costmodel/delta_fast, costmodel/delta_fallback, costmodel/delta_rebuild.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace mcm {

// Default gate resolution: programmatic override (SetDefault...) if set,
// else MCMPART_DELTA_EVAL (0 or 1), else on.  The gate only selects the
// evaluation path; results are bit-identical either way.
bool DefaultDeltaEvalEnabled();
// Overrides the default: 0 disables, positive enables, negative clears the
// override (back to env/default resolution).
void SetDefaultDeltaEvalEnabled(int enabled);

// Fraction of delta-scorer evaluations served by the incremental fast path
// so far this process: fast / (fast + fallback + rebuild), 0 when no
// delta-scorer evaluation ran.  Mirrored into per-run RunReports by the
// serve and pretrain commands, next to the eval-cache counters.
double DeltaEvalFastFraction();

// Incremental evaluator over one (graph, base partition).  Partitions must
// be complete (every node assigned a chip in range); callers screen
// incomplete candidates before binding.  Not thread-safe; use one instance
// per thread (DeltaScorerPool below handles that for the CostModel path).
class DeltaEvaluator {
 public:
  // `graph` must outlive the evaluator and not be mutated while bound.
  DeltaEvaluator(const Graph& graph, McmConfig config);

  // Rebuilds every aggregate from `base`: complete, 1 <= num_chips <=
  // kMaxChips, assignment sized to the graph.  Clears the undo stack.
  void Rebase(const Partition& base);

  bool bound() const { return partition_.num_chips > 0; }

  // Moves `node` to `to_chip` and updates aggregates plus constraint state.
  // Cost: O(degree(node)) count updates + a canonical re-sum of the touched
  // chips (source, destination, and the chips holding the node's direct
  // predecessors/successors).  Pushes an undo record.
  void Apply(int node, int to_chip);

  // Reverts the most recent un-undone Apply (checked).
  void Undo();
  int undo_depth() const { return static_cast<int>(undo_.size()); }

  // Makes the current assignment the new base: clears the undo stack
  // without touching any aggregate.  DeltaScorer commits after every scored
  // partition so long runs do not grow an unbounded undo history.
  void CommitBase() { undo_.clear(); }

  // Static validity (Eq. 2-4) of the current assignment, from maintained
  // counters: O(num_chips * chip out-degree) bitset words, no graph walk.
  bool StaticallyValid() const;

  // The analytical evaluation of the current assignment; bit-identical to
  // AnalyticalCostModel(config).Evaluate(graph, partition()).
  EvalResult Score() const;

  // First chip whose resident parameter bytes exceed `limit_bytes`, or -1.
  // Advisory memory bound for callers that want early OOM screening;
  // Score() deliberately does not consult it -- the analytical model never
  // enforces the SRAM constraint (only hwsim does).
  int FirstChipOverMemory(double limit_bytes) const;

  const Partition& partition() const { return partition_; }
  const ChipLoad& load(int chip) const {
    return loads_[static_cast<std::size_t>(chip)];
  }
  const McmConfig& config() const { return config_; }

 private:
  void MoveNode(int node, int to_chip);
  void ResumChip(int chip);
  void AddCutPair(int a, int b);
  void RemoveCutPair(int a, int b);

  const Graph* graph_;
  const McmConfig config_;
  Partition partition_;  // num_chips == 0 until the first Rebase.
  // members_[chip]: node ids on the chip, sorted ascending so a re-sum
  // visits them in the same order the full walk does.
  std::vector<std::vector<int>> members_;
  std::vector<ChipLoad> loads_;
  // cut_pairs_[a * C + b]: count of edges with src on chip a, dst on chip
  // b != a.  adjacency_[a] is the derived bitset (count > 0), i.e. exactly
  // ChipDependencyAdjacency of the current assignment.
  std::vector<int> cut_pairs_;
  std::vector<std::uint64_t> adjacency_;
  int eq2_violations_ = 0;          // Edges with chip(src) > chip(dst).
  std::uint64_t nonempty_mask_ = 0; // Chips with at least one node.
  std::vector<std::pair<int, int>> undo_;  // (node, previous chip).
  std::vector<int> producer_scratch_;      // Ingress dedup workspace.
};

// Trivially-correct oracle with DeltaEvaluator's interface: Apply mutates a
// stored assignment, Score runs a fresh full Evaluate.  Exists so the fuzz
// test compares the optimized evaluator against an implementation whose
// correctness is obvious (the matrix_reference.cc pattern).
class DeltaEvaluatorReference {
 public:
  DeltaEvaluatorReference(const Graph& graph, McmConfig config);

  void Rebase(const Partition& base);
  void Apply(int node, int to_chip);
  void Undo();
  int undo_depth() const { return static_cast<int>(undo_.size()); }
  bool StaticallyValid() const;
  EvalResult Score() const;
  int FirstChipOverMemory(double limit_bytes) const;
  const Partition& partition() const { return partition_; }

 private:
  const Graph* graph_;
  mutable AnalyticalCostModel model_;  // Evaluate is non-const on CostModel.
  Partition partition_;
  std::vector<std::pair<int, int>> undo_;
};

// CostModel adapter over DeltaEvaluator: diffs each requested partition
// against the current base and applies the few moved nodes instead of
// re-walking the graph.  Stateful (it stays rebased at the last scored
// partition), hence NOT thread-safe -- lease one per in-flight evaluation
// from a DeltaScorerPool.  `slow` handles everything the fast path cannot
// (no analytical core, incomplete partitions); results are bit-identical on
// both paths.  name() forwards to `slow` so memo-cache keys are independent
// of which path scored an entry.
//
// Far candidates (diff larger than the move cap) use an adaptive policy: a
// Rebase costs a full walk plus aggregate bookkeeping, which only pays off
// when later requests stay near the new base.  Local search does exactly
// that after a jump -- detected here because the request lands near the
// *previous* far candidate, which triggers a re-locking Rebase -- while
// sampling workloads (SA over solver resamples) jump every time and are
// served by a plain `slow` evaluation instead.
class DeltaScorer final : public CostModel {
 public:
  // Neither pointer is owned.  `fast` may be null (every call falls back).
  // `max_moves` caps the diff size applied incrementally before a full
  // Rebase is cheaper; 0 picks max(4, num_chips / 2).
  DeltaScorer(CostModel* slow, const AnalyticalCostModel* fast,
              int max_moves = 0);

  EvalResult Evaluate(const Graph& graph, const Partition& partition) override;
  std::string name() const override { return slow_->name(); }

  // Per-instance path counts (also mirrored into the global
  // costmodel/delta_* telemetry counters).
  std::int64_t fast_evals() const { return fast_evals_; }
  std::int64_t fallback_evals() const { return fallback_evals_; }
  std::int64_t rebuilds() const { return rebuilds_; }

 private:
  CostModel* const slow_;
  const AnalyticalCostModel* const fast_;
  const int max_moves_;
  const Graph* bound_graph_ = nullptr;
  std::uint64_t bound_uid_ = 0;
  std::unique_ptr<DeltaEvaluator> evaluator_;
  std::vector<int> moved_scratch_;
  // Assignment of the most recent far candidate served by `slow_`; a new
  // far candidate near it re-locks the evaluator (see the class comment).
  std::vector<int> last_far_assignment_;
  std::int64_t fast_evals_ = 0;
  std::int64_t fallback_evals_ = 0;
  std::int64_t rebuilds_ = 0;
};

// Thread-safe free-list of DeltaScorers over one (slow, fast) model pair.
// PartitionEnv::Score leases a scorer per evaluation: each scorer serves
// one thread at a time (preserving the stateless-Evaluate contract) while
// recycled scorers keep their warm evaluator state across calls.  Sharing a
// pool across env copies never changes results, only wall time.
class DeltaScorerPool {
 public:
  DeltaScorerPool(CostModel* slow, const AnalyticalCostModel* fast);

  class Lease {
   public:
    Lease(DeltaScorerPool* pool, std::unique_ptr<DeltaScorer> scorer)
        : pool_(pool), scorer_(std::move(scorer)) {}
    ~Lease();
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), scorer_(std::move(other.scorer_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    DeltaScorer& scorer() { return *scorer_; }

   private:
    DeltaScorerPool* pool_;
    std::unique_ptr<DeltaScorer> scorer_;
  };

  Lease Acquire();

  const AnalyticalCostModel* fast() const { return fast_; }
  // Scorers created over the pool's lifetime (>= concurrent peak).
  int scorers_created() const;

 private:
  friend class Lease;
  void Release(std::unique_ptr<DeltaScorer> scorer);

  CostModel* const slow_;
  const AnalyticalCostModel* const fast_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DeltaScorer>> free_;
  int created_ = 0;
};

}  // namespace mcm
