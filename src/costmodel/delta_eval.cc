#include "costmodel/delta_eval.h"

#include <algorithm>
#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "telemetry/metrics.h"

namespace mcm {
namespace {

std::atomic<int>& DeltaEvalOverride() {
  static std::atomic<int> override_enabled{-1};
  return override_enabled;
}

inline std::size_t Idx(int i) { return static_cast<std::size_t>(i); }

}  // namespace

bool DefaultDeltaEvalEnabled() {
  const int override_enabled =
      DeltaEvalOverride().load(std::memory_order_relaxed);
  if (override_enabled >= 0) return override_enabled != 0;
  return GetEnvInt("MCMPART_DELTA_EVAL", 1, 0, 1) != 0;
}

void SetDefaultDeltaEvalEnabled(int enabled) {
  DeltaEvalOverride().store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                            std::memory_order_relaxed);
}

double DeltaEvalFastFraction() {
  const double fast = static_cast<double>(
      telemetry::Counter::Get("costmodel/delta_fast").Value());
  const double total =
      fast +
      static_cast<double>(
          telemetry::Counter::Get("costmodel/delta_fallback").Value()) +
      static_cast<double>(
          telemetry::Counter::Get("costmodel/delta_rebuild").Value());
  return total > 0.0 ? fast / total : 0.0;
}

DeltaEvaluator::DeltaEvaluator(const Graph& graph, McmConfig config)
    : graph_(&graph), config_(config) {}

void DeltaEvaluator::Rebase(const Partition& base) {
  MCM_CHECK_EQ(static_cast<int>(base.assignment.size()), graph_->NumNodes());
  MCM_CHECK_GE(base.num_chips, 1);
  MCM_CHECK_LE(base.num_chips, kMaxChips);
  MCM_CHECK(base.Complete()) << "delta evaluation needs a complete partition";

  partition_ = base;
  const int num_chips = base.num_chips;
  // ComputeChipLoads *is* the canonical accumulation order; starting from
  // its output keeps Rebase trivially on-contract.
  loads_ = ComputeChipLoads(*graph_, base);
  members_.assign(Idx(num_chips), {});
  for (int u = 0; u < graph_->NumNodes(); ++u) {
    members_[Idx(partition_.chip(u))].push_back(u);  // Ascending ids.
  }
  cut_pairs_.assign(Idx(num_chips) * Idx(num_chips), 0);
  adjacency_.assign(Idx(num_chips), 0);
  eq2_violations_ = 0;
  for (const Edge& e : graph_->edges()) {
    const int a = partition_.chip(e.src);
    const int b = partition_.chip(e.dst);
    if (a > b) ++eq2_violations_;
    if (a != b) AddCutPair(a, b);
  }
  nonempty_mask_ = 0;
  for (int c = 0; c < num_chips; ++c) {
    if (!members_[Idx(c)].empty()) nonempty_mask_ |= 1ULL << c;
  }
  undo_.clear();
}

void DeltaEvaluator::AddCutPair(int a, int b) {
  int& count = cut_pairs_[Idx(a) * Idx(partition_.num_chips) + Idx(b)];
  if (count++ == 0) adjacency_[Idx(a)] |= 1ULL << b;
}

void DeltaEvaluator::RemoveCutPair(int a, int b) {
  int& count = cut_pairs_[Idx(a) * Idx(partition_.num_chips) + Idx(b)];
  MCM_CHECK_GT(count, 0);
  if (--count == 0) adjacency_[Idx(a)] &= ~(1ULL << b);
}

// MCM_CONTRACT(deterministic): delta state transitions feed the
// delta-vs-full oracle identity check; nothing here may depend on clocks,
// randomness, or hash order.
void DeltaEvaluator::Apply(int node, int to_chip) {
  MCM_CHECK(bound()) << "Apply before Rebase";
  MCM_CHECK_GE(node, 0);
  MCM_CHECK_LT(node, graph_->NumNodes());
  MCM_CHECK_GE(to_chip, 0);
  MCM_CHECK_LT(to_chip, partition_.num_chips);
  const int from = partition_.chip(node);
  undo_.emplace_back(node, from);
  if (to_chip != from) MoveNode(node, to_chip);
}

// MCM_CONTRACT(deterministic)
void DeltaEvaluator::Undo() {
  MCM_CHECK(!undo_.empty()) << "Undo without a matching Apply";
  const auto [node, prev] = undo_.back();
  undo_.pop_back();
  if (prev != partition_.chip(node)) MoveNode(node, prev);
}

void DeltaEvaluator::MoveNode(int node, int to_chip) {
  const int from = partition_.chip(node);
  // The chips whose aggregates can change: both endpoints of the move plus
  // every chip holding a direct neighbor (their cut traffic shifts).
  std::uint64_t touched = (1ULL << from) | (1ULL << to_chip);
  for (const int p : graph_->Predecessors(node)) {
    const int cp = partition_.chip(p);
    touched |= 1ULL << cp;
    if (cp > from) --eq2_violations_;
    if (cp > to_chip) ++eq2_violations_;
    if (cp != from) RemoveCutPair(cp, from);
    if (cp != to_chip) AddCutPair(cp, to_chip);
  }
  for (const int s : graph_->Successors(node)) {
    const int cs = partition_.chip(s);
    touched |= 1ULL << cs;
    if (from > cs) --eq2_violations_;
    if (to_chip > cs) ++eq2_violations_;
    if (from != cs) RemoveCutPair(from, cs);
    if (to_chip != cs) AddCutPair(to_chip, cs);
  }
  partition_.assignment[Idx(node)] = to_chip;
  // Membership lists stay sorted so re-sums visit nodes in the same id
  // order the full walk uses.
  auto& src_list = members_[Idx(from)];
  src_list.erase(std::lower_bound(src_list.begin(), src_list.end(), node));
  auto& dst_list = members_[Idx(to_chip)];
  dst_list.insert(std::upper_bound(dst_list.begin(), dst_list.end(), node),
                  node);
  if (src_list.empty()) nonempty_mask_ &= ~(1ULL << from);
  nonempty_mask_ |= 1ULL << to_chip;
  while (touched != 0) {
    const int c = __builtin_ctzll(touched);
    touched &= touched - 1;
    ResumChip(c);
  }
}

void DeltaEvaluator::ResumChip(int chip) {
  // Canonical re-sum: exactly the ComputeChipLoads accumulation restricted
  // to this chip.  Never patch the old load with floating-point deltas.
  ChipLoad load;
  const auto& members = members_[Idx(chip)];
  for (const int u : members) {
    const Node& n = graph_->node(u);
    load.compute_flops += n.compute_flops;
    load.param_bytes += n.param_bytes;
    load.num_nodes += 1;
  }
  // Egress: members in id order; one send per distinct remote consumer
  // chip, added one-by-one like the full walk (not count * bytes, which
  // would round differently).
  for (const int u : members) {
    const Node& n = graph_->node(u);
    std::uint64_t remote_chips = 0;
    for (const int succ : graph_->Successors(u)) {
      const int dst = partition_.chip(succ);
      if (dst != chip) remote_chips |= 1ULL << dst;
    }
    while (remote_chips != 0) {
      remote_chips &= remote_chips - 1;
      load.bytes_out += n.output_bytes;
    }
  }
  // Ingress: one receive per distinct remote producer, in ascending
  // producer id -- the order the full walk's outer node loop yields.
  auto& producers = producer_scratch_;
  producers.clear();
  for (const int u : members) {
    for (const int p : graph_->Predecessors(u)) {
      if (partition_.chip(p) != chip) producers.push_back(p);
    }
  }
  std::sort(producers.begin(), producers.end());
  producers.erase(std::unique(producers.begin(), producers.end()),
                  producers.end());
  for (const int p : producers) {
    load.bytes_in += graph_->node(p).output_bytes;
  }
  loads_[Idx(chip)] = load;
}

bool DeltaEvaluator::StaticallyValid() const {
  MCM_CHECK(bound()) << "StaticallyValid before Rebase";
  if (eq2_violations_ != 0) return false;  // Eq. (2).
  // Eq. (3): used chips form a prefix iff the nonempty bits are contiguous
  // from bit 0, i.e. mask + 1 clears every set bit.
  if ((nonempty_mask_ & (nonempty_mask_ + 1)) != 0) return false;
  // Eq. (4): a direct chip dependency a -> b may not coexist with a longer
  // chip path a ~> b.  Eq. (2) holding means every chip edge goes low ->
  // high, so a high -> low sweep is reverse-topological: reach[c] = chips
  // reachable from c in >= 1 edge.  A path a -> s ~> b (length >= 2) exists
  // iff b is reachable from some direct successor s, so the violation test
  // is one AND against the union of successor reach sets.  Equivalent to
  // CheckTriangleDependency's delta(a, b) == 1 requirement, without the
  // O(chips^2) longest-path table or its allocations.
  const int num_chips = partition_.num_chips;
  std::uint64_t reach[kMaxChips];
  for (int a = num_chips - 1; a >= 0; --a) {
    const std::uint64_t row = adjacency_[Idx(a)];
    std::uint64_t via = 0;
    std::uint64_t bits = row;
    while (bits != 0) {
      via |= reach[__builtin_ctzll(bits)];
      bits &= bits - 1;
    }
    if ((row & via) != 0) return false;
    reach[Idx(a)] = row | via;
  }
  return true;
}

EvalResult DeltaEvaluator::Score() const {
  MCM_CHECK(bound()) << "Score before Rebase";
  if (!StaticallyValid()) {
    return EvalResult::Invalid(EvalFailure::kStaticConstraint);
  }
  // Mirrors AnalyticalCostModel::Evaluate over the maintained loads.
  const double effective_rate =
      config_.chip_flops_per_s * config_.effective_utilization;
  double max_stage = 0.0;
  double total_stage = 0.0;
  for (const ChipLoad& load : loads_) {
    if (load.num_nodes == 0) continue;
    const double compute_s = load.compute_flops / effective_rate;
    const double comm_s =
        (load.bytes_in + load.bytes_out) / config_.link_bandwidth_bytes_per_s;
    max_stage = std::max(max_stage, compute_s + comm_s);
    total_stage += compute_s + comm_s;
  }
  return EvalResult::Valid(max_stage, total_stage);
}

int DeltaEvaluator::FirstChipOverMemory(double limit_bytes) const {
  MCM_CHECK(bound()) << "FirstChipOverMemory before Rebase";
  for (int c = 0; c < partition_.num_chips; ++c) {
    if (loads_[Idx(c)].param_bytes > limit_bytes) return c;
  }
  return -1;
}

DeltaScorer::DeltaScorer(CostModel* slow, const AnalyticalCostModel* fast,
                         int max_moves)
    : slow_(slow), fast_(fast), max_moves_(max_moves) {
  MCM_CHECK(slow_ != nullptr);
}

EvalResult DeltaScorer::Evaluate(const Graph& graph,
                                 const Partition& partition) {
  static telemetry::Counter& fast_counter =
      telemetry::Counter::Get("costmodel/delta_fast");
  static telemetry::Counter& fallback_counter =
      telemetry::Counter::Get("costmodel/delta_fallback");
  static telemetry::Counter& rebuild_counter =
      telemetry::Counter::Get("costmodel/delta_rebuild");

  // Everything the incremental path cannot represent goes to the slow
  // model: no analytical core, or a partition the evaluator cannot bind
  // (incomplete, chip count out of bitset range).  The slow model also
  // defines the failure taxonomy for these cases, e.g. kIncomplete-style
  // static rejections.
  if (fast_ == nullptr || partition.num_chips < 1 ||
      partition.num_chips > kMaxChips ||
      static_cast<int>(partition.assignment.size()) != graph.NumNodes() ||
      !partition.Complete()) {
    ++fallback_evals_;
    fallback_counter.Add();
    return slow_->Evaluate(graph, partition);
  }

  const int limit =
      max_moves_ > 0 ? max_moves_ : std::max(4, partition.num_chips / 2);
  const bool bound_current = evaluator_ != nullptr &&
                             bound_graph_ == &graph &&
                             bound_uid_ == graph.uid() &&
                             evaluator_->partition().num_chips ==
                                 partition.num_chips;
  if (bound_current) {
    // Diff against the base; small diffs take the incremental path.
    moved_scratch_.clear();
    const auto& base = evaluator_->partition().assignment;
    for (int u = 0; u < graph.NumNodes(); ++u) {
      if (base[Idx(u)] != partition.assignment[Idx(u)]) {
        moved_scratch_.push_back(u);
        if (static_cast<int>(moved_scratch_.size()) > limit) break;
      }
    }
    if (static_cast<int>(moved_scratch_.size()) <= limit) {
      // Canonical re-summing makes the end state path-independent, so
      // applying the diff in node-id order lands on the same bits as a
      // fresh Rebase(partition).
      for (const int u : moved_scratch_) {
        evaluator_->Apply(u, partition.assignment[Idx(u)]);
      }
      evaluator_->CommitBase();
      ++fast_evals_;
      fast_counter.Add();
      return evaluator_->Score();
    }
  }

  // Far from the base (or not bound yet).  A Rebase here costs a full walk
  // *plus* the aggregate bookkeeping, so it only pays off if later requests
  // stay near this partition.  Local search does exactly that after a jump
  // -- recognizable because the request is near the *previous* far
  // candidate -- while sampling workloads (SA over solver resamples, RL
  // rollouts) jump on every request, where the plain slow evaluation is the
  // cheapest correct answer.  Either path returns the same bits.
  bool relock = !bound_current;
  if (bound_current &&
      last_far_assignment_.size() == partition.assignment.size()) {
    int moved = 0;
    for (std::size_t u = 0; u < partition.assignment.size(); ++u) {
      if (last_far_assignment_[u] != partition.assignment[u] &&
          ++moved > limit) {
        break;
      }
    }
    relock = moved <= limit;
  }
  if (!relock) {
    last_far_assignment_ = partition.assignment;
    ++fallback_evals_;
    fallback_counter.Add();
    return slow_->Evaluate(graph, partition);
  }

  if (evaluator_ == nullptr || bound_graph_ != &graph ||
      bound_uid_ != graph.uid()) {
    evaluator_ = std::make_unique<DeltaEvaluator>(graph, fast_->config());
    bound_graph_ = &graph;
    bound_uid_ = graph.uid();
  }
  evaluator_->Rebase(partition);
  last_far_assignment_.clear();
  ++rebuilds_;
  rebuild_counter.Add();
  return evaluator_->Score();
}

DeltaScorerPool::DeltaScorerPool(CostModel* slow,
                                 const AnalyticalCostModel* fast)
    : slow_(slow), fast_(fast) {
  MCM_CHECK(slow_ != nullptr);
}

DeltaScorerPool::Lease DeltaScorerPool::Acquire() {
  std::unique_ptr<DeltaScorer> scorer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      scorer = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (scorer == nullptr) {
    scorer = std::make_unique<DeltaScorer>(slow_, fast_);
  }
  return Lease(this, std::move(scorer));
}

void DeltaScorerPool::Release(std::unique_ptr<DeltaScorer> scorer) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(scorer));
}

int DeltaScorerPool::scorers_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

DeltaScorerPool::Lease::~Lease() {
  if (pool_ != nullptr && scorer_ != nullptr) {
    pool_->Release(std::move(scorer_));
  }
}

}  // namespace mcm
