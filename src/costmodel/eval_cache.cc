#include "costmodel/eval_cache.h"

#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/metrics.h"

namespace mcm {
namespace {

constexpr int kDefaultCapacity = 1024;

std::atomic<int>& CapacityOverride() {
  static std::atomic<int> override_capacity{-1};
  return override_capacity;
}

}  // namespace

int DefaultEvalCacheCapacity() {
  const int override_capacity =
      CapacityOverride().load(std::memory_order_relaxed);
  if (override_capacity >= 0) return override_capacity;
  // Negative values are clamped to 0 (disabled) with a warning.
  const std::int64_t from_env = GetEnvInt("MCMPART_EVAL_CACHE",
                                          kDefaultCapacity, 0, 1 << 28);
  return static_cast<int>(from_env);
}

void SetDefaultEvalCacheCapacity(int capacity) {
  CapacityOverride().store(capacity < 0 ? -1 : capacity,
                           std::memory_order_relaxed);
}

std::size_t EvalCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t hash = HashCombine(0x51ed270b861f2b4dull, key.graph_uid);
  for (const char ch : key.model_name) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(
                                 static_cast<unsigned char>(ch)));
  }
  for (const int chip : key.assignment) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(chip)));
  }
  return static_cast<std::size_t>(hash);
}

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity) {
  MCM_CHECK_GT(capacity, 0u);
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

EvalResult EvalCache::Evaluate(const Graph& graph, CostModel& model,
                               const Partition& partition) {
  static telemetry::Counter& hit_counter =
      telemetry::Counter::Get("costmodel/eval_cache_hits");
  static telemetry::Counter& miss_counter =
      telemetry::Counter::Get("costmodel/eval_cache_misses");
  static telemetry::Counter& eviction_counter =
      telemetry::Counter::Get("costmodel/eval_cache_evictions");

  Key key{graph.uid(), model.name(), partition.assignment};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.Add();
      return it->second->second;
    }
  }

  // Miss: evaluate outside the lock (the model is stateless / thread-safe;
  // concurrent misses on the same key just both compute the same result).
  const EvalResult result = model.Evaluate(graph, partition);
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.Add();

  std::lock_guard<std::mutex> lock(mu_);
  if (index_.find(key) == index_.end()) {
    lru_.emplace_front(std::move(key), result);
    index_.emplace(lru_.front().first, lru_.begin());
    if (index_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      eviction_counter.Add();
    }
  }
  return result;
}

}  // namespace mcm
