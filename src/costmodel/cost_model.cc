#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mcm {

bool IsTransientEvalFailure(const EvalResult& result) {
  if (result.failure == EvalFailure::kTimeout ||
      result.failure == EvalFailure::kEvaluatorError) {
    return true;
  }
  return result.valid && (!std::isfinite(result.runtime_s) ||
                          !std::isfinite(result.latency_s));
}

EvalResult AnalyticalCostModel::Evaluate(const Graph& graph,
                                         const Partition& partition) {
  if (!IsStaticallyValid(graph, partition)) {
    return EvalResult::Invalid(EvalFailure::kStaticConstraint);
  }
  const auto loads = ComputeChipLoads(graph, partition);
  const double effective_rate =
      config_.chip_flops_per_s * config_.effective_utilization;
  double max_stage = 0.0;   // Pipeline interval (throughput bottleneck).
  double total_stage = 0.0; // Pipeline fill (single-sample latency).
  for (const ChipLoad& load : loads) {
    if (load.num_nodes == 0) continue;
    const double compute_s = load.compute_flops / effective_rate;
    const double comm_s =
        (load.bytes_in + load.bytes_out) / config_.link_bandwidth_bytes_per_s;
    max_stage = std::max(max_stage, compute_s + comm_s);
    total_stage += compute_s + comm_s;
  }
  return EvalResult::Valid(max_stage, total_stage);
}

}  // namespace mcm
