// The paper's transfer-learning story end to end, in miniature:
//
//   1. Pre-train a policy on a training set of small production-style
//      graphs against the cheap analytical cost model (Section 4.3).
//   2. Pick the best checkpoint with a validation worker.
//   3. Deploy on an unseen graph: zero-shot inference and fine-tuning,
//      compared with training from scratch.
//
// Runtime: a couple of minutes on one core.
#include <cstdio>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "pipeline/pretrain.h"
#include "rl/env.h"
#include "search/search.h"

int main() {
  using namespace mcm;

  // The 66/5/16 split of the 87-graph corpus (paper Section 5.1).
  DatasetSplit split = SplitCorpus(MakeCorpus());
  split.train.resize(6);       // Miniature: 6 training graphs.
  split.validation.resize(2);  //            2 validation graphs.
  const Graph& target = split.test.front();  // One unseen test graph.

  AnalyticalCostModel analytical{McmConfig{}};

  // ---- Training phase (Figure 4, left).
  PretrainConfig config;
  config.rl = RlConfig::Quick();
  config.rl.rollouts_per_update = 10;
  config.total_samples = 300;
  config.num_checkpoints = 3;
  config.validation_zeroshot_samples = 5;
  config.validation_finetune_samples = 20;
  config.seed = 99;
  PretrainPipeline pipeline(config, analytical);
  std::printf("pre-training on %zu graphs (%d samples, analytical cost "
              "model)...\n", split.train.size(), config.total_samples);
  std::vector<Checkpoint> checkpoints = pipeline.Train(split.train);
  const int best = pipeline.Validate(checkpoints, split.validation);
  std::printf("validation picked checkpoint %d of %zu (fine-tune score "
              "%.3f)\n", best, checkpoints.size(),
              checkpoints[static_cast<std::size_t>(best)].finetune_score);

  // ---- Deployment phase (Figure 4, right) on the unseen graph.
  std::printf("\ndeploying on unseen graph %s (%d nodes)\n",
              target.name().c_str(), target.NumNodes());
  GraphContext context(target, 36);
  Rng rng(100);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(target, analytical, context.solver(), rng);
  PartitionEnv env(target, analytical, baseline.eval.runtime_s);
  const int budget = 60;

  auto run = [&](const char* label, bool warm_start, bool zero_shot) {
    PolicyNetwork policy(config.rl);
    if (warm_start) {
      PretrainPipeline::Restore(policy,
                                checkpoints[static_cast<std::size_t>(best)]);
    }
    RlSearch search(policy, Rng(101), zero_shot, label);
    const SearchTrace trace = search.Run(context, env, budget);
    std::printf("  %-16s best improvement after %d samples: %.3fx "
                "(after 20: %.3fx)\n", label, budget,
                trace.BestWithin(static_cast<std::size_t>(budget)),
                trace.BestWithin(20));
  };
  run("RL from scratch", /*warm_start=*/false, /*zero_shot=*/false);
  run("RL Zeroshot", /*warm_start=*/true, /*zero_shot=*/true);
  run("RL Finetuning", /*warm_start=*/true, /*zero_shot=*/false);

  std::printf("\n(the full experiment with all 16 test graphs is "
              "bench/fig5_pretrain_curves)\n");
  return 0;
}
