// Solver playground: drives the CP solver through the paper's raw
// get_domain / set_domain interface (the core of Algorithms 1 and 2) on the
// 5-node example of Figure 2, printing domains as propagation prunes them.
//
// Shows all three static constraints in action:
//   * acyclic dataflow (Eq. 2)  -- domains narrow monotonically along edges,
//   * no skipping chips (Eq. 3) -- high placements get excluded,
//   * triangle dependency (Eq. 4) -- the Figure 2e pattern is refused.
#include <cstdio>
#include <string>

#include "graph/graph.h"
#include "partition/partition.h"
#include "solver/cp_solver.h"

namespace {

std::string DomainString(mcm::ChipDomain domain, int num_chips) {
  std::string out = "{";
  for (int chip = 0; chip < num_chips; ++chip) {
    if (mcm::DomainContains(domain, chip)) {
      if (out.size() > 1) out += ",";
      out += std::to_string(chip);
    }
  }
  return out + "}";
}

void PrintDomains(const mcm::CpSolver& solver, const mcm::Graph& graph) {
  for (int u = 0; u < graph.NumNodes(); ++u) {
    std::printf("  node %d (%s): %s\n", u, graph.node(u).name.c_str(),
                DomainString(solver.GetDomain(u), solver.num_chips()).c_str());
  }
}

}  // namespace

int main() {
  using namespace mcm;

  // Figure 2a: 0 -> {1, 2}, 1 -> 3, {2, 3} -> 4.
  Graph graph("figure2");
  for (int i = 0; i < 5; ++i) {
    graph.AddNode(OpType::kMatMul, "n" + std::to_string(i), 1.0, 1.0);
  }
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(1, 3);
  graph.AddEdge(2, 4);
  graph.AddEdge(3, 4);

  constexpr int kChips = 3;
  CpSolver solver(graph, kChips);
  std::printf("initial domains (3 chips):\n");
  PrintDomains(solver, graph);

  std::printf("\nset_domain(node 0, {0}) -- sources start the pipeline:\n");
  int i = solver.SetDomain(0, 1ULL << 0);
  std::printf("  -> decision index %d\n", i);
  PrintDomains(solver, graph);

  std::printf("\nset_domain(node 4, {2}) -- the sink on the last chip pulls "
              "everything apart:\n");
  i = solver.SetDomain(4, 1ULL << 2);
  std::printf("  -> decision index %d\n", i);
  PrintDomains(solver, graph);

  std::printf("\nset_domain(node 1, {1}):\n");
  i = solver.SetDomain(1, 1ULL << 1);
  std::printf("  -> decision index %d\n", i);
  PrintDomains(solver, graph);

  // Figure 2e's illegal pattern: with node 0 on chip 0 and node 1 on chip 1,
  // placing node 2 on chip 2 would create the direct dependency 0 -> 2
  // alongside the indirect chain 0 -> 1 -> 2.  The solver refuses: either
  // the attempt fails immediately (index unchanged and value excluded) or
  // propagation already removed chip 2 from the domain.
  std::printf("\nattempt set_domain(node 2, {2}) -- the Figure 2e triangle:\n");
  const ChipDomain before = solver.GetDomain(2);
  if (!DomainContains(before, 2)) {
    std::printf("  chip 2 was already pruned from node 2's domain: %s\n",
                DomainString(before, kChips).c_str());
  } else {
    i = solver.SetDomain(2, 1ULL << 2);
    std::printf("  -> decision index %d, node 2 domain now %s\n", i,
                DomainString(solver.GetDomain(2), kChips).c_str());
  }

  // Finish the assignment and validate.
  for (int u = 0; u < graph.NumNodes(); ++u) {
    if (!solver.IsFixed(u)) {
      const ChipDomain domain = solver.GetDomain(u);
      solver.SetDomain(u, 1ULL << DomainMin(domain));
    }
  }
  const Partition partition = solver.ExtractPartition();
  std::printf("\nfinal assignment:");
  for (int u = 0; u < graph.NumNodes(); ++u) {
    std::printf(" n%d->chip%d", u, partition.chip(u));
  }
  std::printf("\nstatic validation: %s\n",
              std::string(ViolationName(ValidateStatic(graph, partition)))
                  .c_str());
  return 0;
}
