// Partition BERT (2138 nodes, ~340 M parameters) onto the 36-chiplet MCM
// package and evaluate on the hardware simulator -- the paper's deployment
// scenario (Section 5.3) in miniature.
//
//   1. Build BERT and the production-compiler greedy baseline.
//   2. Show the baseline's weakness: per-chip compute imbalance.
//   3. Improve it with a short RL run through the constraint solver.
//
// Runtime: a couple of minutes on one core (BERT policy passes dominate).
#include <algorithm>
#include <cstdio>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "partition/heuristics.h"
#include "rl/env.h"
#include "search/search.h"

int main() {
  using namespace mcm;

  const Graph bert = MakeBert();
  std::printf("BERT: %d nodes, %.0fM parameters (%.0f MB quantized)\n",
              bert.NumNodes(),
              bert.TotalParamBytes() / kWeightBytesPerValue / 1e6,
              bert.TotalParamBytes() / 1e6);

  HardwareSim hardware;  // The "real hardware" stand-in.
  GraphContext context(bert, 36);
  Rng rng(7);

  // Production-compiler baseline: greedy packing by weight footprint (SRAM
  // is the binding constraint on these chiplets), repaired to validity.
  const Partition greedy = GreedyContiguousByParams(bert, 36);
  const SolveResult repaired =
      RepairPartition(context.solver(), bert, greedy, rng);
  const EvalResult baseline = hardware.Evaluate(bert, repaired.partition);
  const PartitionMetrics metrics =
      ComputePartitionMetrics(bert, repaired.partition);
  std::printf("greedy baseline: %.3f ms/sample, compute imbalance %.2fx, "
              "%d chips, %.1f MB cut traffic\n",
              baseline.runtime_s * 1e3, metrics.compute_imbalance,
              metrics.chips_used, metrics.total_cut_bytes / 1e6);

  // RL through the constraint solver (from scratch, small budget).
  PartitionEnv env(bert, hardware, baseline.runtime_s);
  RlConfig config = RlConfig::Quick();
  config.rollouts_per_update = 10;
  config.seed = 17;
  PolicyNetwork policy(config);
  RlSearch rl(policy, Rng(18));
  const SearchTrace trace = rl.Run(context, env, /*budget=*/40);
  std::printf("RL search (40 hardware evaluations): best improvement "
              "%.3fx over greedy\n", trace.BestWithin(40));

  // Random search with the same budget, for comparison.
  RandomSearch random{Rng(19)};
  const SearchTrace random_trace = random.Run(context, env, 40);
  std::printf("random search (40 evaluations):      best improvement "
              "%.3fx over greedy\n", random_trace.BestWithin(40));

  const int zero_rewards = static_cast<int>(std::count(
      random_trace.rewards.begin(), random_trace.rewards.end(), 0.0));
  std::printf("hardware rejected %d/40 random samples (dynamic "
              "out-of-memory constraint)\n", zero_rewards);
  std::printf("see bench/fig6_bert_curves for the full Figure 6 run with "
              "pre-training.\n");
  return 0;
}
