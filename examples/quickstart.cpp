// Quickstart: partition a small ML graph onto an MCM package.
//
//   1. Build a computation graph (here: a ResNet-style model).
//   2. Evaluate the compiler-heuristic baseline.
//   3. Search for a better partition with the constraint solver in the
//      loop (random search here; see the other examples for RL).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "rl/env.h"
#include "search/search.h"

int main() {
  using namespace mcm;

  // A 36-chiplet MCM package (the paper's target) with the analytical cost
  // model as the evaluator.
  const McmConfig mcm;
  AnalyticalCostModel model(mcm);

  // The workload: a ResNet-style graph with residual skip connections.
  const Graph graph = MakeResNet("resnet", ResNetConfig{});
  std::printf("graph: %s, %d nodes / %d edges, %.1f GFLOPs\n",
              graph.name().c_str(), graph.NumNodes(), graph.NumEdges(),
              graph.TotalFlops() / 1e9);

  // GraphContext bundles features, neighbor lists, and a constraint solver.
  GraphContext context(graph, mcm.num_chips);

  // The baseline a production compiler would emit: greedy contiguous
  // partitioning, repaired to satisfy the MCM's static constraints.
  Rng rng(1);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(graph, model, context.solver(), rng);
  std::printf("greedy baseline: %.3f ms per sample (%d chips used)\n",
              baseline.eval.runtime_s * 1e3,
              ComputePartitionMetrics(graph, baseline.partition).chips_used);

  // Random search through the constraint solver: every sample is a valid
  // partition; rewards are throughput improvements over the baseline.
  PartitionEnv env(graph, model, baseline.eval.runtime_s);
  RandomSearch search{Rng(2)};
  const SearchTrace trace = search.Run(context, env, /*budget=*/200);

  std::printf("random search over 200 valid samples:\n");
  for (std::size_t k : {10u, 50u, 100u, 200u}) {
    std::printf("  best improvement after %3zu samples: %.3fx\n", k,
                trace.BestWithin(k));
  }
  std::printf("(values > 1.0 mean higher throughput than the compiler "
              "heuristic)\n");
  return 0;
}
