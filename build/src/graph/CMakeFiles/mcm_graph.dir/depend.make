# Empty dependencies file for mcm_graph.
# This may be replaced when dependencies are built.
