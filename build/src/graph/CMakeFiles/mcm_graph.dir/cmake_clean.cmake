file(REMOVE_RECURSE
  "CMakeFiles/mcm_graph.dir/features.cc.o"
  "CMakeFiles/mcm_graph.dir/features.cc.o.d"
  "CMakeFiles/mcm_graph.dir/generators.cc.o"
  "CMakeFiles/mcm_graph.dir/generators.cc.o.d"
  "CMakeFiles/mcm_graph.dir/graph.cc.o"
  "CMakeFiles/mcm_graph.dir/graph.cc.o.d"
  "CMakeFiles/mcm_graph.dir/serialization.cc.o"
  "CMakeFiles/mcm_graph.dir/serialization.cc.o.d"
  "libmcm_graph.a"
  "libmcm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
