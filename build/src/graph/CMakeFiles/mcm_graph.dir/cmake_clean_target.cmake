file(REMOVE_RECURSE
  "libmcm_graph.a"
)
