# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("graph")
subdirs("partition")
subdirs("solver")
subdirs("costmodel")
subdirs("hwsim")
subdirs("nn")
subdirs("rl")
subdirs("search")
subdirs("pipeline")
