# Empty compiler generated dependencies file for mcm_solver.
# This may be replaced when dependencies are built.
