file(REMOVE_RECURSE
  "CMakeFiles/mcm_solver.dir/cp_solver.cc.o"
  "CMakeFiles/mcm_solver.dir/cp_solver.cc.o.d"
  "CMakeFiles/mcm_solver.dir/modes.cc.o"
  "CMakeFiles/mcm_solver.dir/modes.cc.o.d"
  "libmcm_solver.a"
  "libmcm_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
