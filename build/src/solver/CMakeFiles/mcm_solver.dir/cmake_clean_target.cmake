file(REMOVE_RECURSE
  "libmcm_solver.a"
)
