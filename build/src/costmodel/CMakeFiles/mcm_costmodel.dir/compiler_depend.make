# Empty compiler generated dependencies file for mcm_costmodel.
# This may be replaced when dependencies are built.
