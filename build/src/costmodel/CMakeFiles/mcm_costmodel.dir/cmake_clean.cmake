file(REMOVE_RECURSE
  "CMakeFiles/mcm_costmodel.dir/cost_model.cc.o"
  "CMakeFiles/mcm_costmodel.dir/cost_model.cc.o.d"
  "libmcm_costmodel.a"
  "libmcm_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
