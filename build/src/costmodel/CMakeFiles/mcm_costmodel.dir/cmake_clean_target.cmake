file(REMOVE_RECURSE
  "libmcm_costmodel.a"
)
