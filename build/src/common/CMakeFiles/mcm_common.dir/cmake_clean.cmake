file(REMOVE_RECURSE
  "CMakeFiles/mcm_common.dir/env.cc.o"
  "CMakeFiles/mcm_common.dir/env.cc.o.d"
  "CMakeFiles/mcm_common.dir/logging.cc.o"
  "CMakeFiles/mcm_common.dir/logging.cc.o.d"
  "CMakeFiles/mcm_common.dir/rng.cc.o"
  "CMakeFiles/mcm_common.dir/rng.cc.o.d"
  "CMakeFiles/mcm_common.dir/stats.cc.o"
  "CMakeFiles/mcm_common.dir/stats.cc.o.d"
  "libmcm_common.a"
  "libmcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
