file(REMOVE_RECURSE
  "libmcm_pipeline.a"
)
