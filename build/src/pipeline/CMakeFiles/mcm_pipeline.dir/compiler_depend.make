# Empty compiler generated dependencies file for mcm_pipeline.
# This may be replaced when dependencies are built.
