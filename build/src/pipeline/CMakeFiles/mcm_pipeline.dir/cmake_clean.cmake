file(REMOVE_RECURSE
  "CMakeFiles/mcm_pipeline.dir/pretrain.cc.o"
  "CMakeFiles/mcm_pipeline.dir/pretrain.cc.o.d"
  "libmcm_pipeline.a"
  "libmcm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
