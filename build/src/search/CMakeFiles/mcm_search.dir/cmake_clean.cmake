file(REMOVE_RECURSE
  "CMakeFiles/mcm_search.dir/search.cc.o"
  "CMakeFiles/mcm_search.dir/search.cc.o.d"
  "libmcm_search.a"
  "libmcm_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
