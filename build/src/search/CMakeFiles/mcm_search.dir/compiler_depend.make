# Empty compiler generated dependencies file for mcm_search.
# This may be replaced when dependencies are built.
