file(REMOVE_RECURSE
  "libmcm_search.a"
)
