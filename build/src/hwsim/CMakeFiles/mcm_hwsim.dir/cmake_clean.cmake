file(REMOVE_RECURSE
  "CMakeFiles/mcm_hwsim.dir/hardware_sim.cc.o"
  "CMakeFiles/mcm_hwsim.dir/hardware_sim.cc.o.d"
  "libmcm_hwsim.a"
  "libmcm_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
