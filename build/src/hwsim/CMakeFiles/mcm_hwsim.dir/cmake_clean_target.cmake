file(REMOVE_RECURSE
  "libmcm_hwsim.a"
)
