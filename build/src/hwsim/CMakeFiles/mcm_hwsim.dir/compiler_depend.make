# Empty compiler generated dependencies file for mcm_hwsim.
# This may be replaced when dependencies are built.
