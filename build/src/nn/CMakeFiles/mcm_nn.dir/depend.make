# Empty dependencies file for mcm_nn.
# This may be replaced when dependencies are built.
