file(REMOVE_RECURSE
  "CMakeFiles/mcm_nn.dir/matrix.cc.o"
  "CMakeFiles/mcm_nn.dir/matrix.cc.o.d"
  "CMakeFiles/mcm_nn.dir/modules.cc.o"
  "CMakeFiles/mcm_nn.dir/modules.cc.o.d"
  "CMakeFiles/mcm_nn.dir/tape.cc.o"
  "CMakeFiles/mcm_nn.dir/tape.cc.o.d"
  "libmcm_nn.a"
  "libmcm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
