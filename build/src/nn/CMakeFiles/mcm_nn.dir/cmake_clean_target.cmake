file(REMOVE_RECURSE
  "libmcm_nn.a"
)
