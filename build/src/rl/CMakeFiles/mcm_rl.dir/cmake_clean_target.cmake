file(REMOVE_RECURSE
  "libmcm_rl.a"
)
