file(REMOVE_RECURSE
  "CMakeFiles/mcm_rl.dir/env.cc.o"
  "CMakeFiles/mcm_rl.dir/env.cc.o.d"
  "CMakeFiles/mcm_rl.dir/policy.cc.o"
  "CMakeFiles/mcm_rl.dir/policy.cc.o.d"
  "CMakeFiles/mcm_rl.dir/ppo.cc.o"
  "CMakeFiles/mcm_rl.dir/ppo.cc.o.d"
  "libmcm_rl.a"
  "libmcm_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
