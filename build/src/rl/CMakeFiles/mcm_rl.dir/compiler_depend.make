# Empty compiler generated dependencies file for mcm_rl.
# This may be replaced when dependencies are built.
