# Empty compiler generated dependencies file for mcm_partition.
# This may be replaced when dependencies are built.
