file(REMOVE_RECURSE
  "CMakeFiles/mcm_partition.dir/heuristics.cc.o"
  "CMakeFiles/mcm_partition.dir/heuristics.cc.o.d"
  "CMakeFiles/mcm_partition.dir/partition.cc.o"
  "CMakeFiles/mcm_partition.dir/partition.cc.o.d"
  "libmcm_partition.a"
  "libmcm_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
