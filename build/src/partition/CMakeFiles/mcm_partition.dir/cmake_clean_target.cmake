file(REMOVE_RECURSE
  "libmcm_partition.a"
)
