file(REMOVE_RECURSE
  "CMakeFiles/partition_bert.dir/partition_bert.cpp.o"
  "CMakeFiles/partition_bert.dir/partition_bert.cpp.o.d"
  "partition_bert"
  "partition_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
