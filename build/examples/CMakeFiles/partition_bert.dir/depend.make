# Empty dependencies file for partition_bert.
# This may be replaced when dependencies are built.
