file(REMOVE_RECURSE
  "CMakeFiles/pretrain_and_finetune.dir/pretrain_and_finetune.cpp.o"
  "CMakeFiles/pretrain_and_finetune.dir/pretrain_and_finetune.cpp.o.d"
  "pretrain_and_finetune"
  "pretrain_and_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain_and_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
