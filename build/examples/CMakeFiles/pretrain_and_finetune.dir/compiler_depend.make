# Empty compiler generated dependencies file for pretrain_and_finetune.
# This may be replaced when dependencies are built.
