file(REMOVE_RECURSE
  "CMakeFiles/solver_playground.dir/solver_playground.cpp.o"
  "CMakeFiles/solver_playground.dir/solver_playground.cpp.o.d"
  "solver_playground"
  "solver_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
