file(REMOVE_RECURSE
  "CMakeFiles/fig6_bert_curves.dir/fig6_bert_curves.cc.o"
  "CMakeFiles/fig6_bert_curves.dir/fig6_bert_curves.cc.o.d"
  "fig6_bert_curves"
  "fig6_bert_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bert_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
