# Empty dependencies file for ablation_fix_vs_sample.
# This may be replaced when dependencies are built.
