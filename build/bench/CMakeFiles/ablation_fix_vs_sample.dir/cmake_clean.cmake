file(REMOVE_RECURSE
  "CMakeFiles/ablation_fix_vs_sample.dir/ablation_fix_vs_sample.cc.o"
  "CMakeFiles/ablation_fix_vs_sample.dir/ablation_fix_vs_sample.cc.o.d"
  "ablation_fix_vs_sample"
  "ablation_fix_vs_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fix_vs_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
