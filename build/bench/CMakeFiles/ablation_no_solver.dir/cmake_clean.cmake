file(REMOVE_RECURSE
  "CMakeFiles/ablation_no_solver.dir/ablation_no_solver.cc.o"
  "CMakeFiles/ablation_no_solver.dir/ablation_no_solver.cc.o.d"
  "ablation_no_solver"
  "ablation_no_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_no_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
