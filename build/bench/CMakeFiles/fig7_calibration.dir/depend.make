# Empty dependencies file for fig7_calibration.
# This may be replaced when dependencies are built.
