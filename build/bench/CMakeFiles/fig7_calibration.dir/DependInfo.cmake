
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_calibration.cc" "bench/CMakeFiles/fig7_calibration.dir/fig7_calibration.cc.o" "gcc" "bench/CMakeFiles/fig7_calibration.dir/fig7_calibration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mcm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mcm_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/mcm_search.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/mcm_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mcm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/mcm_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/mcm_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mcm_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mcm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
