file(REMOVE_RECURSE
  "CMakeFiles/fig7_calibration.dir/fig7_calibration.cc.o"
  "CMakeFiles/fig7_calibration.dir/fig7_calibration.cc.o.d"
  "fig7_calibration"
  "fig7_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
