file(REMOVE_RECURSE
  "libmcm_bench_common.a"
)
