file(REMOVE_RECURSE
  "CMakeFiles/mcm_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mcm_bench_common.dir/bench_common.cc.o.d"
  "libmcm_bench_common.a"
  "libmcm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
