# Empty dependencies file for fig5_pretrain_curves.
# This may be replaced when dependencies are built.
