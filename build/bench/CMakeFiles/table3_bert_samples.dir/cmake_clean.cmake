file(REMOVE_RECURSE
  "CMakeFiles/table3_bert_samples.dir/table3_bert_samples.cc.o"
  "CMakeFiles/table3_bert_samples.dir/table3_bert_samples.cc.o.d"
  "table3_bert_samples"
  "table3_bert_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bert_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
