# Empty dependencies file for table2_sample_reduction.
# This may be replaced when dependencies are built.
