file(REMOVE_RECURSE
  "CMakeFiles/table2_sample_reduction.dir/table2_sample_reduction.cc.o"
  "CMakeFiles/table2_sample_reduction.dir/table2_sample_reduction.cc.o.d"
  "table2_sample_reduction"
  "table2_sample_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sample_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
