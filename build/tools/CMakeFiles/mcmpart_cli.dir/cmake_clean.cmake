file(REMOVE_RECURSE
  "CMakeFiles/mcmpart_cli.dir/mcmpart_cli.cc.o"
  "CMakeFiles/mcmpart_cli.dir/mcmpart_cli.cc.o.d"
  "mcmpart"
  "mcmpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcmpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
