# Empty dependencies file for mcmpart_cli.
# This may be replaced when dependencies are built.
