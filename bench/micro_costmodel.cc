// Microbenchmarks for the evaluation substrate: analytical cost model and
// hardware-simulator evaluations at corpus and BERT scales.
#include <benchmark/benchmark.h>

#include "micro_common.h"

#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "partition/heuristics.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "solver/modes.h"

namespace mcm {
namespace {

struct Prepared {
  Graph graph;
  Partition partition;
};

const Prepared& PreparedCase(int selector) {
  static const auto* cases = [] {
    auto* out = new std::vector<Prepared>;
    Rng rng(9);
    for (Graph graph : {MakeResNet("resnet", ResNetConfig{}), MakeBert()}) {
      CpSolver solver(graph, 36);
      const ProbMatrix probs = ProbMatrix::Uniform(graph.NumNodes(), 36);
      SolveResult solved =
          SolveSampleWithRestarts(solver, graph, probs, rng);
      out->push_back(Prepared{std::move(graph), std::move(solved.partition)});
    }
    return out;
  }();
  return (*cases)[static_cast<std::size_t>(selector)];
}

void BM_AnalyticalEvaluate(benchmark::State& state) {
  const Prepared& prepared = PreparedCase(static_cast<int>(state.range(0)));
  AnalyticalCostModel model{McmConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Evaluate(prepared.graph, prepared.partition).runtime_s);
  }
  state.counters["nodes"] = prepared.graph.NumNodes();
}
BENCHMARK(BM_AnalyticalEvaluate)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_HardwareSimEvaluate(benchmark::State& state) {
  const Prepared& prepared = PreparedCase(static_cast<int>(state.range(0)));
  HardwareSim sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Evaluate(prepared.graph, prepared.partition).runtime_s);
  }
  state.counters["nodes"] = prepared.graph.NumNodes();
}
BENCHMARK(BM_HardwareSimEvaluate)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_ChipLoads(benchmark::State& state) {
  const Prepared& prepared = PreparedCase(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeChipLoads(prepared.graph, prepared.partition));
  }
  state.counters["nodes"] = prepared.graph.NumNodes();
}
BENCHMARK(BM_ChipLoads)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_HeuristicBaseline(benchmark::State& state) {
  const Prepared& prepared = PreparedCase(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GreedyContiguousByCount(prepared.graph, 36).NumChipsUsed());
  }
  state.counters["nodes"] = prepared.graph.NumNodes();
}
BENCHMARK(BM_HeuristicBaseline)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mcm

MCM_MICROBENCH_MAIN("micro_costmodel")
