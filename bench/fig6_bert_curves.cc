// Figure 6: throughput improvement of BERT over the production greedy
// heuristic on "real hardware" (the hardware simulator) versus sample
// count, for Random, SA, RL, RL Zeroshot, and RL Finetuning.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm::bench;
  std::printf("=== Figure 6: BERT throughput improvement over the greedy "
              "heuristic (hardware simulator) ===\n");
  const BenchScaleConfig config = BenchScaleConfig::FromEnv();
  mcm::telemetry::RunReport report = MakeBenchReport("fig6_bert_curves");
  ComparisonResult result;
  {
    mcm::telemetry::PhaseTimer timer(report, "comparison");
    result = RunBertComparison(config, /*seed=*/6);
  }
  AddComparison(report, result);
  PrintCurves("best-so-far improvement over greedy heuristic", result.curves);
  std::printf("\n# final improvements: ");
  for (const MethodCurve& curve : result.curves) {
    std::printf("%s=%.3f ", curve.name.c_str(), curve.best_so_far.back());
  }
  std::printf("\n# paper reference: RL beats Random by 6.11%% and SA by "
              "5.85%% at convergence; fine-tuning dominates at low sample "
              "counts; zero-shot underperforms (out-of-distribution).\n");
  WriteBenchReport(report);
  return 0;
}
