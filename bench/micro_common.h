// Shared main() for the google-benchmark micro benches: runs the standard
// console reporter while mirroring every per-iteration timing into a
// telemetry::RunReport, then writes BENCH_<name>.json so the microbench
// trajectory is machine-readable like the figure/table benches.
//
// Use MCM_MICROBENCH_MAIN("micro_solver") in place of BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>

#include "bench_common.h"
#include "telemetry/report.h"

namespace mcm::bench {

// Console reporter that also records each benchmark's adjusted real time
// (ns, google-benchmark's reporting unit before display scaling) into the
// report under "time_ns/<benchmark name>".
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(telemetry::RunReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      report_.SetValue("time_ns/" + run.benchmark_name(),
                       run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  telemetry::RunReport& report_;
};

inline int RunMicrobench(std::string_view bench_name, int argc, char** argv) {
  // benchmark::Initialize strips google-benchmark's own flags from argv
  // first, so InitBenchRuntime only sees what's left (e.g. --threads).
  benchmark::Initialize(&argc, argv);
  InitBenchRuntime(argc, argv);
  telemetry::RunReport report = MakeBenchReport(bench_name);
  ReportingReporter reporter(report);
  {
    telemetry::PhaseTimer timer(report, "benchmarks");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  WriteBenchReport(report);
  return 0;
}

}  // namespace mcm::bench

#define MCM_MICROBENCH_MAIN(bench_name)                          \
  int main(int argc, char** argv) {                              \
    return ::mcm::bench::RunMicrobench(bench_name, argc, argv);  \
  }
