// Figure 5: geomean throughput improvement over the compiler heuristic on
// the test dataset (analytical cost model) versus sample count, comparing
// Random, SA, RL (from scratch), RL Zeroshot, and RL Finetuning.
//
// Quick scale by default; MCM_BENCH_SCALE=full runs the paper's budgets
// (66 pre-training graphs / 20000 samples / 16 test graphs).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm::bench;
  std::printf("=== Figure 5: geomean throughput improvement on the test set "
              "(analytical cost model) ===\n");
  const BenchScaleConfig config = BenchScaleConfig::FromEnv();
  mcm::telemetry::RunReport report = MakeBenchReport("fig5_pretrain_curves");
  ComparisonResult result;
  {
    mcm::telemetry::PhaseTimer timer(report, "comparison");
    result = RunCorpusComparison(config, /*seed=*/5);
  }
  AddComparison(report, result);
  PrintCurves("geomean best-so-far improvement over compiler heuristic",
              result.curves);
  std::printf("\n# final geomean improvements: ");
  for (const MethodCurve& curve : result.curves) {
    std::printf("%s=%.3f ", curve.name.c_str(), curve.best_so_far.back());
  }
  std::printf("\n# paper reference: RL beats Random by 4.36%% and SA by "
              "6.49%% at convergence.\n");
  WriteBenchReport(report);
  return 0;
}
