// Shared machinery for the paper-reproduction benches: scaled budgets, the
// pre-training + comparison runners behind Figure 5 / Table 2 and Figure 6 /
// Table 3, and text rendering of curves and threshold tables.
//
// Scale: every budget is resolved through ScaledInt, so MCM_BENCH_SCALE=full
// switches to paper-scale budgets while the default "quick" settings finish
// on a single core in minutes.  Individual knobs can be overridden with the
// MCM_* environment variables named below.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "pipeline/pretrain.h"
#include "rl/policy.h"
#include "search/search.h"
#include "telemetry/report.h"

namespace mcm::bench {

// The five methods of Figures 5 and 6, in the paper's order.
inline constexpr const char* kMethodNames[] = {
    "Random", "SA", "RL", "RL Zeroshot", "RL Finetuning"};
inline constexpr int kNumMethods = 5;

// Parses runtime flags shared by every bench binary (`--threads N` for the
// worker pool, falling back to the MCMPART_THREADS env var, else hardware
// concurrency; `--nn-threads N` for NN kernel intra-op parallelism, falling
// back to MCMPART_NN_THREADS, else inheriting the worker count) and
// configures the pools.  Prints the effective thread counts so bench logs
// are self-describing.  Results are bit-identical for any thread count;
// only wall-clock changes.
void InitBenchRuntime(int argc, char** argv);

struct BenchScaleConfig {
  // Pre-training phase.
  int pretrain_graphs;     // Training-set graphs used (paper: 66).
  int pretrain_samples;    // Total pre-training samples (paper: 20000).
  int num_checkpoints;     // Checkpoints emitted (paper: 200).
  int validation_graphs;   // Validation-set graphs (paper: 5).
  int validate_every;      // Score every k-th checkpoint (paper: 1).
  // Comparison phase.
  int test_graphs;         // Test-set graphs for Fig 5 (paper: 16).
  int corpus_budget;       // Samples per method per test graph.
  int bert_budget;         // Samples per method on BERT (Fig 6).
  RlConfig rl;             // Network/PPO configuration.

  static BenchScaleConfig FromEnv();
};

// One method's best-so-far improvement curve, geomean-aggregated when the
// experiment spans several graphs.
struct MethodCurve {
  std::string name;
  std::vector<double> best_so_far;
};

struct ComparisonResult {
  std::vector<MethodCurve> curves;  // One per method, equal lengths.
  // The pre-trained policy checkpoint used by zero-shot / fine-tuning.
  Checkpoint best_checkpoint;
  double pretrain_seconds = 0.0;
};

// Runs the corpus experiment (Figure 5 / Table 2): pre-train on the train
// split against the analytical model, validate, then run all five methods
// on the test split; curves are geomeans over test graphs.
ComparisonResult RunCorpusComparison(const BenchScaleConfig& config,
                                     std::uint64_t seed);

// Runs the BERT experiment (Figure 6 / Table 3): pre-train as above, then
// run all five methods on BERT against the hardware simulator with the
// production (by-params) greedy baseline.
ComparisonResult RunBertComparison(const BenchScaleConfig& config,
                                   std::uint64_t seed);

// ---- Machine-readable reports ----------------------------------------------

// Builds a run report named `name`, pre-populated with the bench scale and
// worker thread count.  Also interns the standard metric names so the
// report's metrics section is complete even for layers a bench never hits.
telemetry::RunReport MakeBenchReport(std::string_view name);

// Records a comparison's headline numbers: "final/<method>" (last point of
// each best-so-far curve), per-method curve lengths, and pre-training time.
void AddComparison(telemetry::RunReport& report,
                   const ComparisonResult& result);

// Writes the report to BENCH_<name>.json in the current directory (the
// repo's perf-trajectory convention) and prints the path.
void WriteBenchReport(const telemetry::RunReport& report);

// ---- Rendering --------------------------------------------------------------

// Prints "sample_count  <one column per curve>" rows at log-ish checkpoints.
void PrintCurves(const std::string& title,
                 const std::vector<MethodCurve>& curves);

// Prints the samples-to-threshold table (Tables 2 and 3): absolute paper
// thresholds plus substrate-relative thresholds (fractions of the RL
// curve's final value), with the reduction factor versus RL-from-scratch.
void PrintThresholdTable(const std::string& title,
                         const std::vector<MethodCurve>& curves,
                         const std::vector<double>& paper_thresholds);

}  // namespace mcm::bench
