// Ablation (Section 5.1): the constraint solver's FIX versus SAMPLE
// assignment strategy under the same RL configuration ("we use the FIX mode
// ... as it outperforms SAMPLE mode").
#include <cstdio>

#include "common/env.h"
#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "rl/env.h"
#include "search/search.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm;
  mcm::telemetry::RunReport report =
      mcm::bench::MakeBenchReport("ablation_fix_vs_sample");
  mcm::telemetry::PhaseTimer phase_timer(report, "ablation");
  const int budget =
      static_cast<int>(ScaledInt("MCM_ABLATION_BUDGET", 100, 1500));
  std::printf("=== Ablation: solver FIX vs SAMPLE mode under RL ===\n");

  const DatasetSplit split = SplitCorpus(MakeCorpus());
  AnalyticalCostModel model{McmConfig{}};

  for (int gi : {0, 1, 2}) {
    const Graph& graph = split.test[static_cast<std::size_t>(gi)];
    double best[2] = {0.0, 0.0};
    const char* labels[2] = {"FIX", "SAMPLE"};
    for (int mode = 0; mode < 2; ++mode) {
      GraphContext context(graph, 36);
      Rng rng(21);
      const BaselineResult baseline =
          ComputeHeuristicBaseline(graph, model, context.solver(), rng);
      PartitionEnv env(graph, model, baseline.eval.runtime_s);
      RlConfig config = GetBenchScale() == BenchScale::kFull
                            ? RlConfig{}
                            : RlConfig::Quick();
      config.solver_mode = mode == 0 ? RlConfig::SolverMode::kFix
                                     : RlConfig::SolverMode::kSample;
      config.seed = 31;
      PolicyNetwork policy(config);
      RlSearch search(policy, Rng(32));
      const SearchTrace trace = search.Run(context, env, budget);
      best[mode] = trace.BestWithin(trace.rewards.size());
    }
    std::printf("%-14s (%3d nodes): %s best=%.3f  %s best=%.3f  (%s wins)\n",
                graph.name().c_str(), graph.NumNodes(), labels[0], best[0],
                labels[1], best[1], best[0] >= best[1] ? "FIX" : "SAMPLE");
    report.SetValue("fix/" + graph.name(), best[0]);
    report.SetValue("sample/" + graph.name(), best[1]);
  }
  std::printf("# paper reference: FIX outperforms SAMPLE (Section 5.1).\n");
  mcm::bench::WriteBenchReport(report);
  return 0;
}
