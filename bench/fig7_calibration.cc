// Figure 7 / Section 5.4: calibration of the analytical cost model against
// "real hardware" (the hardware simulator).  Generates random valid BERT
// partitions, evaluates both models, and reports
//   * the fraction invalid only on hardware (paper: 13.5%),
//   * Pearson correlation of normalized runtimes (paper: R = 0.91),
//   * a coarse scatter of normalized predicted vs measured runtime, showing
//     the false-positive cluster (low predicted, high/invalid measured).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"
#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "solver/modes.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm;
  mcm::telemetry::RunReport report =
      mcm::bench::MakeBenchReport("fig7_calibration");
  mcm::telemetry::PhaseTimer phase_timer(report, "calibration");
  const int samples =
      static_cast<int>(ScaledInt("MCM_CALIBRATION_SAMPLES", 300, 2000));
  std::printf("=== Figure 7: analytical-vs-hardware calibration on BERT "
              "(%d random partitions) ===\n", samples);

  const Graph bert = MakeBert();
  CpSolver solver(bert, 36);
  const ProbMatrix uniform = ProbMatrix::Uniform(bert.NumNodes(), 36);
  AnalyticalCostModel analytical{McmConfig{}};
  HardwareSim hardware;
  Rng rng(2024);

  std::vector<double> predicted, measured;
  std::vector<double> invalid_predicted;  // Analytical runtime of hw-invalid.
  int solver_failures = 0;
  for (int k = 0; k < samples; ++k) {
    const SolveResult r =
        SolveSampleWithRestarts(solver, bert, uniform, rng);
    if (!r.success) {
      ++solver_failures;
      continue;
    }
    const EvalResult a = analytical.Evaluate(bert, r.partition);
    const EvalResult h = hardware.Evaluate(bert, r.partition);
    if (!h.valid) {
      invalid_predicted.push_back(a.runtime_s);
      continue;
    }
    predicted.push_back(a.runtime_s);
    measured.push_back(h.runtime_s);
  }
  const int evaluated = samples - solver_failures;
  const auto invalid = static_cast<int>(invalid_predicted.size());

  std::printf("evaluated partitions:          %d\n", evaluated);
  std::printf("invalid on hardware only:      %d (%.1f%%)   [paper: 13.5%%]\n",
              invalid, 100.0 * invalid / std::max(evaluated, 1));
  const double r = PearsonCorrelation(predicted, measured);
  std::printf("Pearson R (valid samples):     %.3f        [paper: 0.91]\n", r);
  report.SetValue("evaluated", evaluated);
  report.SetValue("invalid_on_hardware", invalid);
  report.SetValue("pearson_r", r);

  // Normalize to the respective minima, as the paper plots.
  const double min_pred =
      *std::min_element(predicted.begin(), predicted.end());
  const double min_meas =
      *std::min_element(measured.begin(), measured.end());
  std::vector<double> np, nm;
  for (double p : predicted) np.push_back(p / min_pred);
  for (double m : measured) nm.push_back(m / min_meas);

  // Coarse ASCII scatter: x = normalized predicted, y = normalized measured.
  const int kW = 56, kH = 18;
  const double max_pred =
      std::min(Percentile(np, 0.98), *std::max_element(np.begin(), np.end()));
  const double max_meas =
      std::min(Percentile(nm, 0.98), *std::max_element(nm.begin(), nm.end()));
  std::vector<std::string> canvas(kH, std::string(kW, ' '));
  for (std::size_t i = 0; i < np.size(); ++i) {
    const int x = std::min(
        kW - 1, static_cast<int>((np[i] - 1.0) / (max_pred - 1.0) * (kW - 1)));
    const int y = std::min(
        kH - 1, static_cast<int>((nm[i] - 1.0) / (max_meas - 1.0) * (kH - 1)));
    if (x >= 0 && y >= 0) {
      char& cell = canvas[static_cast<std::size_t>(kH - 1 - y)]
                         [static_cast<std::size_t>(x)];
      cell = cell == ' ' ? '.' : (cell == '.' ? 'o' : '#');
    }
  }
  std::printf("\nnormalized measured runtime (y, 1.0..%.2f) vs normalized "
              "predicted runtime (x, 1.0..%.2f)\n", max_meas, max_pred);
  for (const std::string& line : canvas) {
    std::printf("|%s|\n", line.c_str());
  }

  // The paper's false-positive observation: partitions with *good* predicted
  // runtime that fail or degrade on hardware.
  double low_pred_cut = Percentile(np, 0.25);
  int false_positives = 0;
  for (std::size_t i = 0; i < np.size(); ++i) {
    if (np[i] <= low_pred_cut && nm[i] >= Percentile(nm, 0.75)) {
      ++false_positives;
    }
  }
  int invalid_low_pred = 0;
  for (double p : invalid_predicted) {
    if (p / min_pred <= low_pred_cut) ++invalid_low_pred;
  }
  std::printf("\nfalse positives (pred in best quartile, measured in worst "
              "quartile): %d\n", false_positives);
  std::printf("hardware-invalid samples whose predicted runtime was in the "
              "best quartile: %d\n", invalid_low_pred);
  std::printf("# paper reference: strong correlation with a false-positive "
              "cluster (the red circle in Fig. 7).\n");
  report.SetValue("false_positives", false_positives);
  mcm::bench::WriteBenchReport(report);
  return 0;
}
