// Microbenchmarks for the constraint solver: SAMPLE solves, FIX repairs,
// and decision-order generation across graph scales.
#include <benchmark/benchmark.h>

#include "micro_common.h"

#include "common/rng.h"
#include "graph/generators.h"
#include "partition/heuristics.h"
#include "solver/cp_solver.h"
#include "solver/modes.h"

namespace mcm {
namespace {

const Graph& GraphForSize(int selector) {
  static const Graph small = MakeMlp("mlp", 128, {256, 256, 128}, 10);
  static const Graph medium = MakeResNet("resnet", ResNetConfig{});
  static const Graph large = MakeLstm("lstm", 20, 128, 256, 100);
  static const Graph bert = MakeBert();
  switch (selector) {
    case 0: return small;
    case 1: return medium;
    case 2: return large;
    default: return bert;
  }
}

void BM_SampleSolve(benchmark::State& state) {
  const Graph& graph = GraphForSize(static_cast<int>(state.range(0)));
  CpSolver solver(graph, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(graph.NumNodes(), 36);
  Rng rng(1);
  std::int64_t calls = 0;
  for (auto _ : state) {
    const SolveResult result =
        SolveSampleWithRestarts(solver, graph, probs, rng);
    benchmark::DoNotOptimize(result.success);
    calls += result.set_domain_calls;
  }
  state.counters["nodes"] = graph.NumNodes();
  state.counters["set_domain_calls/solve"] =
      static_cast<double>(calls) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SampleSolve)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_FixRepairGreedy(benchmark::State& state) {
  const Graph& graph = GraphForSize(static_cast<int>(state.range(0)));
  CpSolver solver(graph, 36);
  const Partition greedy = GreedyContiguousByCount(graph, 36);
  Rng rng(2);
  for (auto _ : state) {
    const SolveResult result =
        SolveFixWithRestarts(solver, graph, greedy, rng);
    benchmark::DoNotOptimize(result.nodes_kept);
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_FixRepairGreedy)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_AlapOrder(benchmark::State& state) {
  const Graph& graph = GraphForSize(static_cast<int>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AlapRandomTopologicalOrder(graph, rng));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_AlapOrder)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_StaticValidation(benchmark::State& state) {
  const Graph& graph = GraphForSize(static_cast<int>(state.range(0)));
  CpSolver solver(graph, 36);
  const ProbMatrix probs = ProbMatrix::Uniform(graph.NumNodes(), 36);
  Rng rng(4);
  const SolveResult solved =
      SolveSampleWithRestarts(solver, graph, probs, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateStatic(graph, solved.partition));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_StaticValidation)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mcm

MCM_MICROBENCH_MAIN("micro_solver")
